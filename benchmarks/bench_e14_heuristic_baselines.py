"""E14 — the introduction's economics: primal-dual vs naive policies.

The thesis motivates leasing with the two naive failure modes (buy long
and waste, or rent short and over-pay).  On three workload regimes —
bursty, sparse, mixed — the primal-dual algorithm must avoid the large
losses each strawman shows on its bad regime.
"""

from __future__ import annotations

from repro.analysis import Sweep
from repro.core import LeaseSchedule, run_online
from repro.parking import (
    AlwaysLongest,
    AlwaysShortest,
    DeterministicParkingPermit,
    RentThenBuy,
    make_instance,
    optimal_interval,
)
from repro.workloads import burst_days, make_rng, sparse_days

POLICIES = {
    "primal-dual": DeterministicParkingPermit,
    "always-shortest": AlwaysShortest,
    "always-longest": AlwaysLongest,
    "rent-then-buy": RentThenBuy,
}


def workloads():
    rng = make_rng(77)
    bursty = burst_days(300, 5, 16, rng)
    sparse = sparse_days(300, 8, rng)
    mixed = sorted(set(bursty[: len(bursty) // 2] + [d + 400 for d in sparse]))
    return {"bursty": bursty, "sparse": sparse, "mixed": mixed}


def build_sweep() -> Sweep:
    sweep = Sweep("E14: primal-dual vs naive policies")
    schedule = LeaseSchedule.power_of_two(5, cost_growth=2 ** 0.5)
    for workload_name, days in workloads().items():
        instance = make_instance(schedule, days)
        opt = optimal_interval(instance).cost
        for policy_name, policy_class in POLICIES.items():
            policy = policy_class(schedule)
            run_online(policy, instance.rainy_days)
            assert instance.is_feasible_solution(list(policy.leases))
            sweep.add(
                {"workload": workload_name, "policy": policy_name},
                online_cost=policy.cost,
                opt_cost=opt,
                bound=(
                    float(schedule.num_types)
                    if policy_name == "primal-dual"
                    else None
                ),
            )
    return sweep


def _kernel():
    schedule = LeaseSchedule.power_of_two(5, cost_growth=2 ** 0.5)
    days = workloads()["mixed"]
    algorithm = DeterministicParkingPermit(schedule)
    for day in days:
        algorithm.on_demand(day)
    return algorithm.cost


def test_e14_heuristic_baselines(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
    ratio = {
        (row.params["workload"], row.params["policy"]): row.ratio
        for row in sweep.rows
    }
    # Each strawman loses clearly on its bad regime; primal-dual does not.
    assert ratio[("bursty", "always-shortest")] > 1.5
    assert ratio[("sparse", "always-longest")] > 1.5
    # Primal-dual's worst ratio across regimes beats each strawman's worst.
    def worst(policy):
        return max(
            value for (w, p), value in ratio.items() if p == policy
        )

    assert worst("primal-dual") <= worst("always-shortest")
    assert worst("primal-dual") <= worst("always-longest")
