"""E14 — the introduction's economics: primal-dual vs naive policies.

The thesis motivates leasing with the two naive failure modes (buy long
and waste, or rent short and over-pay).  On three workload regimes —
bursty, sparse, mixed — the primal-dual algorithm must avoid the large
losses each strawman shows on its bad regime.

Runs on the :mod:`repro.engine` substrate: every (workload, policy) pair
is an ad-hoc scenario, so one ``runner.replay`` call produces the whole
policy-comparison grid with per-run feasibility verification.
"""

from __future__ import annotations

from repro.analysis import Sweep, verify_parking
from repro.core import LeaseSchedule, OptBounds, run_online
from repro.engine import Scenario, register, replay
from repro.parking import (
    AlwaysLongest,
    AlwaysShortest,
    DeterministicParkingPermit,
    RentThenBuy,
    make_instance,
    optimal_interval,
)
from repro.workloads import burst_days, make_rng, sparse_days

POLICIES = {
    "primal-dual": DeterministicParkingPermit,
    "always-shortest": AlwaysShortest,
    "always-longest": AlwaysLongest,
    "rent-then-buy": RentThenBuy,
}

SCHEDULE = LeaseSchedule.power_of_two(5, cost_growth=2 ** 0.5)


def workloads():
    rng = make_rng(77)
    bursty = burst_days(300, 5, 16, rng)
    sparse = sparse_days(300, 8, rng)
    mixed = sorted(set(bursty[: len(bursty) // 2] + [d + 400 for d in sparse]))
    return {"bursty": bursty, "sparse": sparse, "mixed": mixed}


def _scenario(workload_name: str, policy_name: str) -> Scenario:
    policy_class = POLICIES[policy_name]

    def build(seed: int):
        return make_instance(SCHEDULE, workloads()[workload_name])

    def run(instance, seed: int):
        return run_online(
            policy_class(SCHEDULE), instance.rainy_days, name=policy_name
        )

    return Scenario(
        name=f"bench-e14-{workload_name}-{policy_name}",
        family="parking",
        workload=workload_name,
        description=f"E14 {policy_name} on {workload_name} days",
        build=build,
        run=run,
        verify=lambda instance, result: verify_parking(
            instance, list(result.leases)
        ),
        optimum=lambda instance: OptBounds.exactly(
            optimal_interval(instance).cost, method="dp-interval"
        ),
    )


SCENARIOS = {
    (workload_name, policy_name): register(
        _scenario(workload_name, policy_name), replace=True
    )
    for workload_name in workloads()
    for policy_name in POLICIES
}


def build_sweep() -> Sweep:
    sweep = Sweep("E14: primal-dual vs naive policies")
    outcomes = replay([s.name for s in SCENARIOS.values()])
    assert all(outcome.verified for outcome in outcomes)
    by_name = {outcome.scenario: outcome for outcome in outcomes}
    for (workload_name, policy_name), scenario in SCENARIOS.items():
        outcome = by_name[scenario.name]
        sweep.add(
            {"workload": workload_name, "policy": policy_name},
            online_cost=outcome.run.cost,
            opt_cost=outcome.opt.lower,
            bound=(
                float(SCHEDULE.num_types)
                if policy_name == "primal-dual"
                else None
            ),
        )
    return sweep


def _kernel():
    days = workloads()["mixed"]
    algorithm = DeterministicParkingPermit(SCHEDULE)
    for day in days:
        algorithm.on_demand(day)
    return algorithm.cost


def test_e14_heuristic_baselines(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
    ratio = {
        (row.params["workload"], row.params["policy"]): row.ratio
        for row in sweep.rows
    }
    # Each strawman loses clearly on its bad regime; primal-dual does not.
    assert ratio[("bursty", "always-shortest")] > 1.5
    assert ratio[("sparse", "always-longest")] > 1.5
    # Primal-dual's worst ratio across regimes beats each strawman's worst.
    def worst(policy):
        return max(
            value for (w, p), value in ratio.items() if p == policy
        )

    assert worst("primal-dual") <= worst("always-shortest")
    assert worst("primal-dual") <= worst("always-longest")
