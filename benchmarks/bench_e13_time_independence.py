"""E13 — Corollary 5.8: SCLD's ratio is time-independent.

The Chapter 3 bound carries a log n factor (n grows with time); the
Chapter 5 bound replaces it with log lmax.  Holding the set system and
lmax fixed while growing the horizon (and the demand count with it), the
mean ratio should flatten out rather than climb with log(n) — the
measured signature of time independence.
"""

from __future__ import annotations

import math

from repro.analysis import Sweep
from repro.core import LeaseSchedule
from repro.deadlines import DeadlineElement, OnlineSCLD, SCLDInstance
from repro.lp import opt_bounds
from repro.setcover import random_set_system
from repro.workloads import make_rng

COIN_SEEDS = range(6)
NUM_ELEMENTS = 10
NUM_SETS = 8


def build_instance(schedule, horizon, seed):
    rng = make_rng(seed)
    system = random_set_system(NUM_ELEMENTS, NUM_SETS, 3, schedule, rng)
    demands = sorted(
        (
            (rng.randrange(NUM_ELEMENTS), t, 0)
            for t in range(0, horizon, 2)
        ),
        key=lambda d: d[1],
    )
    return SCLDInstance(
        system=system,
        schedule=schedule,
        demands=tuple(DeadlineElement(*d) for d in demands),
    )


def build_sweep() -> Sweep:
    sweep = Sweep("E13: time-independence of SCLD (Corollary 5.8)")
    schedule = LeaseSchedule.power_of_two(2)  # lmax fixed at 2
    m = NUM_SETS
    K = schedule.num_types
    lmax = schedule.lmax
    bound = (
        4.0 * (math.log(m * K) + 2.0) * (2.0 * math.log2(max(2, lmax)) + 3.0)
    )
    for horizon in (16, 32, 64, 128):
        instance = build_instance(schedule, horizon, seed=7)
        opt = opt_bounds(
            instance.to_covering_program(), exact_variable_limit=6000
        )
        costs = []
        for seed in COIN_SEEDS:
            algorithm = OnlineSCLD(instance, seed=seed)
            for demand in instance.demands:
                algorithm.on_demand(demand)
            assert instance.is_feasible_solution(list(algorithm.leases))
            costs.append(algorithm.cost)
        sweep.add(
            {"horizon": horizon, "demands": len(instance.demands)},
            online_cost=sum(costs) / len(costs),
            opt_cost=opt.lower,
            bound=bound,
            note="bound is horizon-free",
        )
    return sweep


def _kernel():
    schedule = LeaseSchedule.power_of_two(2)
    instance = build_instance(schedule, 128, seed=7)
    algorithm = OnlineSCLD(instance, seed=0)
    for demand in instance.demands:
        algorithm.on_demand(demand)
    return algorithm.cost


def test_e13_time_independence(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
    # Shape: the ratio does not keep climbing with the horizon — the last
    # doubling adds less than 35% to the measured ratio.
    ratios = [row.ratio for row in sweep.rows]
    assert ratios[-1] <= 1.35 * ratios[-2] + 1e-9
