"""E13 — Corollary 5.8: SCLD's ratio is time-independent.

The Chapter 3 bound carries a log n factor (n grows with time); the
Chapter 5 bound replaces it with log lmax.  Holding the set system and
lmax fixed while growing the horizon (and the demand count with it), the
mean ratio should flatten out rather than climb with log(n) — the
measured signature of time independence.

Runs on the :mod:`repro.engine` substrate: each horizon is the
registered ``deadline-e13-h*`` scenario — the same fixed set system with
a longer time-shifted demand stream (fixed draw, replay seed = coin
seed), replayed and re-verified by the runner.
"""

from __future__ import annotations

import math

from repro.analysis import Sweep
from repro.core import LeaseSchedule
from repro.deadlines import OnlineSCLD
from repro.engine import get_scenario, replay
from repro.engine.paper import E13_HORIZONS, E13_SCENARIOS

COIN_SEEDS = range(6)
NUM_SETS = 8


def build_sweep() -> Sweep:
    sweep = Sweep("E13: time-independence of SCLD (Corollary 5.8)")
    schedule = LeaseSchedule.power_of_two(2)  # lmax fixed at 2
    bound = (
        4.0
        * (math.log(NUM_SETS * schedule.num_types) + 2.0)
        * (2.0 * math.log2(max(2, schedule.lmax)) + 3.0)
    )
    outcomes = replay(E13_SCENARIOS, seeds=COIN_SEEDS)
    assert all(outcome.verified for outcome in outcomes)
    for horizon, name in zip(E13_HORIZONS, E13_SCENARIOS):
        per_point = [o for o in outcomes if o.scenario == name]
        assert len(per_point) == len(COIN_SEEDS)
        sweep.add(
            {
                "horizon": horizon,
                "demands": per_point[0].run.num_demands,
            },
            online_cost=sum(o.run.cost for o in per_point) / len(per_point),
            opt_cost=per_point[0].opt.lower,
            bound=bound,
            note="bound is horizon-free",
        )
    return sweep


def _kernel():
    instance = get_scenario("deadline-e13-h128").build(0)
    algorithm = OnlineSCLD(instance, seed=0)
    for demand in instance.demands:
        algorithm.on_demand(demand)
    return algorithm.cost


def test_e13_time_independence(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
    # Shape: the ratio does not keep climbing with the horizon — the last
    # doubling adds less than 35% to the measured ratio.
    ratios = [row.ratio for row in sweep.rows]
    assert ratios[-1] <= 1.35 * ratios[-2] + 1e-9
