"""A1 (ablation) — why OLD's Step 2 exists.

The OLD algorithm buys leases at the arrival day (Step 1) *and* mirrors
them at the deadline day (Step 2); the skip rule then relies on those
deadline-day leases to serve intersecting future clients.  This ablation
removes Step 2 (and with it the skip rule's safety) and measures the
infeasibility rate it causes across random workloads — demonstrating the
design choice is load-bearing, not ornamental.
"""

from __future__ import annotations

from repro.analysis import Sweep
from repro.core import LeaseSchedule
from repro.deadlines import make_old_instance, optimal_dp, run_old
from repro.deadlines.old_online import OnlineLeasingWithDeadlines
from repro.workloads import deadline_arrivals, make_rng


class _NoStepTwo(OnlineLeasingWithDeadlines):
    """The OLD algorithm with Step 2 surgically removed."""

    def on_demand(self, client) -> None:
        from repro.deadlines.model import DeadlineClient

        if not isinstance(client, DeadlineClient):
            client = DeadlineClient(arrival=client[0], slack=client[1])
        t, deadline = client.arrival, client.deadline
        for earlier_arrival, earlier_deadline in self._positive_deadlines:
            if earlier_arrival < t and t <= earlier_deadline <= deadline:
                self.skipped += 1
                return
        candidates = self.schedule.windows_intersecting(t, deadline)
        slack_of = {
            candidate.key: candidate.cost
            - self._contribution.get(
                (candidate.type_index, candidate.start), 0.0
            )
            for candidate in candidates
        }
        raise_by = max(0.0, min(slack_of.values()))
        self._duals[(t, client.slack)] = raise_by
        if raise_by > 1e-9:
            self._positive_deadlines.append((t, deadline))
        for candidate in candidates:
            key = (candidate.type_index, candidate.start)
            self._contribution[key] = (
                self._contribution.get(key, 0.0) + raise_by
            )
            if self._contribution[key] >= candidate.cost - 1e-9:
                if candidate.covers(t):
                    self.store.buy(candidate)
        # Step 2 deliberately omitted.


def build_sweep() -> Sweep:
    sweep = Sweep("A1: OLD with and without Step 2")
    schedule = LeaseSchedule.power_of_two(3)
    infeasible_without = 0
    runs = 0
    worst_full = (0.0, 1.0)
    for seed in range(12):
        clients = deadline_arrivals(
            150, 0.4, max_slack=8, rng=make_rng(seed)
        )
        if not clients:
            continue
        instance = make_old_instance(schedule, clients).normalized()
        runs += 1
        full = run_old(instance)
        assert instance.is_feasible_solution(list(full.leases))
        opt = optimal_dp(instance)
        if full.cost / opt > worst_full[0] / worst_full[1]:
            worst_full = (full.cost, opt)
        ablated = _NoStepTwo(schedule)
        for client in instance.clients:
            ablated.on_demand(client)
        if not instance.is_feasible_solution(list(ablated.leases)):
            infeasible_without += 1
    sweep.add(
        {"variant": "full (Step 1 + Step 2)"},
        online_cost=worst_full[0],
        opt_cost=worst_full[1],
        bound=2.0 * schedule.num_types + 8.0 / schedule.lmin + 2.0,
        note=f"feasible {runs}/{runs}",
    )
    sweep.add(
        {"variant": "ablated (no Step 2)"},
        online_cost=0.0,
        opt_cost=1.0,
        note=f"INFEASIBLE on {infeasible_without}/{runs} runs",
    )
    sweep.detail = (runs, infeasible_without)  # type: ignore[attr-defined]
    return sweep


def _kernel():
    schedule = LeaseSchedule.power_of_two(3)
    clients = deadline_arrivals(150, 0.4, max_slack=8, rng=make_rng(0))
    instance = make_old_instance(schedule, clients).normalized()
    return run_old(instance).cost


def test_a01_old_step2_ablation(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    runs, infeasible_without = sweep.detail
    # The ablation must break feasibility on a majority of workloads —
    # Step 2 is what the skip rule's correctness rests on.
    assert infeasible_without > runs / 2
