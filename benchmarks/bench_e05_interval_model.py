"""E5 — Lemma 2.6 / Figure 2.3: the interval model costs at most 4x.

Round-trips random general-model instances through the interval-model
reduction and reports (a) OPT_interval / OPT_general <= 2 and (b) the
wrapped algorithm's cost <= 4K * OPT_general — the two halves of the
lemma, measured.
"""

from __future__ import annotations

from repro.analysis import Sweep
from repro.core import IntervalModelReduction, LeaseSchedule, round_schedule
from repro.parking import (
    DeterministicParkingPermit,
    make_instance,
    optimal_general,
    optimal_interval,
)
from repro.workloads import bernoulli_days, make_rng

GENERAL_SCHEDULES = {
    "coarse": [(3, 1.5), (10, 3.0), (21, 5.0)],
    "fine": [(2, 1.0), (5, 1.8), (11, 2.9), (23, 4.4)],
    "steep": [(4, 1.0), (9, 4.0), (30, 12.0)],
}
HORIZON = 120
SEEDS = range(6)


def build_sweep() -> Sweep:
    sweep = Sweep("E5: interval-model reduction overhead (Lemma 2.6)")
    for name, pairs in GENERAL_SCHEDULES.items():
        schedule = LeaseSchedule.from_pairs(pairs)
        rounded = round_schedule(schedule)
        worst_opt_ratio = 0.0
        worst_alg = (0.0, 1.0)
        for seed in SEEDS:
            days = bernoulli_days(HORIZON, 0.2, make_rng(seed))
            if not days:
                continue
            instance = make_instance(schedule, days)
            opt_general = optimal_general(instance).cost
            opt_interval = optimal_interval(
                make_instance(rounded, days)
            ).cost
            worst_opt_ratio = max(
                worst_opt_ratio, opt_interval / opt_general
            )
            reduction = IntervalModelReduction(
                schedule, lambda r: DeterministicParkingPermit(r)
            )
            for day in instance.rainy_days:
                reduction.on_demand(day)
            assert instance.is_feasible_solution(list(reduction.leases))
            if reduction.cost / opt_general > worst_alg[0] / worst_alg[1]:
                worst_alg = (reduction.cost, opt_general)
        sweep.add(
            {"schedule": name, "K": schedule.num_types},
            online_cost=worst_alg[0],
            opt_cost=worst_alg[1],
            bound=4.0 * schedule.num_types,
            note=f"OPT_int/OPT_gen {worst_opt_ratio:.2f} (<=2)",
        )
    return sweep


def _kernel():
    schedule = LeaseSchedule.from_pairs(GENERAL_SCHEDULES["fine"])
    days = bernoulli_days(HORIZON, 0.2, make_rng(0))
    reduction = IntervalModelReduction(
        schedule, lambda r: DeterministicParkingPermit(r)
    )
    for day in days:
        reduction.on_demand(day)
    return reduction.cost


def test_e05_interval_model(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
    # The backward half of the lemma: every note records a <=2 factor.
    for row in sweep.rows:
        measured = float(row.note.split()[1])
        assert measured <= 2.0 + 1e-9
