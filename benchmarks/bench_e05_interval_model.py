"""E5 — Lemma 2.6 / Figure 2.3: the interval model costs at most 4x.

Round-trips random general-model instances through the interval-model
reduction and reports (a) OPT_interval / OPT_general <= 2 and (b) the
wrapped algorithm's cost <= 4K * OPT_general — the two halves of the
lemma, measured.

Runs on the :mod:`repro.engine` substrate: each general schedule is an
ad-hoc scenario whose online run is the reduction-wrapped algorithm and
whose baseline is the exact general-model optimum; the (a) half reuses
the scenario's builder so both halves measure the same instances.
"""

from __future__ import annotations

from repro.analysis import Sweep, verify_parking
from repro.core import (
    IntervalModelReduction,
    LeaseSchedule,
    OptBounds,
    round_schedule,
    run_online,
)
from repro.engine import Scenario, register, replay
from repro.parking import (
    DeterministicParkingPermit,
    make_instance,
    optimal_general,
    optimal_interval,
)
from repro.workloads import bernoulli_days, make_rng

GENERAL_SCHEDULES = {
    "coarse": [(3, 1.5), (10, 3.0), (21, 5.0)],
    "fine": [(2, 1.0), (5, 1.8), (11, 2.9), (23, 4.4)],
    "steep": [(4, 1.0), (9, 4.0), (30, 12.0)],
}
HORIZON = 120
SEEDS = range(6)


def _scenario(name: str, pairs: list[tuple[int, float]]) -> Scenario:
    schedule = LeaseSchedule.from_pairs(pairs)

    def build(seed: int):
        days = bernoulli_days(HORIZON, 0.2, make_rng(seed))
        return make_instance(schedule, days or [0])

    def run(instance, seed: int):
        reduction = IntervalModelReduction(
            schedule, lambda rounded: DeterministicParkingPermit(rounded)
        )
        return run_online(
            reduction, instance.rainy_days, name=f"reduction[{name}]"
        )

    return Scenario(
        name=f"bench-e05-{name}",
        family="parking",
        workload="bernoulli",
        description=f"E5 general schedule {name!r}",
        build=build,
        run=run,
        verify=lambda instance, result: verify_parking(
            instance, list(result.leases)
        ),
        optimum=lambda instance: OptBounds.exactly(
            optimal_general(instance).cost, method="dp-general"
        ),
    )


SCENARIOS = {
    name: register(_scenario(name, pairs), replace=True)
    for name, pairs in GENERAL_SCHEDULES.items()
}


def build_sweep() -> Sweep:
    sweep = Sweep("E5: interval-model reduction overhead (Lemma 2.6)")
    outcomes = replay([s.name for s in SCENARIOS.values()], seeds=SEEDS)
    assert all(outcome.verified for outcome in outcomes)
    for name, scenario in SCENARIOS.items():
        schedule = LeaseSchedule.from_pairs(GENERAL_SCHEDULES[name])
        rounded = round_schedule(schedule)
        per_schedule = [o for o in outcomes if o.scenario == scenario.name]
        worst = max(per_schedule, key=lambda outcome: outcome.ratio)
        worst_opt_ratio = 0.0
        for outcome in per_schedule:
            instance = scenario.build(outcome.seed)
            opt_interval = optimal_interval(
                make_instance(rounded, list(instance.rainy_days))
            ).cost
            worst_opt_ratio = max(
                worst_opt_ratio, opt_interval / outcome.opt.lower
            )
        sweep.add(
            {"schedule": name, "K": schedule.num_types},
            online_cost=worst.run.cost,
            opt_cost=worst.opt.lower,
            bound=4.0 * schedule.num_types,
            note=f"OPT_int/OPT_gen {worst_opt_ratio:.2f} (<=2)",
        )
    return sweep


def _kernel():
    schedule = LeaseSchedule.from_pairs(GENERAL_SCHEDULES["fine"])
    days = bernoulli_days(HORIZON, 0.2, make_rng(0))
    reduction = IntervalModelReduction(
        schedule, lambda r: DeterministicParkingPermit(r)
    )
    for day in days:
        reduction.on_demand(day)
    return reduction.cost


def test_e05_interval_model(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
    # The backward half of the lemma: every note records a <=2 factor.
    for row in sweep.rows:
        measured = float(row.note.split()[1])
        assert measured <= 2.0 + 1e-9
