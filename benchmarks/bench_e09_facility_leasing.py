"""E9 — Theorem 4.5 / Corollaries 4.6-4.7: facility leasing vs arrivals.

Runs the two-phase algorithm on the four arrival patterns the thesis
distinguishes — constant, non-increasing, polynomial, exponential — and
reports ratio against the exact MILP optimum next to the pattern's
4(3+K) H_lmax bound.  Claims: every ratio below its bound; the 'natural'
patterns have small H (log lmax), exponential arrivals have the largest H
(the conjectured-hard regime).

Runs on the :mod:`repro.engine` substrate: each pattern is the
registered ``facility-e09-*`` scenario (fixed instance; the two-phase
algorithm is deterministic), replayed and re-verified by the runner.
"""

from __future__ import annotations

from repro.analysis import Sweep
from repro.core import LeaseSchedule
from repro.engine import get_scenario, replay
from repro.engine.paper import E09_PATTERNS, E09_SCENARIOS, e09_batches
from repro.facility import (
    harmonic_series,
    run_facility_leasing,
    theoretical_bound,
)


def build_sweep() -> Sweep:
    sweep = Sweep("E9: facility leasing by arrival pattern (Theorem 4.5)")
    schedule = LeaseSchedule.power_of_two(3)
    outcomes = replay(E09_SCENARIOS, seeds=[0])
    assert all(outcome.verified for outcome in outcomes)
    by_name = {outcome.scenario: outcome for outcome in outcomes}
    for pattern, name in zip(E09_PATTERNS, E09_SCENARIOS):
        outcome = by_name[name]
        batches = e09_batches(pattern)
        sweep.add(
            {
                "pattern": pattern,
                "clients": outcome.run.num_demands,
                "H": round(harmonic_series(batches), 2),
            },
            online_cost=outcome.run.cost,
            opt_cost=outcome.opt.lower,
            bound=theoretical_bound(schedule, batches),
            note=(
                f"lease {outcome.run.detail['leasing_cost']:.0f} + "
                f"conn {outcome.run.detail['connection_cost']:.0f}"
            ),
        )
    return sweep


def _kernel():
    instance = get_scenario("facility-e09-constant").build(0)
    return run_facility_leasing(instance).cost


def test_e09_facility_leasing(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
    # Shape: exponential arrivals have the largest H of the four patterns.
    h_values = {row.params["pattern"]: row.params["H"] for row in sweep.rows}
    assert h_values["exponential"] >= max(
        h_values["constant"], h_values["nonincreasing"], h_values["polynomial"]
    )
