"""E9 — Theorem 4.5 / Corollaries 4.6-4.7: facility leasing vs arrivals.

Runs the two-phase algorithm on the four arrival patterns the thesis
distinguishes — constant, non-increasing, polynomial, exponential — and
reports ratio against the exact MILP optimum next to the pattern's
4(3+K) H_lmax bound.  Claims: every ratio below its bound; the 'natural'
patterns have small H (log lmax), exponential arrivals have the largest H
(the conjectured-hard regime).
"""

from __future__ import annotations

from repro.analysis import Sweep
from repro.core import LeaseSchedule
from repro.facility import (
    harmonic_series,
    make_instance,
    optimum,
    run_facility_leasing,
    theoretical_bound,
)
from repro.workloads import (
    constant_batches,
    exponential_batches,
    make_rng,
    nonincreasing_batches,
    polynomial_batches,
)

STEPS = 8
NUM_FACILITIES = 4


def patterns(rng):
    return {
        "constant": constant_batches(STEPS, 2),
        "nonincreasing": nonincreasing_batches(STEPS, 6, rng),
        "polynomial": [min(size, 12) for size in polynomial_batches(STEPS, 1)],
        "exponential": [min(size, 24) for size in exponential_batches(6)],
    }


def build_sweep() -> Sweep:
    sweep = Sweep("E9: facility leasing by arrival pattern (Theorem 4.5)")
    schedule = LeaseSchedule.power_of_two(3)
    for name, batches in patterns(make_rng(5)).items():
        instance = make_instance(
            schedule,
            num_facilities=NUM_FACILITIES,
            batch_sizes=batches,
            rng=make_rng(42),
        )
        algorithm = run_facility_leasing(instance)
        assert instance.is_feasible_solution(
            list(algorithm.leases), algorithm.connections
        )
        opt = optimum(instance)
        sweep.add(
            {
                "pattern": name,
                "clients": instance.num_clients,
                "H": round(harmonic_series(batches), 2),
            },
            online_cost=algorithm.cost,
            opt_cost=opt.lower,
            bound=theoretical_bound(schedule, batches),
            note=(
                f"lease {algorithm.leasing_cost:.0f} + "
                f"conn {algorithm.connection_cost:.0f}"
            ),
        )
    return sweep


def _kernel():
    schedule = LeaseSchedule.power_of_two(3)
    instance = make_instance(
        schedule,
        num_facilities=NUM_FACILITIES,
        batch_sizes=constant_batches(STEPS, 2),
        rng=make_rng(42),
    )
    return run_facility_leasing(instance).cost


def test_e09_facility_leasing(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
    # Shape: exponential arrivals have the largest H of the four patterns.
    h_values = {row.params["pattern"]: row.params["H"] for row in sweep.rows}
    assert h_values["exponential"] >= max(
        h_values["constant"], h_values["nonincreasing"], h_values["polynomial"]
    )
