"""E12 — Theorem 5.7: SCLD is O(log(m(K + dmax/lmin)) log lmax).

Sweeps the slack budget and the schedule size on random set systems with
deadline demands, measuring mean ratios against the exact Figure 5.4 ILP.
Claims: all ratios below the explicit-constant bound, and slack helps
(OPT falls as slack grows while the algorithm keeps pace).
"""

from __future__ import annotations

import math

from repro.analysis import Sweep
from repro.core import LeaseSchedule
from repro.deadlines import DeadlineElement, OnlineSCLD, SCLDInstance
from repro.lp import opt_bounds
from repro.setcover import random_set_system
from repro.workloads import make_rng

COIN_SEEDS = range(6)
NUM_ELEMENTS = 12
NUM_SETS = 8
HORIZON = 32
NUM_DEMANDS = 24


def build_instance(schedule, max_slack, seed):
    rng = make_rng(seed)
    system = random_set_system(
        NUM_ELEMENTS, NUM_SETS, 3, schedule, rng
    )
    raw = sorted(
        (
            (
                rng.randrange(NUM_ELEMENTS),
                rng.randrange(HORIZON),
                rng.randint(0, max_slack),
            )
            for _ in range(NUM_DEMANDS)
        ),
        key=lambda d: d[1],
    )
    return SCLDInstance(
        system=system,
        schedule=schedule,
        demands=tuple(DeadlineElement(*d) for d in raw),
    )


def bound_for(instance, max_slack) -> float:
    m = instance.system.num_sets
    K = instance.schedule.num_types
    lmin = instance.schedule.lmin
    lmax = instance.schedule.lmax
    return (
        4.0
        * (math.log(m * (K + max(1, max_slack) / lmin)) + 2.0)
        * (2.0 * math.log2(max(2, lmax)) + 3.0)
    )


def measure(instance):
    opt = opt_bounds(instance.to_covering_program())
    costs = []
    for seed in COIN_SEEDS:
        algorithm = OnlineSCLD(instance, seed=seed)
        for demand in instance.demands:
            algorithm.on_demand(demand)
        assert instance.is_feasible_solution(list(algorithm.leases))
        costs.append(algorithm.cost)
    return sum(costs) / len(costs), opt.lower


def build_sweep() -> Sweep:
    sweep = Sweep("E12: SCLD mean ratio (Theorem 5.7)")
    schedule = LeaseSchedule.power_of_two(2)
    for max_slack in (0, 2, 6, 12):
        instance = build_instance(schedule, max_slack, seed=max_slack)
        mean_cost, opt = measure(instance)
        sweep.add(
            {"sweep": "dmax", "dmax": max_slack, "K": 2},
            online_cost=mean_cost,
            opt_cost=opt,
            bound=bound_for(instance, max_slack),
        )
    for num_types in (1, 2, 3):
        schedule_k = LeaseSchedule.power_of_two(num_types)
        instance = build_instance(schedule_k, 4, seed=50 + num_types)
        mean_cost, opt = measure(instance)
        sweep.add(
            {"sweep": "K", "dmax": 4, "K": num_types},
            online_cost=mean_cost,
            opt_cost=opt,
            bound=bound_for(instance, 4),
        )
    return sweep


def _kernel():
    schedule = LeaseSchedule.power_of_two(3)
    instance = build_instance(schedule, 6, seed=0)
    algorithm = OnlineSCLD(instance, seed=0)
    for demand in instance.demands:
        algorithm.on_demand(demand)
    return algorithm.cost


def test_e12_scld(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
