"""E12 — Theorem 5.7: SCLD is O(log(m(K + dmax/lmin)) log lmax).

Sweeps the slack budget and the schedule size on random set systems with
deadline demands, measuring mean ratios against the exact Figure 5.4 ILP.
Claims: all ratios below the explicit-constant bound, and slack helps
(OPT falls as slack grows while the algorithm keeps pace).

Runs on the :mod:`repro.engine` substrate: each sweep point is the
registered ``deadline-e12-*`` scenario (fixed instance draw, replay
seed = threshold coin seed), replayed and re-verified by the runner
against the Figure 5.4 ILP.
"""

from __future__ import annotations

import math

from repro.analysis import Sweep
from repro.core import LeaseSchedule
from repro.deadlines import OnlineSCLD, random_scld_instance
from repro.engine import get_scenario, replay
from repro.engine.paper import E12_POINTS, E12_SCENARIOS
from repro.workloads import make_rng

COIN_SEEDS = range(6)


def bound_for(instance, max_slack) -> float:
    m = instance.system.num_sets
    K = instance.schedule.num_types
    lmin = instance.schedule.lmin
    lmax = instance.schedule.lmax
    return (
        4.0
        * (math.log(m * (K + max(1, max_slack) / lmin)) + 2.0)
        * (2.0 * math.log2(max(2, lmax)) + 3.0)
    )


def build_sweep() -> Sweep:
    sweep = Sweep("E12: SCLD mean ratio (Theorem 5.7)")
    outcomes = replay(E12_SCENARIOS, seeds=COIN_SEEDS)
    assert all(outcome.verified for outcome in outcomes)
    for (tag, params), name in zip(E12_POINTS, E12_SCENARIOS):
        instance = get_scenario(name).build(0)
        per_point = [o for o in outcomes if o.scenario == name]
        assert len(per_point) == len(COIN_SEEDS)
        sweep.add(
            {
                "sweep": "dmax" if tag.startswith("d") else "K",
                "dmax": params["max_slack"],
                "K": params["num_types"],
            },
            online_cost=sum(o.run.cost for o in per_point) / len(per_point),
            opt_cost=per_point[0].opt.lower,
            bound=bound_for(instance, params["max_slack"]),
        )
    return sweep


def _kernel():
    schedule = LeaseSchedule.power_of_two(3)
    instance = random_scld_instance(
        schedule, num_elements=12, num_sets=8, memberships=3,
        horizon=32, num_demands=24, max_slack=6, rng=make_rng(0),
    )
    algorithm = OnlineSCLD(instance, seed=0)
    for demand in instance.demands:
        algorithm.on_demand(demand)
    return algorithm.cost


def test_e12_scld(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
