"""E15 (extension) — prediction-augmented leasing vs oracle error.

The thesis' stochastic-demands outlook (Sections 3.5/5.6), in the modern
algorithms-with-predictions framing: sweep the oracle error rate from
clairvoyant to inverted and measure follow-the-prediction, its hedged
variant, and the prediction-free primal-dual algorithm.  Expected shape:
at error 0 the forecast policies approach OPT and beat primal-dual; as
error grows, the pure policy degrades past primal-dual while the hedged
variant's ratio stays capped.
"""

from __future__ import annotations

from repro.analysis import Sweep
from repro.core import LeaseSchedule, run_online
from repro.extensions import (
    ForecastParkingPermit,
    HedgedForecastParkingPermit,
    NoisyOracle,
)
from repro.parking import (
    DeterministicParkingPermit,
    make_instance,
    optimal_interval,
)
from repro.workloads import burst_days, make_rng

ERROR_RATES = (0.0, 0.1, 0.25, 0.5, 1.0)
SEEDS = range(6)


def build_sweep() -> Sweep:
    sweep = Sweep("E15: predictions vs error rate (stochastic outlook)")
    schedule = LeaseSchedule.power_of_two(4, cost_growth=1.5)
    days = burst_days(240, 5, 12, make_rng(4))
    instance = make_instance(schedule, days)
    opt = optimal_interval(instance).cost

    primal_dual = DeterministicParkingPermit(schedule)
    run_online(primal_dual, instance.rainy_days)
    primal_dual_ratio = primal_dual.cost / opt

    for error in ERROR_RATES:
        pure_costs, hedged_costs = [], []
        for seed in SEEDS:
            oracle = NoisyOracle(instance, error, make_rng(1000 + seed))
            pure = ForecastParkingPermit(schedule, oracle)
            run_online(pure, instance.rainy_days)
            assert instance.is_feasible_solution(list(pure.leases))
            pure_costs.append(pure.cost)

            oracle2 = NoisyOracle(instance, error, make_rng(1000 + seed))
            hedged = HedgedForecastParkingPermit(
                schedule, oracle2, hedge=1.0
            )
            run_online(hedged, instance.rainy_days)
            assert instance.is_feasible_solution(list(hedged.leases))
            hedged_costs.append(hedged.cost)
        sweep.add(
            {"error": error, "policy": "pure"},
            online_cost=sum(pure_costs) / len(pure_costs),
            opt_cost=opt,
            note=f"primal-dual ratio {primal_dual_ratio:.2f}",
        )
        sweep.add(
            {"error": error, "policy": "hedged"},
            online_cost=sum(hedged_costs) / len(hedged_costs),
            opt_cost=opt,
        )
    return sweep


def _kernel():
    schedule = LeaseSchedule.power_of_two(4, cost_growth=1.5)
    days = burst_days(240, 5, 12, make_rng(4))
    instance = make_instance(schedule, days)
    oracle = NoisyOracle(instance, 0.25, make_rng(1))
    policy = HedgedForecastParkingPermit(schedule, oracle)
    for day in instance.rainy_days:
        policy.on_demand(day)
    return policy.cost


def test_e15_forecast(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    ratio = {
        (row.params["error"], row.params["policy"]): row.ratio
        for row in sweep.rows
    }
    # Clairvoyant predictions are near-optimal...
    assert ratio[(0.0, "pure")] <= 1.6
    # ...and degrade as errors grow.
    assert ratio[(1.0, "pure")] >= ratio[(0.0, "pure")]
    # Hedging tracks the pure policy closely here (the hard cap only
    # binds on dense-rain windows — unit-tested in
    # tests/extensions/test_forecast.py); it must not cost materially
    # more at any error level.
    for error in ERROR_RATES:
        assert ratio[(error, "hedged")] <= 1.05 * ratio[(error, "pure")]
