"""E15 (extension) — prediction-augmented leasing vs oracle error.

The thesis' stochastic-demands outlook (Sections 3.5/5.6), in the modern
algorithms-with-predictions framing: sweep the oracle error rate from
clairvoyant to inverted and measure follow-the-prediction, its hedged
variant, and the prediction-free primal-dual algorithm.  Expected shape:
at error 0 the forecast policies approach OPT and beat primal-dual; as
error grows, the pure policy degrades past primal-dual while the hedged
variant's ratio stays capped.

Runs on the :mod:`repro.engine` substrate: every (policy, error) pair is
a registered ``forecast-*`` scenario on one fixed bursty instance, with
the replay seed seeding the oracle's noise — the whole grid plus the
``forecast-primal-dual`` baseline flows through ``runner.replay`` with
per-run feasibility verification.
"""

from __future__ import annotations

from repro.analysis import Sweep
from repro.engine import get_scenario, replay
from repro.engine.paper import (
    E15_BASELINE_SCENARIO,
    E15_ERRORS,
    E15_HEDGED_SCENARIOS,
    E15_PURE_SCENARIOS,
)
from repro.extensions import HedgedForecastParkingPermit, NoisyOracle
from repro.workloads import make_rng

SEEDS = range(6)


def build_sweep() -> Sweep:
    sweep = Sweep("E15: predictions vs error rate (stochastic outlook)")
    outcomes = replay(
        E15_PURE_SCENARIOS + E15_HEDGED_SCENARIOS, seeds=SEEDS
    )
    assert all(outcome.verified for outcome in outcomes)
    (baseline,) = replay([E15_BASELINE_SCENARIO], seeds=[0])
    assert baseline.verified
    primal_dual_ratio = baseline.run.cost / baseline.opt.lower

    for error, pure_name, hedged_name in zip(
        E15_ERRORS, E15_PURE_SCENARIOS, E15_HEDGED_SCENARIOS
    ):
        pure = [o for o in outcomes if o.scenario == pure_name]
        hedged = [o for o in outcomes if o.scenario == hedged_name]
        assert len(pure) == len(hedged) == len(SEEDS)
        opt = pure[0].opt.lower
        sweep.add(
            {"error": error, "policy": "pure"},
            online_cost=sum(o.run.cost for o in pure) / len(pure),
            opt_cost=opt,
            note=f"primal-dual ratio {primal_dual_ratio:.2f}",
        )
        sweep.add(
            {"error": error, "policy": "hedged"},
            online_cost=sum(o.run.cost for o in hedged) / len(hedged),
            opt_cost=opt,
        )
    return sweep


def _kernel():
    instance = get_scenario("forecast-hedged-e25").build(0)
    oracle = NoisyOracle(instance, 0.25, make_rng(1))
    policy = HedgedForecastParkingPermit(instance.schedule, oracle)
    for day in instance.rainy_days:
        policy.on_demand(day)
    return policy.cost


def test_e15_forecast(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    ratio = {
        (row.params["error"], row.params["policy"]): row.ratio
        for row in sweep.rows
    }
    # Clairvoyant predictions are near-optimal...
    assert ratio[(0.0, "pure")] <= 1.6
    # ...and degrade as errors grow.
    assert ratio[(1.0, "pure")] >= ratio[(0.0, "pure")]
    # Hedging tracks the pure policy closely here (the hard cap only
    # binds on dense-rain windows — unit-tested in
    # tests/extensions/test_forecast.py); it must not cost materially
    # more at any error level.
    for error in E15_ERRORS:
        assert ratio[(error, "hedged")] <= 1.05 * ratio[(error, "pure")]
