"""A2 (ablation) — the 2*ceil(log2(n+1)) threshold draws of Algorithm 3.

Lemma 3.2 sets each triple's threshold to the *minimum* of
``2 ceil(log2(n+1))`` uniforms so the fallback (cheapest-candidate
purchase after failed rounding) fires with probability <= 1/n^2.  This
ablation sweeps the number of draws: with one draw the fallback fires
often (and cost concentrates there); with the prescribed count it is
rare, at the price of buying more sets per demand.  The measured
fallback rate justifies the constant.
"""

from __future__ import annotations

from repro.analysis import Sweep
from repro.core import LeaseSchedule, run_online
from repro.setcover import (
    OnlineSetMulticoverLeasing,
    optimum,
    random_instance,
)
from repro.workloads import make_rng

COIN_SEEDS = range(10)


def build_sweep() -> Sweep:
    sweep = Sweep("A2: threshold draw count ablation (Lemma 3.2)")
    instance = random_instance(
        num_elements=20,
        num_sets=12,
        memberships=3,
        schedule=LeaseSchedule.power_of_two(2),
        horizon=30,
        num_demands=40,
        rng=make_rng(3),
        max_coverage=2,
    )
    opt = optimum(instance)
    import math

    prescribed = 2 * math.ceil(math.log2(instance.system.num_elements + 1))
    for draws in (1, 2, prescribed, 2 * prescribed):
        costs, fallbacks = [], 0
        for seed in COIN_SEEDS:
            algorithm = OnlineSetMulticoverLeasing(
                instance, seed=seed, num_threshold_draws=draws
            )
            run_online(algorithm, instance.demands)
            assert instance.is_feasible_solution(list(algorithm.leases))
            costs.append(algorithm.cost)
            fallbacks += algorithm.fallback_purchases
        sweep.add(
            {
                "draws": draws,
                "prescribed": draws == prescribed,
            },
            online_cost=sum(costs) / len(costs),
            opt_cost=opt.lower,
            note=f"{fallbacks} fallbacks / {len(COIN_SEEDS)} runs",
        )
    return sweep


def _kernel():
    instance = random_instance(
        num_elements=20,
        num_sets=12,
        memberships=3,
        schedule=LeaseSchedule.power_of_two(2),
        horizon=30,
        num_demands=40,
        rng=make_rng(3),
        max_coverage=2,
    )
    algorithm = OnlineSetMulticoverLeasing(instance, seed=0)
    for demand in instance.demands:
        algorithm.on_demand(demand)
    return algorithm.cost


def test_a02_threshold_draws(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    fallback_counts = [
        int(row.note.split()[0]) for row in sweep.rows
    ]
    # More draws -> fewer fallbacks, and the prescribed count already
    # drives them (near) zero.
    assert fallback_counts[0] >= fallback_counts[-1]
    prescribed_row = next(
        row for row in sweep.rows if row.params["prescribed"]
    )
    assert int(prescribed_row.note.split()[0]) <= 2
