"""E4 — Theorem 2.9: the recursive random instance family.

Samples instances from the hard distribution (active sub-interval i with
probability 2^{1-i}, costs doubling per level) and measures the expected
ratio of both the deterministic and the randomized algorithm.  The
paper's claim: expected ratio grows with K (Omega(log K) for any
algorithm); the measured means should rise monotonically-ish with K and
stay super-constant.
"""

from __future__ import annotations

import statistics

from repro.analysis import Sweep
from repro.parking import (
    DeterministicParkingPermit,
    RandomizedParkingPermit,
    optimal_general,
    sample_randomized_lower_bound,
)
from repro.workloads import make_rng

INSTANCE_SEEDS = range(30)
BRANCHING = 8


def mean_ratio(num_types: int, algorithm_factory) -> tuple[float, float, float]:
    ratios = []
    total_cost = total_opt = 0.0
    for seed in INSTANCE_SEEDS:
        instance = sample_randomized_lower_bound(
            num_types, make_rng(seed), branching=BRANCHING
        )
        algorithm = algorithm_factory(instance.schedule, seed)
        for day in instance.rainy_days:
            algorithm.on_demand(day)
        opt = optimal_general(instance).cost
        ratios.append(algorithm.cost / opt)
        total_cost += algorithm.cost
        total_opt += opt
    return statistics.fmean(ratios), total_cost, total_opt


def build_sweep() -> Sweep:
    sweep = Sweep("E4: randomized lower-bound distribution (Theorem 2.9)")
    for num_types in (2, 3, 4, 5):
        det_mean, det_cost, det_opt = mean_ratio(
            num_types, lambda schedule, seed: DeterministicParkingPermit(schedule)
        )
        rand_mean, _, _ = mean_ratio(
            num_types,
            lambda schedule, seed: RandomizedParkingPermit(schedule, seed=seed),
        )
        sweep.add(
            {"K": num_types},
            online_cost=det_cost,
            opt_cost=det_opt,
            note=f"det E[ratio] {det_mean:.2f}, rand E[ratio] {rand_mean:.2f}",
        )
    return sweep


def _kernel():
    instance = sample_randomized_lower_bound(
        5, make_rng(0), branching=BRANCHING
    )
    algorithm = DeterministicParkingPermit(instance.schedule)
    for day in instance.rainy_days:
        algorithm.on_demand(day)
    return algorithm.cost


def test_e04_lower_bound_randomized(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    ratios = [row.ratio for row in sweep.rows]
    # Shape: the aggregate det ratio exceeds 1 and does not shrink with K.
    assert all(ratio > 1.05 for ratio in ratios)
    assert ratios[-1] >= ratios[0] - 0.05
