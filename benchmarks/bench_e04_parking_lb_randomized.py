"""E4 — Theorem 2.9: the recursive random instance family.

Samples instances from the hard distribution (active sub-interval i with
probability 2^{1-i}, costs doubling per level) and measures the expected
ratio of both the deterministic and the randomized algorithm.  The
paper's claim: expected ratio grows with K (Omega(log K) for any
algorithm); the measured means should rise monotonically-ish with K and
stay super-constant.

Runs on the :mod:`repro.engine` scenario/replay substrate (the E2
pattern): per K, *two* ad-hoc scenarios — deterministic and randomized —
whose ``build`` draws the instance from the hard distribution under the
replay seed, so the seed sweep is the Monte-Carlo sample.  For the
randomized scenario the replay seed doubles as the coin seed, exactly
as the pre-port code passed the instance seed to
:class:`RandomizedParkingPermit`.  Every (K, variant, seed) job flows
through ``runner.replay`` — which also re-verifies feasibility per run —
and the expected ratios are means over each scenario's outcomes.
"""

from __future__ import annotations

import statistics

from repro.analysis import Sweep, verify_parking
from repro.core import OptBounds, run_online
from repro.engine import Scenario, register, replay
from repro.parking import (
    DeterministicParkingPermit,
    RandomizedParkingPermit,
    optimal_general,
    sample_randomized_lower_bound,
)
from repro.workloads import make_rng

INSTANCE_SEEDS = range(30)
BRANCHING = 8
NUM_TYPES = (2, 3, 4, 5)


def _scenario(num_types: int, randomized: bool) -> Scenario:
    def build(seed: int):
        return sample_randomized_lower_bound(
            num_types, make_rng(seed), branching=BRANCHING
        )

    def run(instance, seed: int):
        if randomized:
            algorithm = RandomizedParkingPermit(instance.schedule, seed=seed)
        else:
            algorithm = DeterministicParkingPermit(instance.schedule)
        return run_online(
            algorithm,
            instance.rainy_days,
            name=f"{'rand' if randomized else 'det'} K={num_types}",
        )

    variant = "rand" if randomized else "det"
    return Scenario(
        name=f"bench-e04-{variant}-K{num_types}",
        family="parking",
        workload="adversarial",
        description=(
            f"E4 sweep point, K={num_types}, {variant} "
            "(seed = instance draw, and coin seed when randomized)"
        ),
        build=build,
        run=run,
        verify=lambda instance, result: verify_parking(
            instance, list(result.leases)
        ),
        optimum=lambda instance: OptBounds.exactly(
            optimal_general(instance).cost, method="dp-general"
        ),
    )


DET_SCENARIOS = tuple(
    register(_scenario(num_types, randomized=False), replace=True)
    for num_types in NUM_TYPES
)
RAND_SCENARIOS = tuple(
    register(_scenario(num_types, randomized=True), replace=True)
    for num_types in NUM_TYPES
)


def build_sweep() -> Sweep:
    sweep = Sweep("E4: randomized lower-bound distribution (Theorem 2.9)")
    names = [s.name for s in DET_SCENARIOS] + [s.name for s in RAND_SCENARIOS]
    outcomes = replay(names, seeds=INSTANCE_SEEDS)
    assert all(outcome.verified for outcome in outcomes)
    by_scenario: dict[str, list] = {}
    for outcome in outcomes:
        by_scenario.setdefault(outcome.scenario, []).append(outcome)
    for num_types, det, rand in zip(NUM_TYPES, DET_SCENARIOS, RAND_SCENARIOS):
        det_runs = by_scenario[det.name]
        rand_runs = by_scenario[rand.name]
        assert len(det_runs) == len(rand_runs) == len(INSTANCE_SEEDS)
        det_mean = statistics.fmean(o.ratio for o in det_runs)
        rand_mean = statistics.fmean(o.ratio for o in rand_runs)
        sweep.add(
            {"K": num_types},
            online_cost=sum(o.run.cost for o in det_runs),
            opt_cost=sum(o.opt.lower for o in det_runs),
            note=f"det E[ratio] {det_mean:.2f}, rand E[ratio] {rand_mean:.2f}",
        )
    return sweep


def _kernel():
    instance = sample_randomized_lower_bound(
        5, make_rng(0), branching=BRANCHING
    )
    algorithm = DeterministicParkingPermit(instance.schedule)
    for day in instance.rainy_days:
        algorithm.on_demand(day)
    return algorithm.cost


def test_e04_lower_bound_randomized(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    ratios = [row.ratio for row in sweep.rows]
    # Shape: the aggregate det ratio exceeds 1 and does not shrink with K.
    assert all(ratio > 1.05 for ratio in ratios)
    assert ratios[-1] >= ratios[0] - 0.05
