"""P1 — broker throughput: >=100k acquire/release events in one run.

The perf-trajectory baseline for the serving layer.  A synthetic
round-robin tenant/resource stream drives :class:`repro.engine.LeaseBroker`
end to end — policy demand, lease purchase, grant bookkeeping, heap
expiry — and the run records events/sec.  The expiry-heap index is what
makes this linear: an O(n)-scan-per-event broker would replay this trace
three orders of magnitude slower (sub-1k events/sec at this size), so the
rate floor doubles as a complexity regression guard.
"""

from __future__ import annotations

import time

from repro.core import LeaseSchedule
from repro.engine import LeaseBroker
from repro.engine.events import Acquire, Release, Tick

NUM_DAYS = 50_000
NUM_TENANTS = 8
NUM_RESOURCES = 16
MIN_EVENTS = 100_000
MIN_EVENTS_PER_SEC = 2_000  # ~30x below measured; trips only on O(n) scans


def make_events() -> list:
    """Two events per day: release yesterday's grant, acquire today's."""
    events: list = [Tick(time=0)]
    for day in range(NUM_DAYS):
        if day:
            events.append(
                Release(
                    time=day,
                    tenant=f"tenant-{(day - 1) % NUM_TENANTS}",
                    resource=(day - 1) % NUM_RESOURCES,
                )
            )
        events.append(
            Acquire(
                time=day,
                tenant=f"tenant-{day % NUM_TENANTS}",
                resource=day % NUM_RESOURCES,
            )
        )
    return events


def _run(events) -> tuple[LeaseBroker, float]:
    broker = LeaseBroker(LeaseSchedule.power_of_two(4, cost_growth=1.7))
    start = time.perf_counter()
    for event in events:
        broker.handle(event)
    return broker, time.perf_counter() - start


def test_p01_broker_throughput(benchmark):
    events = make_events()
    assert len(events) >= MIN_EVENTS

    broker, elapsed = _run(events)
    benchmark.pedantic(lambda: _run(events), rounds=1, iterations=1)

    stats = broker.stats
    assert stats.events == len(events)
    assert stats.acquires == NUM_DAYS
    assert stats.releases + stats.noop_releases + stats.expirations >= NUM_DAYS - 1
    rate = stats.events / elapsed
    print()
    print(
        f"P1: {stats.events:,} broker events in {elapsed:.2f}s "
        f"= {rate:,.0f} events/sec "
        f"({len(broker.leases):,} leases, cost {broker.cost:,.0f})"
    )
    assert rate >= MIN_EVENTS_PER_SEC, (
        f"{rate:,.0f} events/sec — broker has regressed to superlinear "
        "per-event work (expiry index broken?)"
    )


if __name__ == "__main__":  # standalone: python benchmarks/bench_p01_....py
    events = make_events()
    broker, elapsed = _run(events)
    print(
        f"{broker.stats.events:,} events in {elapsed:.2f}s = "
        f"{broker.stats.events / elapsed:,.0f} events/sec"
    )
