"""P1 — broker throughput: >=100k acquire/release events in one run.

The perf-trajectory benchmark for the serving layer.  A synthetic
round-robin tenant/resource stream (:func:`repro.engine.perf.p01_trace`,
the same stream ``benchmarks/perf.py`` measures and gates) drives
:class:`repro.engine.LeaseBroker` end to end — policy demand, lease
purchase, grant bookkeeping, heap expiry — and the run records
events/sec.  The expiry-heap index plus the coverage-horizon fast path
are what make this linear: an O(n)-scan-per-event broker would replay
this trace three orders of magnitude slower, so the rate floor doubles
as a complexity regression guard.  The committed trajectory lives in
``benchmarks/BENCH_p01_broker.json``; standalone runs can emit the same
machine-readable record with ``--json``::

    PYTHONPATH=src python benchmarks/bench_p01_broker_throughput.py \\
        --json p01.json --mode full
"""

from __future__ import annotations

import time

from repro.core import LeaseSchedule
from repro.engine import LeaseBroker, replay_trace
from repro.engine.perf import p01_trace

NUM_DAYS = 50_000
MIN_EVENTS = 100_000
# ~30x below the post-coverage-caching rate (~300k/s on a 1-cpu
# container); trips on a return to O(n) scans or a lost fast path, not
# on machine noise.
MIN_EVENTS_PER_SEC = 10_000


def make_events() -> list:
    """Two events per day: release yesterday's grant, acquire today's."""
    return p01_trace(NUM_DAYS)


def _run(events) -> tuple[LeaseBroker, float]:
    broker = LeaseBroker(LeaseSchedule.power_of_two(4, cost_growth=1.7))
    start = time.perf_counter()
    replay_trace(broker, events)
    return broker, time.perf_counter() - start


def test_p01_broker_throughput(benchmark):
    events = make_events()
    assert len(events) >= MIN_EVENTS

    broker, elapsed = _run(events)
    benchmark.pedantic(lambda: _run(events), rounds=1, iterations=1)

    stats = broker.stats
    assert stats.events == len(events)
    assert stats.acquires == NUM_DAYS
    assert stats.releases + stats.noop_releases + stats.expirations >= NUM_DAYS - 1
    rate = stats.events / elapsed
    print()
    print(
        f"P1: {stats.events:,} broker events in {elapsed:.2f}s "
        f"= {rate:,.0f} events/sec "
        f"({len(broker.leases):,} leases, cost {broker.cost:,.0f})"
    )
    assert rate >= MIN_EVENTS_PER_SEC, (
        f"{rate:,.0f} events/sec — broker has regressed to superlinear "
        "per-event work (expiry index or coverage fast path broken?)"
    )


def main(argv: list[str] | None = None) -> int:
    """Standalone entry: print the rate, optionally dump the JSON record."""
    import argparse

    from repro.engine import perf

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the machine-readable perf record to PATH",
    )
    parser.add_argument(
        "--mode", choices=perf.MODES, default="full",
        help="workload size (default: full, the committed-trajectory size)",
    )
    args = parser.parse_args(argv)
    record = perf.measure_p01(args.mode)
    metrics = record["metrics"]
    print(
        f"{metrics['events']:,} events in {metrics['elapsed_sec']:.2f}s = "
        f"{metrics['events_per_sec']:,} events/sec "
        f"({metrics['leases']:,} leases)"
    )
    if args.json:
        perf.dump_json(record, args.json)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # standalone: python benchmarks/bench_p01_....py
    raise SystemExit(main())
