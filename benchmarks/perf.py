#!/usr/bin/env python
"""Perf-trajectory CLI: run the serving-layer benchmarks, persist, gate.

Thin front end over :mod:`repro.engine.perf`.  Typical uses::

    # CI gate: run smoke-sized benchmarks, fail on >30% regression
    PYTHONPATH=src python benchmarks/perf.py --mode smoke --check

    # Refresh the committed trajectory after an intentional perf change
    PYTHONPATH=src python benchmarks/perf.py --mode full --write

    # Dump fresh records (e.g. for a CI artifact) without touching
    # the committed files
    PYTHONPATH=src python benchmarks/perf.py --mode smoke --out perf-results

The committed ``benchmarks/BENCH_*.json`` files carry a frozen
``baseline`` block (the pre-optimization reference; for p03, the first
recorded serving throughput; for p05, the first recorded uninstrumented
rate) plus per-mode current numbers; see EXPERIMENTS.md for the schema
and refresh policy.  ``p05_obs`` additionally gates the observability
overhead: the instrumented serving rate must stay within 10% of the
uninstrumented rate measured in the same run.  ``p06_durable`` gates
durability the same way: batch-fsynced serving must keep at least 80%
of the WAL-off rate from the same run.  ``p07_admin`` gates the HTTP
ops plane: serving with the plane mounted and scraped at 4 Hz must keep
at least 90% of the bare rate from the same run.  ``p08_flight`` gates
the whole live-debugging layer — metrics, trace spans, the history
ring, a running profiler, and a scraper pulling ``/metrics/history``
and ``/profile`` — at the same 90% floor against the bare rate.
``p09_direct`` gates the cluster topology split: on a multi-core
machine the direct data plane must at least match the routed relay
measured in the same run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import perf  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="serving-layer perf trajectory: measure, persist, gate"
    )
    parser.add_argument(
        "--bench", action="append", choices=perf.BENCH_NAMES, default=None,
        help="benchmark to run, repeatable (default: all)",
    )
    parser.add_argument(
        "--mode", choices=perf.MODES, default="smoke",
        help="workload size (full = committed trajectory, smoke = CI)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against committed BENCH_*.json; exit 1 on regression",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="fold the fresh numbers into the committed BENCH_*.json",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="also dump each fresh record to DIR/<bench>.<mode>.json",
    )
    parser.add_argument(
        "--tolerance", type=float, default=perf.DEFAULT_TOLERANCE,
        help="relative regression tolerance for --check (default 0.30)",
    )
    args = parser.parse_args(argv)

    benches = args.bench or list(perf.BENCH_NAMES)
    failures: list[str] = []
    for bench in benches:
        record = perf.measure(bench, args.mode)
        metrics = record["metrics"]
        line = f"{bench}[{args.mode}]: {metrics['events']:,} events"
        if "events_per_sec" in metrics:
            line += f", {metrics['events_per_sec']:,} events/sec"
        if "shard_speedup" in metrics:
            line += (
                f", shard speedup {metrics['shard_speedup']}x "
                f"({record['env']['cpus']} cpus), "
                f"byte-identical={metrics['byte_identical']}"
            )
        if "overhead_ratio" in metrics:
            line += (
                f", off {metrics['off_events_per_sec']:,}/s vs "
                f"on {metrics['on_events_per_sec']:,}/s "
                f"(ratio {metrics['overhead_ratio']}), "
                f"identical={metrics['reports_identical']}"
            )
        if "batch_ratio" in metrics:
            line += (
                f", off {metrics['off_events_per_sec']:,}/s vs "
                f"batch {metrics['batch_events_per_sec']:,}/s vs "
                f"always {metrics['always_events_per_sec']:,}/s "
                f"(ratios {metrics['batch_ratio']}/"
                f"{metrics['always_ratio']}), "
                f"wal {metrics['wal_bytes']:,}B, "
                f"identical={metrics['reports_identical']}"
            )
        if "admin_ratio" in metrics:
            line += (
                f", bare {metrics['bare_events_per_sec']:,}/s vs "
                f"admin {metrics['admin_events_per_sec']:,}/s "
                f"(ratio {metrics['admin_ratio']}), "
                f"identical={metrics['reports_identical']}"
            )
        if "direct_ratio" in metrics:
            line += (
                f", routed {metrics['routed_events_per_sec']:,}/s vs "
                f"direct {metrics['direct_events_per_sec']:,}/s "
                f"(speedup {metrics['direct_ratio']}x, "
                f"{record['env']['cpus']} cpus), "
                f"identical={metrics['reports_identical']}"
            )
        if "flight_ratio" in metrics:
            line += (
                f", off {metrics['off_events_per_sec']:,}/s vs "
                f"flight {metrics['flight_events_per_sec']:,}/s "
                f"(ratio {metrics['flight_ratio']}), "
                f"{metrics['trace_spans']:,} spans, "
                f"{metrics['history_samples']} history samples, "
                f"{metrics['profile_samples']:,} profile samples, "
                f"identical={metrics['reports_identical']}"
            )
        print(line)
        committed_path = REPO_ROOT / perf.BENCH_FILES[bench]
        if args.out:
            out_dir = Path(args.out)
            out_dir.mkdir(parents=True, exist_ok=True)
            perf.dump_json(record, out_dir / f"{bench}.{args.mode}.json")
        if args.check:
            committed = perf.load_committed(committed_path)
            failures.extend(perf.check(committed, record, args.tolerance))
        if args.write:
            if committed_path.exists():
                committed = perf.load_committed(committed_path)
            else:
                committed = {"schema": perf.SCHEMA, "bench": bench}
            perf.dump_json(
                perf.update_committed(committed, record), committed_path
            )
            print(f"  wrote {committed_path.relative_to(REPO_ROOT)}")
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
