"""E1 — Theorem 2.7: deterministic parking permit is O(K)-competitive.

Sweeps K over Markov-weather workloads and reports the worst measured
ratio per K against the exact interval-model optimum.  The paper's claim:
ratio <= K, growing at most linearly in K.

Runs on the :mod:`repro.engine` scenario/replay substrate: each K is an
ad-hoc registered scenario and all (K, seed) jobs go through
``runner.replay``, which also re-verifies feasibility per run.
"""

from __future__ import annotations

from repro.analysis import Sweep, verify_parking
from repro.core import LeaseSchedule, OptBounds, run_online
from repro.engine import Scenario, register, replay
from repro.parking import (
    DeterministicParkingPermit,
    make_instance,
    optimal_interval,
)
from repro.workloads import make_rng, markov_days

HORIZON = 400
SEEDS = range(5)
NUM_TYPES = (1, 2, 3, 4, 6, 8)


def _scenario(num_types: int) -> Scenario:
    schedule = LeaseSchedule.power_of_two(num_types, cost_growth=1.7)

    def build(seed: int):
        days = markov_days(HORIZON, 0.08, 0.85, make_rng(seed))
        return make_instance(schedule, days or [0])

    def run(instance, seed: int):
        return run_online(
            DeterministicParkingPermit(instance.schedule),
            instance.rainy_days,
            name=f"deterministic K={num_types}",
        )

    return Scenario(
        name=f"bench-e01-K{num_types}",
        family="parking",
        workload="markov",
        description=f"E1 sweep point, K={num_types}",
        build=build,
        run=run,
        verify=lambda instance, result: verify_parking(
            instance, list(result.leases)
        ),
        optimum=lambda instance: OptBounds.exactly(
            optimal_interval(instance).cost, method="dp-interval"
        ),
    )


SCENARIOS = tuple(
    register(_scenario(num_types), replace=True) for num_types in NUM_TYPES
)


def build_sweep() -> Sweep:
    sweep = Sweep("E1: deterministic parking permit vs K (Theorem 2.7)")
    outcomes = replay([s.name for s in SCENARIOS], seeds=SEEDS)
    assert all(outcome.verified for outcome in outcomes)
    for num_types, scenario in zip(NUM_TYPES, SCENARIOS):
        per_k = [o for o in outcomes if o.scenario == scenario.name]
        worst = max(per_k, key=lambda outcome: outcome.ratio)
        sweep.add(
            {"K": num_types},
            online_cost=worst.run.cost,
            opt_cost=worst.opt.lower,
            bound=float(num_types),
            note="worst of seeds",
        )
    return sweep


def _kernel():
    schedule = LeaseSchedule.power_of_two(8, cost_growth=1.7)
    days = markov_days(HORIZON, 0.08, 0.85, make_rng(0))
    algorithm = DeterministicParkingPermit(schedule)
    for day in days:
        algorithm.on_demand(day)
    return algorithm.cost


def test_e01_parking_deterministic(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
