"""E1 — Theorem 2.7: deterministic parking permit is O(K)-competitive.

Sweeps K over Markov-weather workloads and reports the worst measured
ratio per K against the exact interval-model optimum.  The paper's claim:
ratio <= K, growing at most linearly in K.
"""

from __future__ import annotations

from repro.analysis import Sweep
from repro.core import LeaseSchedule, run_online
from repro.parking import (
    DeterministicParkingPermit,
    make_instance,
    optimal_interval,
)
from repro.workloads import make_rng, markov_days

HORIZON = 400
SEEDS = range(5)


def build_sweep() -> Sweep:
    sweep = Sweep("E1: deterministic parking permit vs K (Theorem 2.7)")
    for num_types in (1, 2, 3, 4, 6, 8):
        schedule = LeaseSchedule.power_of_two(num_types, cost_growth=1.7)
        worst = 0.0
        worst_pair = (0.0, 1.0)
        for seed in SEEDS:
            rng = make_rng(seed)
            days = markov_days(HORIZON, 0.08, 0.85, rng)
            if not days:
                continue
            instance = make_instance(schedule, days)
            algorithm = DeterministicParkingPermit(schedule)
            run_online(algorithm, instance.rainy_days)
            assert instance.is_feasible_solution(list(algorithm.leases))
            opt = optimal_interval(instance).cost
            if algorithm.cost / opt > worst:
                worst = algorithm.cost / opt
                worst_pair = (algorithm.cost, opt)
        sweep.add(
            {"K": num_types},
            online_cost=worst_pair[0],
            opt_cost=worst_pair[1],
            bound=float(num_types),
            note="worst of seeds",
        )
    return sweep


def _kernel():
    schedule = LeaseSchedule.power_of_two(8, cost_growth=1.7)
    days = markov_days(HORIZON, 0.08, 0.85, make_rng(0))
    algorithm = DeterministicParkingPermit(schedule)
    for day in days:
        algorithm.on_demand(day)
    return algorithm.cost


def test_e01_parking_deterministic(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
