"""E3 — Theorem 2.8: the adaptive adversary forces ratio Omega(K).

Runs the adversary (schedule c_k = 2^k, l_k = (2K)^k) against Algorithm 1
and reports the forced ratio per K.  The paper's claim: the ratio grows
linearly in K — no deterministic algorithm beats Omega(K).

Runs on the :mod:`repro.engine` scenario/replay substrate (the E2
pattern): each K is an ad-hoc registered scenario.  The adversary is
*adaptive*, but its victim is deterministic, so the whole interrogation
is a pure function of the schedule — ``build`` simply runs it and
returns the realized :class:`ParkingPermitInstance`.  Replaying those
days in arrival order through a fresh Algorithm 1 reproduces the exact
adversary interaction (same demands, same state evolution, same
purchases), which lets ``run`` go through the ordinary
``run_online`` path and the runner re-verify feasibility per run.
"""

from __future__ import annotations

from repro.analysis import Sweep, verify_parking
from repro.core import OptBounds, run_online
from repro.engine import Scenario, register, replay
from repro.parking import (
    AdaptiveAdversary,
    DeterministicParkingPermit,
    adversarial_schedule,
    optimal_general,
)

MAX_HORIZON = 6_000
NUM_TYPES = (1, 2, 3, 4)


def _forced_instance(num_types: int):
    """Interrogate Algorithm 1 with the Theorem 2.8 adversary."""
    schedule = adversarial_schedule(num_types)
    adversary = AdaptiveAdversary(
        schedule, horizon=min(schedule.lmax, MAX_HORIZON)
    )
    return adversary.run(DeterministicParkingPermit(schedule)).instance


def _scenario(num_types: int) -> Scenario:
    def build(seed: int):
        # Deterministic interrogation: the replay seed is irrelevant,
        # the instance is the adversary's forced request sequence.
        return _forced_instance(num_types)

    def run(instance, seed: int):
        return run_online(
            DeterministicParkingPermit(instance.schedule),
            instance.rainy_days,
            name=f"Alg 1 vs adversary, K={num_types}",
        )

    return Scenario(
        name=f"bench-e03-K{num_types}",
        family="parking",
        workload="adversarial",
        description=f"E3 sweep point, K={num_types} (Theorem 2.8 adversary)",
        build=build,
        run=run,
        verify=lambda instance, result: verify_parking(
            instance, list(result.leases)
        ),
        optimum=lambda instance: OptBounds.exactly(
            optimal_general(instance).cost, method="dp-general"
        ),
    )


SCENARIOS = tuple(
    register(_scenario(num_types), replace=True) for num_types in NUM_TYPES
)


def build_sweep() -> Sweep:
    sweep = Sweep("E3: deterministic lower bound (Theorem 2.8 adversary)")
    outcomes = replay([s.name for s in SCENARIOS], seeds=[0])
    assert all(outcome.verified for outcome in outcomes)
    for num_types, outcome in zip(NUM_TYPES, outcomes):
        sweep.add(
            {"K": num_types, "requests": outcome.run.num_demands},
            online_cost=outcome.run.cost,
            opt_cost=outcome.opt.lower,
            note=f"horizon {min(adversarial_schedule(num_types).lmax, MAX_HORIZON)}",
        )
    return sweep


def _kernel():
    schedule = adversarial_schedule(4)
    adversary = AdaptiveAdversary(
        schedule, horizon=min(schedule.lmax, MAX_HORIZON)
    )
    return adversary.run(DeterministicParkingPermit(schedule)).online_cost


def test_e03_lower_bound_deterministic(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    ratios = [row.ratio for row in sweep.rows]
    # Shape check: monotone growth in K, starting at 1 for K=1 and at
    # least doubling by K=4 (Omega(K) with a constant >= 1/2).
    assert abs(ratios[0] - 1.0) < 1e-9
    assert ratios == sorted(ratios)
    assert ratios[-1] >= 2.0
    assert ratios[-1] >= 0.5 * 4
