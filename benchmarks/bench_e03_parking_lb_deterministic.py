"""E3 — Theorem 2.8: the adaptive adversary forces ratio Omega(K).

Runs the adversary (schedule c_k = 2^k, l_k = (2K)^k) against Algorithm 1
and reports the forced ratio per K.  The paper's claim: the ratio grows
linearly in K — no deterministic algorithm beats Omega(K).
"""

from __future__ import annotations

from repro.analysis import Sweep
from repro.parking import (
    AdaptiveAdversary,
    DeterministicParkingPermit,
    adversarial_schedule,
    optimal_general,
)

MAX_HORIZON = 6_000


def build_sweep() -> Sweep:
    sweep = Sweep("E3: deterministic lower bound (Theorem 2.8 adversary)")
    for num_types in (1, 2, 3, 4):
        schedule = adversarial_schedule(num_types)
        horizon = min(schedule.lmax, MAX_HORIZON)
        adversary = AdaptiveAdversary(schedule, horizon=horizon)
        outcome = adversary.run(DeterministicParkingPermit(schedule))
        opt = optimal_general(outcome.instance).cost
        sweep.add(
            {"K": num_types, "requests": outcome.num_requests},
            online_cost=outcome.online_cost,
            opt_cost=opt,
            note=f"horizon {horizon}",
        )
    return sweep


def _kernel():
    schedule = adversarial_schedule(4)
    adversary = AdaptiveAdversary(
        schedule, horizon=min(schedule.lmax, MAX_HORIZON)
    )
    return adversary.run(DeterministicParkingPermit(schedule)).online_cost


def test_e03_lower_bound_deterministic(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    ratios = [row.ratio for row in sweep.rows]
    # Shape check: monotone growth in K, starting at 1 for K=1 and at
    # least doubling by K=4 (Omega(K) with a constant >= 1/2).
    assert abs(ratios[0] - 1.0) < 1e-9
    assert ratios == sorted(ratios)
    assert ratios[-1] >= 2.0
    assert ratios[-1] >= 0.5 * 4
