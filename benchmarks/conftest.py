"""Benchmark-suite configuration.

Each ``bench_eNN_*.py`` module regenerates one experiment from DESIGN.md's
per-experiment index (the empirical counterpart of a thesis
theorem/figure).  Modules follow one pattern:

* build the experiment sweep un-timed (includes exact offline solvers),
* time a representative online-algorithm kernel with the ``benchmark``
  fixture,
* print the sweep table (visible with ``-s`` or on failure) and assert
  the theorem's bound/shape.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations
