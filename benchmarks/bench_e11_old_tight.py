"""E11 — Proposition 5.4 / Figure 5.3: the tight example, measured.

Runs the primal-dual algorithm on the exact Figure 5.3 construction for
growing dmax/lmin and shows the measured ratio tracks the designed
Omega(dmax/lmin) floor — the lower bound is real, not an analysis
artefact.

Runs on the :mod:`repro.engine` substrate: each (dmax, lmin) point is
the registered ``deadline-e11-*`` scenario whose ``build`` materialises
the tight construction (fully deterministic), replayed and re-verified
by the runner.
"""

from __future__ import annotations

from repro.analysis import Sweep
from repro.deadlines import expected_ratio_lower_bound, run_old, tight_example
from repro.engine import replay
from repro.engine.paper import E11_POINTS, E11_SCENARIOS


def build_sweep() -> Sweep:
    sweep = Sweep("E11: OLD tight example (Figure 5.3)")
    outcomes = replay(E11_SCENARIOS, seeds=[0])
    assert all(outcome.verified for outcome in outcomes)
    by_name = {outcome.scenario: outcome for outcome in outcomes}
    for (tag, (dmax, lmin)), name in zip(E11_POINTS, E11_SCENARIOS):
        outcome = by_name[name]
        sweep.add(
            {
                "dmax": dmax,
                "lmin": lmin,
                "designed": expected_ratio_lower_bound(dmax, lmin),
            },
            online_cost=outcome.run.cost,
            opt_cost=outcome.opt.lower,
        )
    return sweep


def _kernel():
    instance = tight_example(dmax=64, lmin=1, epsilon=0.01)
    return run_old(instance).cost


def test_e11_old_tight(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    for row in sweep.rows:
        designed = row.params["designed"]
        # The measured ratio realises at least 90% of the designed floor...
        assert row.ratio >= 0.9 * designed
        # ...and does not overshoot it by more than the Step-2 factor 2.
        assert row.ratio <= 2.2 * designed + 2.0
    # Doubling dmax doubles the ratio (linear growth).
    by_dmax = {
        row.params["dmax"]: row.ratio
        for row in sweep.rows
        if row.params["lmin"] == 1
    }
    assert by_dmax[64] > 1.8 * by_dmax[32] * 0.9
