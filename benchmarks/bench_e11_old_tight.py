"""E11 — Proposition 5.4 / Figure 5.3: the tight example, measured.

Runs the primal-dual algorithm on the exact Figure 5.3 construction for
growing dmax/lmin and shows the measured ratio tracks the designed
Omega(dmax/lmin) floor — the lower bound is real, not an analysis
artefact.
"""

from __future__ import annotations

from repro.analysis import Sweep
from repro.deadlines import (
    expected_ratio_lower_bound,
    optimal_dp,
    run_old,
    tight_example,
)


def build_sweep() -> Sweep:
    sweep = Sweep("E11: OLD tight example (Figure 5.3)")
    for dmax, lmin in ((8, 1), (16, 1), (32, 1), (64, 1), (32, 2), (32, 4)):
        instance = tight_example(dmax=dmax, lmin=lmin, epsilon=0.01)
        algorithm = run_old(instance)
        assert instance.is_feasible_solution(list(algorithm.leases))
        opt = optimal_dp(instance)
        sweep.add(
            {
                "dmax": dmax,
                "lmin": lmin,
                "designed": expected_ratio_lower_bound(dmax, lmin),
            },
            online_cost=algorithm.cost,
            opt_cost=opt,
        )
    return sweep


def _kernel():
    instance = tight_example(dmax=64, lmin=1, epsilon=0.01)
    return run_old(instance).cost


def test_e11_old_tight(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    for row in sweep.rows:
        designed = row.params["designed"]
        # The measured ratio realises at least 90% of the designed floor...
        assert row.ratio >= 0.9 * designed
        # ...and does not overshoot it by more than the Step-2 factor 2.
        assert row.ratio <= 2.2 * designed + 2.0
    # Doubling dmax doubles the ratio (linear growth).
    by_dmax = {
        row.params["dmax"]: row.ratio
        for row in sweep.rows
        if row.params["lmin"] == 1
    }
    assert by_dmax[64] > 1.8 * by_dmax[32] * 0.9
