"""E2 — Section 2.2.3: randomized parking permit is O(log K)-competitive.

For each K, measures the *expected* ratio (mean over coin seeds) on a
fixed workload and compares the growth against both the randomized
O(log K) shape and the deterministic algorithm's cost on the same
instances — randomization should win for large K.

Runs on the :mod:`repro.engine` scenario/replay substrate: each K is an
ad-hoc registered scenario whose *instance* is the fixed seed-99
workload and whose replay seed is the randomized algorithm's coin seed,
so all (K, coin) jobs flow through ``runner.replay`` — which also
re-verifies feasibility per run — and the expected ratio is the mean
over each K's outcomes.
"""

from __future__ import annotations

import math
import statistics

from repro.analysis import Sweep, verify_parking
from repro.core import LeaseSchedule, OptBounds, run_online
from repro.engine import Scenario, register, replay
from repro.parking import (
    DeterministicParkingPermit,
    RandomizedParkingPermit,
    make_instance,
    optimal_interval,
)
from repro.workloads import make_rng, markov_days

HORIZON = 300
COIN_SEEDS = range(25)
NUM_TYPES = (2, 4, 6, 8)
WORKLOAD_SEED = 99  # one fixed instance per K; only the coins vary


def _scenario(num_types: int) -> Scenario:
    schedule = LeaseSchedule.power_of_two(num_types, cost_growth=1.7)

    def build(seed: int):
        # The instance ignores the replay seed: E2 holds the workload
        # fixed and randomizes only the algorithm's coins.
        days = markov_days(HORIZON, 0.08, 0.85, make_rng(WORKLOAD_SEED))
        return make_instance(schedule, days or [0])

    def run(instance, seed: int):
        return run_online(
            RandomizedParkingPermit(instance.schedule, seed=seed),
            instance.rainy_days,
            name=f"randomized K={num_types}",
        )

    return Scenario(
        name=f"bench-e02-K{num_types}",
        family="parking",
        workload="markov",
        description=f"E2 sweep point, K={num_types} (seed = coin seed)",
        build=build,
        run=run,
        verify=lambda instance, result: verify_parking(
            instance, list(result.leases)
        ),
        optimum=lambda instance: OptBounds.exactly(
            optimal_interval(instance).cost, method="dp-interval"
        ),
    )


SCENARIOS = tuple(
    register(_scenario(num_types), replace=True) for num_types in NUM_TYPES
)


def build_sweep() -> Sweep:
    sweep = Sweep("E2: randomized parking permit vs K (expected ratio)")
    outcomes = replay([s.name for s in SCENARIOS], seeds=COIN_SEEDS)
    assert all(outcome.verified for outcome in outcomes)
    for num_types, scenario in zip(NUM_TYPES, SCENARIOS):
        per_k = [o for o in outcomes if o.scenario == scenario.name]
        assert len(per_k) == len(COIN_SEEDS)
        opt = per_k[0].opt.lower
        mean_ratio = statistics.fmean(o.ratio for o in per_k)
        deterministic = DeterministicParkingPermit(
            LeaseSchedule.power_of_two(num_types, cost_growth=1.7)
        )
        run_online(deterministic, _days())
        sweep.add(
            {"K": num_types},
            online_cost=mean_ratio * opt,
            opt_cost=opt,
            # Loose explicit-constant O(log K) ceiling for the shape check.
            bound=4.0 * (math.log2(num_types) + 2.0),
            note=f"det ratio {deterministic.cost / opt:.2f}",
        )
    return sweep


def _days() -> list[int]:
    return markov_days(HORIZON, 0.08, 0.85, make_rng(WORKLOAD_SEED))


def _kernel():
    schedule = LeaseSchedule.power_of_two(8, cost_growth=1.7)
    days = _days()
    algorithm = RandomizedParkingPermit(schedule, seed=1)
    for day in days:
        algorithm.on_demand(day)
    return algorithm.cost


def test_e02_parking_randomized(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
    # Shape: expected ratio grows sub-linearly — the K=8 mean ratio stays
    # below the deterministic worst-case guarantee K.
    last = sweep.rows[-1]
    assert last.ratio <= 8.0
