"""E2 — Section 2.2.3: randomized parking permit is O(log K)-competitive.

For each K, measures the *expected* ratio (mean over coin seeds) on a
fixed workload and compares the growth against both the randomized
O(log K) shape and the deterministic algorithm's cost on the same
instances — randomization should win for large K.
"""

from __future__ import annotations

import math

from repro.analysis import Sweep, expected_ratio
from repro.core import LeaseSchedule, run_online
from repro.parking import (
    DeterministicParkingPermit,
    RandomizedParkingPermit,
    make_instance,
    optimal_interval,
)
from repro.workloads import make_rng, markov_days

HORIZON = 300
COIN_SEEDS = range(25)


def build_sweep() -> Sweep:
    sweep = Sweep("E2: randomized parking permit vs K (expected ratio)")
    for num_types in (2, 4, 6, 8):
        schedule = LeaseSchedule.power_of_two(num_types, cost_growth=1.7)
        days = markov_days(HORIZON, 0.08, 0.85, make_rng(99))
        instance = make_instance(schedule, days)
        opt = optimal_interval(instance).cost

        def run_with_seed(seed, schedule=schedule, days=days):
            algorithm = RandomizedParkingPermit(schedule, seed=seed)
            run_online(algorithm, days)
            assert instance.is_feasible_solution(list(algorithm.leases))
            return algorithm.cost

        summary = expected_ratio(run_with_seed, opt, COIN_SEEDS)
        deterministic = DeterministicParkingPermit(schedule)
        run_online(deterministic, days)
        sweep.add(
            {"K": num_types},
            online_cost=summary.mean * opt,
            opt_cost=opt,
            # Loose explicit-constant O(log K) ceiling for the shape check.
            bound=4.0 * (math.log2(num_types) + 2.0),
            note=f"det ratio {deterministic.cost / opt:.2f}",
        )
    return sweep


def _kernel():
    schedule = LeaseSchedule.power_of_two(8, cost_growth=1.7)
    days = markov_days(HORIZON, 0.08, 0.85, make_rng(99))
    algorithm = RandomizedParkingPermit(schedule, seed=1)
    for day in days:
        algorithm.on_demand(day)
    return algorithm.cost


def test_e02_parking_randomized(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
    # Shape: expected ratio grows sub-linearly — the K=8 mean ratio stays
    # below the deterministic worst-case guarantee K.
    last = sweep.rows[-1]
    assert last.ratio <= 8.0
