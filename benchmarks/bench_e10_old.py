"""E10 — Theorem 5.3: OLD is O(K) uniform / O(K + dmax/lmin) non-uniform.

Two sweeps against the exact DP optimum: uniform slack (ratio must stay
below 2K regardless of slack) and growing maximum slack (ratio ceiling
grows like K + dmax/lmin).

Runs on the :mod:`repro.engine` substrate: each regime point is the
registered ``deadline-e10-*`` scenario whose replay seed draws the
instance (OLD is deterministic); the sweep reports the worst ratio over
the instance draws, each re-verified by the runner.
"""

from __future__ import annotations

from repro.analysis import Sweep
from repro.core import LeaseSchedule
from repro.deadlines import make_old_instance, run_old
from repro.engine import replay
from repro.engine.paper import E10_POINTS, E10_SCENARIOS
from repro.workloads import deadline_arrivals, make_rng

HORIZON = 200
SEEDS = range(5)
K = 3


def build_sweep() -> Sweep:
    sweep = Sweep("E10: OLD competitive ratios (Theorem 5.3)")
    schedule = LeaseSchedule.power_of_two(K)
    outcomes = replay(E10_SCENARIOS, seeds=SEEDS)
    assert all(outcome.verified for outcome in outcomes)
    for (tag, params), name in zip(E10_POINTS, E10_SCENARIOS):
        per_point = [o for o in outcomes if o.scenario == name]
        assert len(per_point) == len(SEEDS)
        worst = max(per_point, key=lambda o: o.run.cost / o.opt.lower)
        if params["uniform_slack"] is not None:
            sweep.add(
                {"regime": "uniform", "slack": params["uniform_slack"]},
                online_cost=worst.run.cost,
                opt_cost=worst.opt.lower,
                bound=2.0 * K,
                note="bound 2K",
            )
        else:
            sweep.add(
                {"regime": "non-uniform", "slack": params["max_slack"]},
                online_cost=worst.run.cost,
                opt_cost=worst.opt.lower,
                bound=2.0 * K + params["max_slack"] / schedule.lmin + 2.0,
                note="bound 2K+dmax/lmin+2",
            )
    return sweep


def _kernel():
    schedule = LeaseSchedule.power_of_two(K)
    clients = deadline_arrivals(
        HORIZON, 0.35, max_slack=12, rng=make_rng(0)
    )
    instance = make_old_instance(schedule, clients).normalized()
    return run_old(instance).cost


def test_e10_old(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
