"""E10 — Theorem 5.3: OLD is O(K) uniform / O(K + dmax/lmin) non-uniform.

Two sweeps against the exact DP optimum: uniform slack (ratio must stay
below 2K regardless of slack) and growing maximum slack (ratio ceiling
grows like K + dmax/lmin).
"""

from __future__ import annotations

from repro.analysis import Sweep
from repro.core import LeaseSchedule
from repro.deadlines import make_old_instance, optimal_dp, run_old
from repro.workloads import deadline_arrivals, make_rng

HORIZON = 200
SEEDS = range(5)


def worst_ratio(schedule, max_slack, uniform_slack):
    worst = (0.0, 1.0)
    for seed in SEEDS:
        clients = deadline_arrivals(
            HORIZON, 0.35, max_slack=max_slack, rng=make_rng(seed),
            uniform_slack=uniform_slack,
        )
        if not clients:
            continue
        instance = make_old_instance(schedule, clients).normalized()
        algorithm = run_old(instance)
        assert instance.is_feasible_solution(list(algorithm.leases))
        opt = optimal_dp(instance)
        if algorithm.cost / opt > worst[0] / worst[1]:
            worst = (algorithm.cost, opt)
    return worst


def build_sweep() -> Sweep:
    sweep = Sweep("E10: OLD competitive ratios (Theorem 5.3)")
    schedule = LeaseSchedule.power_of_two(3)
    K = schedule.num_types
    for slack in (0, 2, 4, 8):
        cost, opt = worst_ratio(schedule, max_slack=0, uniform_slack=slack)
        sweep.add(
            {"regime": "uniform", "slack": slack},
            online_cost=cost,
            opt_cost=opt,
            bound=2.0 * K,
            note="bound 2K",
        )
    for max_slack in (2, 6, 12, 24):
        cost, opt = worst_ratio(
            schedule, max_slack=max_slack, uniform_slack=None
        )
        sweep.add(
            {"regime": "non-uniform", "slack": max_slack},
            online_cost=cost,
            opt_cost=opt,
            bound=2.0 * K + max_slack / schedule.lmin + 2.0,
            note="bound 2K+dmax/lmin+2",
        )
    return sweep


def _kernel():
    schedule = LeaseSchedule.power_of_two(3)
    clients = deadline_arrivals(
        HORIZON, 0.35, max_slack=12, rng=make_rng(0)
    )
    instance = make_old_instance(schedule, clients).normalized()
    return run_old(instance).cost


def test_e10_old(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
