"""E6 — Theorem 3.3: SetMulticoverLeasing is O(log(delta K) log n).

Three sweeps, one per parameter (n, delta, K), measuring the mean ratio
over coin seeds against the exact Figure 3.2 ILP optimum.  The paper's
claim: ratio grows like log(delta K) * log n — slow growth in every
parameter, always below the explicit-constant ceiling.
"""

from __future__ import annotations

import math

from repro.analysis import Sweep
from repro.core import LeaseSchedule, run_online
from repro.setcover import (
    OnlineSetMulticoverLeasing,
    optimum,
    random_instance,
)
from repro.workloads import make_rng

COIN_SEEDS = range(8)


def bound_for(instance) -> float:
    delta_k = instance.system.delta * instance.schedule.num_types
    n = instance.system.num_elements
    return (
        4.0 * (math.log(delta_k) + 2.0) * (2.0 * math.log2(n + 1) + 2.0)
    )


def measure(instance) -> tuple[float, float]:
    opt = optimum(instance)
    costs = []
    for seed in COIN_SEEDS:
        algorithm = OnlineSetMulticoverLeasing(instance, seed=seed)
        run_online(algorithm, instance.demands)
        assert instance.is_feasible_solution(list(algorithm.leases))
        costs.append(algorithm.cost)
    return sum(costs) / len(costs), opt.lower


def build_sweep() -> Sweep:
    sweep = Sweep("E6: SetMulticoverLeasing mean ratio (Theorem 3.3)")
    # Sweep n with delta, K fixed.
    for n in (6, 12, 24, 48):
        instance = random_instance(
            num_elements=n, num_sets=max(4, n // 2), memberships=3,
            schedule=LeaseSchedule.power_of_two(2), horizon=24,
            num_demands=24, rng=make_rng(100 + n), max_coverage=2,
        )
        mean_cost, opt = measure(instance)
        sweep.add(
            {"sweep": "n", "n": n, "delta": instance.system.delta, "K": 2},
            online_cost=mean_cost, opt_cost=opt, bound=bound_for(instance),
        )
    # Sweep delta (memberships) with n, K fixed.
    for memberships in (2, 4, 6):
        instance = random_instance(
            num_elements=12, num_sets=8, memberships=memberships,
            schedule=LeaseSchedule.power_of_two(2), horizon=24,
            num_demands=24, rng=make_rng(200 + memberships), max_coverage=2,
        )
        mean_cost, opt = measure(instance)
        sweep.add(
            {"sweep": "delta", "n": 12, "delta": instance.system.delta,
             "K": 2},
            online_cost=mean_cost, opt_cost=opt, bound=bound_for(instance),
        )
    # Sweep K with n, delta fixed.
    for num_types in (1, 2, 3, 4):
        instance = random_instance(
            num_elements=12, num_sets=8, memberships=3,
            schedule=LeaseSchedule.power_of_two(num_types), horizon=24,
            num_demands=24, rng=make_rng(300), max_coverage=2,
        )
        mean_cost, opt = measure(instance)
        sweep.add(
            {"sweep": "K", "n": 12, "delta": instance.system.delta,
             "K": num_types},
            online_cost=mean_cost, opt_cost=opt, bound=bound_for(instance),
        )
    return sweep


def _kernel():
    instance = random_instance(
        num_elements=24, num_sets=12, memberships=3,
        schedule=LeaseSchedule.power_of_two(3), horizon=24,
        num_demands=24, rng=make_rng(0), max_coverage=2,
    )
    algorithm = OnlineSetMulticoverLeasing(instance, seed=0)
    for demand in instance.demands:
        algorithm.on_demand(demand)
    return algorithm.cost


def test_e06_set_multicover_leasing(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
