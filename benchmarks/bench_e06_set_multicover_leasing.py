"""E6 — Theorem 3.3: SetMulticoverLeasing is O(log(delta K) log n).

Three sweeps, one per parameter (n, delta, K), measuring the mean ratio
over coin seeds against the exact Figure 3.2 ILP optimum.  The paper's
claim: ratio grows like log(delta K) * log n — slow growth in every
parameter, always below the explicit-constant ceiling.

Runs on the :mod:`repro.engine` substrate: every sweep point is a
registered ``setcover-e06-*`` scenario whose instance is a fixed draw
and whose replay seed is the algorithm's coin seed, so the whole grid —
including per-run feasibility verification — is one ``runner.replay``
call over the coin seeds.
"""

from __future__ import annotations

import math

from repro.analysis import Sweep
from repro.core import LeaseSchedule
from repro.engine import get_scenario, replay
from repro.engine.paper import E06_SCENARIOS
from repro.setcover import OnlineSetMulticoverLeasing, random_instance
from repro.workloads import make_rng

COIN_SEEDS = range(8)


def bound_for(instance) -> float:
    delta_k = instance.system.delta * instance.schedule.num_types
    n = instance.system.num_elements
    return (
        4.0 * (math.log(delta_k) + 2.0) * (2.0 * math.log2(n + 1) + 2.0)
    )


_SWEEP_KIND = {"n": "n", "d": "delta", "K": "K"}


def build_sweep() -> Sweep:
    sweep = Sweep("E6: SetMulticoverLeasing mean ratio (Theorem 3.3)")
    outcomes = replay(E06_SCENARIOS, seeds=COIN_SEEDS)
    assert all(outcome.verified for outcome in outcomes)
    for name in E06_SCENARIOS:
        scenario = get_scenario(name)
        instance = scenario.build(0)
        per_point = [o for o in outcomes if o.scenario == name]
        assert len(per_point) == len(COIN_SEEDS)
        mean_cost = sum(o.run.cost for o in per_point) / len(per_point)
        tag = name.removeprefix("setcover-e06-")
        sweep.add(
            {
                "sweep": _SWEEP_KIND[tag[0]],
                "n": instance.system.num_elements,
                "delta": instance.system.delta,
                "K": instance.schedule.num_types,
            },
            online_cost=mean_cost,
            opt_cost=per_point[0].opt.lower,
            bound=bound_for(instance),
        )
    return sweep


def _kernel():
    instance = random_instance(
        num_elements=24, num_sets=12, memberships=3,
        schedule=LeaseSchedule.power_of_two(3), horizon=24,
        num_demands=24, rng=make_rng(0), max_coverage=2,
    )
    algorithm = OnlineSetMulticoverLeasing(instance, seed=0)
    for demand in instance.demands:
        algorithm.on_demand(demand)
    return algorithm.cost


def test_e06_set_multicover_leasing(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
