"""E8 — Corollary 3.5: OnlineSetCoverWithRepetitions.

Elements arrive repeatedly; each arrival needs a fresh set.  Measures the
mean ratio against the exact ILP of the equivalent multicover rewriting
(the r-th arrival of an element demands coverage r).  Claim: ratio within
O(log delta log(delta n)) — the improvement over Alon et al.'s
O(log^2(mn)).

Runs on the :mod:`repro.engine` substrate: each stream is the registered
``setcover-e08-n*`` scenario (fixed stream, replay seed = coin seed);
the runner re-checks assignment validity per run via
``verify_repetitions`` and brackets against the rewriting's ILP.
"""

from __future__ import annotations

import math

from repro.analysis import Sweep
from repro.engine import get_scenario, replay
from repro.engine.paper import E08_SCENARIOS
from repro.setcover import OnlineSetCoverWithRepetitions

COIN_SEEDS = range(8)


def build_sweep() -> Sweep:
    sweep = Sweep("E8: OnlineSetCoverWithRepetitions (Cor 3.5)")
    outcomes = replay(E08_SCENARIOS, seeds=COIN_SEEDS)
    assert all(outcome.verified for outcome in outcomes)
    for name in E08_SCENARIOS:
        instance = get_scenario(name).build(0)
        per_point = [o for o in outcomes if o.scenario == name]
        assert len(per_point) == len(COIN_SEEDS)
        n = instance.base.system.num_elements
        delta = instance.base.system.delta
        bound = (
            4.0
            * (math.log(delta) + 2.0)
            * (2.0 * math.log2(delta * n + 1) + 2.0)
        )
        sweep.add(
            {"n": n, "arrivals": len(instance.stream), "delta": delta},
            online_cost=sum(o.run.cost for o in per_point) / len(per_point),
            opt_cost=per_point[0].opt.lower,
            bound=bound,
        )
    return sweep


def _kernel():
    instance = get_scenario("setcover-e08-n24").build(0)
    algorithm = OnlineSetCoverWithRepetitions(instance.base, seed=0)
    for demand in instance.stream:
        algorithm.on_demand(demand)
    return algorithm.cost


def test_e08_repetitions(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
