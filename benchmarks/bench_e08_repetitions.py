"""E8 — Corollary 3.5: OnlineSetCoverWithRepetitions.

Elements arrive repeatedly; each arrival needs a fresh set.  Measures the
mean ratio against the exact ILP of the equivalent multicover rewriting
(the r-th arrival of an element demands coverage r).  Claim: ratio within
O(log delta log(delta n)) — the improvement over Alon et al.'s
O(log^2(mn)).
"""

from __future__ import annotations

import math

from repro.analysis import Sweep
from repro.setcover import (
    OnlineSetCoverWithRepetitions,
    SetMulticoverLeasingInstance,
    non_leasing_instance,
    optimum,
    repetitions_to_multicover,
)
from repro.workloads import make_rng

COIN_SEEDS = range(8)


def build_stream(n, arrivals, seed):
    rng = make_rng(seed)
    num_sets = max(6, n)
    sets = []
    for _ in range(num_sets):
        size = rng.randint(2, max(2, n // 2))
        sets.append(set(rng.sample(range(n), size)))
    depth_needed = 4
    for element in range(n):
        while (
            sum(1 for members in sets if element in members) < depth_needed
        ):
            sets[rng.randrange(num_sets)].add(element)
    costs = [1.0 + rng.random() * 3.0 for _ in range(num_sets)]
    counts: dict[int, int] = {}
    stream = []
    t = 0
    while len(stream) < arrivals:
        element = rng.randrange(n)
        if counts.get(element, 0) >= depth_needed:
            continue
        counts[element] = counts.get(element, 0) + 1
        stream.append((element, t))
        t += 1
    base = non_leasing_instance(
        n, sets, costs, horizon=t + 1, demands=[(e, tt, 1) for e, tt in stream]
    )
    return base, stream


def build_sweep() -> Sweep:
    sweep = Sweep("E8: OnlineSetCoverWithRepetitions (Cor 3.5)")
    for n, arrivals in ((6, 12), (12, 24), (24, 36)):
        base, stream = build_stream(n, arrivals, seed=n)
        # Exact baseline: multicover rewriting of the same stream.
        rewritten = SetMulticoverLeasingInstance(
            system=base.system,
            schedule=base.schedule,
            demands=tuple(repetitions_to_multicover(stream)),
        )
        opt = optimum(rewritten)
        costs = []
        for seed in COIN_SEEDS:
            algorithm = OnlineSetCoverWithRepetitions(base, seed=seed)
            for demand in stream:
                algorithm.on_demand(demand)
            assert algorithm.is_assignment_valid()
            costs.append(algorithm.cost)
        delta = base.system.delta
        bound = (
            4.0
            * (math.log(delta) + 2.0)
            * (2.0 * math.log2(delta * n + 1) + 2.0)
        )
        sweep.add(
            {"n": n, "arrivals": arrivals, "delta": delta},
            online_cost=sum(costs) / len(costs),
            opt_cost=opt.lower,
            bound=bound,
        )
    return sweep


def _kernel():
    base, stream = build_stream(24, 36, seed=24)
    algorithm = OnlineSetCoverWithRepetitions(base, seed=0)
    for demand in stream:
        algorithm.on_demand(demand)
    return algorithm.cost


def test_e08_repetitions(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
