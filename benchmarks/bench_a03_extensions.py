"""A3 (extensions) — the thesis outlook problems, measured.

Three extension substrates built per the thesis' future-work sections:

* vertex cover leasing (Section 3.5 outlook) via the delta=2 reduction —
  mean ratio vs exact ILP;
* capacitated facility leasing (Section 4.5 outlook) — greedy online vs
  exact capacitated MILP across capacity regimes;
* Steiner tree leasing (Section 5.1) — greedy doubling online vs the
  per-round offline Steiner-tree heuristic.
"""

from __future__ import annotations

import networkx as nx

from repro.analysis import Sweep
from repro.core import LeaseSchedule
from repro.extensions import (
    CapacitatedInstance,
    OnlineCapacitatedFacilityLeasing,
    optimal_ilp,
)
from repro.facility import make_instance as make_facility_instance
from repro.graphs import (
    EdgeDemand,
    OnlineSteinerLeasing,
    OnlineVertexCoverLeasing,
    PairDemand,
    SteinerLeasingInstance,
    VertexCoverLeasingInstance,
    offline_heuristic,
    optimum as vc_optimum,
)
from repro.workloads import constant_batches, make_rng


def vertex_cover_rows(sweep: Sweep) -> None:
    rng = make_rng(11)
    schedule = LeaseSchedule.power_of_two(2)
    num_vertices = 10
    edges = []
    for t in range(20):
        u, v = rng.sample(range(num_vertices), 2)
        edges.append(EdgeDemand(u, v, t))
    instance = VertexCoverLeasingInstance(
        num_vertices=num_vertices,
        vertex_costs=tuple(
            tuple((1.0 + rng.random()) * lt.cost for lt in schedule)
            for _ in range(num_vertices)
        ),
        schedule=schedule,
        demands=tuple(edges),
    )
    opt = vc_optimum(instance)
    costs = []
    for seed in range(8):
        algorithm = OnlineVertexCoverLeasing(instance, seed=seed)
        for demand in instance.demands:
            algorithm.on_demand(demand)
        assert instance.is_feasible_solution(list(algorithm.leases))
        costs.append(algorithm.cost)
    sweep.add(
        {"problem": "vertex-cover-leasing", "param": "20 edges"},
        online_cost=sum(costs) / len(costs),
        opt_cost=opt.lower,
        note="delta=2 reduction",
    )


def capacitated_rows(sweep: Sweep) -> None:
    schedule = LeaseSchedule.power_of_two(2)
    for capacity in (1, 2, 4):
        base = make_facility_instance(
            schedule,
            num_facilities=3,
            batch_sizes=constant_batches(4, 3),
            rng=make_rng(21),
        )
        instance = CapacitatedInstance(
            base=base, capacities=(capacity,) * 3
        )
        algorithm = OnlineCapacitatedFacilityLeasing(instance)
        for batch in base.batches():
            algorithm.on_demand(batch)
        assert instance.is_feasible_solution(
            list(algorithm.leases), algorithm.connections
        )
        opt = optimal_ilp(instance)
        sweep.add(
            {"problem": "capacitated-facility", "param": f"cap={capacity}"},
            online_cost=algorithm.cost,
            opt_cost=opt,
            note="greedy online vs MILP",
        )


def steiner_rows(sweep: Sweep) -> None:
    rng = make_rng(31)
    schedule = LeaseSchedule.power_of_two(3, cost_growth=1.6)
    graph = nx.convert_node_labels_to_integers(
        nx.grid_2d_graph(4, 4), ordering="sorted"
    )
    nx.set_edge_attributes(graph, 1.0, "weight")
    demands = []
    for t in range(12):
        s, target = rng.sample(range(16), 2)
        demands.append(PairDemand(s, target, t))
    instance = SteinerLeasingInstance(
        graph=graph, schedule=schedule, demands=tuple(demands)
    )
    algorithm = OnlineSteinerLeasing(instance)
    for demand in instance.demands:
        algorithm.on_demand(demand)
    assert instance.is_feasible_solution(list(algorithm.leases))
    baseline = offline_heuristic(instance)
    sweep.add(
        {"problem": "steiner-leasing", "param": "12 pairs on 4x4 grid"},
        online_cost=algorithm.cost,
        opt_cost=baseline,
        note="vs offline round-tree heuristic",
    )


def build_sweep() -> Sweep:
    sweep = Sweep("A3: thesis-outlook extensions")
    vertex_cover_rows(sweep)
    capacitated_rows(sweep)
    steiner_rows(sweep)
    return sweep


def _kernel():
    rng = make_rng(11)
    schedule = LeaseSchedule.power_of_two(2)
    edges = []
    for t in range(20):
        u, v = rng.sample(range(10), 2)
        edges.append(EdgeDemand(u, v, t))
    instance = VertexCoverLeasingInstance(
        num_vertices=10,
        vertex_costs=tuple(
            tuple(2.0 * lt.cost for lt in schedule) for _ in range(10)
        ),
        schedule=schedule,
        demands=tuple(edges),
    )
    algorithm = OnlineVertexCoverLeasing(instance, seed=0)
    for demand in instance.demands:
        algorithm.on_demand(demand)
    return algorithm.cost


def test_a03_extensions(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    by_problem: dict[str, list[float]] = {}
    for row in sweep.rows:
        by_problem.setdefault(row.params["problem"], []).append(row.ratio)
    # Sanity: every extension's online cost within a small factor of its
    # exact/heuristic baseline on these workloads.
    assert max(by_problem["vertex-cover-leasing"]) <= 12.0
    assert max(by_problem["capacitated-facility"]) <= 4.0
    assert max(by_problem["steiner-leasing"]) <= 4.0
