"""E7 — Corollary 3.4: OnlineSetMulticover via K=1 and an infinite lease.

The leasing algorithm, fed the degenerate buy-forever schedule, becomes
the optimal O(log delta log n) algorithm for classical online set
multicover.  Sweeps n and reports mean ratios against the exact ILP.
"""

from __future__ import annotations

import math

from repro.analysis import Sweep
from repro.core import run_online
from repro.setcover import (
    OnlineSetMulticoverLeasing,
    non_leasing_instance,
    optimum,
)
from repro.workloads import make_rng

COIN_SEEDS = range(8)


def build_instance(n, seed):
    rng = make_rng(seed)
    num_sets = max(4, n // 2)
    sets = []
    for _ in range(num_sets):
        size = rng.randint(2, max(2, n // 2))
        sets.append(set(rng.sample(range(n), size)))
    # Guarantee coverage depth 2 for every element.
    for element in range(n):
        containing = [i for i, members in enumerate(sets) if element in members]
        while len(containing) < 2:
            target = rng.randrange(num_sets)
            sets[target].add(element)
            containing = [
                i for i, members in enumerate(sets) if element in members
            ]
    costs = [1.0 + rng.random() * 3.0 for _ in range(num_sets)]
    demands = [
        (element, t, rng.randint(1, 2))
        for t, element in enumerate(rng.sample(range(n), n))
    ]
    return non_leasing_instance(n, sets, costs, horizon=n + 1, demands=demands)


def build_sweep() -> Sweep:
    sweep = Sweep("E7: OnlineSetMulticover (K=1, infinite lease; Cor 3.4)")
    for n in (8, 16, 32):
        instance = build_instance(n, seed=n)
        opt = optimum(instance)
        costs = []
        for seed in COIN_SEEDS:
            algorithm = OnlineSetMulticoverLeasing(instance, seed=seed)
            run_online(algorithm, instance.demands)
            assert instance.is_feasible_solution(list(algorithm.leases))
            costs.append(algorithm.cost)
        delta = instance.system.delta
        bound = (
            4.0 * (math.log(delta) + 2.0) * (2.0 * math.log2(n + 1) + 2.0)
        )
        sweep.add(
            {"n": n, "delta": delta},
            online_cost=sum(costs) / len(costs),
            opt_cost=opt.lower,
            bound=bound,
        )
    return sweep


def _kernel():
    instance = build_instance(32, seed=32)
    algorithm = OnlineSetMulticoverLeasing(instance, seed=0)
    for demand in instance.demands:
        algorithm.on_demand(demand)
    return algorithm.cost


def test_e07_online_set_multicover(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
