"""E7 — Corollary 3.4: OnlineSetMulticover via K=1 and an infinite lease.

The leasing algorithm, fed the degenerate buy-forever schedule, becomes
the optimal O(log delta log n) algorithm for classical online set
multicover.  Sweeps n and reports mean ratios against the exact ILP.

Runs on the :mod:`repro.engine` substrate: each n is the registered
``setcover-e07-n*`` scenario (fixed instance draw, replay seed = coin
seed), so the sweep is one ``runner.replay`` call over the coin seeds.
"""

from __future__ import annotations

import math

from repro.analysis import Sweep
from repro.engine import get_scenario, replay
from repro.engine.paper import E07_SCENARIOS
from repro.setcover import OnlineSetMulticoverLeasing

COIN_SEEDS = range(8)


def build_sweep() -> Sweep:
    sweep = Sweep("E7: OnlineSetMulticover (K=1, infinite lease; Cor 3.4)")
    outcomes = replay(E07_SCENARIOS, seeds=COIN_SEEDS)
    assert all(outcome.verified for outcome in outcomes)
    for name in E07_SCENARIOS:
        instance = get_scenario(name).build(0)
        per_point = [o for o in outcomes if o.scenario == name]
        assert len(per_point) == len(COIN_SEEDS)
        n = instance.system.num_elements
        delta = instance.system.delta
        bound = (
            4.0 * (math.log(delta) + 2.0) * (2.0 * math.log2(n + 1) + 2.0)
        )
        sweep.add(
            {"n": n, "delta": delta},
            online_cost=sum(o.run.cost for o in per_point) / len(per_point),
            opt_cost=per_point[0].opt.lower,
            bound=bound,
        )
    return sweep


def _kernel():
    instance = get_scenario("setcover-e07-n32").build(0)
    algorithm = OnlineSetMulticoverLeasing(instance, seed=0)
    for demand in instance.demands:
        algorithm.on_demand(demand)
    return algorithm.cost


def test_e07_online_set_multicover(benchmark):
    sweep = build_sweep()
    benchmark(_kernel)
    print()
    print(sweep.render())
    assert sweep.all_within_bounds(), sweep.render()
