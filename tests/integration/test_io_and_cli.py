"""Tests for instance serialization round-trips and the CLI."""

import json

import pytest

from repro import io as repro_io
from repro.cli import main
from repro.core import LeaseSchedule
from repro.deadlines import DeadlineElement, SCLDInstance, make_old_instance
from repro.errors import ModelError
from repro.facility import make_instance as make_facility
from repro.parking import make_instance as make_parking
from repro.setcover import random_instance
from repro.workloads import constant_batches, make_rng


def sample_instances():
    schedule = LeaseSchedule.power_of_two(2)
    parking = make_parking(schedule, [0, 3, 7])
    multicover = random_instance(
        num_elements=6, num_sets=4, memberships=2,
        schedule=schedule, horizon=10, num_demands=6,
        rng=make_rng(1), max_coverage=2,
    )
    facility = make_facility(
        schedule, num_facilities=2,
        batch_sizes=constant_batches(3, 1), rng=make_rng(2),
    )
    old = make_old_instance(schedule, [(0, 2), (4, 1)])
    scld = SCLDInstance(
        system=multicover.system,
        schedule=schedule,
        demands=(DeadlineElement(0, 1, 2), DeadlineElement(1, 3, 0)),
    )
    return {
        "parking": parking,
        "multicover": multicover,
        "facility": facility,
        "old": old,
        "scld": scld,
    }


class TestSerialization:
    @pytest.mark.parametrize("kind", list(sample_instances()))
    def test_round_trip_equality(self, kind):
        original = sample_instances()[kind]
        restored = repro_io.loads(repro_io.dumps(original))
        assert repro_io.dumps(restored) == repro_io.dumps(original)
        assert type(restored) is type(original)

    def test_parking_round_trip_preserves_semantics(self):
        original = sample_instances()["parking"]
        restored = repro_io.loads(repro_io.dumps(original))
        from repro.parking import optimal_general

        assert optimal_general(restored).cost == pytest.approx(
            optimal_general(original).cost
        )

    def test_multicover_round_trip_preserves_optimum(self):
        original = sample_instances()["multicover"]
        restored = repro_io.loads(repro_io.dumps(original))
        from repro.setcover import optimum

        assert optimum(restored).lower == pytest.approx(
            optimum(original).lower
        )

    def test_file_round_trip(self, tmp_path):
        original = sample_instances()["old"]
        path = tmp_path / "instance.json"
        repro_io.save(original, path)
        restored = repro_io.load(path)
        assert repro_io.dumps(restored) == repro_io.dumps(original)

    def test_payload_is_plain_json(self):
        payload = repro_io.to_payload(sample_instances()["facility"])
        json.dumps(payload)  # must not raise
        assert payload["kind"] == "facility"
        assert payload["version"] == repro_io.FORMAT_VERSION

    def test_rejects_unknown_kind(self):
        with pytest.raises(ModelError):
            repro_io.from_payload(
                {"version": repro_io.FORMAT_VERSION, "kind": "nope",
                 "schedule": [[1, 1.0]]}
            )

    def test_rejects_wrong_version(self):
        with pytest.raises(ModelError):
            repro_io.from_payload({"version": 99, "kind": "parking"})

    def test_rejects_unsupported_type(self):
        with pytest.raises(ModelError):
            repro_io.to_payload(42)


class TestCli:
    @pytest.mark.parametrize(
        "argv",
        [
            ["parking", "--horizon", "60", "--num-types", "3"],
            ["setcover", "--elements", "8", "--sets", "5",
             "--demands", "8", "--horizon", "12"],
            ["facility", "--facilities", "2", "--steps", "3",
             "--per-step", "1", "--num-types", "2"],
            ["old", "--horizon", "50", "--max-slack", "4"],
        ],
    )
    def test_subcommands_run(self, argv, capsys):
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "ratio" in output
        assert "optimum" in output

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_engine_list_shows_shardable_and_cluster_columns(self, capsys):
        assert main(["engine", "list"]) == 0
        output = capsys.readouterr().out
        header, rows = output.splitlines()[1], output.splitlines()[3:]
        assert "shardable" in header
        assert "cluster" in header
        shardable_at = header.index("shardable")
        cluster_at = header.index("cluster")

        def flags(row):
            return (
                "yes" in row[shardable_at:cluster_at],
                "yes" in row[cluster_at:cluster_at + len("cluster")],
            )

        broker_rows = [row for row in rows if " broker " in row]
        serve_rows = [row for row in rows if " serve " in row]
        cluster_rows = [row for row in rows if " cluster " in row]
        parking_rows = [row for row in rows if " parking " in row]
        assert broker_rows and all(
            flags(row) == (True, True) for row in broker_rows
        )
        # Serving families shard fleet-side, not via --shards; both are
        # cluster-servable.
        assert serve_rows and all(
            flags(row) == (False, True) for row in serve_rows
        )
        assert cluster_rows and all(
            flags(row) == (False, True) for row in cluster_rows
        )
        assert parking_rows and all(
            flags(row) == (False, False) for row in parking_rows
        )

    def test_engine_run_shards_rejects_non_shardable(self, capsys):
        assert main(
            ["engine", "run", "--scenario", "parking-markov", "--shards", "2"]
        ) == 2
        err = capsys.readouterr().err
        assert "parking-markov" in err
        assert "shardable" in err

    def test_engine_loadgen_in_process(self, capsys):
        assert main(
            ["engine", "loadgen", "--horizon", "48", "--resources", "4",
             "--shards", "2", "--check"]
        ) == 0
        output = capsys.readouterr().out
        assert "report equals inline replay" in output
        assert "NO" not in output

    def test_engine_list_shows_direct_column(self, capsys):
        assert main(["engine", "list", "--family", "cluster"]) == 0
        output = capsys.readouterr().out
        header, rows = output.splitlines()[1], output.splitlines()[3:]
        assert "direct" in header
        direct_at = header.index("direct")
        assert rows and all("yes" in row[direct_at:] for row in rows)
        # Families without the two-plane path leave the column blank.
        assert main(["engine", "list", "--family", "parking"]) == 0
        output = capsys.readouterr().out
        header, rows = output.splitlines()[1], output.splitlines()[3:]
        direct_at = header.index("direct")
        assert rows and all("yes" not in row[direct_at:] for row in rows)

    def test_engine_loadgen_direct_requires_a_fleet(self, capsys):
        """``--direct`` without ``--cluster`` or ``--socket`` is a usage
        error, reported up front with exit 2 — same convention as
        ``--shards`` on a non-shardable scenario."""
        assert main(
            ["engine", "loadgen", "--horizon", "48", "--direct"]
        ) == 2
        err = capsys.readouterr().err
        assert "--direct" in err
        assert "engine list" in err

    def test_engine_loadgen_direct_cluster_in_process(self, capsys):
        assert main(
            ["engine", "loadgen", "--horizon", "48", "--resources", "4",
             "--cluster", "2", "--direct", "--check"]
        ) == 0
        output = capsys.readouterr().out
        assert "report equals inline replay" in output
        assert "direct" in output
        assert "NO" not in output

    def test_seed_reproducibility(self, capsys):
        main(["parking", "--horizon", "80", "--seed", "5"])
        first = capsys.readouterr().out
        main(["parking", "--horizon", "80", "--seed", "5"])
        second = capsys.readouterr().out
        assert first == second
