"""Growth-shape integration: the O(K) vs Omega(K) separation, measured live.

Definitions 2.1/2.2 are about orders of growth; this test derives the
shapes from live runs of the library (not hard-coded series) and checks
them with the growth-fit module:

* on benign stochastic workloads, the deterministic algorithm's ratio
  grows *sublinearly* in K (the worst case is not typical);
* against the Theorem 2.8 adversary, the forced ratio is *linear* in K
  (the worst case is achieved).
"""

from repro.analysis import best_shape, grows_sublinearly
from repro.core import LeaseSchedule, run_online
from repro.parking import (
    AdaptiveAdversary,
    DeterministicParkingPermit,
    adversarial_schedule,
    make_instance,
    optimal_general,
    optimal_interval,
)
from repro.workloads import make_rng, markov_days


def benign_ratios(ks):
    ratios = []
    for num_types in ks:
        schedule = LeaseSchedule.power_of_two(num_types, cost_growth=1.7)
        days = markov_days(300, 0.08, 0.85, make_rng(17))
        instance = make_instance(schedule, days)
        algorithm = DeterministicParkingPermit(schedule)
        run_online(algorithm, instance.rainy_days)
        ratios.append(algorithm.cost / optimal_interval(instance).cost)
    return ratios


def adversarial_ratios(ks):
    ratios = []
    for num_types in ks:
        schedule = adversarial_schedule(num_types)
        adversary = AdaptiveAdversary(
            schedule, horizon=min(schedule.lmax, 5000)
        )
        outcome = adversary.run(DeterministicParkingPermit(schedule))
        opt = optimal_general(outcome.instance).cost
        ratios.append(outcome.online_cost / opt)
    return ratios


class TestShapeSeparation:
    def test_benign_workloads_are_sublinear_in_K(self):
        ks = [1, 2, 3, 4, 6, 8]
        assert grows_sublinearly(ks, benign_ratios(ks))

    def test_adversarial_ratios_are_linear_in_K(self):
        ks = [1, 2, 3, 4]
        ratios = adversarial_ratios(ks)
        assert best_shape(ks, ratios) == "linear"

    def test_adversary_dominates_benign_at_same_K(self):
        ks = [2, 3, 4]
        benign = benign_ratios(ks)
        forced = adversarial_ratios(ks)
        for soft, hard, k in zip(benign, forced, ks):
            # The adversary meets the K bound; benign workloads sit below.
            assert hard >= k - 1e-9
            assert soft < hard + 1e-9
