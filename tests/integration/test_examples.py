"""Smoke tests: every example script runs to completion.

Examples are the public face of the library; a broken example is a
broken deliverable.  Each is executed in-process (fresh module
namespace) and must finish without raising and produce output.
"""

import io
import runpy
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLE_SCRIPTS = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(EXAMPLE_SCRIPTS) >= 5


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs_and_prints(script):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = buffer.getvalue()
    assert len(output.strip()) > 50, f"{script} produced no real output"


def test_quickstart_reports_bound():
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(
            str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__"
        )
    assert "Theorem 2.7" in buffer.getvalue()


def test_adversarial_showdown_shows_exact_lower_bound():
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(
            str(EXAMPLES_DIR / "adversarial_showdown.py"),
            run_name="__main__",
        )
    output = buffer.getvalue()
    # The adversary table's K=4 row ends with ratio exactly 4.000.
    assert "4.000" in output
