"""Cross-chapter integration tests: the reductions the thesis states.

The thesis ties its models together through explicit specialisations:
OLD with d=0 is the parking permit problem; SCLD with d=0 is
SetCoverLeasing; SetMulticoverLeasing with one single-element set system
is the parking permit problem; K=1 with an infinite lease recovers the
non-leasing problems.  Each reduction is checked end to end.
"""

import pytest

from repro.core import LeaseSchedule, buy_forever_schedule, run_online
from repro.deadlines import (
    DeadlineElement,
    OnlineLeasingWithDeadlines,
    OnlineSCLD,
    SCLDInstance,
    make_old_instance,
    optimal_dp,
)
from repro.parking import (
    DeterministicParkingPermit,
    make_instance,
    optimal_general,
    optimal_interval,
)
from repro.setcover import (
    MulticoverDemand,
    OnlineSetMulticoverLeasing,
    SetMulticoverLeasingInstance,
    SetSystem,
    optimum as setcover_optimum,
)
from repro.workloads import bernoulli_days, make_rng


class TestOldIsParkingPermitWhenSlackZero:
    def test_optima_coincide(self, schedule3):
        days = [0, 2, 3, 9, 12]
        parking = make_instance(schedule3, days)
        old = make_old_instance(schedule3, [(day, 0) for day in days])
        assert optimal_dp(old) == pytest.approx(
            optimal_interval(parking).cost
        )

    def test_online_costs_coincide(self, schedule3):
        rng = make_rng(0)
        days = bernoulli_days(40, 0.3, rng)
        old_algorithm = OnlineLeasingWithDeadlines(schedule3)
        parking_algorithm = DeterministicParkingPermit(schedule3)
        for day in days:
            old_algorithm.on_demand((day, 0))
            parking_algorithm.on_demand(day)
        assert old_algorithm.cost == pytest.approx(parking_algorithm.cost)


class TestMulticoverWithSingleSetIsParkingPermit:
    def single_set_instance(self, schedule, days):
        system = SetSystem(
            num_elements=1,
            sets=[{0}],
            lease_costs=[[t.cost for t in schedule]],
        )
        demands = tuple(MulticoverDemand(0, day) for day in days)
        return SetMulticoverLeasingInstance(
            system=system, schedule=schedule, demands=demands
        )

    def test_optima_coincide(self, schedule3):
        days = [0, 1, 5, 9]
        instance = self.single_set_instance(schedule3, days)
        parking = make_instance(schedule3, days)
        bounds = setcover_optimum(instance)
        assert bounds.lower == pytest.approx(optimal_interval(parking).cost)

    def test_online_feasible_and_bounded(self, schedule3):
        days = [0, 1, 5, 9, 13]
        instance = self.single_set_instance(schedule3, days)
        algorithm = OnlineSetMulticoverLeasing(instance, seed=0)
        run_online(algorithm, instance.demands)
        assert instance.is_feasible_solution(list(algorithm.leases))


class TestScldZeroSlackIsSetCoverLeasing:
    def test_same_covering_program_optimum(self, schedule2):
        system = SetSystem(
            num_elements=3,
            sets=[{0, 1}, {1, 2}, {0, 2}],
            lease_costs=[[1.0, 1.6]] * 3,
        )
        demand_pairs = [(0, 0), (1, 1), (2, 5)]
        scld = SCLDInstance(
            system=system,
            schedule=schedule2,
            demands=tuple(
                DeadlineElement(e, t, 0) for e, t in demand_pairs
            ),
        )
        multicover = SetMulticoverLeasingInstance(
            system=system,
            schedule=schedule2,
            demands=tuple(
                MulticoverDemand(e, t, 1) for e, t in demand_pairs
            ),
        )
        from repro.lp import solve_ilp

        scld_opt = solve_ilp(scld.to_covering_program()).value
        multi_opt = solve_ilp(multicover.to_covering_program()).value
        assert scld_opt == pytest.approx(multi_opt)

    def test_scld_solution_serves_multicover_semantics(self, schedule2):
        system = SetSystem(
            num_elements=2,
            sets=[{0}, {1}, {0, 1}],
            lease_costs=[[1.0, 1.6]] * 3,
        )
        scld = SCLDInstance(
            system=system,
            schedule=schedule2,
            demands=(
                DeadlineElement(0, 0, 0),
                DeadlineElement(1, 2, 0),
            ),
        )
        algorithm = OnlineSCLD(scld, seed=1)
        for demand in scld.demands:
            algorithm.on_demand(demand)
        multicover = SetMulticoverLeasingInstance(
            system=system,
            schedule=schedule2,
            demands=(
                MulticoverDemand(0, 0, 1),
                MulticoverDemand(1, 2, 1),
            ),
        )
        assert multicover.is_feasible_solution(list(algorithm.leases))


class TestBuyForeverRecoversClassicalProblems:
    def test_parking_with_infinite_lease_buys_once(self):
        schedule = buy_forever_schedule(64, cost=5.0)
        algorithm = DeterministicParkingPermit(schedule)
        for day in [0, 10, 30, 63]:
            algorithm.on_demand(day)
        assert algorithm.cost == pytest.approx(5.0)
        assert len(algorithm.leases) == 1

    def test_infinite_lease_optimum_is_single_purchase(self):
        schedule = buy_forever_schedule(64, cost=5.0)
        instance = make_instance(schedule, [0, 10, 30, 63])
        assert optimal_general(instance).cost == pytest.approx(5.0)


class TestLeaseExpiryForcesRepurchase:
    def test_same_demand_after_expiry_costs_again(self, schedule2):
        """The defining difference between leasing and buying."""
        system = SetSystem(
            num_elements=1, sets=[{0}], lease_costs=[[1.0, 1.6]]
        )
        demands = (
            MulticoverDemand(0, 0, 1),
            MulticoverDemand(0, 50, 1),
        )
        instance = SetMulticoverLeasingInstance(
            system=system, schedule=schedule2, demands=demands
        )
        algorithm = OnlineSetMulticoverLeasing(instance, seed=0)
        run_online(algorithm, demands)
        # lmax = 2 < 50: no single lease spans both arrivals.
        assert len(algorithm.leases) >= 2
