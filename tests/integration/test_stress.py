"""Scale smoke tests: the library handles realistic stream sizes quickly.

These are not micro-benchmarks (see benchmarks/) but guardrails: each
algorithm must process a workload one to two orders of magnitude larger
than the property tests use, stay feasible, and finish within a loose
wall-clock budget, so accidental quadratic blow-ups get caught by CI
rather than by users.
"""

import time

import pytest

from repro.core import LeaseSchedule, run_online
from repro.deadlines import make_old_instance, run_old
from repro.parking import (
    DeterministicParkingPermit,
    RandomizedParkingPermit,
    make_instance,
    optimal_general,
)
from repro.setcover import OnlineSetMulticoverLeasing, random_instance
from repro.workloads import bernoulli_days, deadline_arrivals, make_rng

BUDGET_SECONDS = 10.0


def timed(fn):
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    return result, elapsed


def covers_all_days(leases, days) -> bool:
    """Linear-time feasibility check for large parking instances.

    The model's quadratic verifier is fine at property-test scale but
    dominates these stress runs; expanding leases into a covered-day set
    once keeps the check honest and fast.
    """
    covered: set[int] = set()
    for lease in leases:
        covered.update(range(lease.start, lease.end))
    return all(day in covered for day in days)


class TestScale:
    def test_parking_ten_thousand_days(self):
        schedule = LeaseSchedule.power_of_two(6, cost_growth=1.7)
        days = bernoulli_days(50_000, 0.2, make_rng(0))
        instance = make_instance(schedule, days)

        def run():
            algorithm = DeterministicParkingPermit(schedule)
            run_online(algorithm, instance.rainy_days)
            return algorithm

        algorithm, elapsed = timed(run)
        assert elapsed < BUDGET_SECONDS
        assert covers_all_days(algorithm.leases, instance.rainy_days)

    def test_parking_offline_dp_scales(self):
        schedule = LeaseSchedule.power_of_two(6, cost_growth=1.7)
        days = bernoulli_days(50_000, 0.2, make_rng(1))
        instance = make_instance(schedule, days)
        solution, elapsed = timed(lambda: optimal_general(instance))
        assert elapsed < BUDGET_SECONDS
        assert solution.cost > 0

    def test_randomized_parking_scales(self):
        schedule = LeaseSchedule.power_of_two(6, cost_growth=1.7)
        days = bernoulli_days(20_000, 0.15, make_rng(2))
        instance = make_instance(schedule, days)

        def run():
            algorithm = RandomizedParkingPermit(schedule, seed=0)
            run_online(algorithm, instance.rainy_days)
            return algorithm

        algorithm, elapsed = timed(run)
        assert elapsed < BUDGET_SECONDS
        assert covers_all_days(algorithm.leases, instance.rainy_days)

    def test_multicover_thousand_demands(self):
        instance = random_instance(
            num_elements=200,
            num_sets=60,
            memberships=4,
            schedule=LeaseSchedule.power_of_two(3),
            horizon=500,
            num_demands=1_000,
            rng=make_rng(3),
            max_coverage=2,
        )

        def run():
            algorithm = OnlineSetMulticoverLeasing(instance, seed=0)
            run_online(algorithm, instance.demands)
            return algorithm

        algorithm, elapsed = timed(run)
        assert elapsed < BUDGET_SECONDS
        assert instance.is_feasible_solution(list(algorithm.leases))

    def test_old_thousand_clients(self):
        schedule = LeaseSchedule.power_of_two(4)
        clients = deadline_arrivals(
            4_000, 0.4, max_slack=10, rng=make_rng(4)
        )
        instance = make_old_instance(schedule, clients).normalized()
        algorithm, elapsed = timed(lambda: run_old(instance))
        assert elapsed < BUDGET_SECONDS
        assert instance.is_feasible_solution(list(algorithm.leases))
        assert len(instance.clients) > 1_000
