"""The PR 8 CLI surface: ``engine loadgen --json`` summaries and the
``engine trace-tree`` reconstructor over merged span files."""

import json

import pytest

from repro.cli import main


class TestLoadgenJson:
    ARGS = [
        "engine", "loadgen", "--horizon", "48", "--resources", "4",
        "--shards", "2", "--check", "--json",
    ]

    def test_emits_machine_readable_summary(self, capsys):
        assert main(self.ARGS) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "markov"
        assert payload["horizon"] == 48
        assert payload["report_equal"] is True
        assert payload["requests"] > 0
        assert payload["leases"] > 0
        latencies = payload["tenant_latency"]
        assert latencies, "--check samples per-tenant latency"
        for tenant, row in latencies.items():
            assert set(row) == {"count", "p50", "p95", "p99"}
            assert row["count"] > 0
            assert 0 <= row["p50"] <= row["p95"] <= row["p99"]

    def test_json_is_the_whole_stdout(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        json.loads(out)  # no tables around the object

    def test_without_json_keeps_the_tables(self, capsys):
        assert main(self.ARGS[:-1]) == 0
        out = capsys.readouterr().out
        assert "report equals inline replay" in out
        assert "per-tenant op latency" in out


def _span(trace, span_id, parent=None, kind="client", op="acquire"):
    span = {
        "id": 1, "op": op, "tenant": "t-0", "resource": 2,
        "t_enq": 1.0, "t_disp": 1.0, "t_reply": 1.5,
        "trace": trace, "span_id": span_id, "kind": kind,
    }
    if parent is not None:
        span["parent"] = parent
    return span


@pytest.fixture
def span_files(tmp_path):
    """Two files splitting one client -> relay -> dispatch trace, plus
    a second single-span trace."""
    trace_a, trace_b = "aa" * 8, "bb" * 8
    client = tmp_path / "client.jsonl"
    fleet = tmp_path / "fleet.jsonl"
    client.write_text(
        json.dumps(_span(trace_a, "c" * 16)) + "\n"
        + json.dumps(_span(trace_b, "d" * 16, op="release")) + "\n"
    )
    fleet.write_text(
        json.dumps(_span(trace_a, "r" * 16, parent="c" * 16, kind="relay"))
        + "\n"
        + json.dumps(
            _span(trace_a, "w" * 16, parent="r" * 16, kind="dispatch")
        )
        + "\n"
    )
    return trace_a, trace_b, [str(client), str(fleet)]


class TestTraceTree:
    def test_renders_one_tree_per_trace(self, span_files, capsys):
        trace_a, trace_b, files = span_files
        assert main(["engine", "trace-tree", *files]) == 0
        out = capsys.readouterr().out
        assert f"trace {trace_a}" in out
        assert f"trace {trace_b}" in out
        lines = out.splitlines()
        a_at = lines.index(f"trace {trace_a}")
        assert lines[a_at + 1].startswith("  - client acquire")
        assert lines[a_at + 2].startswith("    - relay acquire")
        assert lines[a_at + 3].startswith("      - dispatch acquire")

    def test_trace_filter_selects_and_json_nests(self, span_files, capsys):
        trace_a, _, files = span_files
        assert main(
            ["engine", "trace-tree", *files, "--trace", trace_a, "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert list(payload) == [trace_a]
        (root,) = payload[trace_a]
        assert root["kind"] == "client"
        (relay,) = root["children"]
        (dispatch,) = relay["children"]
        assert relay["kind"] == "relay"
        assert dispatch["kind"] == "dispatch"

    def test_unknown_trace_filter_fails(self, span_files, capsys):
        _, _, files = span_files
        assert main(
            ["engine", "trace-tree", *files, "--trace", "ff" * 8]
        ) == 1
        assert "no spans for trace" in capsys.readouterr().err

    def test_unreadable_file_fails_with_two(self, tmp_path, capsys):
        assert main(
            ["engine", "trace-tree", str(tmp_path / "absent.jsonl")]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_span_files_without_context_say_so(self, tmp_path, capsys):
        path = tmp_path / "plain.jsonl"
        path.write_text('{"id": 1, "op": "acquire", "t_enq": 0.0}\n')
        assert main(["engine", "trace-tree", str(path)]) == 0
        assert "no trace-context spans" in capsys.readouterr().out
