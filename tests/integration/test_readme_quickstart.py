"""Doc-rot guard: the README's quickstart code block must actually run.

Extracts the first fenced Python block from README.md and executes it;
if the public API drifts, this test fails before a user's copy-paste
does.
"""

import io
import re
from contextlib import redirect_stdout
from pathlib import Path

README = Path(__file__).resolve().parents[2] / "README.md"


def extract_first_python_block(text: str) -> str:
    match = re.search(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert match, "README has no fenced python block"
    return match.group(1)


def test_readme_quickstart_executes():
    code = extract_first_python_block(README.read_text(encoding="utf-8"))
    buffer = io.StringIO()
    namespace: dict = {}
    with redirect_stdout(buffer):
        exec(compile(code, "README-quickstart", "exec"), namespace)
    output = buffer.getvalue()
    assert "online" in output
    assert "OPT" in output


def test_readme_mentions_all_chapters():
    text = README.read_text(encoding="utf-8")
    for phrase in (
        "Parking permit",
        "Set multicover leasing",
        "Facility leasing",
        "deadlines",
        "EXPERIMENTS.md",
        "DESIGN.md",
    ):
        assert phrase in text, f"README is missing {phrase!r}"
