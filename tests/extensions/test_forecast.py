"""Tests for prediction-augmented parking permits (stochastic outlook)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LeaseSchedule, run_online
from repro.errors import ModelError
from repro.extensions import (
    ForecastParkingPermit,
    HedgedForecastParkingPermit,
    NoisyOracle,
)
from repro.parking import (
    DeterministicParkingPermit,
    make_instance,
    optimal_interval,
)
from repro.workloads import burst_days, make_rng, markov_days


def build(seed, horizon=120):
    schedule = LeaseSchedule.power_of_two(4, cost_growth=1.6)
    days = markov_days(horizon, 0.1, 0.85, make_rng(seed))
    if not days:
        days = [0]
    return schedule, make_instance(schedule, days)


class TestNoisyOracle:
    def test_zero_error_is_truth(self):
        schedule, instance = build(1)
        oracle = NoisyOracle(instance, 0.0, make_rng(0))
        for day in range(instance.horizon):
            assert oracle.predicts_rain(day) == (day in instance.rainy_days)

    def test_full_error_is_inverted_truth(self):
        schedule, instance = build(1)
        oracle = NoisyOracle(instance, 1.0, make_rng(0))
        for day in range(instance.horizon):
            assert oracle.predicts_rain(day) != (day in instance.rainy_days)

    def test_forecast_memoised(self):
        schedule, instance = build(2)
        oracle = NoisyOracle(instance, 0.5, make_rng(3))
        first = [oracle.predicts_rain(d) for d in range(30)]
        second = [oracle.predicts_rain(d) for d in range(30)]
        assert first == second

    def test_window_count(self):
        schedule, instance = build(3)
        oracle = NoisyOracle(instance, 0.0, make_rng(0))
        count = oracle.predicted_rainy_days(0, instance.horizon)
        assert count == instance.num_days

    def test_rejects_bad_rate(self):
        schedule, instance = build(0)
        with pytest.raises(ModelError):
            NoisyOracle(instance, 1.5, make_rng(0))


class TestForecastPolicies:
    @given(
        seed=st.integers(min_value=0, max_value=40),
        error=st.sampled_from([0.0, 0.2, 0.5]),
    )
    @settings(max_examples=20)
    def test_both_policies_feasible(self, seed, error):
        schedule, instance = build(seed)
        for policy_class in (ForecastParkingPermit, HedgedForecastParkingPermit):
            oracle = NoisyOracle(instance, error, make_rng(seed + 1))
            policy = policy_class(schedule, oracle)
            run_online(policy, instance.rainy_days)
            assert instance.is_feasible_solution(list(policy.leases))

    def test_clairvoyant_beats_primal_dual_on_bursts(self):
        """Perfect predictions buy the right long leases immediately."""
        schedule = LeaseSchedule.power_of_two(4, cost_growth=1.6)
        days = burst_days(200, 4, 8, make_rng(11))
        instance = make_instance(schedule, days)
        oracle = NoisyOracle(instance, 0.0, make_rng(0))
        forecast = ForecastParkingPermit(schedule, oracle)
        run_online(forecast, instance.rainy_days)
        primal_dual = DeterministicParkingPermit(schedule)
        run_online(primal_dual, instance.rainy_days)
        assert forecast.cost <= primal_dual.cost + 1e-9

    def test_clairvoyant_near_optimal(self):
        schedule, instance = build(13)
        oracle = NoisyOracle(instance, 0.0, make_rng(0))
        forecast = ForecastParkingPermit(schedule, oracle)
        run_online(forecast, instance.rainy_days)
        opt = optimal_interval(instance).cost
        assert forecast.cost <= 2.0 * opt + 1e-6

    def test_hedge_caps_window_spending(self):
        """With adversarial predictions the hedged policy's spend per
        longest window is bounded by hedge * c_K + c_K + c_0-ish."""
        schedule = LeaseSchedule.power_of_two(3, cost_growth=1.5)
        days = list(range(4))  # one longest window (length 4)
        instance = make_instance(schedule, days)
        oracle = NoisyOracle(instance, 1.0, make_rng(5))  # always wrong
        hedged = HedgedForecastParkingPermit(schedule, oracle, hedge=1.0)
        run_online(hedged, instance.rainy_days)
        assert instance.is_feasible_solution(list(hedged.leases))
        longest_cost = schedule[2].cost
        assert hedged.cost <= 2 * longest_cost + schedule[0].cost + 1e-6

    def test_hedged_never_much_worse_than_pure_with_good_oracle(self):
        schedule, instance = build(17)
        pure = ForecastParkingPermit(
            schedule, NoisyOracle(instance, 0.0, make_rng(1))
        )
        hedged = HedgedForecastParkingPermit(
            schedule, NoisyOracle(instance, 0.0, make_rng(1)), hedge=1.0
        )
        run_online(pure, instance.rainy_days)
        run_online(hedged, instance.rainy_days)
        assert hedged.cost <= 2.0 * pure.cost + 1e-9

    def test_hedged_beats_pure_under_bad_predictions(self):
        """The robustness payoff: with an inverted oracle on dense rain,
        hedging must not lose to pure prediction-following."""
        schedule = LeaseSchedule.power_of_two(4, cost_growth=1.3)
        days = list(range(32))
        instance = make_instance(schedule, days)
        pure = ForecastParkingPermit(
            schedule, NoisyOracle(instance, 1.0, make_rng(2))
        )
        hedged = HedgedForecastParkingPermit(
            schedule, NoisyOracle(instance, 1.0, make_rng(2)), hedge=1.0
        )
        run_online(pure, instance.rainy_days)
        run_online(hedged, instance.rainy_days)
        assert hedged.cost <= pure.cost + 1e-9
