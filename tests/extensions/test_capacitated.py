"""Tests for capacitated facility leasing (Section 4.5 outlook)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LeaseSchedule
from repro.errors import ModelError
from repro.extensions import (
    CapacitatedInstance,
    OnlineCapacitatedFacilityLeasing,
    optimal_ilp,
)
from repro.facility import Client, Connection, FacilityLeasingInstance, make_instance
from repro.workloads import constant_batches, make_rng


def build(seed, capacities, batches=None, num_facilities=3):
    rng = make_rng(seed)
    schedule = LeaseSchedule.power_of_two(2)
    if batches is None:
        batches = constant_batches(4, 2)
    base = make_instance(
        schedule, num_facilities=num_facilities, batch_sizes=batches, rng=rng
    )
    return CapacitatedInstance(base=base, capacities=tuple(capacities))


def run(instance):
    algorithm = OnlineCapacitatedFacilityLeasing(instance)
    for batch in instance.base.batches():
        algorithm.on_demand(batch)
    return algorithm


class TestModel:
    def test_rejects_capacity_shape(self):
        with pytest.raises(ModelError):
            build(0, capacities=[1, 1])  # 3 facilities need 3 capacities

    def test_rejects_zero_capacity(self):
        with pytest.raises(ModelError):
            build(0, capacities=[0, 1, 1])

    def test_rejects_oversized_batch(self):
        with pytest.raises(ModelError):
            build(0, capacities=[1, 1, 1], batches=[4])

    def test_feasibility_catches_overload(self, schedule2):
        base = FacilityLeasingInstance(
            facility_points=((0.0, 0.0), (5.0, 0.0)),
            lease_costs=((1.0, 1.6), (1.0, 1.6)),
            schedule=schedule2,
            clients=(
                Client(ident=0, point=(1.0, 0.0), arrival=0),
                Client(ident=1, point=(2.0, 0.0), arrival=0),
            ),
        )
        lease = base.facility_lease(0, 0, 0)
        overloaded = [
            Connection(client=0, facility=0, distance=1.0),
            Connection(client=1, facility=0, distance=2.0),
        ]
        roomy = CapacitatedInstance(base=base, capacities=(2, 2))
        assert roomy.is_feasible_solution([lease], overloaded)
        tight = CapacitatedInstance(base=base, capacities=(1, 1))
        assert not tight.is_feasible_solution([lease], overloaded)


class TestOnline:
    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=15)
    def test_always_feasible(self, seed):
        instance = build(seed, capacities=[2, 2, 2])
        algorithm = run(instance)
        assert instance.is_feasible_solution(
            list(algorithm.leases), algorithm.connections
        )

    def test_capacity_forces_spread(self):
        """Capacity 1 per facility forces one client per facility/step."""
        instance = build(3, capacities=[1, 1, 1], batches=[3, 3])
        algorithm = run(instance)
        assert instance.is_feasible_solution(
            list(algorithm.leases), algorithm.connections
        )
        # Each step's three clients use three distinct facilities.
        arrival_of = {
            client.ident: client.arrival
            for client in instance.base.clients
        }
        per_step: dict[int, set[int]] = {}
        for connection in algorithm.connections:
            per_step.setdefault(
                arrival_of[connection.client], set()
            ).add(connection.facility)
        for facilities in per_step.values():
            assert len(facilities) == 3

    def test_capacity_cost_dominates_uncapacitated(self):
        """Tighter capacity can only raise the (exact) optimum."""
        loose = build(4, capacities=[4, 4, 4])
        tight = build(4, capacities=[1, 1, 1])
        assert optimal_ilp(tight) >= optimal_ilp(loose) - 1e-6

    def test_online_within_modest_factor_of_ilp(self):
        instance = build(6, capacities=[2, 2, 2])
        algorithm = run(instance)
        opt = optimal_ilp(instance)
        assert algorithm.cost <= 5.0 * opt + 1e-6

    def test_demand_rate_ratchets_lease_type(self):
        """Sustained demand pushes the preferred type beyond the shortest."""
        instance = build(
            8, capacities=[6, 6, 6], batches=constant_batches(8, 4)
        )
        algorithm = run(instance)
        assert any(lease.type_index > 0 for lease in algorithm.leases)
