"""Tests for the special cases: SetCoverLeasing, OnlineSetMulticover,
OnlineSetCoverWithRepetitions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_online
from repro.errors import InfeasibleError
from repro.setcover import (
    MulticoverDemand,
    OnlineSetCoverLeasing,
    OnlineSetCoverWithRepetitions,
    SetMulticoverLeasingInstance,
    non_leasing_instance,
    optimum,
    repetitions_to_multicover,
)
from repro.workloads import make_rng


def star_instance(horizon=12):
    """Three elements, four sets, classical buy-forever costs."""
    return non_leasing_instance(
        num_elements=3,
        sets=[{0, 1}, {1, 2}, {0, 2}, {0, 1, 2}],
        set_costs=[1.0, 2.0, 1.5, 3.0],
        horizon=horizon,
        demands=[(0, 0, 1), (1, 2, 2), (2, 4, 1)],
    )


class TestNonLeasingInstance:
    def test_single_infinite_type(self):
        instance = star_instance()
        assert instance.schedule.num_types == 1
        assert instance.schedule.lmax >= 12

    def test_leases_never_expire_within_horizon(self):
        instance = star_instance()
        lease = instance.candidate_lease(0, 0, 0)
        assert lease.covers(11)

    def test_online_run_feasible_and_bounded(self):
        instance = star_instance()
        from repro.setcover import OnlineSetMulticoverLeasing

        algorithm = OnlineSetMulticoverLeasing(instance, seed=0)
        run_online(algorithm, instance.demands)
        assert instance.is_feasible_solution(list(algorithm.leases))
        # Buying every set costs 7.5; the algorithm must not exceed that.
        assert algorithm.cost <= 7.5 + 1e-9


class TestSetCoverLeasing:
    def test_forces_unit_coverage(self):
        instance = star_instance()
        algorithm = OnlineSetCoverLeasing(instance, seed=0)
        algorithm.on_demand(MulticoverDemand(1, 0, coverage=2))
        demand = MulticoverDemand(1, 0, coverage=1)
        covering = instance.covering_sets(list(algorithm.leases), demand)
        assert len(covering) >= 1

    def test_tuple_demands(self):
        instance = star_instance()
        algorithm = OnlineSetCoverLeasing(instance, seed=0)
        algorithm.on_demand((2, 1))
        assert any(
            lease.covers(1) and 2 in instance.system.sets[lease.resource]
            for lease in algorithm.leases
        )


class TestRepetitions:
    def test_assignments_distinct_per_element(self):
        instance = star_instance()
        algorithm = OnlineSetCoverWithRepetitions(instance, seed=0)
        for demand in [(0, 0), (0, 1), (0, 2), (1, 3)]:
            algorithm.on_demand(demand)
        assert algorithm.is_assignment_valid()
        used = [
            set_index
            for element, _, set_index in algorithm.assignments
            if element == 0
        ]
        assert len(used) == len(set(used)) == 3

    def test_exhausting_sets_raises(self):
        instance = star_instance()
        algorithm = OnlineSetCoverWithRepetitions(instance, seed=0)
        for arrival in range(3):
            algorithm.on_demand((0, arrival))  # element 0 is in 3 sets
        with pytest.raises(InfeasibleError):
            algorithm.on_demand((0, 3))

    def test_wider_threshold_draws(self):
        instance = star_instance()
        import math

        algorithm = OnlineSetCoverWithRepetitions(instance, seed=0)
        delta = instance.system.delta
        n = instance.system.num_elements
        assert algorithm.num_threshold_draws == 2 * math.ceil(
            math.log2(delta * n + 1)
        )

    def test_free_riding_on_existing_leases(self):
        """A set leased for one element serves another's arrival for free."""
        instance = star_instance()
        algorithm = OnlineSetCoverWithRepetitions(instance, seed=0)
        algorithm.on_demand((0, 0))
        cost_after_first = algorithm.cost
        # Element 1 shares sets with element 0; if the leased set contains
        # element 1, its first arrival costs nothing.
        leased = {lease.resource for lease in algorithm.leases}
        shared = leased & set(instance.system.sets_containing(1))
        if shared:
            algorithm.on_demand((1, 1))
            assert algorithm.cost == cost_after_first

    @given(seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=15)
    def test_random_streams_stay_valid(self, seed):
        rng = make_rng(seed)
        instance = star_instance(horizon=30)
        algorithm = OnlineSetCoverWithRepetitions(instance, seed=seed)
        arrivals_left = {0: 3, 1: 3, 2: 3}
        t = 0
        for _ in range(6):
            element = rng.choice(
                [e for e, left in arrivals_left.items() if left > 0]
            )
            arrivals_left[element] -= 1
            algorithm.on_demand((element, t))
            t += 1
        assert algorithm.is_assignment_valid()


class TestRewriting:
    def test_repetitions_to_multicover_counts(self):
        demands = [(0, 0), (1, 0), (0, 1), (0, 2)]
        rewritten = repetitions_to_multicover(demands)
        coverages = [d.coverage for d in rewritten]
        assert coverages == [1, 1, 2, 3]

    def test_rewritten_instance_validates(self):
        instance = star_instance()
        rewritten = repetitions_to_multicover([(0, 0), (0, 1)])
        SetMulticoverLeasingInstance(
            system=instance.system,
            schedule=instance.schedule,
            demands=tuple(rewritten),
        )


class TestOnlineSetMulticoverOptimality:
    def test_matches_offline_on_trivial_instance(self):
        """With one set per element, online must buy exactly OPT."""
        instance = non_leasing_instance(
            num_elements=2,
            sets=[{0}, {1}],
            set_costs=[2.0, 3.0],
            horizon=4,
            demands=[(0, 0, 1), (1, 1, 1)],
        )
        from repro.setcover import OnlineSetMulticoverLeasing

        algorithm = OnlineSetMulticoverLeasing(instance, seed=0)
        run_online(algorithm, instance.demands)
        opt = optimum(instance)
        assert algorithm.cost == pytest.approx(opt.lower)
