"""Tests for the randomized SetMulticoverLeasing algorithm (Alg 3+4)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LeaseSchedule, run_online
from repro.analysis import verify_multicover
from repro.errors import InfeasibleError
from repro.setcover import (
    MulticoverDemand,
    OnlineSetMulticoverLeasing,
    SetMulticoverLeasingInstance,
    SetSystem,
    optimum,
    random_instance,
)
from repro.workloads import make_rng


def small_instance(seed, max_coverage=2, num_demands=15):
    rng = make_rng(seed)
    schedule = LeaseSchedule.power_of_two(2)
    return random_instance(
        num_elements=8,
        num_sets=6,
        memberships=3,
        schedule=schedule,
        horizon=16,
        num_demands=num_demands,
        rng=rng,
        max_coverage=max_coverage,
    )


class TestFeasibility:
    @given(
        seed=st.integers(min_value=0, max_value=100),
        algo_seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=25)
    def test_always_feasible(self, seed, algo_seed):
        instance = small_instance(seed)
        algorithm = OnlineSetMulticoverLeasing(instance, seed=algo_seed)
        run_online(algorithm, instance.demands)
        verify_multicover(instance, list(algorithm.leases)).raise_if_failed()

    def test_distinct_sets_enforced(self, schedule2):
        """A demand with p=2 must end with two distinct active sets."""
        system = SetSystem(
            num_elements=1,
            sets=[{0}, {0}, {0}],
            lease_costs=[[1.0, 1.5]] * 3,
        )
        demand = MulticoverDemand(0, 0, coverage=2)
        instance = SetMulticoverLeasingInstance(
            system=system, schedule=schedule2, demands=(demand,)
        )
        algorithm = OnlineSetMulticoverLeasing(instance, seed=0)
        algorithm.on_demand(demand)
        covering = instance.covering_sets(list(algorithm.leases), demand)
        assert len(covering) >= 2

    def test_infeasible_demand_raises(self, schedule2):
        system = SetSystem(
            num_elements=2, sets=[{0}], lease_costs=[[1.0, 1.5]]
        )
        instance = SetMulticoverLeasingInstance(
            system=system, schedule=schedule2, demands=()
        )
        algorithm = OnlineSetMulticoverLeasing(instance, seed=0)
        with pytest.raises(InfeasibleError):
            algorithm.on_demand((1, 0, 1))  # element 1 is in no set

    def test_tuple_demand_accepted(self, schedule2):
        system = SetSystem(
            num_elements=1, sets=[{0}], lease_costs=[[1.0, 1.5]]
        )
        instance = SetMulticoverLeasingInstance(
            system=system, schedule=schedule2, demands=()
        )
        algorithm = OnlineSetMulticoverLeasing(instance, seed=0)
        algorithm.on_demand((0, 3))
        assert algorithm.store.covers(0, 3)


class TestThresholds:
    def test_default_draw_count(self):
        instance = small_instance(0)
        algorithm = OnlineSetMulticoverLeasing(instance, seed=0)
        n = instance.system.num_elements
        assert algorithm.num_threshold_draws == 2 * math.ceil(
            math.log2(n + 1)
        )

    def test_thresholds_memoised(self):
        instance = small_instance(0)
        algorithm = OnlineSetMulticoverLeasing(instance, seed=0)
        key = (0, 0, 0)
        first = algorithm._threshold(key)
        assert algorithm._threshold(key) == first

    def test_reproducible_with_seed(self):
        instance = small_instance(3)
        costs = {
            OnlineSetMulticoverLeasing(instance, seed=5).cost
            for _ in range(2)
        }
        runs = []
        for _ in range(2):
            algorithm = OnlineSetMulticoverLeasing(instance, seed=5)
            run_online(algorithm, instance.demands)
            runs.append(round(algorithm.cost, 9))
        assert runs[0] == runs[1]
        assert costs == {0.0}


class TestCompetitiveness:
    def test_ratio_within_theorem_bound_on_average(self):
        """Theorem 3.3 with explicit constants, averaged over seeds.

        The proof constants give roughly 4 log(delta K) * 2 log(n+1); we
        assert the measured mean ratio stays under that generous ceiling.
        """
        instance = small_instance(7, max_coverage=2, num_demands=20)
        opt = optimum(instance)
        ratios = []
        for seed in range(15):
            algorithm = OnlineSetMulticoverLeasing(instance, seed=seed)
            run_online(algorithm, instance.demands)
            ratios.append(algorithm.cost / opt.lower)
        mean = sum(ratios) / len(ratios)
        system = instance.system
        delta_k = system.delta * instance.schedule.num_types
        n = system.num_elements
        bound = (
            4.0
            * (math.log(delta_k) + 2.0)
            * (2.0 * math.log2(n + 1) + 2.0)
        )
        assert mean <= bound

    def test_fractional_cost_bound(self):
        """Lemma 3.1: fractional cost <= O(log(delta K)) * OPT."""
        instance = small_instance(11, num_demands=20)
        opt = optimum(instance)
        algorithm = OnlineSetMulticoverLeasing(instance, seed=1)
        run_online(algorithm, instance.demands)
        delta_k = instance.system.delta * instance.schedule.num_types
        # p_max multiplies the optimal charge per layer; include it.
        p_max = max(demand.coverage for demand in instance.demands)
        bound = 2.0 * (math.log(delta_k) + 2.0) * (
            p_max * opt.lower + instance.system.lease_costs[0][0] + 2.0
        )
        assert algorithm.fractional_cost <= bound

    def test_cost_monotone_over_stream(self):
        instance = small_instance(2)
        algorithm = OnlineSetMulticoverLeasing(instance, seed=0)
        previous = 0.0
        for demand in instance.demands:
            algorithm.on_demand(demand)
            assert algorithm.cost >= previous - 1e-12
            previous = algorithm.cost
