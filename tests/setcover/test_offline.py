"""Tests for the set cover leasing offline baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LeaseSchedule
from repro.setcover import (
    greedy,
    optimal_leases,
    optimum,
    random_instance,
    random_set_system,
)
from repro.workloads import make_rng
from repro.errors import ModelError


def instance_for(seed, **overrides):
    params = dict(
        num_elements=6,
        num_sets=5,
        memberships=2,
        schedule=LeaseSchedule.power_of_two(2),
        horizon=10,
        num_demands=8,
        rng=make_rng(seed),
        max_coverage=2,
    )
    params.update(overrides)
    return random_instance(**params)


class TestGenerators:
    def test_every_element_in_enough_sets(self):
        system = random_set_system(
            10, 6, 3, LeaseSchedule.power_of_two(2), make_rng(0)
        )
        for element in range(10):
            assert len(system.sets_containing(element)) >= 3

    def test_no_empty_sets(self):
        system = random_set_system(
            3, 20, 1, LeaseSchedule.power_of_two(2), make_rng(1)
        )
        assert all(len(members) > 0 for members in system.sets)

    def test_costs_follow_schedule_profile(self):
        schedule = LeaseSchedule.power_of_two(3)
        system = random_set_system(5, 4, 2, schedule, make_rng(2))
        for row in system.lease_costs:
            ratios = [row[k] / schedule[k].cost for k in range(3)]
            assert max(ratios) - min(ratios) < 1e-9

    def test_membership_validation(self):
        with pytest.raises(ModelError):
            random_set_system(
                5, 3, 4, LeaseSchedule.power_of_two(2), make_rng(0)
            )

    def test_demands_sorted_and_feasible(self):
        instance = instance_for(5)
        arrivals = [demand.arrival for demand in instance.demands]
        assert arrivals == sorted(arrivals)


class TestGreedy:
    @given(seed=st.integers(min_value=0, max_value=60))
    @settings(max_examples=20)
    def test_feasible(self, seed):
        instance = instance_for(seed)
        solution = greedy(instance)
        assert instance.is_feasible_solution(list(solution.leases))

    @given(seed=st.integers(min_value=0, max_value=60))
    @settings(max_examples=20)
    def test_upper_bounds_opt(self, seed):
        instance = instance_for(seed)
        solution = greedy(instance)
        bounds = optimum(instance)
        assert solution.cost >= bounds.lower - 1e-6

    def test_cost_matches_leases(self):
        instance = instance_for(9)
        solution = greedy(instance)
        assert solution.cost == pytest.approx(
            sum(lease.cost for lease in solution.leases)
        )


class TestOptimum:
    @given(seed=st.integers(min_value=0, max_value=40))
    @settings(max_examples=15)
    def test_exact_solution_feasible_per_ilp(self, seed):
        instance = instance_for(seed, num_demands=6)
        value, leases = optimal_leases(instance)
        program = instance.to_covering_program()
        owned = {lease.key for lease in leases}
        x = [
            1.0 if payload.key in owned else 0.0
            for payload in program.payloads
        ]
        assert program.is_feasible(x)
        assert value == pytest.approx(sum(lease.cost for lease in leases))

    def test_bracket_mode_for_large_limit(self):
        instance = instance_for(3)
        bounds = optimum(instance, exact_variable_limit=1)
        assert not bounds.exact
        assert bounds.lower <= bounds.upper + 1e-9
