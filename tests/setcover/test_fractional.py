"""Tests for the shared fractional-increment primitive (Lemma 3.1 core)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.setcover import candidate_sum, fractional_cost, raise_fractions

costs = st.lists(
    st.floats(min_value=0.5, max_value=20.0, allow_nan=False),
    min_size=1,
    max_size=10,
)


class TestRaiseFractions:
    def test_reaches_target(self):
        fractions = {}
        raise_fractions(fractions, [("a", 2.0), ("b", 3.0)])
        assert candidate_sum(fractions, ["a", "b"]) >= 1.0

    def test_noop_when_covered(self):
        fractions = {"a": 1.5}
        increments = raise_fractions(fractions, [("a", 2.0)])
        assert increments == 0
        assert fractions == {"a": 1.5}

    def test_empty_candidates(self):
        assert raise_fractions({}, []) == 0

    @given(cs=costs)
    def test_each_increment_adds_at_most_two(self, cs):
        """Lemma 3.1, fact 1: one increment adds <= 2 to fractional cost."""
        candidates = [(f"c{i}", c) for i, c in enumerate(cs)]
        fractions = {}
        previous_cost = 0.0
        # Drive increments one at a time by resetting the target.
        increments = raise_fractions(fractions, candidates)
        total_cost = sum(
            cs[i] * fractions[f"c{i}"] for i in range(len(cs))
        )
        assert total_cost <= 2.0 * increments + previous_cost + 1e-9

    @given(cs=costs)
    def test_increment_count_logarithmic(self, cs):
        """Lemma 3.1, fact 2: O(c_min * log |Q|) increments suffice."""
        candidates = [(f"c{i}", c) for i, c in enumerate(cs)]
        fractions = {}
        increments = raise_fractions(fractions, candidates)
        cheapest = min(cs)
        size = len(cs)
        bound = cheapest * (math.log(size) + 1.0) + cheapest + 2.0
        assert increments <= math.ceil(bound) + 1

    @given(cs=costs)
    def test_fractions_nondecreasing_across_calls(self, cs):
        candidates = [(f"c{i}", c) for i, c in enumerate(cs)]
        fractions = {}
        raise_fractions(fractions, candidates)
        before = dict(fractions)
        raise_fractions(fractions, candidates[:1])
        for key, value in before.items():
            assert fractions[key] >= value - 1e-12


class TestFractionalCost:
    def test_caps_at_one(self):
        fractions = {"a": 2.5, "b": 0.5}
        cost = fractional_cost(fractions, cost_of=lambda k: 4.0)
        assert cost == pytest.approx(4.0 * 1.0 + 4.0 * 0.5)

    def test_empty(self):
        assert fractional_cost({}, cost_of=lambda k: 1.0) == 0.0
