"""Determinism of seeded randomized algorithms and verifier negative paths."""

import pytest

from repro.core import LeaseSchedule, run_online
from repro.analysis import (
    verify_facility,
    verify_multicover,
    verify_scld,
)
from repro.deadlines import DeadlineElement, SCLDInstance
from repro.facility import Connection, make_instance as make_facility
from repro.setcover import (
    OnlineSetMulticoverLeasing,
    random_instance,
)
from repro.workloads import constant_batches, make_rng


class TestSeedDeterminism:
    def test_identical_lease_sequences(self):
        """Same seed: byte-identical purchase order, not just equal cost."""
        instance = random_instance(
            num_elements=10, num_sets=6, memberships=3,
            schedule=LeaseSchedule.power_of_two(2), horizon=20,
            num_demands=15, rng=make_rng(4), max_coverage=2,
        )
        runs = []
        for _ in range(2):
            algorithm = OnlineSetMulticoverLeasing(instance, seed=9)
            run_online(algorithm, instance.demands)
            runs.append([lease.key for lease in algorithm.leases])
        assert runs[0] == runs[1]

    def test_different_seeds_usually_differ(self):
        instance = random_instance(
            num_elements=10, num_sets=6, memberships=3,
            schedule=LeaseSchedule.power_of_two(2), horizon=20,
            num_demands=15, rng=make_rng(4), max_coverage=2,
        )
        costs = set()
        for seed in range(6):
            algorithm = OnlineSetMulticoverLeasing(instance, seed=seed)
            run_online(algorithm, instance.demands)
            costs.add(round(algorithm.cost, 6))
        assert len(costs) > 1


class TestVerifierNegativePaths:
    def test_multicover_counts_distinct_sets(self):
        instance = random_instance(
            num_elements=5, num_sets=4, memberships=2,
            schedule=LeaseSchedule.power_of_two(2), horizon=8,
            num_demands=5, rng=make_rng(1), max_coverage=2,
        )
        report = verify_multicover(instance, [])
        assert not report.ok
        assert report.checked == 5
        assert len(report.failures) == 5

    def test_facility_detects_missing_connection(self):
        instance = make_facility(
            LeaseSchedule.power_of_two(2),
            num_facilities=2,
            batch_sizes=constant_batches(2, 1),
            rng=make_rng(2),
        )
        lease = instance.facility_lease(0, 1, 0)
        connections = [Connection(client=0, facility=0, distance=999.0)]
        report = verify_facility(instance, [lease], connections)
        assert not report.ok
        assert any("never connected" in failure for failure in report.failures)

    def test_facility_detects_inactive_lease(self):
        instance = make_facility(
            LeaseSchedule.power_of_two(2),
            num_facilities=2,
            batch_sizes=[1, 0, 0, 0, 1],
            rng=make_rng(3),
        )
        # Lease covering only step 0; client 1 arrives at step 4.
        lease = instance.facility_lease(0, 0, 0)
        connections = [
            Connection(client=0, facility=0, distance=999.0),
            Connection(client=1, facility=0, distance=999.0),
        ]
        report = verify_facility(instance, [lease], connections)
        assert not report.ok
        assert any("no active lease" in failure for failure in report.failures)

    def test_scld_detects_unserved_interval(self, schedule2):
        from repro.setcover import SetSystem

        system = SetSystem(
            num_elements=1, sets=[{0}], lease_costs=[[1.0, 1.5]]
        )
        instance = SCLDInstance(
            system=system,
            schedule=schedule2,
            demands=(DeadlineElement(0, 5, 2),),
        )
        # A lease far away from [5, 7].
        lease = instance.candidates(instance.demands[0])[0]
        far = type(lease)(
            resource=0, type_index=0, start=0, length=1, cost=1.0
        )
        report = verify_scld(instance, [far])
        assert not report.ok

    def test_scld_accepts_any_intersection_point(self, schedule2):
        from repro.setcover import SetSystem

        system = SetSystem(
            num_elements=1, sets=[{0}], lease_costs=[[1.0, 1.5]]
        )
        instance = SCLDInstance(
            system=system,
            schedule=schedule2,
            demands=(DeadlineElement(0, 5, 2),),
        )
        # A lease touching only the deadline day 7 still serves.
        from repro.core import Lease

        touching = Lease(
            resource=0, type_index=0, start=7, length=1, cost=1.0
        )
        assert verify_scld(instance, [touching]).ok
