"""Unit tests for the set multicover leasing model."""

import pytest

from repro.core import LeaseSchedule
from repro.errors import ModelError
from repro.setcover import (
    MulticoverDemand,
    SetMulticoverLeasingInstance,
    SetSystem,
)


def tiny_system(schedule):
    return SetSystem(
        num_elements=3,
        sets=[{0, 1}, {1, 2}, {0, 2}],
        lease_costs=[
            [lease_type.cost for lease_type in schedule] for _ in range(3)
        ],
    )


class TestSetSystem:
    def test_basic_shape(self, schedule3):
        system = tiny_system(schedule3)
        assert system.num_sets == 3
        assert system.num_elements == 3
        assert system.num_types == 3
        assert system.max_set_size == 2

    def test_delta(self, schedule3):
        assert tiny_system(schedule3).delta == 2

    def test_sets_containing(self, schedule3):
        system = tiny_system(schedule3)
        assert set(system.sets_containing(0)) == {0, 2}
        assert set(system.sets_containing(1)) == {0, 1}

    def test_rejects_empty_set(self, schedule3):
        with pytest.raises(ModelError):
            SetSystem(num_elements=2, sets=[set()], lease_costs=[[1.0] * 3])

    def test_rejects_out_of_range_element(self):
        with pytest.raises(ModelError):
            SetSystem(num_elements=2, sets=[{0, 5}], lease_costs=[[1.0]])

    def test_rejects_cost_shape_mismatch(self):
        with pytest.raises(ModelError):
            SetSystem(
                num_elements=2,
                sets=[{0}, {1}],
                lease_costs=[[1.0]],
            )

    def test_rejects_nonpositive_cost(self):
        with pytest.raises(ModelError):
            SetSystem(num_elements=1, sets=[{0}], lease_costs=[[0.0]])

    def test_cost_lookup(self, schedule3):
        system = tiny_system(schedule3)
        assert system.cost(1, 2) == schedule3[2].cost


class TestDemand:
    def test_defaults(self):
        demand = MulticoverDemand(element=1, arrival=4)
        assert demand.coverage == 1

    def test_rejects_zero_coverage(self):
        with pytest.raises(ModelError):
            MulticoverDemand(element=0, arrival=0, coverage=0)


class TestInstance:
    def test_rejects_over_coverage(self, schedule3):
        system = tiny_system(schedule3)
        with pytest.raises(ModelError):
            SetMulticoverLeasingInstance(
                system=system,
                schedule=schedule3,
                demands=(MulticoverDemand(0, 0, coverage=3),),
            )

    def test_rejects_unsorted_demands(self, schedule3):
        system = tiny_system(schedule3)
        with pytest.raises(ModelError):
            SetMulticoverLeasingInstance(
                system=system,
                schedule=schedule3,
                demands=(
                    MulticoverDemand(0, 5),
                    MulticoverDemand(1, 2),
                ),
            )

    def test_rejects_type_count_mismatch(self, schedule3):
        system = tiny_system(schedule3)
        with pytest.raises(ModelError):
            SetMulticoverLeasingInstance(
                system=system,
                schedule=LeaseSchedule.power_of_two(2),
                demands=(),
            )

    def test_candidates_size(self, schedule3):
        system = tiny_system(schedule3)
        instance = SetMulticoverLeasingInstance(
            system=system,
            schedule=schedule3,
            demands=(MulticoverDemand(0, 4),),
        )
        candidates = instance.candidates(0, 4)
        # Element 0 is in 2 sets, K = 3 -> 6 candidate triples.
        assert len(candidates) == 6
        assert all(lease.covers(4) for lease in candidates)

    def test_covering_sets_distinct(self, schedule3):
        system = tiny_system(schedule3)
        demand = MulticoverDemand(0, 2, coverage=2)
        instance = SetMulticoverLeasingInstance(
            system=system, schedule=schedule3, demands=(demand,)
        )
        # Two leases of the same set count once.
        lease_a = instance.candidate_lease(0, 0, 2)
        lease_b = instance.candidate_lease(0, 1, 2)
        assert instance.covering_sets([lease_a, lease_b], demand) == {0}
        lease_c = instance.candidate_lease(2, 0, 2)
        assert instance.covering_sets(
            [lease_a, lease_c], demand
        ) == {0, 2}

    def test_covering_program_rows_and_rhs(self, schedule3):
        system = tiny_system(schedule3)
        instance = SetMulticoverLeasingInstance(
            system=system,
            schedule=schedule3,
            demands=(
                MulticoverDemand(0, 0, coverage=2),
                MulticoverDemand(1, 1),
            ),
        )
        program = instance.to_covering_program()
        assert program.num_constraints == 2
        assert program.constraints[0].rhs == 2.0
        assert program.constraints[1].rhs == 1.0
