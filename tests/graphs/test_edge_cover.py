"""Tests for edge cover leasing (the second Section 3.5 covering problem)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LeaseSchedule
from repro.errors import ModelError
from repro.graphs import (
    EdgeCoverLeasingInstance,
    OnlineEdgeCoverLeasing,
    VertexDemand,
    edge_cover_optimum,
)
from repro.workloads import make_rng


def path_instance(schedule, demands, num_vertices=5, cost_scale=1.0):
    edges = tuple((v, v + 1) for v in range(num_vertices - 1))
    costs = tuple(
        tuple(cost_scale * lt.cost for lt in schedule) for _ in edges
    )
    return EdgeCoverLeasingInstance(
        num_vertices=num_vertices,
        edges=edges,
        edge_costs=costs,
        schedule=schedule,
        demands=tuple(VertexDemand(v, t) for v, t in demands),
    )


class TestModel:
    def test_rejects_isolated_vertex_demand(self, schedule2):
        with pytest.raises(ModelError):
            EdgeCoverLeasingInstance(
                num_vertices=3,
                edges=((0, 1),),
                edge_costs=((1.0, 1.6),),
                schedule=schedule2,
                demands=(VertexDemand(2, 0),),
            )

    def test_rejects_self_loop(self, schedule2):
        with pytest.raises(ModelError):
            EdgeCoverLeasingInstance(
                num_vertices=2,
                edges=((1, 1),),
                edge_costs=((1.0, 1.6),),
                schedule=schedule2,
                demands=(),
            )

    def test_max_degree(self, schedule2):
        instance = path_instance(schedule2, [])
        assert instance.max_degree == 2

    def test_reduction_sets_are_edges(self, schedule2):
        instance = path_instance(schedule2, [(0, 0)])
        multicover = instance.to_multicover()
        assert multicover.system.num_sets == 4
        assert all(
            len(members) == 2 for members in multicover.system.sets
        )
        # delta of the reduction equals the max degree.
        assert multicover.system.delta == instance.max_degree


class TestOnline:
    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=20)
    def test_always_feasible(self, seed):
        rng = make_rng(seed)
        schedule = LeaseSchedule.power_of_two(2)
        demands = sorted(
            ((rng.randrange(5), t) for t in range(10)),
            key=lambda d: d[1],
        )
        instance = path_instance(schedule, demands)
        algorithm = OnlineEdgeCoverLeasing(instance, seed=seed)
        for demand in instance.demands:
            algorithm.on_demand(demand)
        assert instance.is_feasible_solution(list(algorithm.leases))

    def test_endpoint_vertex_uses_its_only_edge(self, schedule2):
        instance = path_instance(schedule2, [(0, 0)])
        algorithm = OnlineEdgeCoverLeasing(instance, seed=0)
        algorithm.on_demand((0, 0))
        # Vertex 0's only incident edge is edge 0.
        assert {lease.resource for lease in algorithm.leases} == {0}

    def test_shared_edge_covers_both_endpoints(self, schedule2):
        """Adjacent vertex demands inside one window share a lease."""
        schedule = LeaseSchedule.from_pairs([(4, 1.0), (8, 1.6)])
        instance = path_instance(schedule, [(1, 0), (2, 1)])
        algorithm = OnlineEdgeCoverLeasing(instance, seed=0)
        for demand in instance.demands:
            algorithm.on_demand(demand)
        assert instance.is_feasible_solution(list(algorithm.leases))
        opt = edge_cover_optimum(instance)
        # Optimum covers both with the single middle edge (1,2).
        assert opt.lower == pytest.approx(1.0)

    def test_mean_ratio_reasonable(self):
        rng = make_rng(5)
        schedule = LeaseSchedule.power_of_two(2)
        demands = sorted(
            ((rng.randrange(6), t) for t in range(14)),
            key=lambda d: d[1],
        )
        instance = path_instance(schedule, demands, num_vertices=6)
        opt = edge_cover_optimum(instance)
        ratios = []
        for seed in range(8):
            algorithm = OnlineEdgeCoverLeasing(instance, seed=seed)
            for demand in instance.demands:
                algorithm.on_demand(demand)
            ratios.append(algorithm.cost / opt.lower)
        assert sum(ratios) / len(ratios) <= 12.0
