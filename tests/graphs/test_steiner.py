"""Tests for Steiner tree leasing (Section 5.1 model)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LeaseSchedule
from repro.errors import ModelError
from repro.graphs import (
    OnlineSteinerLeasing,
    PairDemand,
    SteinerLeasingInstance,
    offline_heuristic,
)
from repro.workloads import make_rng


def grid_instance(schedule, demands, size=3, weight=1.0):
    graph = nx.grid_2d_graph(size, size)
    graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")
    nx.set_edge_attributes(graph, weight, "weight")
    return SteinerLeasingInstance(
        graph=graph,
        schedule=schedule,
        demands=tuple(PairDemand(s, t, a) for s, t, a in demands),
    )


class TestModel:
    def test_rejects_identical_terminals(self):
        with pytest.raises(ModelError):
            PairDemand(1, 1, 0)

    def test_rejects_missing_weight(self, schedule2):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        with pytest.raises(ModelError):
            SteinerLeasingInstance(
                graph=graph, schedule=schedule2, demands=()
            )

    def test_rejects_unknown_terminal(self, schedule2):
        with pytest.raises(ModelError):
            grid_instance(schedule2, [(0, 99, 0)])

    def test_edge_ids_stable(self, schedule2):
        instance = grid_instance(schedule2, [])
        ids = instance.edge_ids()
        assert len(ids) == instance.graph.number_of_edges()
        assert sorted(ids.values()) == list(range(len(ids)))


class TestOnline:
    @given(seed=st.integers(min_value=0, max_value=40))
    @settings(max_examples=15)
    def test_always_feasible(self, seed):
        rng = make_rng(seed)
        schedule = LeaseSchedule.power_of_two(2)
        demands = []
        for t in range(6):
            s = rng.randrange(9)
            target = rng.randrange(9)
            if s != target:
                demands.append((s, target, t))
        instance = grid_instance(schedule, demands)
        algorithm = OnlineSteinerLeasing(instance)
        for demand in instance.demands:
            algorithm.on_demand(demand)
        assert instance.is_feasible_solution(list(algorithm.leases))

    def test_adjacent_pair_buys_one_edge(self, schedule2):
        instance = grid_instance(schedule2, [(0, 1, 0)])
        algorithm = OnlineSteinerLeasing(instance)
        algorithm.on_demand(instance.demands[0])
        assert len(algorithm.leases) == 1
        assert algorithm.cost == pytest.approx(schedule2[0].cost)

    def test_active_leases_are_free_paths(self, schedule2):
        """A second pair along an already-leased path costs nothing."""
        schedule = LeaseSchedule.from_pairs([(4, 1.0), (8, 1.6)])
        instance = grid_instance(schedule, [(0, 2, 0), (0, 2, 1)])
        algorithm = OnlineSteinerLeasing(instance)
        algorithm.on_demand(instance.demands[0])
        cost_first = algorithm.cost
        algorithm.on_demand(instance.demands[1])
        assert algorithm.cost == cost_first

    def test_doubling_ratchet_upgrades_type(self):
        """Re-leasing the same edge graduates to the longer lease type."""
        schedule = LeaseSchedule.from_pairs([(1, 1.0), (8, 3.0)])
        demands = [(0, 1, 0), (0, 1, 1), (0, 1, 2)]
        instance = grid_instance(schedule, demands)
        algorithm = OnlineSteinerLeasing(instance)
        for demand in instance.demands:
            algorithm.on_demand(demand)
        types = [lease.type_index for lease in algorithm.leases]
        assert types[0] == 0
        assert 1 in types  # upgraded on re-lease


class TestOfflineHeuristic:
    def test_empty(self, schedule2):
        assert offline_heuristic(grid_instance(schedule2, [])) == 0.0

    def test_feasible_cost_upper_bounds_tree(self, schedule2):
        demands = [(0, 8, 0), (2, 6, 1)]
        instance = grid_instance(schedule2, demands)
        value = offline_heuristic(instance)
        # The per-round tree spans 4 terminals on a 3x3 unit grid: at
        # least 4 edges at the long-lease price.
        assert value >= 4 * schedule2[1].cost * 0.99

    def test_online_gap_is_bounded_on_repeats(self):
        """Doubling keeps repeated demand affordable vs the heuristic."""
        schedule = LeaseSchedule.power_of_two(4, cost_growth=1.5)
        demands = [(0, 8, t) for t in range(8)]
        instance = grid_instance(schedule, demands)
        algorithm = OnlineSteinerLeasing(instance)
        for demand in instance.demands:
            algorithm.on_demand(demand)
        assert instance.is_feasible_solution(list(algorithm.leases))
        baseline = offline_heuristic(instance)
        assert algorithm.cost <= 4 * baseline
