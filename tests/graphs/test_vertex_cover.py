"""Tests for vertex cover leasing (Chapter 3 outlook)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LeaseSchedule
from repro.errors import ModelError
from repro.graphs import (
    EdgeDemand,
    OnlineVertexCoverLeasing,
    VertexCoverLeasingInstance,
    optimum,
)
from repro.workloads import make_rng


def build_instance(num_vertices, edges, schedule, costs=None):
    if costs is None:
        costs = [
            [lease_type.cost for lease_type in schedule]
            for _ in range(num_vertices)
        ]
    return VertexCoverLeasingInstance(
        num_vertices=num_vertices,
        vertex_costs=tuple(tuple(row) for row in costs),
        schedule=schedule,
        demands=tuple(EdgeDemand(u, v, t) for u, v, t in edges),
    )


def random_edges(num_vertices, count, horizon, rng):
    edges = []
    for t in sorted(rng.choices(range(horizon), k=count)):
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        while v == u:
            v = rng.randrange(num_vertices)
        edges.append((u, v, t))
    return edges


class TestModel:
    def test_rejects_self_loop(self):
        with pytest.raises(ModelError):
            EdgeDemand(1, 1, 0)

    def test_rejects_out_of_range_edge(self, schedule2):
        with pytest.raises(ModelError):
            build_instance(2, [(0, 5, 0)], schedule2)

    def test_reduction_delta_is_two(self, schedule2):
        instance = build_instance(4, [(0, 1, 0), (1, 2, 1), (2, 3, 2)], schedule2)
        multicover = instance.to_multicover()
        # Every real element (edge) is in exactly its two endpoints.
        for demand in multicover.demands:
            assert (
                len(multicover.system.sets_containing(demand.element)) == 2
            )

    def test_reduction_handles_isolated_vertices(self, schedule2):
        instance = build_instance(5, [(0, 1, 0)], schedule2)
        multicover = instance.to_multicover()  # vertices 2,3,4 are isolated
        assert multicover.system.num_sets == 5

    def test_repeated_edge_maps_to_same_element(self, schedule2):
        instance = build_instance(3, [(0, 1, 0), (1, 0, 4)], schedule2)
        multicover = instance.to_multicover()
        elements = [demand.element for demand in multicover.demands]
        assert elements[0] == elements[1]


class TestOnline:
    @given(seed=st.integers(min_value=0, max_value=60))
    @settings(max_examples=20)
    def test_always_feasible(self, seed):
        rng = make_rng(seed)
        schedule = LeaseSchedule.power_of_two(2)
        edges = random_edges(6, 10, 12, rng)
        instance = build_instance(6, edges, schedule)
        algorithm = OnlineVertexCoverLeasing(instance, seed=seed)
        for demand in instance.demands:
            algorithm.on_demand(demand)
        assert instance.is_feasible_solution(list(algorithm.leases))

    def test_leases_are_vertices(self, schedule2):
        instance = build_instance(3, [(0, 1, 0), (1, 2, 1)], schedule2)
        algorithm = OnlineVertexCoverLeasing(instance, seed=0)
        for demand in instance.demands:
            algorithm.on_demand(demand)
        assert all(
            0 <= lease.resource < 3 for lease in algorithm.leases
        )

    def test_star_graph_centre_dominates(self, schedule2):
        """All edges share vertex 0; the cheap centre must carry coverage.

        The rounding is randomized, so an occasional expensive endpoint
        lease is possible; the structural claim is that the centre is
        leased and the total stays far below the all-endpoints cost.
        """
        costs = [[0.5, 0.8]] + [[10.0, 16.0]] * 4
        edges = [(0, v, v - 1) for v in range(1, 5)]
        instance = build_instance(5, edges, schedule2, costs)
        all_endpoints_cost = 4 * 10.0
        worst = 0.0
        for seed in range(5):
            algorithm = OnlineVertexCoverLeasing(instance, seed=seed)
            for demand in instance.demands:
                algorithm.on_demand(demand)
            assert 0 in {lease.resource for lease in algorithm.leases}
            worst = max(worst, algorithm.cost)
        assert worst < all_endpoints_cost

    def test_undeclared_edge_rejected(self, schedule2):
        instance = build_instance(3, [(0, 1, 0)], schedule2)
        algorithm = OnlineVertexCoverLeasing(instance, seed=0)
        with pytest.raises(ModelError):
            algorithm.on_demand((1, 2, 0))


class TestCompetitiveness:
    def test_mean_ratio_within_inherited_bound(self):
        rng = make_rng(7)
        schedule = LeaseSchedule.power_of_two(2)
        edges = random_edges(8, 14, 16, rng)
        instance = build_instance(8, edges, schedule)
        opt = optimum(instance)
        ratios = []
        for seed in range(10):
            algorithm = OnlineVertexCoverLeasing(instance, seed=seed)
            for demand in instance.demands:
                algorithm.on_demand(demand)
            ratios.append(algorithm.cost / opt.lower)
        mean = sum(ratios) / len(ratios)
        n_edges = len({frozenset((u, v)) for u, v, _ in edges})
        bound = (
            4.0
            * (math.log(2 * schedule.num_types) + 2.0)
            * (2.0 * math.log2(n_edges + 2) + 2.0)
        )
        assert mean <= bound
