"""Router mechanics against in-process workers: topology math, hello,
routing, barriers, drain, backpressure, and config validation.

The workers here are real :class:`LeaseServer` instances on unix sockets
inside the test's own event loop — the router cannot tell (the protocol
is the boundary), and the tests stay fast and deterministic without
spawning processes.  The subprocess fleet is exercised end to end by
``test_cluster_scenario``.
"""

import asyncio
import shutil
import tempfile
from pathlib import Path

import pytest

from repro.cluster import ClusterRouter, ClusterSpec
from repro.core import LeaseSchedule
from repro.errors import ModelError
from repro.obs import MetricsRegistry, parse_exposition, validate_exposition
from repro.serve import AsyncLeaseClient, LeaseServer, ServeError
from repro.serve.protocol import (
    ok,
    read_frame,
    request,
    write_frame,
)

SCHEDULE = LeaseSchedule.power_of_two(4, cost_growth=2.0)


@pytest.fixture
def workdir():
    path = tempfile.mkdtemp(prefix="rcl-t-")
    try:
        yield Path(path)
    finally:
        shutil.rmtree(path, ignore_errors=True)


class TestSpec:
    def test_worker_ranges_tile_the_resource_space(self):
        for resources, workers, spw in [(8, 2, 2), (10, 3, 1), (7, 2, 3)]:
            spec = ClusterSpec(resources, workers, spw)
            covered = [
                r for lo, hi in spec.worker_ranges for r in range(lo, hi)
            ]
            assert covered == list(range(resources))
            # Worker ranges are exactly their shard groups' union.
            for w in range(workers):
                lo_shard, hi_shard = spec.group(w)
                assert spec.worker_ranges[w] == (
                    spec.ranges[lo_shard][0], spec.ranges[hi_shard - 1][1]
                )

    def test_worker_of_is_consistent_with_ranges(self):
        spec = ClusterSpec(10, 3, 1)
        for resource in range(10):
            w = spec.worker_of(resource)
            lo, hi = spec.worker_ranges[w]
            assert lo <= resource < hi
        with pytest.raises(ModelError):
            spec.worker_of(10)

    def test_oversubscription_rejected(self):
        with pytest.raises(ModelError):
            ClusterSpec(num_resources=3, num_workers=2, shards_per_worker=2)

    def test_ranges_match_the_engine_partition(self):
        from repro.engine import shard_ranges

        spec = ClusterSpec(16, 2, 2)
        assert spec.ranges == shard_ranges(16, 4)


def _start_inprocess_workers(spec: ClusterSpec, workdir: Path):
    """Real LeaseServers on unix sockets in the current loop."""
    servers = []
    paths = []

    async def start():
        for index in range(spec.num_workers):
            server = LeaseServer(
                spec.schedule(),
                num_resources=spec.num_resources,
                num_shards=spec.total_shards,
                record=spec.record,
                session_window=spec.session_window,
            )
            path = str(workdir / f"w{index}.sock")
            await server.start_unix(path)
            servers.append(server)
            paths.append(path)
        return servers, paths

    return start()


class TestRouting:
    def test_hello_routing_barriers_and_drain(self, workdir):
        spec = ClusterSpec(8, 2, 2)

        async def main():
            servers, paths = await _start_inprocess_workers(spec, workdir)
            router = ClusterRouter(spec)
            await router.connect_workers(paths, codec="bin")
            router_sock = str(workdir / "router.sock")
            await router.start_unix(router_sock)
            client = await AsyncLeaseClient.open_unix(router_sock, codec="bin")
            outcome = {}
            outcome["hello"] = await client.call("hello", codec="bin")
            # One acquire per worker range, one tick across both.
            outcome["left"] = await client.acquire("tl", 0, 0)
            outcome["right"] = await client.acquire("tr", 7, 0)
            outcome["tick"] = await client.tick(1)
            outcome["stats"] = await client.stats()
            outcome["report"] = await client.report()
            outcome["drain"] = await client.drain()
            try:
                await client.acquire("tl", 1, 1)
                outcome["post_drain"] = None
            except ServeError as exc:
                outcome["post_drain"] = exc
            outcome["release"] = await client.release("tl", 0, 1)
            await client.close()
            await router.shutdown()
            outcome["worker_states"] = [s.state for s in servers]
            return outcome

        outcome = asyncio.run(main())
        hello = outcome["hello"]
        assert hello["server"] == "repro.cluster"
        assert hello["codec"] == "bin"
        assert hello["num_shards"] == 4
        assert hello["cluster"]["workers"] == 2
        assert hello["cluster"]["worker_ranges"] == [[0, 4], [4, 8]]
        assert outcome["left"]["grant"]["resource"] == 0
        assert outcome["right"]["grant"]["resource"] == 7
        assert outcome["tick"]["applied_time"] == 1
        stats = outcome["stats"]
        assert stats["state"] == "serving"
        assert len(stats["workers"]) == 2
        assert all(w["codec"] == "bin" for w in stats["workers"])
        # Each worker saw exactly its own tenant.
        assert stats["workers"][0]["sessions"]["tenants"] == 1
        assert stats["workers"][1]["sessions"]["tenants"] == 1
        # The merged barrier keeps each worker's own shard group, in
        # global order — indistinguishable from one 4-shard server.
        assert [s["index"] for s in stats["shards"]] == [0, 1, 2, 3]
        assert [s["index"] for s in outcome["report"]["shards"]] == [0, 1, 2, 3]
        assert sum(s["stats"]["acquires"] for s in stats["shards"]) == 2
        assert outcome["drain"]["state"] == "draining"
        assert outcome["post_drain"] is not None
        assert outcome["post_drain"].kind == "draining"
        # The release was *served* during the drain (ok frame, not an
        # error); the day-0 grant may have already expired at the tick,
        # in which case it is a legitimate no-op release.
        assert outcome["release"]["applied_time"] == 1
        assert "grant" in outcome["release"]
        # Router shutdown shut the workers down over their links.
        assert outcome["worker_states"] == ["stopped", "stopped"]

    def test_json_codec_links_serve_identically(self, workdir):
        spec = ClusterSpec(4, 2, 1)

        async def main():
            _, paths = await _start_inprocess_workers(spec, workdir)
            router = ClusterRouter(spec)
            await router.connect_workers(paths, codec="json")
            router_sock = str(workdir / "router.sock")
            await router.start_unix(router_sock)
            client = await AsyncLeaseClient.open_unix(router_sock)
            grant = await client.acquire("t", 3, 0)
            report = await client.report()
            await client.close()
            await router.shutdown()
            return grant, report

        grant, report = asyncio.run(main())
        assert grant["grant"]["resource"] == 3
        assert [s["index"] for s in report["shards"]] == [0, 1]


class TestRouterMetrics:
    def test_metrics_verb_folds_fleet_state(self, workdir):
        """The router's scrape: per-link gauges and relay latency from
        its own registry, worker broker/session state folded in at
        scrape time — and the concatenation is a valid exposition."""
        spec = ClusterSpec(8, 2, 2)

        async def main():
            _, paths = await _start_inprocess_workers(spec, workdir)
            router = ClusterRouter(spec, metrics=MetricsRegistry())
            await router.connect_workers(paths, codec="bin")
            router_sock = str(workdir / "router.sock")
            await router.start_unix(router_sock)
            client = await AsyncLeaseClient.open_unix(router_sock, codec="bin")
            await client.acquire("tl", 0, 0)
            await client.acquire("tr", 7, 0)
            await client.tick(1)
            text = (await client.call("metrics"))["text"]
            await client.close()
            await router.shutdown()
            return text

        text = asyncio.run(main())
        assert validate_exposition(text) == []
        families = parse_exposition(text)
        for name in (
            "cluster_worker_inflight",
            "cluster_worker_window",
            "cluster_worker_frames_total",
            "cluster_relay_latency_seconds",
            "broker_acquires_total",
            "serve_session_tenants",
        ):
            assert name in families, name
        # Both workers report their links and their shard groups.
        workers = {
            labels["worker"]
            for _, labels, _ in families["cluster_worker_inflight"].samples
        }
        assert workers == {"0", "1"}
        acquires = sum(
            value
            for _, _, value in families["broker_acquires_total"].samples
        )
        assert acquires == 2
        # Relay latency was sampled for the routed mutations.
        count = sum(
            value
            for name, _, value in families[
                "cluster_relay_latency_seconds"
            ].samples
            if name.endswith("_count")
        )
        assert count >= 2

    def test_metrics_verb_without_registry_still_scrapes(self, workdir):
        spec = ClusterSpec(4, 2, 1)

        async def main():
            _, paths = await _start_inprocess_workers(spec, workdir)
            router = ClusterRouter(spec)
            await router.connect_workers(paths, codec="json")
            router_sock = str(workdir / "router.sock")
            await router.start_unix(router_sock)
            client = await AsyncLeaseClient.open_unix(router_sock)
            text = (await client.call("metrics"))["text"]
            await client.close()
            await router.shutdown()
            return text

        text = asyncio.run(main())
        assert validate_exposition(text) == []
        families = parse_exposition(text)
        assert "cluster_worker_inflight" in families
        assert "cluster_relay_latency_seconds" not in families


async def _stub_worker(path: str, spec: ClusterSpec, answer_mutations: bool):
    """A fake worker: a valid hello, then (optionally) eternal silence."""
    schedule = spec.schedule()
    hello = {
        "server": "stub",
        "codec": "json",
        "num_resources": spec.num_resources,
        "num_shards": spec.total_shards,
        "record": spec.record,
        "schedule": {
            "num_types": schedule.num_types,
            "lengths": [t.length for t in schedule],
            "costs": [t.cost for t in schedule],
        },
    }

    async def handle(reader, writer):
        while True:
            payload = await read_frame(reader)
            if payload is None:
                break
            if payload.get("op") == "hello":
                await write_frame(writer, ok(payload.get("id"), hello))
            elif answer_mutations:
                await write_frame(
                    writer, ok(payload.get("id"), {"applied_time": 0})
                )
            # else: swallow the frame — in-flight forever.

    return await asyncio.start_unix_server(handle, path=path)


class TestBackpressureAndValidation:
    def test_worker_window_bounds_per_worker_inflight(self, workdir):
        """Against a worker that never answers, the second routed
        mutation must bounce with a backpressure error frame instead of
        queueing without bound."""
        spec = ClusterSpec(2, 1, 1)

        async def main():
            path = str(workdir / "stub.sock")
            stub = await _stub_worker(path, spec, answer_mutations=False)
            router = ClusterRouter(spec, worker_window=1)
            await router.connect_workers([path], codec="json")
            router_sock = str(workdir / "router.sock")
            await router.start_unix(router_sock)
            client = await AsyncLeaseClient.open_unix(router_sock)
            first = asyncio.ensure_future(client.acquire("t", 0, 0))
            await asyncio.sleep(0.05)  # let the first reach the link
            try:
                await client.acquire("t", 1, 0)
                bounced = None
            except ServeError as exc:
                bounced = exc
            first.cancel()
            await client.close()
            stub.close()
            return bounced

        bounced = asyncio.run(main())
        assert bounced is not None and bounced.kind == "backpressure"

    def test_worker_config_mismatch_refused_at_connect(self, workdir):
        spec = ClusterSpec(8, 1, 2)
        wrong = ClusterSpec(8, 1, 1)  # stub advertises 1 shard, spec wants 2

        async def main():
            path = str(workdir / "stub.sock")
            stub = await _stub_worker(path, wrong, answer_mutations=True)
            router = ClusterRouter(spec)
            try:
                await router.connect_workers([path], retry_for=1.0)
            finally:
                stub.close()

        with pytest.raises(ModelError, match="config mismatch"):
            asyncio.run(main())

    def test_wrong_socket_count_refused(self, workdir):
        spec = ClusterSpec(8, 2, 2)

        async def main():
            router = ClusterRouter(spec)
            await router.connect_workers([str(workdir / "only-one.sock")])

        with pytest.raises(ModelError, match="socket paths"):
            asyncio.run(main())

    def test_listening_before_workers_refused(self, workdir):
        async def main():
            router = ClusterRouter(ClusterSpec(4, 2, 1))
            await router.start_unix(str(workdir / "router.sock"))

        with pytest.raises(ModelError):
            asyncio.run(main())
