"""The direct data plane: the route handshake, epoch staleness, and the
two-plane client — against in-process workers, plus a hypothesis sweep
proving the handed-out route map *is* the spec's shard tiling."""

import asyncio
import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import (
    ClusterRouter,
    ClusterSpec,
    WorkerLiveness,
    format_endpoint,
    parse_endpoint,
)
from repro.errors import ModelError
from repro.serve import (
    AsyncLeaseClient,
    DirectLeaseClient,
    LeaseServer,
    ServeError,
    parse_worker_endpoint,
)

from .test_router import _start_inprocess_workers


@pytest.fixture
def workdir():
    path = tempfile.mkdtemp(prefix="rcl-d-")
    try:
        yield Path(path)
    finally:
        shutil.rmtree(path, ignore_errors=True)


# Valid fleet shapes: total_shards <= num_resources by construction.
_shapes = st.integers(1, 6).flatmap(
    lambda workers: st.integers(1, 4).flatmap(
        lambda spw: st.integers(workers * spw, 64).map(
            lambda resources: (resources, workers, spw)
        )
    )
)


class TestRouteMapProperty:
    @given(shape=_shapes)
    def test_route_rows_tile_the_resource_space(self, shape):
        """For arbitrary valid tilings, the handshake map covers every
        resource exactly once, in order, with no gaps and no overlaps —
        and names exactly the worker ``worker_of`` would route to."""
        resources, workers, spw = shape
        spec = ClusterSpec(resources, workers, spw)
        endpoints = [f"unix:/w{i}.sock" for i in range(workers)]
        rows = spec.route_workers(endpoints)
        assert [row["index"] for row in rows] == list(range(workers))
        assert [row["endpoint"] for row in rows] == endpoints
        cursor = 0
        for row in rows:
            lo, hi = row["range"]
            assert lo == cursor and hi > lo
            cursor = hi
            for resource in range(lo, hi):
                assert spec.worker_of(resource) == row["index"]
        assert cursor == resources

    @given(
        path=st.text(
            st.characters(
                codec="ascii", exclude_characters="\x00",
                categories=("L", "N", "P", "S"),
            ),
            min_size=1,
        ),
        port=st.integers(1, 65535),
    )
    def test_endpoint_round_trip(self, path, port):
        unix = format_endpoint("unix", path)
        assert parse_endpoint(unix) == ("unix", (path,))
        tcp = format_endpoint("tcp", "127.0.0.1", port)
        assert parse_endpoint(tcp) == ("tcp", ("127.0.0.1", port))
        # The serve-side copy (layering keeps it from importing this
        # one) must agree on every endpoint the router can hand out.
        assert parse_worker_endpoint(unix) == ("unix", (path,))
        assert parse_worker_endpoint(tcp) == ("tcp", ("127.0.0.1", port))

    def test_bare_path_still_means_unix(self):
        assert parse_endpoint("/tmp/w.sock") == ("unix", ("/tmp/w.sock",))

    def test_malformed_endpoints_rejected(self):
        for bad in ("tcp:nohost", "tcp:host:notaport"):
            with pytest.raises(ModelError):
                parse_endpoint(bad)
        with pytest.raises(ModelError):
            format_endpoint("carrier-pigeon", "x")

    def test_wrong_endpoint_count_rejected(self):
        with pytest.raises(ModelError):
            ClusterSpec(8, 2, 1).route_workers(["unix:/only-one.sock"])


class TestRouteVerb:
    def test_handshake_returns_the_spec_tiling(self, workdir):
        spec = ClusterSpec(8, 2, 2)

        async def main():
            _, paths = await _start_inprocess_workers(spec, workdir)
            router = ClusterRouter(spec)
            await router.connect_workers(paths, codec="bin")
            router_sock = str(workdir / "router.sock")
            await router.start_unix(router_sock)
            client = await AsyncLeaseClient.open_unix(router_sock)
            table = await client.call("route")
            fresh = await client.call("route", epoch=table["epoch"])
            await client.close()
            await router.shutdown()
            return table, fresh

        table, fresh = asyncio.run(main())
        assert table["epoch"] == 0
        assert table["num_resources"] == 8
        assert table["transport"] == "unix"
        assert [row["range"] for row in table["workers"]] == [[0, 4], [4, 8]]
        for index, row in enumerate(table["workers"]):
            assert row["index"] == index
            assert row["epoch"] == 0
            assert row["state"] == "up"
            assert row["liveness"] == "up"
            assert parse_endpoint(row["endpoint"])[0] == "unix"
        # A probe carrying the current epoch is answered, not errored.
        assert fresh == table

    def test_stale_epoch_gets_the_typed_error(self, workdir):
        spec = ClusterSpec(4, 2, 1)

        async def main():
            _, paths = await _start_inprocess_workers(spec, workdir)
            router = ClusterRouter(spec)
            await router.connect_workers(paths, codec="bin")
            router_sock = str(workdir / "router.sock")
            await router.start_unix(router_sock)
            client = await AsyncLeaseClient.open_unix(router_sock)
            # A respawn moved the fleet epoch while this client held
            # its table: the next probe must say so, typed.
            router._slots[1].respawns_done += 1
            try:
                await client.call("route", epoch=0)
                stale = None
            except ServeError as exc:
                stale = exc
            table = await client.call("route")
            await client.close()
            await router.shutdown()
            return stale, table

        stale, table = asyncio.run(main())
        assert stale is not None and stale.kind == "stale-route"
        assert table["epoch"] == 1
        assert [row["epoch"] for row in table["workers"]] == [0, 1]

    def test_single_server_refuses_route(self, workdir):
        from repro.core import LeaseSchedule

        async def main():
            server = LeaseServer(
                LeaseSchedule.power_of_two(4, cost_growth=2.0),
                num_resources=4,
            )
            path = str(workdir / "solo.sock")
            await server.start_unix(path)
            client = await AsyncLeaseClient.open_unix(path)
            try:
                await client.call("route")
                return None
            except ServeError as exc:
                return exc
            finally:
                await client.close()
                await server.shutdown()

        exc = asyncio.run(main())
        assert exc is not None and exc.kind == "protocol"
        assert "dial it directly" in exc.message


class TestDirectClient:
    def test_mutations_land_on_the_owning_worker(self, workdir):
        spec = ClusterSpec(8, 2, 2)

        async def main():
            servers, paths = await _start_inprocess_workers(spec, workdir)
            router = ClusterRouter(spec)
            await router.connect_workers(paths, codec="bin")
            router_sock = str(workdir / "router.sock")
            await router.start_unix(router_sock)
            client = await DirectLeaseClient.open_unix(router_sock)
            outcome = {"handshakes": client.handshakes}
            outcome["epoch"] = client.epoch
            outcome["left"] = await client.acquire("tl", 0, 0)
            outcome["right"] = await client.acquire("tr", 7, 0)
            outcome["tick"] = await client.tick(1)
            outcome["release"] = await client.release("tl", 0, 1)
            outcome["report"] = await client.report()
            # Each worker's sessions saw only its own tenant: proof the
            # data plane bypassed the router and split by ownership.
            outcome["tenants"] = [
                [row["tenant"] for row in s.sessions.tenant_snapshot()]
                for s in servers
            ]
            outcome["check"] = await client.check_route()
            await client.close()
            await router.shutdown()
            return outcome

        outcome = asyncio.run(main())
        assert outcome["handshakes"] == 1
        assert outcome["epoch"] == 0
        assert outcome["left"]["grant"]["resource"] == 0
        assert outcome["right"]["grant"]["resource"] == 7
        assert outcome["tick"]["applied_time"] == 1
        assert outcome["tenants"] == [["tl"], ["tr"]]
        # Control-plane barriers still merge the whole fleet.
        assert [
            s["index"] for s in outcome["report"]["shards"]
        ] == [0, 1, 2, 3]
        # No epoch movement: the probe is a no-op.
        assert outcome["check"] is False

    def test_stale_route_triggers_rehandshake(self, workdir):
        spec = ClusterSpec(4, 2, 1)

        async def main():
            _, paths = await _start_inprocess_workers(spec, workdir)
            router = ClusterRouter(spec)
            await router.connect_workers(paths, codec="bin")
            router_sock = str(workdir / "router.sock")
            await router.start_unix(router_sock)
            client = await DirectLeaseClient.open_unix(router_sock)
            await client.acquire("t", 0, 0)
            router._slots[0].respawns_done += 1
            stale = await client.check_route()
            outcome = {
                "stale": stale,
                "epoch": client.epoch,
                "handshakes": client.handshakes,
            }
            # The refreshed table still routes; the data path works on.
            outcome["grant"] = await client.acquire("t2", 3, 0)
            await client.close()
            await router.shutdown()
            return outcome

        outcome = asyncio.run(main())
        assert outcome["stale"] is True
        assert outcome["epoch"] == 1
        assert outcome["handshakes"] == 2
        assert outcome["grant"]["grant"]["resource"] == 3

    def test_worker_of_mirrors_the_spec(self, workdir):
        spec = ClusterSpec(10, 3, 1)

        async def main():
            _, paths = await _start_inprocess_workers(spec, workdir)
            router = ClusterRouter(spec)
            await router.connect_workers(paths, codec="bin")
            router_sock = str(workdir / "router.sock")
            await router.start_unix(router_sock)
            client = await DirectLeaseClient.open_unix(router_sock)
            owners = [client.worker_of(r) for r in range(10)]
            try:
                client.worker_of(10)
                bounds = None
            except ModelError as exc:
                bounds = exc
            await client.close()
            await router.shutdown()
            return owners, bounds

        owners, bounds = asyncio.run(main())
        assert owners == [spec.worker_of(r) for r in range(10)]
        assert bounds is not None


class TestTcpAndReusePort:
    def test_router_serves_over_tcp(self, workdir):
        spec = ClusterSpec(4, 2, 1)

        async def main():
            _, paths = await _start_inprocess_workers(spec, workdir)
            router = ClusterRouter(spec)
            await router.connect_workers(paths, codec="bin")
            port = await router.start_tcp("127.0.0.1", 0)
            client = await AsyncLeaseClient.open_tcp("127.0.0.1", port)
            hello = await client.call("hello")
            grant = await client.acquire("t", 0, 0)
            await client.close()
            await router.shutdown()
            return hello, grant

        hello, grant = asyncio.run(main())
        assert hello["cluster"]["direct"] is True
        assert grant["grant"]["resource"] == 0

    def test_reuse_port_replicas_share_one_port(self, workdir):
        """Two router replicas bound to the same TCP port via
        ``SO_REUSEPORT``, both fronting the same fleet — the kernel
        spreads accepts, and either replica serves a full handshake."""
        from repro.cluster import free_tcp_port

        spec = ClusterSpec(4, 2, 1)

        async def main():
            _, paths = await _start_inprocess_workers(spec, workdir)
            first = ClusterRouter(spec)
            second = ClusterRouter(spec)
            await first.connect_workers(paths, codec="bin")
            await second.connect_workers(paths, codec="bin")
            port = free_tcp_port()
            await first.start_tcp("127.0.0.1", port, reuse_port=True)
            await second.start_tcp("127.0.0.1", port, reuse_port=True)
            tables = []
            for _ in range(4):
                client = await AsyncLeaseClient.open_tcp("127.0.0.1", port)
                tables.append(await client.call("route"))
                await client.close()
            # The fleet is shared: a worker cannot finish its graceful
            # stop while the other replica's links are still open, so
            # unwind the second replica's links first (no wall-clock
            # ack timeouts), then let the first stop the workers.
            for slot in second._slots:
                await slot.close()
                slot.link = None
            await first.shutdown()
            await second.shutdown()
            return tables

        tables = asyncio.run(main())
        assert all(t["epoch"] == 0 for t in tables)
        assert all(
            [row["range"] for row in t["workers"]] == [[0, 2], [2, 4]]
            for t in tables
        )


class TestLivenessWiring:
    def test_link_frames_beat_the_tracker(self, workdir):
        """Response traffic is proof of life: after served ops, every
        worker's liveness reads ``up`` on the router's injected clock —
        and silencing the clock declares them suspect without any
        socket activity."""
        spec = ClusterSpec(4, 2, 1)

        class FakeClock:
            def __init__(self):
                self.now = 0.0

            def __call__(self):
                return self.now

        clock = FakeClock()
        liveness = WorkerLiveness(2, clock=clock)

        async def main():
            _, paths = await _start_inprocess_workers(spec, workdir)
            router = ClusterRouter(spec, liveness=liveness)
            await router.connect_workers(paths, codec="bin")
            router_sock = str(workdir / "router.sock")
            await router.start_unix(router_sock)
            client = await AsyncLeaseClient.open_unix(router_sock)
            await client.acquire("t", 0, 0)
            await client.acquire("t2", 3, 0)
            states_after_traffic = router.liveness.states()
            clock.now += 5.0
            table = await client.call("route")
            await client.close()
            await router.shutdown()
            return states_after_traffic, table

        fresh, table = asyncio.run(main())
        assert fresh == ["up", "up"]
        assert [row["liveness"] for row in table["workers"]] == [
            "suspect", "suspect"
        ]
