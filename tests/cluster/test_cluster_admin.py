"""The ops plane on the router: fleet health, lease book, durable
force-release (including through SIGKILL + respawn), supervision
counters, worker-scrape folding, and end-to-end trace reconstruction
across client -> router -> worker processes."""

import asyncio
import json
import shutil
import tempfile
from pathlib import Path

import pytest

from repro.admin import AdminPlane
from repro.cluster import ClusterRouter, ClusterSpec
from repro.cluster.loadgen import build_cluster_instance, cluster_once
from repro.cluster.procs import (
    make_respawner,
    reap,
    spawn_workers,
    worker_command,
)
from repro.obs import (
    MetricsRegistry,
    TraceSink,
    build_trace_trees,
    load_spans,
    parse_exposition,
    trace_tree_payload,
    validate_exposition,
)
from repro.serve import (
    AsyncLeaseClient,
    LeaseServer,
    merge_shard_payloads,
    replay_applied,
)


@pytest.fixture
def workdir():
    path = tempfile.mkdtemp(prefix="rcl-t-")
    try:
        yield Path(path)
    finally:
        shutil.rmtree(path, ignore_errors=True)


async def _http(port: int, method: str, target: str):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"{method} {target} HTTP/1.1\r\nConnection: close\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), body


async def _start_workers(spec: ClusterSpec, workdir: Path, metrics=False):
    """Real in-process LeaseServers, optionally with live registries."""
    servers, paths = [], []
    for index in range(spec.num_workers):
        server = LeaseServer(
            spec.schedule(),
            num_resources=spec.num_resources,
            num_shards=spec.total_shards,
            record=spec.record,
            session_window=spec.session_window,
            metrics=MetricsRegistry() if metrics else None,
        )
        path = str(workdir / f"w{index}.sock")
        await server.start_unix(path)
        servers.append(server)
        paths.append(path)
    return servers, paths


async def _mounted_router(spec, paths, **router_kwargs):
    router = ClusterRouter(spec, **router_kwargs)
    await router.connect_workers(paths)
    plane = AdminPlane(router)
    await plane.start_tcp()
    return router, plane


class TestRouterAdminPlane:
    def test_health_ready_and_per_worker_drain(self, workdir):
        spec = ClusterSpec(8, 2, 2)

        async def main():
            _, paths = await _start_workers(spec, workdir)
            router, plane = await _mounted_router(spec, paths)
            out = {}
            out["health"] = await _http(plane.port, "GET", "/healthz")
            out["ready"] = await _http(plane.port, "GET", "/readyz")
            out["drain"] = await _http(plane.port, "POST", "/workers/1/drain")
            out["undrain"] = await _http(
                plane.port, "POST", "/workers/1/undrain"
            )
            out["bad"] = await _http(plane.port, "POST", "/workers/5/drain")
            await plane.close()
            await router.shutdown()
            return out

        out = asyncio.run(main())
        health = json.loads(out["health"][1])
        assert health["state"] == "serving"
        assert [w["slot"] for w in health["workers"]] == ["up", "up"]
        ready = json.loads(out["ready"][1])
        assert out["ready"][0] == 200 and ready["ready"] is True
        assert ready["workers"] == {"0": "up", "1": "up"}
        assert json.loads(out["drain"][1]) == {
            "worker": 1, "state": "draining",
        }
        assert json.loads(out["undrain"][1]) == {
            "worker": 1, "state": "serving",
        }
        assert out["bad"][0] == 404

    def test_lease_book_and_force_release_stay_deterministic(self, workdir):
        spec = ClusterSpec(8, 2, 2, record=True)

        async def main():
            _, paths = await _start_workers(spec, workdir)
            router, plane = await _mounted_router(spec, paths)
            router_sock = str(workdir / "router.sock")
            await router.start_unix(router_sock)
            client = await AsyncLeaseClient.open_unix(router_sock)
            await client.acquire("t-0", 0, 0)
            await client.acquire("t-1", 7, 0)
            out = {}
            out["book"] = await _http(plane.port, "GET", "/leases")
            target = json.loads(out["book"][1])["leases"][-1]
            out["forced"] = await _http(
                plane.port, "POST",
                f"/leases/{target['lease_id']}/force-release",
            )
            out["again"] = await _http(
                plane.port, "POST",
                f"/leases/{target['lease_id']}/force-release",
            )
            out["after"] = await _http(plane.port, "GET", "/leases")
            out["report"] = await client.report()
            out["trace"] = await client.trace()
            await client.close()
            await plane.close()
            await router.shutdown()
            return out, target

        out, target = asyncio.run(main())
        book = json.loads(out["book"][1])
        assert book["total"] == 2
        # Fleet lease ids are <worker>:<shard>:<grant_id>.
        assert all(
            len(l["lease_id"].split(":")) == 3 for l in book["leases"]
        )
        assert target["resource"] == 7
        assert out["forced"][0] == 200
        assert json.loads(out["forced"][1])["lease_id"] == target["lease_id"]
        assert out["again"][0] == 404
        after = json.loads(out["after"][1])
        assert [l["resource"] for l in after["leases"]] == [0]
        # The forced release is in the fleet's applied trace: replaying
        # it inline reproduces the served totals exactly.
        served = merge_shard_payloads(out["report"]["shards"])
        replayed = replay_applied(spec.schedule(), out["trace"])
        assert served.cost == replayed.cost
        assert tuple(served.leases) == tuple(replayed.leases)

    def test_trace_endpoint_serves_relay_spans(self, workdir, tmp_path):
        spec = ClusterSpec(8, 2, 2)

        async def main():
            _, paths = await _start_workers(spec, workdir)
            router, plane = await _mounted_router(
                spec, paths, trace=TraceSink(tmp_path / "router.jsonl")
            )
            router_sock = str(workdir / "router.sock")
            await router.start_unix(router_sock)
            client = await AsyncLeaseClient.open_unix(
                router_sock, trace=TraceSink(tmp_path / "client.jsonl")
            )
            await client.acquire("t-0", 3, 0)
            client._trace_sink.flush()
            spans = load_spans([tmp_path / "client.jsonl"])
            found = await _http(
                plane.port, "GET", f"/trace/{spans[-1]['trace']}"
            )
            missing = await _http(plane.port, "GET", "/trace/" + "0" * 16)
            await client.close()
            await plane.close()
            await router.shutdown()
            return found, missing

        found, missing = asyncio.run(main())
        assert found[0] == 200
        assert json.loads(found[1])["roots"][0]["kind"] == "relay"
        assert missing[0] == 404


class TestRouterLiveDebugging:
    def test_metrics_history_samples_the_router_registry(self, workdir):
        from repro.obs import MetricsHistory

        spec = ClusterSpec(8, 2, 2)

        async def main():
            _, paths = await _start_workers(spec, workdir)
            registry = MetricsRegistry()
            router, plane = await _mounted_router(
                spec, paths, metrics=registry,
                history=MetricsHistory(registry, interval=0.02),
            )
            router_sock = str(workdir / "router.sock")
            await router.start_unix(router_sock)
            client = await AsyncLeaseClient.open_unix(router_sock)
            await client.acquire("t-0", 0, 0)
            while len(router.history) < 3:
                await asyncio.sleep(0.02)
            await client.acquire("t-1", 7, 0)
            await asyncio.sleep(0.05)
            out = await _http(plane.port, "GET", "/metrics/history")
            await client.close()
            await plane.close()
            await router.shutdown()
            return out

        status, body = asyncio.run(main())
        assert status == 200
        payload = json.loads(body)
        assert payload["enabled"] is True
        assert payload["samples"] >= 3
        # A relay family moved between samples.
        frames = payload["families"]["cluster_worker_frames_total"]["series"]
        assert sum(row["delta"] for row in frames) > 0

    def test_profile_endpoint_captures_router_stacks(self, workdir):
        spec = ClusterSpec(8, 2, 2)

        async def main():
            _, paths = await _start_workers(spec, workdir)
            router, plane = await _mounted_router(spec, paths)
            out = await _http(plane.port, "GET", "/profile?seconds=0.2")
            await plane.close()
            await router.shutdown()
            return out

        status, body = asyncio.run(main())
        assert status == 200
        capture = json.loads(body)
        assert capture["running"] is False
        assert capture["samples"] >= 1
        assert capture["stacks"]


class TestSupervisionMetrics:
    def test_respawn_and_redrive_counters_in_the_scrape(self, workdir):
        spec = ClusterSpec(8, 2, 2)

        async def main():
            _, paths = await _start_workers(spec, workdir)
            router, plane = await _mounted_router(spec, paths)
            # Supervision tallies are plain slot ints; set them as a
            # respawn cycle would and scrape.
            router._slots[1].respawns_done = 2
            router._slots[1].redriven_frames = 5
            status, body = await _http(plane.port, "GET", "/metrics")
            await plane.close()
            await router.shutdown()
            return status, body.decode()

        status, text = asyncio.run(main())
        assert status == 200
        assert validate_exposition(text) == []
        families = parse_exposition(text)
        up = {
            labels["worker"]: value
            for _, labels, value in families["cluster_worker_up"].samples
        }
        assert up == {"0": 1.0, "1": 1.0}
        respawns = {
            labels["worker"]: value
            for _, labels, value in families[
                "cluster_worker_respawns_total"
            ].samples
        }
        assert respawns == {"0": 0.0, "1": 2.0}
        redriven = {
            labels["worker"]: value
            for _, labels, value in families[
                "cluster_redriven_frames_total"
            ].samples
        }
        assert redriven == {"0": 0.0, "1": 5.0}


class TestWorkerMetricsFold:
    def test_worker_scrapes_folded_with_worker_labels(self, workdir):
        spec = ClusterSpec(8, 2, 2)

        async def main():
            _, paths = await _start_workers(spec, workdir, metrics=True)
            router, plane = await _mounted_router(
                spec, paths, collect_worker_metrics=True
            )
            router_sock = str(workdir / "router.sock")
            await router.start_unix(router_sock)
            client = await AsyncLeaseClient.open_unix(router_sock)
            await client.acquire("t-0", 0, 0)
            await client.acquire("t-1", 7, 0)
            status, body = await _http(plane.port, "GET", "/metrics")
            await client.close()
            await plane.close()
            await router.shutdown()
            return status, body.decode()

        status, text = asyncio.run(main())
        assert status == 200
        # The folded exposition — router families plus each worker's
        # own relabeled scrape — must still validate as one document.
        assert validate_exposition(text) == []
        families = parse_exposition(text)
        workers_seen = {
            labels["worker"]
            for family in families.values()
            for _, labels, _ in family.samples
            if "worker" in labels
        }
        assert {"0", "1"} <= workers_seen
        # A live-registry family from inside the workers made it out,
        # labeled per worker.
        latency = families["serve_op_latency_seconds"]
        assert {
            labels["worker"]
            for name, labels, _ in latency.samples
            if name.endswith("_count")
        } == {"0", "1"}

    def test_worker_command_carries_the_instrumentation_stance(self):
        bare = ClusterSpec(8, 2, 2)
        instrumented = ClusterSpec(8, 2, 2, worker_metrics=True)
        assert "--no-metrics" in worker_command(bare, "/tmp/w.sock")
        argv = worker_command(instrumented, "/tmp/w.sock")
        assert "--metrics" in argv and "--no-metrics" not in argv
        traced = worker_command(
            bare, "/tmp/w.sock", trace_path="/tmp/w.jsonl"
        )
        assert traced[traced.index("--trace-jsonl") + 1] == "/tmp/w.jsonl"


class TestFleetTraceEndToEnd:
    def test_merged_fleet_jsonl_reconstructs_one_tree_per_op(self, tmp_path):
        """The acceptance path: a 2-worker subprocess cluster with every
        hop traced; merging client + router + worker span files must
        yield exactly one causal tree per mutation, rooted at the
        client, relayed by the router, dispatched by a worker."""
        trace_root = tmp_path / "spans"
        trace_root.mkdir()
        client_file = tmp_path / "client.jsonl"
        router_file = tmp_path / "router.jsonl"
        instance = build_cluster_instance(
            "markov", 24, seed=3, num_resources=8, tenants_per_resource=2,
            num_workers=2, shards_per_worker=2,
            trace_root=str(trace_root),
        )
        report = cluster_once(
            instance,
            router_trace=TraceSink(router_file),
            client_trace=TraceSink(client_file),
        )
        assert report["requests"] > 0
        files = [client_file, router_file] + sorted(
            trace_root.glob("worker-*.jsonl")
        )
        assert len(files) == 4, "each worker process wrote its span file"
        trees = build_trace_trees(load_spans(files))
        assert trees, "a traced drive leaves traces"
        chains = set()
        for trace_id, roots in trees.items():
            assert len(roots) == 1, (
                f"trace {trace_id} fractured into {len(roots)} roots"
            )
            root = roots[0]
            assert root.span["kind"] == "client"
            for node in root.walk():
                assert node.span["trace"] == trace_id
            for child in root.children:
                assert child.span["parent"] == root.span["span_id"]
                if child.span["kind"] == "dispatch":
                    # Tick broadcasts carry the client's context
                    # verbatim — worker spans parent straight to it.
                    assert child.span["op"] == "tick"
                    continue
                assert child.span["kind"] == "relay"
                for dispatch in child.children:
                    assert dispatch.span["kind"] == "dispatch"
                    assert dispatch.span["parent"] == child.span["span_id"]
                    chains.add(
                        (root.span["op"], child.span["op"],
                         dispatch.span["op"])
                    )
        # At least one acquire made the full three-hop journey.
        assert ("acquire", "acquire", "acquire") in chains


class TestFederatedTrace:
    """Live ``GET /trace/{id}`` on the router: the federated pull must
    reconstruct the same causal tree the offline merge does — before a
    crash, through SIGKILL + respawn, and in the offline files after."""

    @staticmethod
    def _skeleton(payload):
        """(span_id, kind, children) — the structure the gate is about,
        ignoring source-dependent extras like the ``worker`` label."""
        return [
            (node["span_id"], node["kind"],
             TestFederatedTrace._skeleton(node["children"]))
            for node in payload
        ]

    def test_live_tree_matches_offline_merge_through_kill(self, tmp_path):
        trace_root = tmp_path / "spans"
        trace_root.mkdir()
        spec = ClusterSpec(
            8, 2, 2, trace_root=str(trace_root),
            wal_root=str(tmp_path / "wal"), fsync="always",
        )
        workdir = tempfile.mkdtemp(prefix="rcl-t-")
        workers = []
        try:
            workers = spawn_workers(spec, workdir)

            async def main():
                router = ClusterRouter(
                    spec, respawn=make_respawner(workers),
                    trace=TraceSink(tmp_path / "router.jsonl"),
                )
                await router.connect_workers(
                    [w.socket_path for w in workers], retry_for=60.0
                )
                router_sock = str(Path(workdir) / "router.sock")
                await router.start_unix(router_sock)
                plane = AdminPlane(router)
                await plane.start_tcp()
                client = await AsyncLeaseClient.open_unix(
                    router_sock, retry_for=60.0,
                    trace=TraceSink(tmp_path / "client.jsonl"),
                )
                await client.acquire("t-0", 0, 0)
                await client.acquire("t-1", 7, 0)  # worker 1's resource
                client._trace_sink.flush()
                victim = next(
                    s for s in load_spans([tmp_path / "client.jsonl"])
                    if s.get("resource") == 7
                )["trace"]
                # Live federated pull mid-run.  Side effect the crash leg
                # depends on: answering `spans` flushes each worker's sink
                # to its file, making the dispatch span durable.
                before = await _http(plane.port, "GET", f"/trace/{victim}")
                # SIGKILL the owning worker, no warning, no flush.
                workers[1].process.kill()
                workers[1].process.wait(timeout=10.0)
                # Same query while the worker is dead: supervision
                # respawns it (same WAL, same trace path, opened
                # append-mode) and the pre-crash span is still there.
                after = await _http(plane.port, "GET", f"/trace/{victim}")
                await client.close()
                await plane.close()
                await router.shutdown()
                return victim, before, after

            victim, before, after = asyncio.run(main())
        finally:
            reap(workers)
            shutil.rmtree(workdir, ignore_errors=True)

        assert before[0] == 200 and after[0] == 200
        live_before = json.loads(before[1])["roots"]
        live_after = json.loads(after[1])["roots"]
        # The offline ground truth: the fleet's own files, merged.  (The
        # client's file stays out on both sides — the fleet never holds
        # the client hop, so the relay roots the tree in each view.)
        offline_spans = load_spans(
            [tmp_path / "router.jsonl"]
            + [spec.worker_trace_path(i) for i in range(2)]
        )
        offline = trace_tree_payload(build_trace_trees(offline_spans)[victim])
        assert self._skeleton(live_before) == self._skeleton(offline)
        assert self._skeleton(live_after) == self._skeleton(offline)
        # The tree really is the relay -> dispatch chain, and the
        # dispatch span in the post-kill answer came from the respawned
        # worker's sink, relabeled with its slot.
        (root,) = live_after
        assert root["kind"] == "relay"
        (dispatch,) = root["children"]
        assert dispatch["kind"] == "dispatch"
        assert dispatch["worker"] == "1"
        assert dispatch["op"] == "acquire"


class TestForceReleaseSurvivesKill:
    def test_force_release_through_a_dead_worker_applies_once(self, tmp_path):
        """SIGKILL the owning worker, then POST the force-release while
        it is down: supervision respawns the worker (WAL recovery), the
        release frame is re-driven with the retry marker, and the
        worker's applied log shows exactly one release — durable,
        exactly-once admin mutation."""
        spec = ClusterSpec(
            8, 2, 2, record=True,
            wal_root=str(tmp_path / "wal"), fsync="always",
        )
        workdir = tempfile.mkdtemp(prefix="rcl-t-")
        workers = []
        try:
            workers = spawn_workers(spec, workdir)

            async def main():
                router = ClusterRouter(spec, respawn=make_respawner(workers))
                await router.connect_workers(
                    [w.socket_path for w in workers], retry_for=60.0
                )
                router_sock = str(Path(workdir) / "router.sock")
                await router.start_unix(router_sock)
                plane = AdminPlane(router)
                await plane.start_tcp()
                client = await AsyncLeaseClient.open_unix(
                    router_sock, retry_for=60.0
                )
                await client.acquire("t-0", 0, 0)
                await client.acquire("t-1", 7, 0)
                book = json.loads(
                    (await _http(plane.port, "GET", "/leases?resource=7"))[1]
                )
                lease_id = book["leases"][0]["lease_id"]
                # Kill resource 7's owner (worker 1) dead, no warning.
                workers[1].process.kill()
                workers[1].process.wait(timeout=10.0)
                forced = await _http(
                    plane.port, "POST", f"/leases/{lease_id}/force-release"
                )
                after = json.loads(
                    (await _http(plane.port, "GET", "/leases"))[1]
                )
                health = json.loads(
                    (await _http(plane.port, "GET", "/healthz"))[1]
                )
                trace = await client.trace()
                await client.close()
                await plane.close()
                await router.shutdown()
                return lease_id, forced, after, health, trace

            lease_id, forced, after, health, trace = asyncio.run(main())
        finally:
            reap(workers)
            shutil.rmtree(workdir, ignore_errors=True)

        assert forced[0] == 200
        assert json.loads(forced[1])["lease_id"] == lease_id
        assert [l["resource"] for l in after["leases"]] == [0]
        # Supervision did respawn the killed worker to serve the frame.
        assert health["workers"][1]["respawns"] >= 1
        releases = [
            event
            for shard in trace["shards"]
            for event in shard["events"]
            if event["kind"] == "release" and event["tenant"] == "t-1"
            and event["resource"] == 7
        ]
        assert len(releases) == 1, "retried release must dedup to one apply"
