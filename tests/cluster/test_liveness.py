"""The worker liveness state machine, driven entirely by a fake clock —
zero wall-clock sleeps, states computed on read."""

import pytest

from repro.cluster import (
    LIVE_DEAD,
    LIVE_SUSPECT,
    LIVE_UP,
    WorkerLiveness,
)
from repro.errors import ModelError


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def fleet(clock):
    return WorkerLiveness(2, suspect_after=4.0, dead_after=10.0, clock=clock)


class TestStateMachine:
    def test_every_worker_starts_up(self, fleet):
        assert fleet.states() == [LIVE_UP, LIVE_UP]
        assert fleet.silence(0) == 0.0

    def test_silence_walks_up_suspect_dead(self, clock, fleet):
        """The full decline: a missed heartbeat turns the worker suspect
        after ``suspect_after`` and dead after ``dead_after``, with no
        beat and no sleep — only the clock moves."""
        clock.advance(3.9)
        assert fleet.state(0) == LIVE_UP
        clock.advance(0.1)
        assert fleet.state(0) == LIVE_SUSPECT  # exactly at the boundary
        clock.advance(5.9)
        assert fleet.state(0) == LIVE_SUSPECT
        clock.advance(0.1)
        assert fleet.state(0) == LIVE_DEAD
        assert fleet.silence(0) == pytest.approx(10.0)

    def test_beat_resets_the_timers(self, clock, fleet):
        clock.advance(9.0)
        assert fleet.state(0) == LIVE_SUSPECT
        fleet.beat(0)
        assert fleet.state(0) == LIVE_UP
        assert fleet.silence(0) == 0.0
        # The un-beaten neighbour keeps declining independently.
        assert fleet.state(1) == LIVE_SUSPECT

    def test_declare_dead_skips_the_timers(self, clock, fleet):
        """Read-EOF (kill -9 observed directly) must not wait out
        ``dead_after``: the declaration is immediate, and the next beat
        — the respawned successor answering — clears it."""
        fleet.declare_dead(1)
        assert fleet.state(1) == LIVE_DEAD
        assert fleet.states() == [LIVE_UP, LIVE_DEAD]
        # Supervised respawn: the successor's first frame is a beat.
        fleet.beat(1)
        assert fleet.state(1) == LIVE_UP

    def test_dead_by_silence_recovers_on_beat_too(self, clock, fleet):
        clock.advance(30.0)
        assert fleet.states() == [LIVE_DEAD, LIVE_DEAD]
        fleet.beat(0)
        assert fleet.states() == [LIVE_UP, LIVE_DEAD]


class TestValidation:
    def test_bounds_checked_everywhere(self, fleet):
        for method in (fleet.beat, fleet.declare_dead, fleet.state,
                       fleet.silence):
            with pytest.raises(ModelError):
                method(2)
            with pytest.raises(ModelError):
                method(-1)

    def test_thresholds_must_be_ordered(self, clock):
        with pytest.raises(ModelError):
            WorkerLiveness(1, suspect_after=5.0, dead_after=5.0, clock=clock)
        with pytest.raises(ModelError):
            WorkerLiveness(1, suspect_after=0.0, dead_after=1.0, clock=clock)
        with pytest.raises(ModelError):
            WorkerLiveness(0, clock=clock)

    def test_defaults_leave_heartbeat_headroom(self):
        """The shipped thresholds must sit above the router's 2s
        heartbeat so one delayed beat never flaps a healthy worker."""
        from repro.cluster.liveness import DEAD_AFTER, SUSPECT_AFTER

        assert SUSPECT_AFTER > 2.0
        assert DEAD_AFTER > SUSPECT_AFTER
