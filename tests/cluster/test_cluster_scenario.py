"""The cluster-* scenario family: clustered aggregate byte-identical to
the inline replay, registry integration, determinism, and verification —
against a real subprocess worker fleet.  The topology matrix at the
bottom proves the identity holds for every workload through every data
plane: single-process, routed, direct, and direct through a kill -9."""

from dataclasses import replace

import pytest

from repro.cluster import (
    build_cluster_instance,
    run_cluster_instance,
    verify_cluster,
)
from repro.engine import (
    WORKLOAD_NAMES,
    get_scenario,
    render_report,
    run_scenario,
    scenario_names,
)
from repro.engine.scenarios import run_broker_trace


class TestRegistry:
    def test_registered_for_every_workload(self):
        names = set(scenario_names())
        for workload in WORKLOAD_NAMES:
            assert f"cluster-{workload}" in names
            scenario = get_scenario(f"cluster-{workload}")
            assert scenario.family == "cluster"
            assert scenario.workload == workload
            assert not scenario.shardable  # sharding lives fleet-side
            assert scenario.cluster_servable

    def test_cluster_servable_marks_the_broker_trace_lineage(self):
        assert get_scenario("broker-markov").cluster_servable
        assert get_scenario("serve-markov").cluster_servable
        assert get_scenario("cluster-markov").cluster_servable
        assert not get_scenario("parking-markov").cluster_servable
        assert not get_scenario("deadlines-batch").cluster_servable

    def test_listing_does_not_import_the_cluster_stack(self):
        # Lazy hooks: the registry entry alone must not spawn anything
        # or pull repro.cluster in.
        scenario = get_scenario("cluster-markov")
        assert "worker processes" in scenario.description

    def test_direct_variants_registered_for_every_workload(self):
        names = set(scenario_names())
        for workload in WORKLOAD_NAMES:
            assert f"cluster-direct-{workload}" in names
            scenario = get_scenario(f"cluster-direct-{workload}")
            assert scenario.family == "cluster"
            assert scenario.workload == workload
            assert scenario.direct_servable
            assert "direct to" in scenario.description
        # The routed originals stay routed — and say so.
        routed = get_scenario("cluster-markov")
        assert routed.direct_servable
        assert "routed over" in routed.description
        assert routed.build(0).topology == "routed"
        assert get_scenario("cluster-direct-markov").build(0).topology == (
            "direct"
        )


class TestClusteredAggregate:
    def test_rendered_report_byte_identical_to_inline_replay(self):
        """The acceptance gate: closed-loop tenants against a live
        2-process fleet, aggregate report byte-identical to the inline
        replay of the same merged trace."""
        seed = 3
        scenario = get_scenario("cluster-markov")
        instance = scenario.build(seed)
        assert len(instance.tenants) >= 8
        clustered = run_scenario("cluster-markov", seed=seed)
        assert clustered.verified
        assert clustered.run.detail["cluster"]["report_equal"] is True
        assert clustered.run.detail["cluster"]["workers"] == 2
        inline = replace(
            clustered, run=run_broker_trace(instance.trace, seed)
        )
        assert render_report([clustered]) == render_report([inline])
        assert clustered.run.cost == inline.run.cost
        assert tuple(clustered.run.leases) == tuple(inline.run.leases)
        assert (
            clustered.run.detail["broker_stats"]
            == inline.run.detail["broker_stats"]
        )

    def test_repeat_cluster_runs_are_deterministic(self):
        instance = build_cluster_instance(
            "batch", 32, seed=5, num_resources=4,
            num_workers=2, shards_per_worker=1,
        )
        first = run_cluster_instance(instance, seed=5)
        second = run_cluster_instance(instance, seed=5)
        assert first.cost == second.cost
        assert tuple(first.leases) == tuple(second.leases)
        assert first.detail["broker_stats"] == second.detail["broker_stats"]
        assert first.detail["cluster"]["report_equal"]
        assert second.detail["cluster"]["report_equal"]

    def test_json_codec_cluster_matches_too(self):
        instance = build_cluster_instance(
            "markov", 32, seed=2, num_resources=4,
            num_workers=2, shards_per_worker=1, codec="json",
        )
        result = run_cluster_instance(instance, seed=2)
        assert result.detail["cluster"]["codec"] == "json"
        assert result.detail["cluster"]["report_equal"] is True


class TestTopologyMatrix:
    """The byte-identity matrix: every workload, every data plane.

    The ``single`` arm — one inline broker replay of the canonical
    trace — is the ground truth each cell compares against; ``routed``
    relays mutations through the router, ``direct`` sends them straight
    to the owning workers after the route handshake, and
    ``direct-kill9`` SIGKILLs a worker mid-drive and demands the
    identity hold through WAL recovery, supervised respawn, and the
    client-side marked resend."""

    SEED = 11

    @pytest.mark.parametrize("workload", WORKLOAD_NAMES)
    @pytest.mark.parametrize(
        "topology", ["routed", "direct", "direct-kill9"]
    )
    def test_equals_single_process_replay(self, workload, topology,
                                          tmp_path):
        if topology == "direct-kill9":
            from repro.durable.chaos import (
                build_chaos_instance,
                default_kill_schedule,
                run_chaos,
            )

            instance = build_chaos_instance(
                workload, 48, self.SEED, str(tmp_path / "wal"),
                num_resources=4, tenants_per_resource=2,
                num_workers=2, shards_per_worker=1,
                topology="direct",
            )
            outcome = run_chaos(
                instance,
                kill_schedule=default_kill_schedule(instance, kills=1),
            )
            assert outcome.ok
            assert outcome.respawns >= 1
            clustered = outcome.result
        else:
            instance = build_cluster_instance(
                workload, 48, self.SEED, num_resources=4,
                tenants_per_resource=2, num_workers=2,
                shards_per_worker=1, topology=topology,
            )
            clustered = run_cluster_instance(instance, seed=self.SEED)
        single = run_broker_trace(instance.trace, self.SEED)
        assert clustered.detail["cluster"]["report_equal"] is True
        assert clustered.detail["cluster"]["topology"] == (
            "direct" if topology.startswith("direct") else "routed"
        )
        assert clustered.cost == single.cost
        assert tuple(clustered.leases) == tuple(single.leases)
        assert (
            clustered.detail["broker_stats"]
            == single.detail["broker_stats"]
        )
        assert verify_cluster(instance, clustered).ok


class TestVerifyCluster:
    def test_divergence_fails_verification(self):
        instance = build_cluster_instance(
            "markov", 32, seed=1, num_resources=4,
            num_workers=2, shards_per_worker=1,
        )
        result = run_cluster_instance(instance, seed=1)
        assert verify_cluster(instance, result).ok
        tampered_detail = dict(result.detail)
        tampered_detail["cluster"] = {
            **result.detail["cluster"], "report_equal": False
        }
        tampered = replace(result, detail=tampered_detail)
        report = verify_cluster(instance, tampered)
        assert not report.ok
        assert any("diverged" in failure for failure in report.failures)
