"""Tests for the analysis harness: verifiers, ratios, tables, sweeps."""

import pytest

from repro.core import LeaseSchedule, OptBounds
from repro.analysis import (
    RatioSummary,
    Sweep,
    expected_ratio,
    format_table,
    ratio_of,
    ratios_over_instances,
    verify_old,
    verify_parking,
)
from repro.deadlines import make_old_instance
from repro.parking import make_instance


class TestVerifiers:
    def test_parking_ok(self, schedule3):
        instance = make_instance(schedule3, [0, 3])
        leases = instance.candidates(0)[:1] + instance.candidates(3)[:1]
        report = verify_parking(instance, leases)
        assert report.ok
        assert report.checked == 2
        report.raise_if_failed()

    def test_parking_failure_reported(self, schedule3):
        instance = make_instance(schedule3, [0, 9])
        report = verify_parking(instance, instance.candidates(0)[:1])
        assert not report.ok
        assert "day 9" in report.failures[0]
        with pytest.raises(AssertionError):
            report.raise_if_failed()

    def test_old_verifier(self, schedule3):
        instance = make_old_instance(schedule3, [(0, 3)])
        client = instance.clients[0]
        report = verify_old(instance, instance.candidates(client)[:1])
        assert report.ok
        assert not verify_old(instance, []).ok


class TestRatio:
    def test_ratio_of_bounds(self):
        assert ratio_of(10.0, OptBounds.exactly(5.0)) == 2.0
        assert ratio_of(10.0, 4.0) == 2.5

    def test_ratio_of_zero_opt(self):
        assert ratio_of(0.0, 0.0) == 1.0
        assert ratio_of(1.0, 0.0) == float("inf")

    def test_summary(self):
        summary = RatioSummary.of([1.0, 2.0, 3.0])
        assert summary.mean == 2.0
        assert summary.maximum == 3.0
        assert summary.minimum == 1.0
        assert summary.count == 3
        assert summary.stdev == pytest.approx(1.0)

    def test_single_value_summary(self):
        assert RatioSummary.of([2.0]).stdev == 0.0

    def test_expected_ratio_averages_seeds(self):
        summary = expected_ratio(
            lambda seed: 4.0 + seed % 2, OptBounds.exactly(2.0), seeds=[0, 1]
        )
        assert summary.mean == pytest.approx(2.25)

    def test_ratios_over_instances(self):
        summary = ratios_over_instances([(4.0, 2.0), (9.0, 3.0)])
        assert summary.mean == pytest.approx(2.5)


class TestTables:
    def test_alignment_and_content(self):
        text = format_table(
            ["K", "ratio"], [[2, 1.5], [4, 2.25]], title="demo"
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "K" in lines[1] and "ratio" in lines[1]
        assert "1.500" in text and "2.250" in text

    def test_large_numbers_use_thousands(self):
        assert "1,234.5" in format_table(["x"], [[1234.5]])

    def test_infinity_rendering(self):
        assert "inf" in format_table(["x"], [[float("inf")]])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestSweep:
    def test_rows_and_bounds(self):
        sweep = Sweep("demo")
        sweep.add({"K": 1}, online_cost=2.0, opt_cost=1.0, bound=3.0)
        sweep.add({"K": 2}, online_cost=9.0, opt_cost=1.0, bound=3.0)
        assert sweep.rows[0].within_bound
        assert not sweep.rows[1].within_bound
        assert not sweep.all_within_bounds()
        assert sweep.max_ratio() == pytest.approx(9.0)

    def test_render_includes_params(self):
        sweep = Sweep("sweep")
        sweep.add({"n": 10, "K": 2}, 4.0, 2.0)
        text = sweep.render()
        assert "n" in text and "K" in text and "2.000" in text

    def test_rows_without_bound_pass(self):
        sweep = Sweep("unbounded")
        sweep.add({"x": 1}, 100.0, 1.0)
        assert sweep.all_within_bounds()

    def test_zero_opt_row(self):
        sweep = Sweep("zero")
        sweep.add({"x": 1}, 0.0, 0.0)
        assert sweep.rows[0].ratio == 1.0
