"""Tests for growth-order estimation."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.analysis.growth import best_shape, fit_growth, grows_sublinearly


class TestFitting:
    def test_perfect_linear(self):
        xs = [1, 2, 4, 8, 16]
        ys = [2 * x + 1 for x in xs]
        fits = fit_growth(xs, ys)
        assert fits["linear"].residual == pytest.approx(0.0, abs=1e-9)
        assert fits["linear"].slope == pytest.approx(2.0)
        assert fits["linear"].intercept == pytest.approx(1.0)

    def test_perfect_logarithmic(self):
        xs = [1, 2, 4, 8, 16, 32]
        ys = [3 * math.log(x) + 0.5 for x in xs]
        fits = fit_growth(xs, ys)
        assert fits["logarithmic"].residual == pytest.approx(0.0, abs=1e-9)

    def test_constant_series(self):
        assert best_shape([1, 2, 4, 8], [5, 5, 5, 5]) == "constant"

    def test_requires_three_points(self):
        with pytest.raises(ModelError):
            fit_growth([1, 2], [1, 2])

    def test_requires_positive_xs(self):
        with pytest.raises(ModelError):
            fit_growth([0, 1, 2], [1, 2, 3])

    def test_predict(self):
        fits = fit_growth([1, 2, 4], [2, 4, 8])
        assert fits["linear"].predict(3) == pytest.approx(6.0)


class TestShapeSelection:
    @given(slope=st.floats(min_value=0.5, max_value=5.0),
           intercept=st.floats(min_value=0.0, max_value=3.0))
    def test_linear_series_detected(self, slope, intercept):
        xs = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
        ys = [slope * x + intercept for x in xs]
        assert best_shape(xs, ys) == "linear"
        assert not grows_sublinearly(xs, ys)

    @given(slope=st.floats(min_value=0.5, max_value=5.0),
           intercept=st.floats(min_value=0.0, max_value=3.0))
    def test_log_series_detected(self, slope, intercept):
        xs = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
        ys = [slope * math.log(x) + intercept for x in xs]
        assert best_shape(xs, ys) == "logarithmic"
        assert grows_sublinearly(xs, ys)

    def test_measured_parking_ratios_are_sublinear(self):
        """The E1 measured series (from EXPERIMENTS.md) is log-like."""
        ks = [1, 2, 3, 4, 6, 8]
        ratios = [1.000, 1.511, 1.931, 2.260, 2.615, 3.018]
        assert grows_sublinearly(ks, ratios)

    def test_adversary_ratios_are_linear(self):
        """The E3 forced series ratio == K is linear."""
        ks = [1, 2, 3, 4]
        assert best_shape(ks, [1.0, 2.0, 3.0, 4.0]) == "linear"
