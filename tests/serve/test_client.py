"""Client behaviour: sync calls over a threaded server, pipelining,
reconnect across a server restart, deadlines and retry budgets as typed
errors, codec negotiation, and async pool round-robin."""

import asyncio
import contextlib
import os
import socket as socketlib
import threading
import time

import pytest

from repro.core import LeaseSchedule
from repro.serve import (
    AsyncClientPool,
    LeaseClient,
    LeaseRetryError,
    LeaseServer,
    LeaseTimeoutError,
    ServeError,
    ServerThread,
)

SCHEDULE = LeaseSchedule.power_of_two(4, cost_growth=2.0)


def _server() -> LeaseServer:
    return LeaseServer(SCHEDULE, num_resources=8, num_shards=4, record=True)


@contextlib.contextmanager
def _silent_server(sock_path):
    """A unix listener that accepts connections and never responds."""
    listener = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    listener.bind(sock_path)
    listener.listen(4)
    accepted: list[socketlib.socket] = []

    def accept_loop():
        try:
            while True:
                conn, _ = listener.accept()
                accepted.append(conn)
        except OSError:
            pass

    thread = threading.Thread(target=accept_loop, daemon=True)
    thread.start()
    try:
        yield
    finally:
        listener.close()
        for conn in accepted:
            try:
                conn.close()
            except OSError:
                pass
        thread.join(timeout=2)


class TestSyncClient:
    def test_basic_ops_over_a_threaded_server(self, sock_path):
        thread = ServerThread(_server(), unix_path=sock_path).start()
        try:
            with LeaseClient(path=sock_path) as client:
                hello = client.hello()
                assert hello["protocol"] >= 1
                grant = client.acquire("t", 2, 0)["grant"]
                assert grant["resource"] == 2
                assert client.release("t", 2, 0)["grant"]["released_at"] == 0
                assert client.stats()["sessions"]["tenants"] == 1
        finally:
            thread.stop()

    def test_pipeline_matches_responses_by_id(self, sock_path):
        thread = ServerThread(_server(), unix_path=sock_path).start()
        try:
            with LeaseClient(path=sock_path) as client:
                results = client.pipeline(
                    [
                        ("acquire", {"tenant": f"t{n}", "resource": n, "time": 0})
                        for n in range(6)
                    ]
                )
                assert [r["grant"]["resource"] for r in results] == list(range(6))
        finally:
            thread.stop()

    def test_pipeline_reports_per_request_errors(self, sock_path):
        thread = ServerThread(_server(), unix_path=sock_path).start()
        try:
            with LeaseClient(path=sock_path) as client:
                good, bad = client.pipeline(
                    [
                        ("acquire", {"tenant": "t", "resource": 1, "time": 0}),
                        ("acquire", {"tenant": "t", "resource": 999, "time": 0}),
                    ]
                )
                assert good["grant"]["resource"] == 1
                assert isinstance(bad, ServeError) and bad.kind == "protocol"
        finally:
            thread.stop()

    def test_reconnect_after_server_restart(self, sock_path):
        first = ServerThread(_server(), unix_path=sock_path).start()
        client = LeaseClient(path=sock_path, reconnect=True).connect()
        try:
            assert client.acquire("t", 0, 0)["grant"]["resource"] == 0
            first.stop()
            with contextlib.suppress(FileNotFoundError):
                os.unlink(sock_path)
            second = ServerThread(_server(), unix_path=sock_path).start()
            try:
                # The old socket is dead; the call redials and resends.
                grant = client.acquire("t", 1, 5)["grant"]
                assert grant["resource"] == 1
                # The restarted server is a fresh broker: grant ids reset.
                assert grant["grant_id"] == 1
            finally:
                second.stop()
        finally:
            client.close()

    def test_no_reconnect_raises_on_dead_server(self, sock_path):
        thread = ServerThread(_server(), unix_path=sock_path).start()
        client = LeaseClient(
            path=sock_path, reconnect=False, connect_timeout=0.2
        ).connect()
        try:
            client.acquire("t", 0, 0)
            thread.stop()
            with pytest.raises((ConnectionError, OSError)):
                client.acquire("t", 1, 1)
        finally:
            client.close()

    def test_needs_exactly_one_address(self):
        with pytest.raises(Exception):
            LeaseClient()
        with pytest.raises(Exception):
            LeaseClient(path="/tmp/x.sock", host="localhost", port=1)


class TestDeadlines:
    def test_deadline_raises_typed_timeout_against_a_silent_server(
        self, sock_path
    ):
        with _silent_server(sock_path):
            client = LeaseClient(path=sock_path, reconnect=False).connect()
            try:
                start = time.monotonic()
                with pytest.raises(LeaseTimeoutError):
                    client.acquire("t", 0, 0, deadline=0.25)
                elapsed = time.monotonic() - start
                assert 0.2 <= elapsed < 5.0
                # The connection was abandoned: a late response cannot
                # desync a future call's stream.
                assert client._sock is None
            finally:
                client.close()

    def test_pipeline_deadline_covers_the_whole_batch(self, sock_path):
        with _silent_server(sock_path):
            client = LeaseClient(path=sock_path, reconnect=False).connect()
            try:
                with pytest.raises(LeaseTimeoutError):
                    client.pipeline(
                        [
                            ("acquire", {"tenant": "t", "resource": 0, "time": 0}),
                            ("tick", {"time": 1}),
                        ],
                        deadline=0.25,
                    )
            finally:
                client.close()

    def test_default_deadline_from_the_constructor(self, sock_path):
        with _silent_server(sock_path):
            client = LeaseClient(
                path=sock_path, reconnect=False, deadline=0.25
            ).connect()
            try:
                with pytest.raises(LeaseTimeoutError):
                    client.tick(0)
            finally:
                client.close()

    def test_deadline_met_by_a_live_server_is_harmless(self, sock_path):
        thread = ServerThread(_server(), unix_path=sock_path).start()
        try:
            with LeaseClient(path=sock_path) as client:
                grant = client.acquire("t", 1, 0, deadline=5.0)
                assert grant["grant"]["resource"] == 1
        finally:
            thread.stop()


class TestRetryBudget:
    def test_budget_exhaustion_raises_typed_error(self, sock_path):
        thread = ServerThread(_server(), unix_path=sock_path).start()
        client = LeaseClient(
            path=sock_path, retry_budget=2, connect_timeout=0.3
        ).connect()
        try:
            assert client.acquire("t", 0, 0)["grant"]["resource"] == 0
            thread.stop()
            with contextlib.suppress(FileNotFoundError):
                os.unlink(sock_path)
            with pytest.raises(LeaseRetryError) as err:
                client.acquire("t", 1, 1)
            assert err.value.attempts >= 1
        finally:
            client.close()

    def test_negative_budget_rejected(self):
        with pytest.raises(Exception):
            LeaseClient(path="/tmp/x.sock", retry_budget=-1)


class TestSyncCodec:
    def test_binary_codec_negotiated_and_renegotiated_after_redial(
        self, sock_path
    ):
        first = ServerThread(_server(), unix_path=sock_path).start()
        client = LeaseClient(path=sock_path, codec="bin").connect()
        try:
            assert client.codec == "bin"
            assert client.acquire("t", 0, 0)["grant"]["resource"] == 0
            first.stop()
            with contextlib.suppress(FileNotFoundError):
                os.unlink(sock_path)
            second = ServerThread(_server(), unix_path=sock_path).start()
            try:
                # Redial renegotiates: the call survives the restart and
                # the upgraded codec survives with it.
                assert client.acquire("t", 1, 2)["grant"]["resource"] == 1
                assert client.codec == "bin"
            finally:
                second.stop()
        finally:
            client.close()


class TestAsyncPool:
    def test_pool_spreads_calls_round_robin(self, sock_path):
        async def main():
            server = _server()
            await server.start_unix(sock_path)
            pool = await AsyncClientPool.open_unix(sock_path, size=3)
            assert len(pool) == 3
            first, second = pool.client(), pool.client()
            assert first is not second
            results = await asyncio.gather(
                *(
                    pool.call(
                        "acquire", tenant=f"t{n}", resource=n % 8, time=0
                    )
                    for n in range(9)
                )
            )
            await pool.close()
            await server.shutdown()
            return results

        results = asyncio.run(main())
        assert len(results) == 9
        assert all("grant" in r for r in results)


@contextlib.contextmanager
def _resetting_server(sock_path):
    """A unix listener that accepts each connection and closes it at once
    — every call sees its connection reset mid-stream."""
    listener = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    listener.bind(sock_path)
    listener.listen(8)

    def accept_loop():
        try:
            while True:
                conn, _ = listener.accept()
                conn.close()
        except OSError:
            pass

    thread = threading.Thread(target=accept_loop, daemon=True)
    thread.start()
    try:
        yield
    finally:
        listener.close()
        thread.join(timeout=2)


class TestConnectionReset:
    def test_pipeline_reset_mid_batch_raises_and_never_resends(
        self, sock_path
    ):
        """A batch that dies mid-flight must raise the transport error —
        pipeline() has no resend path even on a reconnecting client, so
        a reset cannot silently double-apply half a batch."""
        with _resetting_server(sock_path):
            client = LeaseClient(path=sock_path, reconnect=True).connect()
            try:
                with pytest.raises((ConnectionError, OSError)):
                    client.pipeline(
                        [
                            ("acquire", {"tenant": "t", "resource": 0, "time": 0}),
                            ("tick", {"time": 1}),
                        ]
                    )
            finally:
                client.close()

    def test_repeated_resets_exhaust_budget_as_typed_error(self, sock_path):
        """Every redial lands on a server that resets again: the retry
        budget drains and the caller gets LeaseRetryError carrying the
        true attempt count, not a raw socket exception."""
        with _resetting_server(sock_path):
            client = LeaseClient(
                path=sock_path, reconnect=True, retry_budget=2,
                connect_timeout=1.0,
            ).connect()
            try:
                with pytest.raises(LeaseRetryError) as err:
                    client.acquire("t", 0, 0)
                assert err.value.attempts == 3  # first try + 2 retries
                # Initial dial plus one per retry, at least.
                assert client.connect_attempts >= 3
            finally:
                client.close()

    def test_timeout_after_reset_still_typed(self, sock_path):
        """A reset followed by a silent redial target ends in the typed
        deadline error, not a bare socket.timeout: the mid-pipeline
        failure modes stay distinguishable to callers."""
        thread = ServerThread(_server(), unix_path=sock_path).start()
        client = LeaseClient(
            path=sock_path, reconnect=True, retry_budget=2,
            connect_timeout=1.0, deadline=0.25,
        ).connect()
        try:
            assert client.acquire("t", 0, 0)["grant"]["resource"] == 0
            thread.stop()
            with contextlib.suppress(FileNotFoundError):
                os.unlink(sock_path)
            with _silent_server(sock_path):
                # Dead conn -> redial succeeds -> resend -> silence.
                with pytest.raises(LeaseTimeoutError):
                    client.acquire("t", 1, 1)
        finally:
            client.close()

    def test_dialing_a_slow_starter_spends_backoff_attempts(self, sock_path):
        """connect() keeps redialing with jittered backoff while the
        server is still coming up, and surfaces the spent attempts."""
        thread_box = {}

        def late_start():
            time.sleep(0.4)
            thread_box["server"] = ServerThread(
                _server(), unix_path=sock_path
            ).start()

        starter = threading.Thread(target=late_start)
        starter.start()
        client = LeaseClient(path=sock_path, connect_timeout=10.0)
        try:
            client.connect()
            assert client.acquire("t", 0, 0)["grant"]["resource"] == 0
            assert client.connect_attempts >= 2
        finally:
            client.close()
            starter.join(timeout=5)
            if "server" in thread_box:
                thread_box["server"].stop()
