"""Client behaviour: sync calls over a threaded server, pipelining,
reconnect across a server restart, and async pool round-robin."""

import asyncio
import contextlib
import os

import pytest

from repro.core import LeaseSchedule
from repro.serve import (
    AsyncClientPool,
    LeaseClient,
    LeaseServer,
    ServeError,
    ServerThread,
)

SCHEDULE = LeaseSchedule.power_of_two(4, cost_growth=2.0)


def _server() -> LeaseServer:
    return LeaseServer(SCHEDULE, num_resources=8, num_shards=4, record=True)


class TestSyncClient:
    def test_basic_ops_over_a_threaded_server(self, sock_path):
        thread = ServerThread(_server(), unix_path=sock_path).start()
        try:
            with LeaseClient(path=sock_path) as client:
                hello = client.hello()
                assert hello["protocol"] >= 1
                grant = client.acquire("t", 2, 0)["grant"]
                assert grant["resource"] == 2
                assert client.release("t", 2, 0)["grant"]["released_at"] == 0
                assert client.stats()["sessions"]["tenants"] == 1
        finally:
            thread.stop()

    def test_pipeline_matches_responses_by_id(self, sock_path):
        thread = ServerThread(_server(), unix_path=sock_path).start()
        try:
            with LeaseClient(path=sock_path) as client:
                results = client.pipeline(
                    [
                        ("acquire", {"tenant": f"t{n}", "resource": n, "time": 0})
                        for n in range(6)
                    ]
                )
                assert [r["grant"]["resource"] for r in results] == list(range(6))
        finally:
            thread.stop()

    def test_pipeline_reports_per_request_errors(self, sock_path):
        thread = ServerThread(_server(), unix_path=sock_path).start()
        try:
            with LeaseClient(path=sock_path) as client:
                good, bad = client.pipeline(
                    [
                        ("acquire", {"tenant": "t", "resource": 1, "time": 0}),
                        ("acquire", {"tenant": "t", "resource": 999, "time": 0}),
                    ]
                )
                assert good["grant"]["resource"] == 1
                assert isinstance(bad, ServeError) and bad.kind == "protocol"
        finally:
            thread.stop()

    def test_reconnect_after_server_restart(self, sock_path):
        first = ServerThread(_server(), unix_path=sock_path).start()
        client = LeaseClient(path=sock_path, reconnect=True).connect()
        try:
            assert client.acquire("t", 0, 0)["grant"]["resource"] == 0
            first.stop()
            with contextlib.suppress(FileNotFoundError):
                os.unlink(sock_path)
            second = ServerThread(_server(), unix_path=sock_path).start()
            try:
                # The old socket is dead; the call redials and resends.
                grant = client.acquire("t", 1, 5)["grant"]
                assert grant["resource"] == 1
                # The restarted server is a fresh broker: grant ids reset.
                assert grant["grant_id"] == 1
            finally:
                second.stop()
        finally:
            client.close()

    def test_no_reconnect_raises_on_dead_server(self, sock_path):
        thread = ServerThread(_server(), unix_path=sock_path).start()
        client = LeaseClient(
            path=sock_path, reconnect=False, connect_timeout=0.2
        ).connect()
        try:
            client.acquire("t", 0, 0)
            thread.stop()
            with pytest.raises((ConnectionError, OSError)):
                client.acquire("t", 1, 1)
        finally:
            client.close()

    def test_needs_exactly_one_address(self):
        with pytest.raises(Exception):
            LeaseClient()
        with pytest.raises(Exception):
            LeaseClient(path="/tmp/x.sock", host="localhost", port=1)


class TestAsyncPool:
    def test_pool_spreads_calls_round_robin(self, sock_path):
        async def main():
            server = _server()
            await server.start_unix(sock_path)
            pool = await AsyncClientPool.open_unix(sock_path, size=3)
            assert len(pool) == 3
            first, second = pool.client(), pool.client()
            assert first is not second
            results = await asyncio.gather(
                *(
                    pool.call(
                        "acquire", tenant=f"t{n}", resource=n % 8, time=0
                    )
                    for n in range(9)
                )
            )
            await pool.close()
            await server.shutdown()
            return results

        results = asyncio.run(main())
        assert len(results) == 9
        assert all("grant" in r for r in results)
