"""The serve-* scenario family: served aggregate byte-identical to the
inline replay, registry integration, and the verification hook."""

from dataclasses import replace

from repro.engine import (
    WORKLOAD_NAMES,
    get_scenario,
    render_report,
    run_scenario,
    scenario_names,
)
from repro.engine.scenarios import run_broker_trace
from repro.serve import build_serve_instance, run_serve_instance, verify_serve


class TestRegistry:
    def test_registered_for_every_workload(self):
        names = set(scenario_names())
        for workload in WORKLOAD_NAMES:
            assert f"serve-{workload}" in names
            scenario = get_scenario(f"serve-{workload}")
            assert scenario.family == "serve"
            assert scenario.workload == workload
            assert not scenario.shardable  # serving shards live server-side

    def test_listing_does_not_import_the_serving_stack(self):
        # Lazy hooks: the registry entry alone must not pull repro.serve.
        scenario = get_scenario("serve-markov")
        assert "closed-loop" in scenario.description


class TestServedAggregate:
    def test_rendered_report_byte_identical_to_inline_replay(self):
        """The acceptance gate: >= 8 closed-loop tenants over unix
        sockets, aggregate report byte-identical to the inline replay of
        the same merged trace."""
        seed = 3
        scenario = get_scenario("serve-markov")
        instance = scenario.build(seed)
        assert len(instance.tenants) >= 8
        served = run_scenario("serve-markov", seed=seed)
        assert served.verified
        assert served.run.detail["serve"]["report_equal"] is True
        inline = replace(served, run=run_broker_trace(instance.trace, seed))
        assert render_report([served]) == render_report([inline])
        assert served.run.cost == inline.run.cost
        assert tuple(served.run.leases) == tuple(inline.run.leases)
        assert (
            served.run.detail["broker_stats"]
            == inline.run.detail["broker_stats"]
        )
        # Compared stats use the mergeable shape: broker-local
        # housekeeping (compactions) is not a function of the partition.
        assert "compactions" not in served.run.detail["broker_stats"]

    def test_repeat_serves_are_deterministic(self):
        first = run_scenario("serve-batch", seed=5)
        second = run_scenario("serve-batch", seed=5)
        assert first == second

    def test_non_power_of_two_schedule_is_still_byte_identical(self):
        # Merged cost is recomputed from the lease tuple in unsharded
        # order, so served == inline holds even when per-lease costs are
        # not exactly representable (1.7^k) and per-shard subtotals
        # would drift by a ULP.
        instance = build_serve_instance(
            "markov", 48, seed=2, num_resources=4,
            cost_growth=1.7, num_shards=2,
        )
        result = run_serve_instance(instance, seed=2)
        assert result.detail["serve"]["report_equal"] is True

    def test_optimum_brackets_the_served_cost(self):
        outcome = run_scenario("serve-diurnal", seed=2)
        assert outcome.opt.exact
        assert outcome.run.cost >= outcome.opt.lower - 1e-9
        assert outcome.ratio >= 1.0 - 1e-9


class TestVerifyServe:
    def test_divergence_fails_verification(self):
        instance = build_serve_instance(
            "markov", 48, seed=1, num_resources=4, num_shards=2
        )
        result = run_serve_instance(instance, seed=1)
        assert verify_serve(instance, result).ok
        tampered_detail = dict(result.detail)
        tampered_detail["serve"] = {
            **result.detail["serve"], "report_equal": False
        }
        tampered = replace(result, detail=tampered_detail)
        report = verify_serve(instance, tampered)
        assert not report.ok
        assert any("diverged" in failure for failure in report.failures)
