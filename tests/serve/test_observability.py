"""Serving-layer observability: the ``metrics`` protocol verb, hot-path
instrumentation, trace spans, and the determinism contract — metrics
and tracing on must leave the served aggregate byte-identical to the
inline replay."""

import asyncio
import json

import pytest

from repro.core import LeaseSchedule
from repro.obs import (
    MetricsRegistry,
    TraceSink,
    parse_exposition,
    validate_exposition,
)
from repro.serve import AsyncLeaseClient, LeaseServer
from repro.serve.loadgen import (
    build_serve_instance,
    run_serve_instance,
    serve_once,
)

SCHEDULE = LeaseSchedule.power_of_two(4, cost_growth=2.0)


def _result_key(result):
    return (
        result.cost,
        tuple(result.leases),
        result.detail["broker_stats"],
    )


class TestMetricsVerb:
    def _scrape(self, tmp_path, metrics=None, warm=True):
        async def main():
            server = LeaseServer(
                SCHEDULE, num_resources=4, num_shards=2, metrics=metrics
            )
            path = str(tmp_path / "srv.sock")
            await server.start_unix(path)
            client = await AsyncLeaseClient.open_unix(path)
            if warm:
                await client.acquire("t0", 0, 0)
                await client.acquire("t1", 3, 0)
                await client.tick(1)
            text = (await client.call("metrics"))["text"]
            await client.close()
            await server.shutdown()
            return text

        return asyncio.run(main())

    def test_scrape_validates_and_reflects_served_state(self, tmp_path):
        text = self._scrape(tmp_path, metrics=MetricsRegistry())
        assert validate_exposition(text) == []
        families = parse_exposition(text)
        # Ops-plane families folded from the stats barrier...
        for name in (
            "broker_acquires_total",
            "broker_active_grants",
            "broker_grant_table_size",
            "broker_expiry_heap_size",
            "serve_queue_depth",
            "serve_session_tenants",
        ):
            assert name in families, name
        # ...plus the hot registry's live families.
        for name in (
            "serve_op_latency_seconds",
            "serve_bytes_in_total",
            "serve_bytes_out_total",
        ):
            assert name in families, name
        acquires = sum(
            value
            for _, _, value in families["broker_acquires_total"].samples
        )
        assert acquires == 2
        # Both shards report, labeled.
        shards = {
            labels["shard"]
            for _, labels, _ in families["broker_acquires_total"].samples
        }
        assert shards == {"0", "1"}

    def test_scrape_works_with_metrics_disabled(self, tmp_path):
        """The ops plane is always scrapeable: broker/session state folds
        into a fresh registry at scrape time even when the hot-path
        registry is off — only the sampled families disappear."""
        text = self._scrape(tmp_path, metrics=None)
        assert validate_exposition(text) == []
        families = parse_exposition(text)
        assert "broker_acquires_total" in families
        assert "serve_op_latency_seconds" not in families
        assert "serve_bytes_in_total" not in families


class TestHotPathInstrumentation:
    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        instance = build_serve_instance(
            "markov", 48, seed=1, num_resources=4, num_shards=2
        )
        registry = MetricsRegistry()
        trace_path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
        sink = TraceSink(str(trace_path))
        report = serve_once(instance, metrics=registry, trace_sink=sink)
        sink.close()
        return instance, registry, trace_path, report

    def test_latency_histograms_by_op_kind(self, served):
        _, registry, _, report = served
        snap = registry.snapshot()
        latency = snap["serve_op_latency_seconds"]
        assert latency["type"] == "histogram"
        ops = {entry["labels"]["op"] for entry in latency["series"]}
        assert "acquire" in ops
        sampled = sum(entry["count"] for entry in latency["series"])
        # Every request plus the per-shard tick broadcasts got sampled.
        assert sampled >= report["requests"]

    def test_wire_and_session_counters_move(self, served):
        _, registry, _, _ = served
        snap = registry.snapshot()
        assert snap["serve_bytes_in_total"]["series"][0]["value"] > 0
        assert snap["serve_bytes_out_total"]["series"][0]["value"] > 0

    def test_trace_spans_cover_the_dispatch_loop(self, served):
        _, registry, trace_path, report = served
        with open(trace_path, encoding="utf-8") as handle:
            spans = [json.loads(line) for line in handle if line.strip()]
        sampled = sum(
            entry["count"]
            for entry in registry.snapshot()["serve_op_latency_seconds"][
                "series"
            ]
        )
        assert len(spans) == sampled
        for span in spans:
            assert span["t_enq"] <= span["t_disp"] <= span["t_reply"]
        mutations = [s for s in spans if s["op"] in ("acquire", "release")]
        assert mutations and all(
            s["id"] is not None and s["tenant"] for s in mutations
        )


class TestDeterminismContract:
    @pytest.mark.parametrize("workload,seed", [("markov", 1), ("batch", 4)])
    def test_metrics_and_tracing_leave_reports_byte_identical(
        self, tmp_path, workload, seed
    ):
        """The property the whole subsystem hangs off: instrumentation
        observes the serving cycle without perturbing it.  The served
        aggregate with metrics + tracing + client latency sampling all
        on equals both the inline replay and the bare served run."""
        instance = build_serve_instance(
            workload, 48, seed=seed, num_resources=4, num_shards=2
        )
        bare = run_serve_instance(instance, seed)
        sink = TraceSink(str(tmp_path / f"{workload}.jsonl"))
        instrumented_report = serve_once(
            instance,
            metrics=MetricsRegistry(),
            trace_sink=sink,
            latency_registry=MetricsRegistry(),
        )
        sink.close()
        instrumented = run_serve_instance(
            instance, seed, report=instrumented_report
        )
        assert bare.detail["serve"]["report_equal"] is True
        assert instrumented.detail["serve"]["report_equal"] is True
        assert _result_key(instrumented) == _result_key(bare)
