"""Serve-suite fixtures: short-lived unix sockets under short paths.

Unix socket paths are capped around 100 bytes by the kernel, so the
fixtures allocate their own short ``/tmp`` directories instead of using
pytest's (potentially deep) ``tmp_path``.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import pytest


@pytest.fixture
def sock_path():
    workdir = tempfile.mkdtemp(prefix="rsv-")
    try:
        yield str(Path(workdir) / "serve.sock")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
