"""The ops plane mounted on a real LeaseServer: every endpoint against
live broker state, force-release as a replayable durable event, and
readiness through drain and WAL recovery."""

import asyncio
import json

from repro.core import LeaseSchedule
from repro.obs import TraceSink
from repro.serve import (
    AsyncLeaseClient,
    LeaseServer,
    merge_shard_payloads,
    replay_applied,
)

SCHEDULE = LeaseSchedule.power_of_two(4, cost_growth=2.0)


async def _http(port: int, method: str, target: str):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"{method} {target} HTTP/1.1\r\nConnection: close\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body


async def _mounted(server, sock_path):
    """Start ``server`` with an AdminPlane beside it; returns the plane."""
    from repro.admin import AdminPlane

    await server.start_unix(sock_path)
    plane = AdminPlane(server)
    await plane.start_tcp()
    return plane


class TestReadSurface:
    def test_healthz_reports_state_and_tenant_sessions(self, sock_path):
        async def main():
            server = LeaseServer(SCHEDULE, num_resources=8, num_shards=2)
            plane = await _mounted(server, sock_path)
            client = await AsyncLeaseClient.open_unix(sock_path)
            await client.acquire("t-0", 1, 0)
            status, body = await _http(plane.port, "GET", "/healthz")
            await client.close()
            await plane.close()
            await server.shutdown()
            return status, json.loads(body)

        status, health = asyncio.run(main())
        assert status == 200
        assert health["state"] == "serving"
        assert health["shards"] == 2
        assert health["wal"] is False
        tenants = {row["tenant"]: row for row in health["sessions"]}
        assert tenants["t-0"]["served"] == 1

    def test_metrics_endpoint_serves_a_parsable_exposition(self, sock_path):
        from repro.obs import MetricsRegistry, parse_exposition, \
            validate_exposition

        async def main():
            server = LeaseServer(
                SCHEDULE, num_resources=8, num_shards=2,
                metrics=MetricsRegistry(),
            )
            plane = await _mounted(server, sock_path)
            client = await AsyncLeaseClient.open_unix(sock_path)
            await client.acquire("t-0", 1, 0)
            status, body = await _http(plane.port, "GET", "/metrics")
            await client.close()
            await plane.close()
            await server.shutdown()
            return status, body.decode()

        status, text = asyncio.run(main())
        assert status == 200
        assert validate_exposition(text) == []
        assert "broker_acquires_total" in parse_exposition(text)

    def test_readyz_tracks_drain_and_undrain(self, sock_path):
        async def main():
            server = LeaseServer(SCHEDULE, num_resources=8, num_shards=2)
            plane = await _mounted(server, sock_path)
            out = []
            out.append(await _http(plane.port, "GET", "/readyz"))
            out.append(await _http(plane.port, "POST", "/workers/0/drain"))
            out.append(await _http(plane.port, "GET", "/readyz"))
            out.append(await _http(plane.port, "POST", "/workers/0/undrain"))
            out.append(await _http(plane.port, "GET", "/readyz"))
            out.append(await _http(plane.port, "POST", "/workers/1/drain"))
            await plane.close()
            await server.shutdown()
            return out

        ready, drain, not_ready, undrain, ready_again, bad = asyncio.run(
            main()
        )
        assert ready[0] == 200
        assert json.loads(drain[1]) == {"worker": 0, "state": "draining"}
        assert not_ready[0] == 503
        assert json.loads(not_ready[1])["state"] == "draining"
        assert json.loads(undrain[1]) == {"worker": 0, "state": "serving"}
        assert ready_again[0] == 200
        assert bad[0] == 404  # a single server is worker 0, only

    def test_leases_book_filters_and_paginates(self, sock_path):
        async def main():
            server = LeaseServer(SCHEDULE, num_resources=8, num_shards=2)
            plane = await _mounted(server, sock_path)
            client = await AsyncLeaseClient.open_unix(sock_path)
            for resource in range(4):
                await client.acquire(f"t-{resource % 2}", resource, 0)
            everything = await _http(plane.port, "GET", "/leases")
            filtered = await _http(
                plane.port, "GET", "/leases?tenant=t-1&resource=3"
            )
            page = await _http(plane.port, "GET", "/leases?offset=1&limit=2")
            await client.close()
            await plane.close()
            await server.shutdown()
            return everything, filtered, page

        everything, filtered, page = asyncio.run(main())
        book = json.loads(everything[1])
        assert book["total"] == 4
        assert [l["resource"] for l in book["leases"]] == [0, 1, 2, 3]
        assert all(":" in l["lease_id"] for l in book["leases"])
        hit = json.loads(filtered[1])
        assert hit["total"] == 1
        assert hit["leases"][0]["tenant"] == "t-1"
        sliced = json.loads(page[1])
        assert sliced["total"] == 4
        assert [l["resource"] for l in sliced["leases"]] == [1, 2]

    def test_trace_endpoint_serves_the_span_tree(self, sock_path, tmp_path):
        async def main():
            server = LeaseServer(
                SCHEDULE, num_resources=8, num_shards=2,
                trace=TraceSink(tmp_path / "server.jsonl"),
            )
            plane = await _mounted(server, sock_path)
            client = await AsyncLeaseClient.open_unix(
                sock_path, trace=TraceSink(tmp_path / "client.jsonl")
            )
            await client.acquire("t-0", 1, 0)
            # The trace id the client minted is on its last emitted span.
            client._trace_sink.flush()
            spans = [
                json.loads(line)
                for line in (tmp_path / "client.jsonl").read_text().splitlines()
            ]
            trace_id = spans[-1]["trace"]
            found = await _http(plane.port, "GET", f"/trace/{trace_id}")
            missing = await _http(plane.port, "GET", "/trace/" + "0" * 16)
            await client.close()
            await plane.close()
            await server.shutdown()
            return trace_id, found, missing

        trace_id, found, missing = asyncio.run(main())
        assert found[0] == 200
        payload = json.loads(found[1])
        assert payload["trace"] == trace_id
        # The server's sink alone holds the dispatch span (the client
        # hop lives in the client's file) — still a valid, queryable tree.
        assert payload["roots"][0]["kind"] == "dispatch"
        assert missing[0] == 404

    def test_trace_endpoint_404s_when_tracing_is_off(self, sock_path):
        async def main():
            server = LeaseServer(SCHEDULE, num_resources=8, num_shards=2)
            plane = await _mounted(server, sock_path)
            out = await _http(plane.port, "GET", "/trace/" + "a" * 16)
            await plane.close()
            await server.shutdown()
            return out

        status, _ = asyncio.run(main())
        assert status == 404


class TestLiveDebugging:
    def test_metrics_history_reports_windowed_counter_deltas(
        self, sock_path
    ):
        from repro.obs import MetricsHistory, MetricsRegistry

        async def main():
            registry = MetricsRegistry()
            server = LeaseServer(
                SCHEDULE, num_resources=8, num_shards=2,
                metrics=registry,
                history=MetricsHistory(registry, interval=0.02),
            )
            plane = await _mounted(server, sock_path)
            client = await AsyncLeaseClient.open_unix(sock_path)
            await client.acquire("t-0", 1, 0)
            # Let the sampler task take at least two snapshots either
            # side of the acquire above.
            while len(server.history) < 3:
                await asyncio.sleep(0.02)
            await client.acquire("t-0", 2, 1)
            await asyncio.sleep(0.05)
            everything = await _http(plane.port, "GET", "/metrics/history")
            filtered = await _http(
                plane.port, "GET",
                "/metrics/history?family=serve_bytes_in_total&window=60",
            )
            bad = await _http(
                plane.port, "GET", "/metrics/history?window=-3"
            )
            await client.close()
            await plane.close()
            await server.shutdown()
            return everything, filtered, bad

        everything, filtered, bad = asyncio.run(main())
        assert everything[0] == 200
        payload = json.loads(everything[1])
        assert payload["enabled"] is True
        assert payload["samples"] >= 3
        rows = payload["families"]["serve_bytes_in_total"]["series"]
        # The second acquire's request bytes arrived between samples.
        assert sum(row["delta"] for row in rows) > 0
        narrow = json.loads(filtered[1])
        assert list(narrow["families"]) == ["serve_bytes_in_total"]
        assert bad[0] == 400

    def test_profile_endpoint_captures_live_stacks(self, sock_path):
        async def main():
            server = LeaseServer(SCHEDULE, num_resources=8, num_shards=2)
            plane = await _mounted(server, sock_path)
            out = await _http(plane.port, "GET", "/profile?seconds=0.2")
            bad = await _http(plane.port, "GET", "/profile?seconds=nope")
            await plane.close()
            await server.shutdown()
            return out, bad

        out, bad = asyncio.run(main())
        assert out[0] == 200
        capture = json.loads(out[1])
        # The capture ran and stopped; the asyncio main thread was busy
        # sleeping out this very request, so stacks are never empty.
        assert capture["running"] is False
        assert capture["samples"] >= 1
        assert capture["stacks"]
        assert bad[0] == 400


class TestForceRelease:
    def test_release_lands_in_the_replayable_applied_trace(self, sock_path):
        """A forced release is a first-class event: the lease disappears
        from the book AND replaying the applied trace reproduces the
        served report byte for byte — admin mutations do not fork
        determinism."""

        async def main():
            server = LeaseServer(
                SCHEDULE, num_resources=8, num_shards=2, record=True
            )
            plane = await _mounted(server, sock_path)
            client = await AsyncLeaseClient.open_unix(sock_path)
            for resource in range(4):
                await client.acquire("t-0", resource, 0)
            book = json.loads(
                (await _http(plane.port, "GET", "/leases?resource=2"))[1]
            )
            lease_id = book["leases"][0]["lease_id"]
            forced = await _http(
                plane.port, "POST", f"/leases/{lease_id}/force-release"
            )
            again = await _http(
                plane.port, "POST", f"/leases/{lease_id}/force-release"
            )
            after = json.loads(
                (await _http(plane.port, "GET", "/leases"))[1]
            )
            # Keep serving after the admin mutation, then compare
            # report vs replay of the recorded trace.
            await client.acquire("t-1", 2, 5)
            report = await client.report()
            trace = await client.trace()
            await client.close()
            await plane.close()
            await server.shutdown()
            return lease_id, forced, again, after, report, trace

        lease_id, forced, again, after, report, trace = asyncio.run(main())
        assert forced[0] == 200
        payload = json.loads(forced[1])
        assert payload["lease_id"] == lease_id
        assert payload["released"]["resource"] == 2
        assert "applied_time" in payload
        # Exactly-once at the book level: the second POST finds nothing.
        assert again[0] == 404
        assert lease_id not in {l["lease_id"] for l in after["leases"]}
        served = merge_shard_payloads(report["shards"])
        replayed = replay_applied(SCHEDULE, trace)
        assert served.cost == replayed.cost
        assert tuple(served.leases) == tuple(replayed.leases)
        assert served.detail["broker_stats"] == replayed.detail["broker_stats"]

    def test_forced_release_survives_wal_recovery(self, sock_path, tmp_path):
        """kill the process after a forced release (no graceful snapshot):
        recovery must replay the release — the lease stays gone."""
        wal_root = tmp_path / "wal"

        async def serve_and_force(sock):
            server = LeaseServer(
                SCHEDULE, num_resources=8, num_shards=2,
                wal_dir=wal_root, fsync="always",
            )
            plane = await _mounted(server, sock)
            client = await AsyncLeaseClient.open_unix(sock)
            await client.acquire("t-0", 1, 0)
            await client.acquire("t-0", 5, 0)
            book = json.loads(
                (await _http(plane.port, "GET", "/leases?resource=5"))[1]
            )
            forced = await _http(
                plane.port, "POST",
                f"/leases/{book['leases'][0]['lease_id']}/force-release",
            )
            assert forced[0] == 200
            await client.close()
            await plane.close()
            # Abandon without shutdown: no snapshot, recovery must come
            # entirely from the fsynced WAL.
            for shard in server._shards:
                if shard.task is not None:
                    shard.task.cancel()
            for listener in server._servers:
                listener.close()
                await listener.wait_closed()

        async def recover(sock):
            server = LeaseServer(
                SCHEDULE, num_resources=8, num_shards=2,
                wal_dir=wal_root, fsync="always",
            )
            plane = await _mounted(server, sock)
            ready = await _http(plane.port, "GET", "/readyz")
            health = await _http(plane.port, "GET", "/healthz")
            book = await _http(plane.port, "GET", "/leases")
            await plane.close()
            await server.shutdown()
            return ready, health, book

        asyncio.run(serve_and_force(sock_path))
        ready, health, book = asyncio.run(recover(sock_path + "2"))
        assert ready[0] == 200
        assert json.loads(health[1])["recovered_events"] >= 3
        leases = json.loads(book[1])["leases"]
        assert [l["resource"] for l in leases] == [1]
