"""Wire-protocol mechanics: framing, fragmentation, envelopes, errors."""

import pytest

from repro.serve.protocol import (
    HEADER,
    MAX_FRAME_BYTES,
    FrameDecoder,
    ProtocolError,
    ServeError,
    decode_body,
    encode_frame,
    error,
    ok,
    parse_response,
    request,
)


class TestFraming:
    def test_round_trip(self):
        payload = {"id": 7, "op": "acquire", "tenant": "t", "resource": 3}
        frame = encode_frame(payload)
        (length,) = HEADER.unpack(frame[: HEADER.size])
        assert length == len(frame) - HEADER.size
        assert decode_body(frame[HEADER.size:]) == payload

    def test_decoder_handles_any_fragmentation(self):
        payloads = [{"id": n, "op": "tick", "time": n} for n in range(5)]
        stream = b"".join(encode_frame(p) for p in payloads)
        for chunk in (1, 2, 3, 7, len(stream)):
            decoder = FrameDecoder()
            seen = []
            for start in range(0, len(stream), chunk):
                seen.extend(decoder.feed(stream[start:start + chunk]))
            assert seen == payloads
            assert decoder.pending_bytes == 0

    def test_decoder_buffers_partial_frames(self):
        frame = encode_frame({"id": 1, "op": "hello"})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:3]) == []
        assert decoder.pending_bytes == 3
        assert decoder.feed(frame[3:]) == [{"id": 1, "op": "hello"}]

    def test_oversize_length_prefix_rejected(self):
        decoder = FrameDecoder()
        huge = HEADER.pack(MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError):
            decoder.feed(huge)

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError):
            decode_body(b"[1, 2, 3]")
        with pytest.raises(ProtocolError):
            decode_body(b"\xff\xfe")


class TestEnvelopes:
    def test_request_envelope(self):
        assert request("acquire", 9, tenant="t", resource=1, time=4) == {
            "id": 9,
            "op": "acquire",
            "tenant": "t",
            "resource": 1,
            "time": 4,
        }

    def test_ok_frame_parses_to_result(self):
        assert parse_response(ok(3, {"x": 1})) == {"x": 1}

    def test_error_frame_raises_with_kind(self):
        with pytest.raises(ServeError) as err:
            parse_response(error(3, "backpressure", "window full"))
        assert err.value.kind == "backpressure"
        assert "window full" in err.value.message

    def test_malformed_error_frame_still_raises(self):
        with pytest.raises(ServeError) as err:
            parse_response({"id": 1, "ok": False})
        assert err.value.kind == "protocol"
