"""Wire-protocol mechanics: framing, fragmentation, envelopes, errors,
and the binary codec's exact equivalence to the JSON codec."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.protocol import (
    BIN_FLAG,
    CODEC_BIN,
    CODEC_JSON,
    HEADER,
    MAX_FRAME_BYTES,
    FrameDecoder,
    ProtocolError,
    ServeError,
    decode_body,
    decode_body_bin,
    encode_body_bin,
    encode_frame,
    error,
    negotiate_codec,
    ok,
    parse_response,
    request,
)


class TestFraming:
    def test_round_trip(self):
        payload = {"id": 7, "op": "acquire", "tenant": "t", "resource": 3}
        frame = encode_frame(payload)
        (length,) = HEADER.unpack(frame[: HEADER.size])
        assert length == len(frame) - HEADER.size
        assert decode_body(frame[HEADER.size:]) == payload

    def test_decoder_handles_any_fragmentation(self):
        payloads = [{"id": n, "op": "tick", "time": n} for n in range(5)]
        stream = b"".join(encode_frame(p) for p in payloads)
        for chunk in (1, 2, 3, 7, len(stream)):
            decoder = FrameDecoder()
            seen = []
            for start in range(0, len(stream), chunk):
                seen.extend(decoder.feed(stream[start:start + chunk]))
            assert seen == payloads
            assert decoder.pending_bytes == 0

    def test_decoder_buffers_partial_frames(self):
        frame = encode_frame({"id": 1, "op": "hello"})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:3]) == []
        assert decoder.pending_bytes == 3
        assert decoder.feed(frame[3:]) == [{"id": 1, "op": "hello"}]

    def test_oversize_length_prefix_rejected(self):
        decoder = FrameDecoder()
        huge = HEADER.pack(MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError):
            decoder.feed(huge)

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError):
            decode_body(b"[1, 2, 3]")
        with pytest.raises(ProtocolError):
            decode_body(b"\xff\xfe")


# ----------------------------------------------------------------------
# Binary codec: every frame type must round-trip to exactly what the
# JSON codec would have carried.
# ----------------------------------------------------------------------
def _json_round_trip(payload: dict) -> dict:
    return json.loads(json.dumps(payload))


_ids = st.one_of(
    st.integers(min_value=0, max_value=2**70),  # beyond u64 forces fallback
    st.integers(min_value=-5, max_value=5),
    st.booleans(),
)
_times = st.integers(min_value=-3, max_value=2**70)
_tenants = st.one_of(st.text(max_size=12), st.integers(), st.none())

_mutation_requests = st.builds(
    lambda op, rid, tenant, resource, when: request(
        op, rid, tenant=tenant, resource=resource, time=when
    ),
    st.sampled_from(["acquire", "renew", "release"]),
    _ids, _tenants, _times, _times,
)
_tick_requests = st.builds(
    lambda rid, when: request("tick", rid, time=when), _ids, _times
)
_control_requests = st.builds(
    lambda op, rid, extra: request(op, rid, **extra),
    st.sampled_from(["hello", "stats", "report", "trace", "drain", "shutdown"]),
    _ids,
    st.one_of(st.just({}), st.just({"codec": "bin"}), st.just({"codec": "??"})),
)
_grants = st.builds(
    lambda gid, tenant, resource, acq, exp, rel: {
        "grant_id": gid, "tenant": tenant, "resource": resource,
        "acquired_at": acq, "expires_at": exp, "released_at": rel,
    },
    _ids, _tenants, _times, _times, _times,
    st.one_of(st.none(), _times),
)
_ok_responses = st.one_of(
    st.builds(
        lambda rid, grant, when: ok(rid, {"grant": grant, "applied_time": when}),
        _ids, st.one_of(st.none(), _grants), _times,
    ),
    st.builds(lambda rid, when: ok(rid, {"applied_time": when}), _ids, _times),
    st.builds(
        lambda rid, result: ok(rid, result),
        _ids,
        st.dictionaries(
            st.text(max_size=8),
            st.one_of(st.integers(), st.text(max_size=8), st.none(),
                      st.lists(st.integers(), max_size=3)),
            max_size=4,
        ),
    ),
)
_error_responses = st.builds(
    lambda rid, kind, message: error(rid, kind, message),
    _ids, st.sampled_from(["protocol", "model", "draining", "backpressure"]),
    st.text(max_size=20),
)
_frames = st.one_of(
    _mutation_requests, _tick_requests, _control_requests,
    _ok_responses, _error_responses,
)


class TestBinaryCodec:
    @settings(max_examples=300, deadline=None)
    @given(_frames)
    def test_round_trips_all_frame_types_like_json(self, payload):
        """The acceptance property: for every frame type — hot-shape or
        not, in-range or fallback — decoding the binary encoding yields
        exactly what the JSON codec carries for the same payload."""
        via_json = _json_round_trip(payload)
        assert decode_body_bin(encode_body_bin(payload)) == via_json
        # And through the full framing layer, both codecs agree.
        decoder = FrameDecoder()
        frames = decoder.feed(
            encode_frame(payload, CODEC_BIN) + encode_frame(payload, CODEC_JSON)
        )
        assert frames == [via_json, via_json]

    def test_hot_shapes_take_the_packed_path(self):
        # kind tags: 0 = embedded JSON fallback, 1..3 = packed layouts.
        assert encode_body_bin(
            request("acquire", 1, tenant="t", resource=2, time=3)
        )[0] == 1
        assert encode_body_bin(request("tick", 4, time=9))[0] == 1
        assert encode_body_bin(
            ok(7, {"grant": None, "applied_time": 4})
        )[0] == 2
        assert encode_body_bin(ok(7, {"applied_time": 4}))[0] == 3
        # Out-of-range or off-shape payloads fall back to embedded JSON.
        assert encode_body_bin(
            request("acquire", 1, tenant="t", resource=-2, time=3)
        )[0] == 0
        assert encode_body_bin(error(1, "model", "nope"))[0] == 0

    def test_packed_mutation_is_smaller_than_json(self):
        payload = request("acquire", 123, tenant="tenant-r7-1", resource=7, time=402)
        assert len(encode_frame(payload, CODEC_BIN)) < len(encode_frame(payload))

    def test_interleaved_codecs_survive_any_fragmentation(self):
        payloads = [
            request("acquire", 1, tenant="a", resource=0, time=0),
            request("tick", 2, time=5),
            ok(1, {"applied_time": 5}),
            error(2, "backpressure", "window full"),
            request("hello", 3, codec="bin"),
        ]
        stream = b"".join(
            encode_frame(p, CODEC_BIN if n % 2 else CODEC_JSON)
            for n, p in enumerate(payloads)
        )
        expected = [_json_round_trip(p) for p in payloads]
        for chunk in (1, 2, 3, 5, 11, len(stream)):
            decoder = FrameDecoder()
            seen = []
            for start in range(0, len(stream), chunk):
                seen.extend(decoder.feed(stream[start:start + chunk]))
            assert seen == expected
            assert decoder.pending_bytes == 0

    def test_oversize_binary_length_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(HEADER.pack((MAX_FRAME_BYTES + 1) | BIN_FLAG))

    def test_garbage_binary_bodies_rejected(self):
        with pytest.raises(ProtocolError):
            decode_body_bin(b"")
        with pytest.raises(ProtocolError):
            decode_body_bin(bytes([77]) + b"junk")
        with pytest.raises(ProtocolError):
            decode_body_bin(bytes([1, 0]))  # truncated mutation layout

    def test_truncated_tenant_bytes_rejected_not_shortened(self):
        """A frame whose tenant_len exceeds the carried bytes must raise
        — a silent slice would apply the op under the wrong tenant."""
        full = encode_body_bin(
            request("acquire", 1, tenant="tenant-long-name", resource=2, time=3)
        )
        assert full[0] == 1  # packed path, tenant bytes at the tail
        with pytest.raises(ProtocolError):
            decode_body_bin(full[:-4])
        grant_frame = encode_body_bin(
            ok(7, {"grant": {"grant_id": 9, "tenant": "somebody",
                             "resource": 1, "acquired_at": 3, "expires_at": 8,
                             "released_at": None}, "applied_time": 3})
        )
        assert grant_frame[0] == 2
        with pytest.raises(ProtocolError):
            decode_body_bin(grant_frame[:-3])

    def test_negotiate_codec_upgrades_only_on_exact_request(self):
        assert negotiate_codec("bin") == CODEC_BIN
        assert negotiate_codec("json") == CODEC_JSON
        assert negotiate_codec(None) == CODEC_JSON
        assert negotiate_codec("zstd") == CODEC_JSON
        assert negotiate_codec(7) == CODEC_JSON


class TestEnvelopes:
    def test_request_envelope(self):
        assert request("acquire", 9, tenant="t", resource=1, time=4) == {
            "id": 9,
            "op": "acquire",
            "tenant": "t",
            "resource": 1,
            "time": 4,
        }

    def test_ok_frame_parses_to_result(self):
        assert parse_response(ok(3, {"x": 1})) == {"x": 1}

    def test_error_frame_raises_with_kind(self):
        with pytest.raises(ServeError) as err:
            parse_response(error(3, "backpressure", "window full"))
        assert err.value.kind == "backpressure"
        assert "window full" in err.value.message

    def test_malformed_error_frame_still_raises(self):
        with pytest.raises(ServeError) as err:
            parse_response({"id": 1, "ok": False})
        assert err.value.kind == "protocol"
