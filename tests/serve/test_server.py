"""Server lifecycle: concurrent tenants vs the serialized trace, drain
semantics, clock ratcheting, shard routing, and shutdown."""

import asyncio

import pytest

from repro.core import LeaseSchedule
from repro.engine.events import Release, Tick, generate_resource_trace
from repro.serve import (
    AsyncLeaseClient,
    LeaseServer,
    ServeError,
    merge_shard_payloads,
    replay_applied,
    shard_ranges,
)

SCHEDULE = LeaseSchedule.power_of_two(4, cost_growth=2.0)


class TestShardRanges:
    def test_partition_is_disjoint_and_exhaustive(self):
        for resources, shards in [(8, 4), (10, 4), (7, 3), (5, 5), (9, 1)]:
            ranges = shard_ranges(resources, shards)
            covered = [r for lo, hi in ranges for r in range(lo, hi)]
            assert covered == list(range(resources))

    def test_more_shards_than_resources_rejected(self):
        with pytest.raises(Exception):
            shard_ranges(2, 3)

    def test_every_resource_routes_to_its_range(self):
        server = LeaseServer(SCHEDULE, num_resources=10, num_shards=4)
        for resource in range(10):
            shard = server._shard_of(resource)
            assert shard.lo <= resource < shard.hi


class TestInterleavedTenants:
    def test_one_socket_many_tenants_equals_serialized_trace(self, sock_path):
        """Free-running tenants pipelined over ONE connection: whatever
        the interleaving, the served totals must equal a fresh inline
        replay of the per-shard serialized (applied) traces."""
        events = generate_resource_trace(
            "markov", 64, seed=5, num_resources=8, tenants_per_resource=2
        )
        scripts: dict[str, list] = {}
        for event in events:
            if type(event) is Tick:
                continue
            scripts.setdefault(event.tenant, []).append(event)
        assert len(scripts) >= 8

        async def main():
            server = LeaseServer(
                SCHEDULE, num_resources=8, num_shards=4, record=True
            )
            await server.start_unix(sock_path)
            client = await AsyncLeaseClient.open_unix(sock_path)

            async def tenant_loop(script):
                for event in script:
                    if type(event) is Release:
                        await client.release(
                            event.tenant, event.resource, event.time
                        )
                    else:
                        await client.acquire(
                            event.tenant, event.resource, event.time
                        )

            # No barrier: tenants race each other on one pipelined socket.
            await asyncio.gather(
                *(tenant_loop(script) for script in scripts.values())
            )
            report = await client.report()
            trace = await client.trace()
            await client.close()
            await server.shutdown()
            return report, trace

        report, trace = asyncio.run(main())
        served = merge_shard_payloads(report["shards"])
        replayed = replay_applied(SCHEDULE, trace)
        assert served.cost == replayed.cost
        assert tuple(served.leases) == tuple(replayed.leases)
        assert served.num_demands == replayed.num_demands
        assert served.detail["broker_stats"] == replayed.detail["broker_stats"]
        assert served.detail["num_active"] == replayed.detail["num_active"]

    def test_stale_times_ratchet_to_the_shard_clock(self, sock_path):
        async def main():
            server = LeaseServer(SCHEDULE, num_resources=2, num_shards=1)
            await server.start_unix(sock_path)
            client = await AsyncLeaseClient.open_unix(sock_path)
            ahead = await client.acquire("fast", 0, 50)
            behind = await client.acquire("slow", 1, 10)  # older day
            await client.close()
            await server.shutdown()
            return ahead, behind

        ahead, behind = asyncio.run(main())
        assert ahead["applied_time"] == 50
        assert behind["applied_time"] == 50  # ratcheted, not rejected


class TestDrain:
    def test_drain_rejects_acquires_but_serves_renews_and_releases(
        self, sock_path
    ):
        async def main():
            server = LeaseServer(SCHEDULE, num_resources=4, num_shards=2)
            await server.start_unix(sock_path)
            client = await AsyncLeaseClient.open_unix(sock_path)
            await client.acquire("t0", 0, 0)
            drained = await client.drain()
            assert drained["state"] == "draining"
            # Held grants complete their lifecycle during the drain
            # (same day: the day-0 grant is still live).
            renewed = await client.renew("t0", 0, 0)
            rejected = None
            try:
                await client.acquire("t1", 1, 0)
            except ServeError as exc:
                rejected = exc
            released = await client.release("t0", 0, 0)
            await client.close()
            await server.shutdown()
            return renewed, rejected, released

        renewed, rejected, released = asyncio.run(main())
        assert renewed["grant"]["tenant"] == "t0"
        assert rejected is not None and rejected.kind == "draining"
        assert released["grant"]["released_at"] == 0

    def test_backpressure_rejects_past_the_window(self, sock_path):
        """With no shard worker draining the queue, a second in-flight
        request for a window=1 tenant must bounce deterministically."""

        async def main():
            server = LeaseServer(
                SCHEDULE, num_resources=2, num_shards=1, session_window=1
            )
            # No listener, no workers: requests enqueue and park forever,
            # pinning the tenant's in-flight slot.
            first = asyncio.ensure_future(
                server._apply("acquire", {"tenant": "t", "resource": 0, "time": 0})
            )
            await asyncio.sleep(0)  # let it claim the slot and enqueue
            try:
                await server._apply(
                    "acquire", {"tenant": "t", "resource": 1, "time": 0}
                )
            except ServeError as exc:
                return first, exc
            finally:
                first.cancel()
            return first, None

        _, exc = asyncio.run(main())
        assert exc is not None and exc.kind == "backpressure"


class TestCodecNegotiation:
    def test_hello_upgrades_to_binary_and_serves_identically(self, sock_path):
        async def main():
            server = LeaseServer(SCHEDULE, num_resources=4, num_shards=2)
            await server.start_unix(sock_path)
            plain = await AsyncLeaseClient.open_unix(sock_path)
            binary = await AsyncLeaseClient.open_unix(sock_path, codec="bin")
            assert binary.codec == "bin"
            assert plain.codec == "json"
            hello = await binary.call("hello", codec="bin")
            a = await plain.acquire("t-json", 0, 3)
            b = await binary.acquire("t-bin", 1, 3)
            released = await binary.release("t-bin", 1, 3)
            ticked = await binary.tick(4)
            await plain.close()
            await binary.close()
            await server.shutdown()
            return hello, a, b, released, ticked

        hello, a, b, released, ticked = asyncio.run(main())
        assert hello["codec"] == "bin"
        # Same result shapes whichever codec carried them.
        assert a["grant"]["resource"] == 0 and b["grant"]["resource"] == 1
        assert released["grant"]["released_at"] == 3
        assert ticked["applied_time"] == 4

    def test_bare_hello_preserves_a_negotiated_codec(self, sock_path):
        """A hello without a codec field is introspection, not
        renegotiation — it must not silently downgrade the connection."""

        async def main():
            server = LeaseServer(SCHEDULE, num_resources=2, num_shards=1)
            await server.start_unix(sock_path)
            client = await AsyncLeaseClient.open_unix(sock_path, codec="bin")
            bare = await client.hello()
            explicit_down = await client.call("hello", codec="json")
            await client.close()
            await server.shutdown()
            return bare, explicit_down

        bare, explicit_down = asyncio.run(main())
        assert bare["codec"] == "bin"  # untouched by the bare hello
        assert explicit_down["codec"] == "json"  # explicit requests act

    def test_unknown_codec_falls_back_to_json(self, sock_path):
        async def main():
            server = LeaseServer(SCHEDULE, num_resources=2, num_shards=1)
            await server.start_unix(sock_path)
            client = await AsyncLeaseClient.open_unix(sock_path, codec="zstd")
            hello = await client.call("hello", codec="zstd")
            grant = await client.acquire("t", 0, 0)
            await client.close()
            await server.shutdown()
            return client.codec, hello, grant

        codec, hello, grant = asyncio.run(main())
        assert codec == "json"  # client refused to upgrade unconfirmed
        assert hello["codec"] == "json"  # server negotiated down
        assert grant["grant"]["resource"] == 0

    def test_call_batch_coalesces_and_matches_sequential(self, sock_path):
        async def main():
            server = LeaseServer(SCHEDULE, num_resources=8, num_shards=4)
            await server.start_unix(sock_path)
            client = await AsyncLeaseClient.open_unix(sock_path, codec="bin")
            results = await client.call_batch(
                [
                    ("acquire", {"tenant": f"t{n}", "resource": n, "time": 0})
                    for n in range(6)
                ]
                + [("acquire", {"tenant": "t", "resource": 99, "time": 0})]
            )
            await client.close()
            await server.shutdown()
            return results

        results = asyncio.run(main())
        assert [r["grant"]["resource"] for r in results[:6]] == list(range(6))
        from repro.serve import ServeError as SE
        assert isinstance(results[6], SE) and results[6].kind == "protocol"


class TestDrainMidBatch:
    def test_drain_arriving_mid_pipelined_batch(self, sock_path):
        """A pipelined batch with drain in the middle: the drain ack and
        every post-drain acquire refusal are deterministic, releases are
        served regardless, and — the strong invariant — whatever subset
        of the batch was applied, the served totals equal an inline
        replay of the recorded (serialized) traces."""
        from repro.serve import LeaseClient, ServerThread

        server = LeaseServer(
            SCHEDULE, num_resources=4, num_shards=2, record=True
        )
        thread = ServerThread(server, unix_path=sock_path).start()
        try:
            with LeaseClient(path=sock_path, codec="bin") as client:
                held = client.acquire("t0", 0, 0)
                assert held["grant"]["resource"] == 0
                batch = client.pipeline(
                    [
                        ("acquire", {"tenant": "t1", "resource": 1, "time": 0}),
                        ("release", {"tenant": "t0", "resource": 0, "time": 0}),
                        ("drain", {}),
                        ("acquire", {"tenant": "t2", "resource": 2, "time": 0}),
                        ("acquire", {"tenant": "t3", "resource": 3, "time": 0}),
                    ]
                )
                report = client.report()
                trace = client.trace()
        finally:
            thread.stop()
        first_acquire, release, drained, late_a, late_b = batch
        assert drained["state"] == "draining"
        # Releases complete the lifecycle of held grants during a drain.
        assert isinstance(release, dict)
        assert release["grant"]["released_at"] == 0
        # Acquires pipelined behind the drain are refused by it.
        for late in (late_a, late_b):
            assert isinstance(late, ServeError) and late.kind == "draining"
        # The acquire ahead of the drain raced it: served or refused,
        # but never lost — and the books must balance either way.
        assert isinstance(first_acquire, (dict, ServeError))
        served = merge_shard_payloads(report["shards"])
        replayed = replay_applied(SCHEDULE, trace)
        assert served.cost == replayed.cost
        assert tuple(served.leases) == tuple(replayed.leases)
        assert served.detail["broker_stats"] == replayed.detail["broker_stats"]


class TestWireValidation:
    def test_bad_fields_and_unknown_ops_get_error_frames(self, sock_path):
        async def main():
            server = LeaseServer(SCHEDULE, num_resources=4, num_shards=2)
            await server.start_unix(sock_path)
            client = await AsyncLeaseClient.open_unix(sock_path)
            errors = {}
            for label, op, fields in [
                ("unknown-op", "gimme", {}),
                ("bad-time", "acquire", {"tenant": "t", "resource": 0, "time": -1}),
                ("bad-tenant", "acquire", {"tenant": "", "resource": 0, "time": 0}),
                ("bad-resource", "acquire", {"tenant": "t", "resource": 99, "time": 0}),
                ("no-recording", "trace", {}),
            ]:
                try:
                    await client.call(op, **fields)
                except ServeError as exc:
                    errors[label] = exc.kind
            renew_nothing = None
            try:
                await client.renew("ghost", 0, 5)
            except ServeError as exc:
                renew_nothing = exc
            await client.close()
            await server.shutdown()
            return errors, renew_nothing

        errors, renew_nothing = asyncio.run(main())
        assert errors["unknown-op"] == "protocol"
        assert errors["bad-time"] == "protocol"
        assert errors["bad-tenant"] == "protocol"
        assert errors["bad-resource"] == "protocol"
        assert errors["no-recording"] == "unavailable"
        # Broker-contract violations surface as model errors, not crashes.
        assert renew_nothing is not None and renew_nothing.kind == "model"


class TestLifecycle:
    def test_shutdown_op_stops_the_server(self, sock_path):
        async def main():
            server = LeaseServer(SCHEDULE, num_resources=2, num_shards=1)
            await server.start_unix(sock_path)
            client = await AsyncLeaseClient.open_unix(sock_path)
            await client.acquire("t", 0, 0)
            result = await client.shutdown()
            await asyncio.wait_for(server.run_until_stopped(), timeout=5)
            await client.close()
            return result, server.state

        result, state = asyncio.run(main())
        assert result["state"] == "stopped"
        assert state == "stopped"

    def test_mutations_racing_shutdown_fail_cleanly(self, sock_path):
        """A mutation slipping past the state flip must get an error
        response, never a stranded future that deadlocks shutdown."""

        async def main():
            server = LeaseServer(SCHEDULE, num_resources=2, num_shards=1)
            await server.start_unix(sock_path)
            client = await AsyncLeaseClient.open_unix(sock_path)
            await client.acquire("t", 0, 0)
            # Fire a burst of mutations and shut down while they fly.
            calls = [
                asyncio.ensure_future(client.release("t", 0, n))
                for n in range(4)
            ]
            await asyncio.wait_for(server.shutdown(), timeout=5)
            results = await asyncio.gather(*calls, return_exceptions=True)
            await client.close()
            return results, server.state

        results, state = asyncio.run(main())
        assert state == "stopped"
        for outcome in results:
            # Served, rejected, or cut off — but always resolved.
            assert isinstance(outcome, (dict, ServeError, ConnectionError))

    def test_malformed_frame_gets_a_protocol_error_frame(self, sock_path):
        from repro.serve.protocol import HEADER, FrameDecoder

        async def main():
            server = LeaseServer(SCHEDULE, num_resources=2, num_shards=1)
            await server.start_unix(sock_path)
            reader, writer = await asyncio.open_unix_connection(sock_path)
            writer.write(HEADER.pack(8) + b"not-json")
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(4096), timeout=5)
            at_eof = (
                await asyncio.wait_for(reader.read(4096), timeout=5) == b""
            )
            writer.close()
            await server.shutdown()
            return raw, at_eof

        raw, at_eof = asyncio.run(main())
        (frame,) = FrameDecoder().feed(raw)
        assert frame["ok"] is False
        assert frame["error"]["kind"] == "protocol"
        assert at_eof  # server hangs up after naming the violation

    def test_hello_and_stats_shapes(self, sock_path):
        async def main():
            server = LeaseServer(
                SCHEDULE, num_resources=8, num_shards=4, record=True
            )
            await server.start_unix(sock_path)
            client = await AsyncLeaseClient.open_unix(sock_path)
            hello = await client.hello()
            await client.acquire("t", 3, 2)
            stats = await client.stats()
            await client.close()
            await server.shutdown()
            return hello, stats

        hello, stats = asyncio.run(main())
        assert hello["server"] == "repro.serve"
        assert hello["num_shards"] == 4
        assert hello["ranges"] == [[0, 2], [2, 4], [4, 6], [6, 8]]
        assert hello["schedule"]["num_types"] == 4
        assert stats["state"] == "serving"
        assert stats["sessions"]["tenants"] == 1
        shard_stats = stats["shards"]
        assert len(shard_stats) == 4
        assert sum(s["stats"]["acquires"] for s in shard_stats) == 1

    def test_tcp_transport_works_too(self):
        async def main():
            server = LeaseServer(SCHEDULE, num_resources=4, num_shards=2)
            port = await server.start_tcp("127.0.0.1", 0)
            client = await AsyncLeaseClient.open_tcp("127.0.0.1", port)
            grant = await client.acquire("t", 2, 1)
            await client.close()
            await server.shutdown()
            return grant

        grant = asyncio.run(main())
        assert grant["grant"]["resource"] == 2
