"""Trace context on the wire: the field format, the binary-codec
trailer, hello negotiation, and client -> dispatch span linkage."""

import asyncio
import json

from repro.core import LeaseSchedule
from repro.obs import TraceSink, build_trace_trees, load_spans
from repro.serve import AsyncLeaseClient, LeaseServer
from repro.serve.protocol import (
    _TRACE_FLAG,
    _TRACE_STRUCT,
    decode_body_bin,
    encode_body_bin,
    format_trace,
    parse_trace,
)

SCHEDULE = LeaseSchedule.power_of_two(4, cost_growth=2.0)


class TestTraceField:
    def test_format_parse_round_trip(self):
        for trace_id, span_id in [(0, 0), (1, 2), (2**64 - 1, 2**63)]:
            field = format_trace(trace_id, span_id)
            assert len(field) == 33
            assert parse_trace(field) == (trace_id, span_id)

    def test_malformed_fields_parse_to_none(self):
        good = format_trace(7, 9)
        for bad in (
            None,
            7,
            True,
            good[:-1],              # too short
            good + "0",             # too long
            good.replace("-", ":"),  # wrong separator
            "g" * 16 + "-" + "0" * 16,  # non-hex
            "-1234567890abcdef-0123456789abcde",  # dash misplaced
        ):
            assert parse_trace(bad) is None, bad


class TestBinaryCodecTrailer:
    def _mutation(self, **extra):
        payload = {
            "id": 9, "op": "acquire", "tenant": "t-3", "resource": 5,
            "time": 12,
        }
        payload.update(extra)
        return payload

    def test_traced_mutation_packs_trailer_and_round_trips(self):
        payload = self._mutation(trace=format_trace(0xAB, 0xCD))
        body = encode_body_bin(payload)
        # Packed layout, not a JSON fallback: mutation kind, traced opcode.
        assert body[0] == 1
        assert body[1] & _TRACE_FLAG
        assert body[-_TRACE_STRUCT.size:] == _TRACE_STRUCT.pack(0xAB, 0xCD)
        assert decode_body_bin(body) == payload

    def test_untraced_mutation_unchanged_by_the_reserved_bit(self):
        payload = self._mutation()
        body = encode_body_bin(payload)
        assert body[0] == 1
        assert not body[1] & _TRACE_FLAG
        assert decode_body_bin(body) == payload

    def test_traced_tick_round_trips(self):
        payload = {
            "id": 4, "op": "tick", "time": 30,
            "trace": format_trace(1, 2),
        }
        body = encode_body_bin(payload)
        assert body[1] & _TRACE_FLAG
        assert decode_body_bin(body) == payload

    def test_non_canonical_trace_rides_as_json_and_still_decodes(self):
        # Uppercase hex parses but is not the canonical rendering, so
        # the packer must refuse (byte-identity) and fall back to JSON.
        field = format_trace(0xAB, 0xCD).upper().replace("-", "-", 1)
        field = field[:16].upper() + "-" + field[17:].upper()
        payload = self._mutation(trace=field)
        body = encode_body_bin(payload)
        assert body[0] == 0  # JSON-bytes kind
        assert decode_body_bin(body) == payload

    def test_truncated_trailer_is_a_protocol_error(self):
        import pytest

        from repro.serve.protocol import ProtocolError

        body = encode_body_bin(self._mutation(trace=format_trace(1, 2)))
        with pytest.raises(ProtocolError):
            decode_body_bin(body[: -_TRACE_STRUCT.size] + b"\x00" * 7 + b"")
        with pytest.raises(ProtocolError):
            decode_body_bin(body[:3])


class TestSpanLinkage:
    def _run(self, tmp_path, codec=None, peer_trace=True):
        client_file = tmp_path / "client.jsonl"
        server_file = tmp_path / "server.jsonl"

        async def main(sock):
            server = LeaseServer(
                SCHEDULE, num_resources=8, num_shards=2,
                trace=TraceSink(server_file),
            )
            await server.start_unix(sock)
            client = await AsyncLeaseClient.open_unix(
                sock, codec=codec, trace=TraceSink(client_file)
            )
            assert client._peer_trace is True
            if not peer_trace:
                client._peer_trace = False  # simulate a pre-trace server
            await client.acquire("t-0", 1, 0)
            await client.release("t-0", 1, 2)
            await client.tick(3)
            client._trace_sink.flush()
            await client.close()
            await server.shutdown()
            server.trace.flush()

        import shutil
        import tempfile

        workdir = tempfile.mkdtemp(prefix="rsv-")
        try:
            asyncio.run(main(f"{workdir}/t.sock"))
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        return load_spans([client_file, server_file])

    def test_each_mutation_is_one_two_level_tree(self, tmp_path):
        spans = self._run(tmp_path)
        trees = build_trace_trees(spans)
        # acquire, release, tick: one fresh trace id each.
        assert len(trees) == 3
        kinds = {}
        for trace, roots in trees.items():
            assert len(roots) == 1, "orphaned span: file merge lost a hop"
            root = roots[0]
            assert root.span["kind"] == "client"
            assert root.span["parent"] is None
            for child in root.children:
                assert child.span["kind"] == "dispatch"
                assert child.span["parent"] == root.span["span_id"]
                assert child.span["trace"] == root.span["trace"]
            kinds[root.span["op"]] = len(root.children)
        # Point mutations hit one shard; the tick broadcast hits both.
        assert kinds == {"acquire": 1, "release": 1, "tick": 2}

    def test_binary_codec_carries_the_same_linkage(self, tmp_path):
        spans = self._run(tmp_path, codec="bin")
        trees = build_trace_trees(spans)
        assert len(trees) == 3
        for roots in trees.values():
            assert roots[0].span["kind"] == "client"
            assert all(
                child.span["kind"] == "dispatch"
                for child in roots[0].children
            )

    def test_old_peer_means_no_trace_fields_anywhere(self, tmp_path):
        spans = self._run(tmp_path, peer_trace=False)
        assert spans, "server still samples spans without trace context"
        assert all("trace" not in span for span in spans)
        assert build_trace_trees(spans) == {}

    def test_spans_verb_pulls_the_live_buffer(self, tmp_path):
        """The ``spans`` protocol op answers from the live sink —
        flushed file plus still-buffered spans — so a federated pull
        sees work that finished moments ago, mid-run."""

        async def main(sock):
            server = LeaseServer(
                SCHEDULE, num_resources=8, num_shards=2,
                trace=TraceSink(tmp_path / "server.jsonl"),
            )
            await server.start_unix(sock)
            client = await AsyncLeaseClient.open_unix(
                sock, trace=TraceSink(tmp_path / "client.jsonl")
            )
            await client.acquire("t-0", 1, 0)
            await client.acquire("t-1", 2, 0)
            everything = await client.call("spans")
            traced = [
                s for s in everything["spans"] if s.get("trace")
            ]
            one = await client.call("spans", trace=traced[0]["trace"])
            none = await client.call("spans", trace="0" * 16)
            await client.close()
            await server.shutdown()
            return everything, traced, one, none

        import shutil
        import tempfile

        workdir = tempfile.mkdtemp(prefix="rsv-")
        try:
            everything, traced, one, none = asyncio.run(
                main(f"{workdir}/t.sock")
            )
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        # Both acquires' dispatch spans are visible without any flush
        # having been requested, and each carries its trace context.
        assert len(traced) == 2
        assert {s["kind"] for s in traced} == {"dispatch"}
        assert [s["trace"] for s in one["spans"]] == [traced[0]["trace"]]
        assert none["spans"] == []

    def test_spans_verb_is_empty_when_tracing_is_off(self, tmp_path):
        async def main(sock):
            server = LeaseServer(SCHEDULE, num_resources=8, num_shards=2)
            await server.start_unix(sock)
            client = await AsyncLeaseClient.open_unix(sock)
            await client.acquire("t-0", 1, 0)
            out = await client.call("spans")
            await client.close()
            await server.shutdown()
            return out

        import shutil
        import tempfile

        workdir = tempfile.mkdtemp(prefix="rsv-")
        try:
            out = asyncio.run(main(f"{workdir}/t.sock"))
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        assert out["spans"] == []

    def test_spans_are_observation_only(self, tmp_path):
        """Tracing must not perturb the served state: identical run with
        and without sinks produces identical reports."""

        async def run(sock, trace):
            server = LeaseServer(
                SCHEDULE, num_resources=8, num_shards=2, trace=trace
            )
            await server.start_unix(sock)
            client = await AsyncLeaseClient.open_unix(
                sock,
                trace=TraceSink(sock + ".jsonl") if trace else None,
            )
            for day in range(6):
                await client.acquire("t-0", day % 8, day)
            await client.tick(9)
            report = await client.report()
            await client.close()
            await server.shutdown()
            return json.dumps(report, sort_keys=True)

        import shutil
        import tempfile

        workdir = tempfile.mkdtemp(prefix="rsv-")
        try:
            traced = asyncio.run(
                run(f"{workdir}/a.sock", TraceSink(tmp_path / "s.jsonl"))
            )
            bare = asyncio.run(run(f"{workdir}/b.sock", None))
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        assert traced == bare
