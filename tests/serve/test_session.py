"""Session semantics: backpressure windows and idle expiry, clock-injected."""

import pytest

from repro.serve.session import SessionRegistry


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


class TestBackpressure:
    def test_window_bounds_inflight(self, clock):
        registry = SessionRegistry(window=2, idle_timeout=10.0, clock=clock)
        first = registry.try_acquire("t")
        second = registry.try_acquire("t")
        assert first is not None and second is not None
        assert registry.try_acquire("t") is None  # window full
        registry.release(first)
        assert registry.try_acquire("t") is not None  # slot freed

    def test_windows_are_per_tenant(self, clock):
        registry = SessionRegistry(window=1, idle_timeout=10.0, clock=clock)
        assert registry.try_acquire("a") is not None
        assert registry.try_acquire("b") is not None  # b unaffected by a
        assert registry.try_acquire("a") is None

    def test_rejections_counted(self, clock):
        registry = SessionRegistry(window=1, idle_timeout=10.0, clock=clock)
        session = registry.try_acquire("t")
        registry.try_acquire("t")
        registry.try_acquire("t")
        assert session.rejected == 2
        assert registry.snapshot()["rejected"] == 2

    def test_window_must_be_positive(self, clock):
        with pytest.raises(Exception):
            SessionRegistry(window=0, clock=clock)

    def test_refusals_feed_the_injected_counter(self, clock):
        from repro.obs import Counter

        refusals = Counter()
        registry = SessionRegistry(
            window=1, idle_timeout=10.0, clock=clock,
            refusal_counter=refusals,
        )
        registry.try_acquire("t")
        registry.try_acquire("t")
        registry.try_acquire("t")
        assert refusals.value == 2


class TestIdleExpiry:
    def test_idle_sessions_expire(self, clock):
        registry = SessionRegistry(window=4, idle_timeout=5.0, clock=clock)
        session = registry.try_acquire("t")
        registry.release(session)
        clock.now = 6.0
        assert registry.expire_idle() == ("t",)
        assert len(registry) == 0
        assert registry.expired_total == 1

    def test_active_sessions_survive_sweeps(self, clock):
        registry = SessionRegistry(window=4, idle_timeout=5.0, clock=clock)
        registry.try_acquire("busy")  # still in flight, never released
        idle = registry.try_acquire("idle")
        registry.release(idle)
        clock.now = 100.0
        assert registry.expire_idle() == ("idle",)
        assert len(registry) == 1  # busy is pinned by its in-flight request

    def test_expiries_feed_the_injected_counter(self, clock):
        from repro.obs import Counter

        expiries = Counter()
        registry = SessionRegistry(
            window=4, idle_timeout=5.0, clock=clock,
            expiry_counter=expiries,
        )
        for tenant in ("a", "b"):
            registry.release(registry.try_acquire(tenant))
        clock.now = 6.0
        assert registry.expire_idle() == ("a", "b")
        assert expiries.value == 2

    def test_touch_resets_the_idle_timer(self, clock):
        registry = SessionRegistry(window=4, idle_timeout=5.0, clock=clock)
        session = registry.try_acquire("t")
        registry.release(session)
        clock.now = 4.0
        registry.session("t")  # fresh request traffic
        clock.now = 8.0  # 4s since touch, 8s since first request
        assert registry.expire_idle() == ()
