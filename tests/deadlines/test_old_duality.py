"""Dual feasibility of the OLD primal-dual algorithm vs the Figure 5.2 ILP.

Theorem 5.3's proof needs the constructed dual to be feasible (no lease
window's constraint over-subscribed) so that weak duality applies.  These
tests rebuild the ILP from the instance and check the algorithm's duals
against it row by row via the shared duality checker.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LeaseSchedule
from repro.lp import check_duality
from repro.deadlines import make_old_instance, run_old

client_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=6),
    ),
    min_size=1,
    max_size=12,
)


def duality_report(clients):
    schedule = LeaseSchedule.power_of_two(3)
    instance = make_old_instance(schedule, clients).normalized()
    algorithm = run_old(instance)
    program = instance.to_covering_program()
    owned = {
        (lease.type_index, lease.start) for lease in algorithm.leases
    }
    x = []
    for payload in program.payloads:
        key = (payload.type_index, payload.start)
        x.append(1.0 if key in owned else 0.0)
    y = [
        algorithm.duals.get((client.arrival, client.slack), 0.0)
        for client in instance.clients
    ]
    return instance, algorithm, check_duality(program, x, y)


class TestDualFeasibility:
    @given(clients=client_lists)
    @settings(max_examples=25)
    def test_dual_never_violates_columns(self, clients):
        _, _, report = duality_report(clients)
        assert report.dual_feasible, (
            f"dual violated by {report.max_dual_violation}"
        )

    @given(clients=client_lists)
    @settings(max_examples=25)
    def test_weak_duality(self, clients):
        _, _, report = duality_report(clients)
        assert report.dual_value <= report.primal_value + 1e-6

    @given(clients=client_lists)
    @settings(max_examples=15)
    def test_primal_covers_program(self, clients):
        """The purchased leases, mapped back onto the ILP, are feasible.

        This is stronger than the interval-intersection verifier: it
        confirms that for every client row, some *candidate* window
        variable is set — i.e. the algorithm serves clients with leases
        the ILP recognises.
        """
        _, _, report = duality_report(clients)
        assert report.primal_feasible

    @given(clients=client_lists)
    @settings(max_examples=15)
    def test_skipped_clients_have_zero_dual(self, clients):
        schedule = LeaseSchedule.power_of_two(3)
        instance = make_old_instance(schedule, clients).normalized()
        algorithm = run_old(instance)
        recorded = set(algorithm.duals)
        for client in instance.clients:
            key = (client.arrival, client.slack)
            if key not in recorded:
                # Skipped entirely: contributes nothing to any column.
                continue
        # All recorded duals are non-negative.
        assert all(value >= 0.0 for value in algorithm.duals.values())
