"""Tests for OLD offline solvers: ILP vs DP cross-validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LeaseSchedule
from repro.deadlines import (
    make_old_instance,
    optimal_dp,
    optimal_leases,
    optimum,
)

client_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=10),
    ),
    min_size=0,
    max_size=12,
)


class TestCrossValidation:
    @given(clients=client_lists)
    @settings(max_examples=40)
    def test_dp_matches_ilp(self, clients):
        """Two independent exact solvers agree on every instance."""
        schedule = LeaseSchedule.power_of_two(3)
        instance = make_old_instance(schedule, clients)
        dp = optimal_dp(instance)
        ilp = optimum(instance)
        assert dp == pytest.approx(ilp.lower, abs=1e-6)

    @given(clients=client_lists)
    @settings(max_examples=20)
    def test_dp_on_normalized_matches_raw(self, clients):
        """Normalization never changes the optimum."""
        schedule = LeaseSchedule.power_of_two(3)
        raw = make_old_instance(schedule, clients)
        assert optimal_dp(raw) == pytest.approx(
            optimal_dp(raw.normalized()), abs=1e-9
        )


class TestStructure:
    def test_empty_instance(self, schedule3):
        assert optimal_dp(make_old_instance(schedule3, [])) == 0.0

    def test_single_client_buys_cheapest_candidate(self, schedule3):
        instance = make_old_instance(schedule3, [(3, 4)])
        cheapest = min(
            lease.cost for lease in instance.candidates(instance.clients[0])
        )
        assert optimal_dp(instance) == pytest.approx(cheapest)

    def test_slack_never_hurts(self, schedule3):
        """More slack can only lower the optimum (more candidates)."""
        tight = make_old_instance(schedule3, [(0, 0), (5, 0), (9, 0)])
        loose = make_old_instance(schedule3, [(0, 3), (5, 3), (9, 3)])
        assert optimal_dp(loose) <= optimal_dp(tight) + 1e-9

    def test_shared_deadline_day_single_lease(self, schedule3):
        """Intervals overlapping in one day need only one short lease."""
        instance = make_old_instance(schedule3, [(0, 4), (2, 2), (4, 0)])
        # Day 4 lies in all three intervals.
        assert optimal_dp(instance) == pytest.approx(schedule3[0].cost)

    def test_optimal_leases_feasible(self, schedule3):
        instance = make_old_instance(
            schedule3, [(0, 2), (4, 1), (9, 3), (9, 0)]
        )
        solution = optimal_leases(instance)
        assert instance.is_feasible_solution(list(solution.leases))
        assert solution.cost == pytest.approx(
            sum(lease.cost for lease in solution.leases)
        )
