"""Unit tests for the OLD model and its normalization."""

import pytest

from repro.errors import ModelError
from repro.deadlines import DeadlineClient, OLDInstance, make_old_instance


class TestDeadlineClient:
    def test_interval(self):
        client = DeadlineClient(arrival=3, slack=4)
        assert client.deadline == 7
        assert client.interval() == (3, 7)

    def test_zero_slack_is_parking_permit(self):
        client = DeadlineClient(arrival=5, slack=0)
        assert client.interval() == (5, 5)

    def test_rejects_negative_slack(self):
        with pytest.raises(ModelError):
            DeadlineClient(arrival=0, slack=-1)


class TestInstance:
    def test_make_sorts(self, schedule3):
        instance = make_old_instance(schedule3, [(5, 1), (2, 3)])
        assert [c.arrival for c in instance.clients] == [2, 5]

    def test_rejects_unsorted(self, schedule3):
        with pytest.raises(ModelError):
            OLDInstance(
                schedule=schedule3,
                clients=(
                    DeadlineClient(5, 0),
                    DeadlineClient(2, 0),
                ),
            )

    def test_dmax_dmin(self, schedule3):
        instance = make_old_instance(schedule3, [(0, 4), (1, 2), (5, 7)])
        assert instance.dmax == 7
        assert instance.dmin == 2

    def test_uniformity(self, schedule3):
        assert make_old_instance(schedule3, [(0, 3), (4, 3)]).is_uniform()
        assert not make_old_instance(schedule3, [(0, 3), (4, 2)]).is_uniform()
        assert make_old_instance(schedule3, []).is_uniform()


class TestNormalization:
    def test_keeps_earliest_deadline_per_day(self, schedule3):
        instance = make_old_instance(
            schedule3, [(0, 9), (0, 2), (0, 5), (3, 1)]
        )
        normalized = instance.normalized()
        assert [(c.arrival, c.slack) for c in normalized.clients] == [
            (0, 2),
            (3, 1),
        ]

    def test_normalized_serves_original(self, schedule3):
        """A solution serving the normalized instance serves the original."""
        instance = make_old_instance(schedule3, [(0, 9), (0, 2), (4, 6)])
        normalized = instance.normalized()
        # Serve each normalized client with a single short lease.
        leases = []
        for client in normalized.clients:
            leases.extend(
                w for w in normalized.candidates(client) if w.type_index == 0
            )
        assert normalized.is_feasible_solution(leases)
        assert instance.is_feasible_solution(leases)


class TestCandidates:
    def test_all_candidates_intersect(self, schedule3):
        instance = make_old_instance(schedule3, [(3, 5)])
        client = instance.clients[0]
        for lease in instance.candidates(client):
            assert lease.intersects(3, 8)

    def test_zero_slack_candidates_are_covering_windows(self, schedule3):
        instance = make_old_instance(schedule3, [(6, 0)])
        candidates = instance.candidates(instance.clients[0])
        assert len(candidates) == schedule3.num_types
        assert all(lease.covers(6) for lease in candidates)


class TestCoveringProgram:
    def test_row_per_client(self, schedule3):
        instance = make_old_instance(schedule3, [(0, 2), (5, 1)])
        program = instance.to_covering_program()
        assert program.num_constraints == 2

    def test_feasibility_matches_program(self, schedule3):
        instance = make_old_instance(schedule3, [(0, 2), (5, 1)])
        program = instance.to_covering_program()
        x = [1.0] * program.num_variables
        leases = program.selected_payloads(x)
        assert instance.is_feasible_solution(leases)
        assert program.is_feasible(x)
