"""Tests for the OLD primal-dual algorithm (Section 5.3, Theorem 5.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LeaseSchedule
from repro.analysis import verify_old
from repro.deadlines import (
    OnlineLeasingWithDeadlines,
    make_old_instance,
    optimal_dp,
    optimum,
    run_old,
)
from repro.workloads import deadline_arrivals, make_rng

client_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=8),
    ),
    min_size=1,
    max_size=15,
)


def build(schedule, clients):
    return make_old_instance(schedule, clients).normalized()


class TestFeasibility:
    @given(clients=client_lists)
    @settings(max_examples=30)
    def test_always_feasible(self, clients):
        schedule = LeaseSchedule.power_of_two(3)
        instance = build(schedule, clients)
        algorithm = run_old(instance)
        verify_old(instance, list(algorithm.leases)).raise_if_failed()

    @given(clients=client_lists)
    @settings(max_examples=20)
    def test_feasible_on_unnormalized_stream(self, clients):
        """The algorithm also handles raw streams with same-day clients."""
        schedule = LeaseSchedule.power_of_two(3)
        instance = make_old_instance(schedule, clients)
        algorithm = OnlineLeasingWithDeadlines(schedule)
        for client in instance.clients:
            algorithm.on_demand(client)
        verify_old(instance, list(algorithm.leases)).raise_if_failed()


class TestBehaviour:
    def test_zero_slack_reduces_to_parking_permit(self, schedule3):
        """With d = 0 everywhere, purchases match Algorithm 1 exactly."""
        from repro.parking import DeterministicParkingPermit

        days = [0, 1, 4, 9, 10, 11]
        old = OnlineLeasingWithDeadlines(schedule3)
        parking = DeterministicParkingPermit(schedule3)
        for day in days:
            old.on_demand((day, 0))
            parking.on_demand(day)
        # Step 2 at t+d = t re-buys the Step-1 lease, so the sets coincide.
        assert {l.key for l in old.leases} == {l.key for l in parking.leases}
        assert old.cost == pytest.approx(parking.cost)

    def test_skip_rule_fires_on_intersection(self, schedule3):
        algorithm = OnlineLeasingWithDeadlines(schedule3)
        algorithm.on_demand((0, 6))  # positive dual, deadline point 6
        cost_before = algorithm.cost
        algorithm.on_demand((2, 5))  # interval [2, 7] contains 6 -> skip
        assert algorithm.skipped == 1
        assert algorithm.cost == cost_before

    def test_skipped_client_is_still_served(self, schedule3):
        algorithm = OnlineLeasingWithDeadlines(schedule3)
        algorithm.on_demand((0, 6))
        algorithm.on_demand((2, 5))
        from repro.deadlines import DeadlineClient

        assert algorithm.serves(DeadlineClient(2, 5))

    def test_no_skip_when_deadline_point_outside(self, schedule3):
        algorithm = OnlineLeasingWithDeadlines(schedule3)
        algorithm.on_demand((0, 10))  # deadline point 10
        algorithm.on_demand((2, 3))   # interval [2, 5]: 10 outside
        assert algorithm.skipped == 0

    def test_step2_buys_lease_at_deadline(self, schedule3):
        algorithm = OnlineLeasingWithDeadlines(schedule3)
        algorithm.on_demand((0, 6))
        assert any(lease.covers(6) for lease in algorithm.leases)

    def test_dual_recorded(self, schedule3):
        algorithm = OnlineLeasingWithDeadlines(schedule3)
        algorithm.on_demand((0, 2))
        assert algorithm.duals[(0, 2)] > 0


class TestTheorem53:
    @given(clients=client_lists)
    @settings(max_examples=20)
    def test_nonuniform_bound(self, clients):
        """ALG <= (2K + dmax/lmin + 2) * OPT with explicit constants."""
        schedule = LeaseSchedule.power_of_two(3)
        instance = build(schedule, clients)
        algorithm = run_old(instance)
        opt = optimal_dp(instance)
        K = schedule.num_types
        bound = 2 * K + instance.dmax / schedule.lmin + 2
        assert algorithm.cost <= bound * opt + 1e-6

    @given(
        seed=st.integers(min_value=0, max_value=50),
        slack=st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=20)
    def test_uniform_bound(self, seed, slack):
        """Uniform OLD: ALG <= 2K * OPT (Theorem 5.3 first part)."""
        rng = make_rng(seed)
        schedule = LeaseSchedule.power_of_two(3)
        clients = deadline_arrivals(
            40, 0.4, max_slack=0, rng=rng, uniform_slack=slack
        )
        if not clients:
            return
        instance = build(schedule, clients)
        algorithm = run_old(instance)
        opt = optimal_dp(instance)
        assert algorithm.cost <= 2 * schedule.num_types * opt + 1e-6

    @given(clients=client_lists)
    @settings(max_examples=15)
    def test_duals_lower_bound_opt(self, clients):
        """Feasible duals: their sum never exceeds OPT (weak duality)."""
        schedule = LeaseSchedule.power_of_two(3)
        instance = build(schedule, clients)
        algorithm = run_old(instance)
        opt = optimum(instance)
        total_dual = sum(algorithm.duals.values())
        assert total_dual <= opt.lower + 1e-6
