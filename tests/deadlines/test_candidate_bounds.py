"""Candidate-count bounds behind Theorem 5.3 and Lemma 5.5.

The competitive factors of Chapter 5 hinge on counting candidates:
a client interval of length ``d`` meets at most ``K + d/l_min``-ish
aligned windows (Theorem 5.3's purchase bound) and an SCLD demand has at
most ``delta * (that)`` candidate triples (Lemma 5.5's ``|F|``).  These
property tests pin the implementation to the counting argument.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LeaseSchedule
from repro.deadlines import DeadlineElement, SCLDInstance
from repro.setcover import random_set_system
from repro.workloads import make_rng


class TestWindowCounting:
    @given(
        t=st.integers(min_value=0, max_value=500),
        slack=st.integers(min_value=0, max_value=64),
        num_types=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60)
    def test_windows_per_type_is_ceil_plus_one(self, t, slack, num_types):
        """Per type k, the interval [t, t+d] meets <= ceil(d/l_k) + 1 windows."""
        schedule = LeaseSchedule.power_of_two(num_types)
        windows = schedule.windows_intersecting(t, t + slack)
        per_type: dict[int, int] = {}
        for window in windows:
            per_type[window.type_index] = (
                per_type.get(window.type_index, 0) + 1
            )
        for lease_type in schedule:
            count = per_type.get(lease_type.index, 0)
            assert count <= math.ceil(slack / lease_type.length) + 1
            assert count >= 1

    @given(
        t=st.integers(min_value=0, max_value=500),
        slack=st.integers(min_value=0, max_value=64),
    )
    @settings(max_examples=40)
    def test_total_candidates_theorem_5_3_bound(self, t, slack):
        """Total windows <= 2K + 2d/l_min.

        Sum over types of (ceil(d/l_k) + 1) <= 2K + d * sum 1/l_k, and the
        power-of-two lengths make the sum a geometric series bounded by
        2/l_min — the O(K + d_max/l_min) shape of Theorem 5.3.
        """
        schedule = LeaseSchedule.power_of_two(3)
        windows = schedule.windows_intersecting(t, t + slack)
        K = schedule.num_types
        assert len(windows) <= 2 * K + 2 * slack / schedule.lmin + 1e-9


class TestSCLDCandidates:
    @given(
        seed=st.integers(min_value=0, max_value=30),
        slack=st.integers(min_value=0, max_value=16),
    )
    @settings(max_examples=25)
    def test_lemma_5_5_candidate_bound(self, seed, slack):
        """|F_(e,t,d)| <= delta * (2K + 2d/l_min)."""
        rng = make_rng(seed)
        schedule = LeaseSchedule.power_of_two(2)
        system = random_set_system(8, 6, 3, schedule, rng)
        demand = DeadlineElement(
            element=rng.randrange(8), arrival=rng.randrange(20), slack=slack
        )
        instance = SCLDInstance(
            system=system, schedule=schedule, demands=(demand,)
        )
        candidates = instance.candidates(demand)
        delta = len(system.sets_containing(demand.element))
        K = schedule.num_types
        bound = delta * (2 * K + 2 * slack / schedule.lmin)
        assert len(candidates) <= bound + 1e-9
        # And every candidate is genuinely usable.
        for lease in candidates:
            assert lease.intersects(demand.arrival, demand.deadline)
