"""Tests for SCLD (Algorithm 5, Theorem 5.7, Corollary 5.8)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LeaseSchedule
from repro.analysis import verify_scld
from repro.errors import InfeasibleError, ModelError
from repro.deadlines import (
    DeadlineElement,
    OnlineSCLD,
    SCLDInstance,
    scld_from_setcover,
)
from repro.lp import opt_bounds
from repro.setcover import SetSystem, random_set_system
from repro.workloads import make_rng


def build_instance(seed, num_elements=10, num_sets=6, horizon=24, demands=18,
                   max_slack=5, num_types=2):
    rng = make_rng(seed)
    schedule = LeaseSchedule.power_of_two(num_types)
    system = random_set_system(
        num_elements, num_sets, 2, schedule, rng
    )
    raw = sorted(
        (
            rng.randrange(num_elements),
            rng.randrange(horizon),
            rng.randint(0, max_slack),
        )
        for _ in range(demands)
    )
    raw.sort(key=lambda d: d[1])
    return SCLDInstance(
        system=system,
        schedule=schedule,
        demands=tuple(DeadlineElement(*d) for d in raw),
    )


class TestModel:
    def test_candidate_triples_intersect(self):
        instance = build_instance(0)
        demand = instance.demands[0]
        for lease in instance.candidates(demand):
            assert lease.intersects(demand.arrival, demand.deadline)
            assert demand.element in instance.system.sets[lease.resource]

    def test_rejects_uncoverable_element(self, schedule2):
        system = SetSystem(
            num_elements=2, sets=[{0}], lease_costs=[[1.0, 1.5]]
        )
        with pytest.raises(ModelError):
            SCLDInstance(
                system=system,
                schedule=schedule2,
                demands=(DeadlineElement(1, 0, 0),),
            )

    def test_covering_program_shape(self):
        instance = build_instance(1, demands=5)
        program = instance.to_covering_program()
        assert program.num_constraints == 5


class TestAlgorithm:
    @given(
        seed=st.integers(min_value=0, max_value=60),
        algo_seed=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=20)
    def test_always_feasible(self, seed, algo_seed):
        instance = build_instance(seed)
        algorithm = OnlineSCLD(instance, seed=algo_seed)
        for demand in instance.demands:
            algorithm.on_demand(demand)
        verify_scld(instance, list(algorithm.leases)).raise_if_failed()

    def test_threshold_draw_count(self):
        instance = build_instance(2)
        algorithm = OnlineSCLD(instance, seed=0)
        lmax = instance.schedule.lmax
        assert algorithm.num_threshold_draws == max(
            1, 2 * math.ceil(math.log2(max(2, lmax)))
        )

    def test_empty_candidates_raises(self, schedule2):
        system = SetSystem(
            num_elements=2, sets=[{0}, {0, 1}], lease_costs=[[1.0, 1.5]] * 2
        )
        instance = SCLDInstance(system=system, schedule=schedule2, demands=())
        algorithm = OnlineSCLD(instance, seed=0)
        # Element 1 IS coverable; feed it as tuple to exercise that path.
        algorithm.on_demand((1, 0, 2))
        assert algorithm.store.total_cost > 0

    def test_slack_exploited_for_savings(self):
        """With slack, one lease can serve two spread-out demands."""
        schedule = LeaseSchedule.from_pairs([(2, 1.0), (8, 1.5)])
        system = SetSystem(
            num_elements=1, sets=[{0}], lease_costs=[[1.0, 1.5]]
        )
        tight_inst = SCLDInstance(
            system=system,
            schedule=schedule,
            demands=(
                DeadlineElement(0, 0, 0),
                DeadlineElement(0, 9, 0),
            ),
        )
        loose_inst = SCLDInstance(
            system=system,
            schedule=schedule,
            demands=(
                DeadlineElement(0, 0, 9),
                DeadlineElement(0, 9, 6),
            ),
        )
        tight_opt = opt_bounds(tight_inst.to_covering_program())
        loose_opt = opt_bounds(loose_inst.to_covering_program())
        assert loose_opt.lower <= tight_opt.lower

    def test_deterministic_given_seed(self):
        instance = build_instance(4)
        costs = []
        for _ in range(2):
            algorithm = OnlineSCLD(instance, seed=11)
            for demand in instance.demands:
                algorithm.on_demand(demand)
            costs.append(round(algorithm.cost, 9))
        assert costs[0] == costs[1]


class TestCompetitiveness:
    def test_mean_ratio_within_theorem_bound(self):
        instance = build_instance(8, demands=20)
        opt = opt_bounds(instance.to_covering_program())
        ratios = []
        for seed in range(12):
            algorithm = OnlineSCLD(instance, seed=seed)
            for demand in instance.demands:
                algorithm.on_demand(demand)
            ratios.append(algorithm.cost / opt.lower)
        mean = sum(ratios) / len(ratios)
        m = instance.system.num_sets
        K = instance.schedule.num_types
        dmax = max(demand.slack for demand in instance.demands)
        lmin = instance.schedule.lmin
        lmax = instance.schedule.lmax
        bound = (
            4.0
            * (math.log(m * (K + dmax / lmin)) + 2.0)
            * (2.0 * math.log2(max(2, lmax)) + 3.0)
        )
        assert mean <= bound


class TestCorollary58:
    def test_zero_slack_construction(self):
        rng = make_rng(3)
        schedule = LeaseSchedule.power_of_two(2)
        system = random_set_system(6, 4, 2, schedule, rng)
        instance = scld_from_setcover(
            system, schedule, [(0, 0), (3, 2), (5, 4)]
        )
        assert all(demand.slack == 0 for demand in instance.demands)

    def test_zero_slack_run_feasible(self):
        rng = make_rng(5)
        schedule = LeaseSchedule.power_of_two(2)
        system = random_set_system(6, 4, 2, schedule, rng)
        demands = [(rng.randrange(6), t) for t in range(0, 20, 2)]
        instance = scld_from_setcover(system, schedule, demands)
        algorithm = OnlineSCLD(instance, seed=0)
        for demand in instance.demands:
            algorithm.on_demand(demand)
        verify_scld(instance, list(algorithm.leases)).raise_if_failed()
