"""Tests for the Proposition 5.4 / Figure 5.3 tight example."""

import pytest

from repro.errors import ModelError
from repro.deadlines import (
    expected_ratio_lower_bound,
    optimal_dp,
    run_old,
    tight_example,
)


class TestConstruction:
    def test_schedule_shape(self):
        instance = tight_example(dmax=16, lmin=1, epsilon=0.05)
        assert instance.schedule.num_types == 2
        assert instance.schedule[0].length == 1
        assert instance.schedule[0].cost == 1.0
        assert instance.schedule[1].cost == pytest.approx(1.05)
        assert instance.schedule[1].length >= 16

    def test_client_pattern(self):
        instance = tight_example(dmax=8, lmin=2)
        pairs = [(c.arrival, c.slack) for c in instance.clients]
        assert pairs[0] == (0, 8)
        assert pairs[1:] == [(2, 2), (4, 2), (6, 2)]

    def test_rejects_degenerate(self):
        with pytest.raises(ModelError):
            tight_example(dmax=1, lmin=2)


class TestTightness:
    def test_optimum_is_single_long_lease(self):
        instance = tight_example(dmax=32, lmin=1, epsilon=0.01)
        assert optimal_dp(instance) == pytest.approx(1.01)

    def test_algorithm_pays_linear_in_dmax_over_lmin(self):
        """The measured ratio realises the Omega(dmax/lmin) lower bound."""
        instance = tight_example(dmax=32, lmin=1, epsilon=0.01)
        algorithm = run_old(instance)
        assert instance.is_feasible_solution(list(algorithm.leases))
        ratio = algorithm.cost / optimal_dp(instance)
        assert ratio >= expected_ratio_lower_bound(32, 1) * 0.9

    def test_ratio_scales_with_dmax(self):
        """Doubling dmax/lmin roughly doubles the forced ratio."""
        ratios = []
        for dmax in (8, 16, 32):
            instance = tight_example(dmax=dmax, lmin=1)
            algorithm = run_old(instance)
            ratios.append(algorithm.cost / optimal_dp(instance))
        assert ratios[1] > 1.5 * ratios[0]
        assert ratios[2] > 1.5 * ratios[1]

    def test_lmin_scaling(self):
        """Larger lmin with fixed dmax lowers the forced ratio."""
        small = tight_example(dmax=32, lmin=1)
        large = tight_example(dmax=32, lmin=4)
        ratio_small = run_old(small).cost / optimal_dp(small)
        ratio_large = run_old(large).cost / optimal_dp(large)
        assert ratio_large < ratio_small
