"""Trace sink: span shape, buffering/flush behaviour, the disabled
null path, and the injectable clock contract."""

import json

from repro.obs import NULL_TRACE, TraceSink


def _read_spans(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestTraceSink:
    def test_span_shape_and_flush(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = TraceSink(str(path))
        sink.span(
            op="acquire", tenant="t0", resource=3, request_id=7,
            t_enq=1.0, t_disp=1.5, t_reply=2.0,
        )
        assert sink.emitted == 1
        assert _read_spans(path) == []  # buffered, not yet flushed
        sink.flush()
        (span,) = _read_spans(path)
        assert span == {
            "id": 7, "op": "acquire", "tenant": "t0", "resource": 3,
            "t_enq": 1.0, "t_disp": 1.5, "t_reply": 2.0,
        }

    def test_tick_span_with_no_request_id_is_valid_json(self, tmp_path):
        # Ticks dispatch with request_id=None: the fast-path line must
        # render JSON null, byte-identical to the encoder's output.
        path = tmp_path / "trace.jsonl"
        sink = TraceSink(str(path))
        sink.span(
            op="tick", tenant=None, resource=None, request_id=None,
            t_enq=1.0, t_disp=1.5, t_reply=2.0,
        )
        sink.flush()
        line = path.read_text().strip()
        assert json.loads(line)["id"] is None
        assert line == json.dumps(
            {
                "id": None, "op": "tick", "resource": None,
                "t_disp": 1.5, "t_enq": 1.0, "t_reply": 2.0,
                "tenant": None,
            },
            sort_keys=True, separators=(",", ":"),
        )

    def test_auto_flush_every_n_emits(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = TraceSink(str(path), flush_every=4)
        for i in range(9):
            sink.emit({"i": i})
        # Two full buffers flushed; the ninth span still buffered.
        assert len(_read_spans(path)) == 8
        sink.close()
        assert [s["i"] for s in _read_spans(path)] == list(range(9))

    def test_construction_appends_to_an_existing_file(self, tmp_path):
        # A respawned worker reopens its trace path and must keep the
        # spans its previous incarnation wrote before crashing.
        path = tmp_path / "trace.jsonl"
        path.write_text('{"id": 1, "op": "pre-crash"}\n')
        sink = TraceSink(str(path))
        sink.emit({"id": 2, "op": "post-respawn"})
        sink.close()
        assert [s["op"] for s in _read_spans(path)] == [
            "pre-crash", "post-respawn",
        ]

    def test_construction_creates_a_missing_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        TraceSink(str(path))
        assert path.exists()
        assert _read_spans(path) == []

    def test_traced_span_carries_the_trace_context(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = TraceSink(str(path))
        sink.span(
            op="acquire", tenant="t0", resource=3, request_id=7,
            t_enq=1.0, t_disp=1.5, t_reply=2.0,
            trace="ab" * 8, span_id="cd" * 8, parent=None, kind="dispatch",
        )
        sink.flush()
        (span,) = _read_spans(path)
        assert span["trace"] == "ab" * 8
        assert span["span_id"] == "cd" * 8
        assert span["parent"] is None
        assert span["kind"] == "dispatch"

    def test_live_spans_covers_buffer_and_prior_incarnation(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"id": 1}\n')
        sink = TraceSink(str(path))
        sink.emit({"id": 2})  # still buffered
        spans = sink.live_spans()
        assert [s["id"] for s in spans] == [1, 2]
        # live_spans flushed the buffer as a side effect.
        assert [s["id"] for s in _read_spans(path)] == [1, 2]

    def test_live_spans_is_empty_when_disabled(self):
        assert NULL_TRACE.live_spans() == []

    def test_close_disables_further_emits(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = TraceSink(str(path))
        sink.emit({"a": 1})
        sink.close()
        sink.emit({"b": 2})
        assert len(_read_spans(path)) == 1

    def test_injectable_clock_is_carried(self, tmp_path):
        clock = lambda: 123.0  # noqa: E731
        sink = TraceSink(str(tmp_path / "t.jsonl"), clock=clock)
        assert sink.clock is clock

    def test_null_sink_does_nothing(self):
        NULL_TRACE.emit({"x": 1})
        NULL_TRACE.span(
            op="tick", tenant=None, resource=None, request_id=None,
            t_enq=0.0, t_disp=0.0, t_reply=0.0,
        )
        NULL_TRACE.flush()
        assert NULL_TRACE.enabled is False
        assert NULL_TRACE.emitted == 0
