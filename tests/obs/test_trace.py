"""Trace sink: span shape, buffering/flush behaviour, the disabled
null path, and the injectable clock contract."""

import json

from repro.obs import NULL_TRACE, TraceSink


def _read_spans(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestTraceSink:
    def test_span_shape_and_flush(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = TraceSink(str(path))
        sink.span(
            op="acquire", tenant="t0", resource=3, request_id=7,
            t_enq=1.0, t_disp=1.5, t_reply=2.0,
        )
        assert sink.emitted == 1
        assert _read_spans(path) == []  # buffered, not yet flushed
        sink.flush()
        (span,) = _read_spans(path)
        assert span == {
            "id": 7, "op": "acquire", "tenant": "t0", "resource": 3,
            "t_enq": 1.0, "t_disp": 1.5, "t_reply": 2.0,
        }

    def test_auto_flush_every_n_emits(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = TraceSink(str(path), flush_every=4)
        for i in range(9):
            sink.emit({"i": i})
        # Two full buffers flushed; the ninth span still buffered.
        assert len(_read_spans(path)) == 8
        sink.close()
        assert [s["i"] for s in _read_spans(path)] == list(range(9))

    def test_construction_truncates_stale_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"stale": true}\n')
        sink = TraceSink(str(path))
        sink.close()
        assert _read_spans(path) == []

    def test_close_disables_further_emits(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = TraceSink(str(path))
        sink.emit({"a": 1})
        sink.close()
        sink.emit({"b": 2})
        assert len(_read_spans(path)) == 1

    def test_injectable_clock_is_carried(self, tmp_path):
        clock = lambda: 123.0  # noqa: E731
        sink = TraceSink(str(tmp_path / "t.jsonl"), clock=clock)
        assert sink.clock is clock

    def test_null_sink_does_nothing(self):
        NULL_TRACE.emit({"x": 1})
        NULL_TRACE.span(
            op="tick", tenant=None, resource=None, request_id=None,
            t_enq=0.0, t_disp=0.0, t_reply=0.0,
        )
        NULL_TRACE.flush()
        assert NULL_TRACE.enabled is False
        assert NULL_TRACE.emitted == 0
