"""Metrics core: instrument semantics, registry label handling, the
null (disabled) path, quantiles, and the rendered exposition's
histogram invariants."""

import pytest

from repro.errors import ModelError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    latency_summary,
)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 12

    def test_histogram_bucket_boundaries_are_inclusive(self):
        hist = Histogram((1.0, 2.0, 4.0))
        # An observation exactly on a bound lands in that bound's bucket
        # (Prometheus `le` semantics).
        for value in (0.5, 1.0, 2.0, 3.0, 4.0, 99.0):
            hist.observe(value)
        assert hist.counts == [2, 1, 2, 1]
        assert hist.cumulative() == [2, 3, 5, 6]
        assert hist.count == 6
        assert hist.sum == pytest.approx(0.5 + 1 + 2 + 3 + 4 + 99)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ModelError):
            Histogram(())
        with pytest.raises(ModelError):
            Histogram((1.0, 1.0))
        with pytest.raises(ModelError):
            Histogram((2.0, 1.0))

    def test_quantile_interpolates_within_buckets(self):
        hist = Histogram((10.0, 20.0))
        for _ in range(10):
            hist.observe(5.0)  # all in the first bucket
        # Rank 5 of 10 → halfway through [0, 10].
        assert hist.quantile(0.5) == pytest.approx(5.0)
        assert hist.quantile(1.0) == pytest.approx(10.0)

    def test_quantile_overflow_clamps_to_last_bound(self):
        hist = Histogram((1.0,))
        hist.observe(50.0)
        assert hist.quantile(0.99) == 1.0

    def test_quantile_edge_cases(self):
        hist = Histogram((1.0,))
        assert hist.quantile(0.5) == 0.0  # empty histogram
        with pytest.raises(ModelError):
            hist.quantile(1.5)


class TestRegistry:
    def test_same_name_and_labels_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("ops_total", op="acquire")
        b = registry.counter("ops_total", op="acquire")
        c = registry.counter("ops_total", op="release")
        assert a is b
        assert a is not c

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.gauge("depth", shard="0", worker="1")
        b = registry.gauge("depth", worker="1", shard="0")
        assert a is b

    def test_type_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing_total")
        with pytest.raises(ModelError):
            registry.gauge("thing_total")
        registry.histogram("lat_seconds")
        with pytest.raises(ModelError):
            registry.histogram("lat_seconds", buckets=(1.0, 2.0))

    def test_invalid_names_and_labels_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ModelError):
            registry.counter("9starts_with_digit")
        with pytest.raises(ModelError):
            registry.counter("has space")
        with pytest.raises(ModelError):
            registry.counter("ok_total", **{"bad-label": "x"})
        with pytest.raises(ModelError):
            # 'le' is reserved for histogram bucket rendering.
            registry.histogram("lat_seconds2", le="0.5")

    def test_disabled_registry_hands_out_shared_nulls(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a_total") is NULL_COUNTER
        assert registry.gauge("b") is NULL_GAUGE
        assert registry.histogram("c_seconds") is NULL_HISTOGRAM
        # Null instruments swallow updates and render nothing.
        NULL_COUNTER.inc()
        NULL_GAUGE.set(9)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0
        assert NULL_HISTOGRAM.count == 0
        assert registry.render_prometheus() == ""
        assert registry.names() == ()

    def test_injectable_clock_is_carried_not_called(self):
        calls = []

        def clock():
            calls.append(1)
            return 42.0

        registry = MetricsRegistry(clock=clock)
        registry.counter("x_total").inc()
        registry.render_prometheus()
        assert registry.clock is clock
        assert calls == []  # the registry itself never samples


class TestRendering:
    def test_histogram_exposition_invariants(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "op_latency_seconds", help="per-op latency", buckets=(0.1, 1.0),
            op="acquire",
        )
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(7.0)  # overflow → +Inf only
        text = registry.render_prometheus()
        assert "# HELP op_latency_seconds per-op latency" in text
        assert "# TYPE op_latency_seconds histogram" in text
        # Cumulative buckets, +Inf equals _count, _sum carries the total.
        assert (
            'op_latency_seconds_bucket{op="acquire",le="0.1"} 1' in text
        )
        assert 'op_latency_seconds_bucket{op="acquire",le="1"} 2' in text
        assert (
            'op_latency_seconds_bucket{op="acquire",le="+Inf"} 3' in text
        )
        assert 'op_latency_seconds_count{op="acquire"} 3' in text
        assert 'op_latency_seconds_sum{op="acquire"} 7.55' in text

    def test_rendering_is_deterministic_and_sorted(self):
        def build(order):
            registry = MetricsRegistry()
            for name, labels in order:
                registry.counter(name, **labels).inc()
            return registry.render_prometheus()

        series = [
            ("z_total", {"shard": "1"}),
            ("a_total", {}),
            ("z_total", {"shard": "0"}),
        ]
        assert build(series) == build(list(reversed(series)))
        text = build(series)
        assert text.index("a_total") < text.index("z_total")

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("esc_total", tenant='with"quote\nand\\slash').inc()
        text = registry.render_prometheus()
        assert r'tenant="with\"quote\nand\\slash"' in text

    def test_snapshot_mirrors_exposition(self):
        registry = MetricsRegistry()
        registry.counter("events_total", shard="0").inc(7)
        hist = registry.histogram("lat_seconds", buckets=(1.0,))
        hist.observe(0.5)
        snap = registry.snapshot()
        assert snap["events_total"]["type"] == "counter"
        assert snap["events_total"]["series"][0]["value"] == 7
        lat = snap["lat_seconds"]["series"][0]
        assert lat["buckets"] == {"1": 1, "+Inf": 1}
        assert lat["count"] == 1


class TestLatencySummary:
    def test_per_tenant_percentiles(self):
        registry = MetricsRegistry()
        for tenant, value in (("a", 0.2), ("a", 0.4), ("b", 0.9)):
            registry.histogram(
                "loadgen_op_latency_seconds", buckets=(0.5, 1.0),
                tenant=tenant,
            ).observe(value)
        summary = latency_summary(registry, "loadgen_op_latency_seconds")
        assert set(summary) == {"a", "b"}
        assert summary["a"]["count"] == 2
        assert 0.0 < summary["a"]["p50"] <= 0.5
        assert 0.5 < summary["b"]["p99"] <= 1.0

    def test_absent_or_wrong_type_is_empty(self):
        registry = MetricsRegistry()
        registry.counter("not_a_histogram").inc()
        assert latency_summary(registry, "missing") == {}
        assert latency_summary(registry, "not_a_histogram") == {}


def test_default_latency_buckets_are_strictly_increasing():
    assert all(
        b2 > b1
        for b1, b2 in zip(DEFAULT_LATENCY_BUCKETS, DEFAULT_LATENCY_BUCKETS[1:])
    )
