"""Metrics history ring: sampling, windowed delta/rate queries over
counters, gauges, and histogram bucket deltas, and the disabled path."""

import pytest

from repro.errors import ModelError
from repro.obs import (
    DEFAULT_HISTORY_CAPACITY,
    DEFAULT_HISTORY_INTERVAL,
    NULL_HISTORY,
    MetricsHistory,
    MetricsRegistry,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def _history(capacity=8):
    clock = FakeClock()
    registry = MetricsRegistry(clock=clock)
    history = MetricsHistory(registry, capacity=capacity, clock=clock)
    return clock, registry, history


class TestConstruction:
    def test_defaults(self):
        history = MetricsHistory(MetricsRegistry())
        assert history.interval == DEFAULT_HISTORY_INTERVAL
        assert history.capacity == DEFAULT_HISTORY_CAPACITY
        assert history.enabled

    def test_rejects_bad_interval_and_capacity(self):
        with pytest.raises(ModelError):
            MetricsHistory(MetricsRegistry(), interval=0)
        with pytest.raises(ModelError):
            MetricsHistory(MetricsRegistry(), capacity=1)

    def test_clock_defaults_to_the_registry_clock(self):
        clock = FakeClock(7.0)
        history = MetricsHistory(MetricsRegistry(clock=clock))
        assert history.clock is clock


class TestSampling:
    def test_sample_appends_timestamped_snapshots(self):
        clock, registry, history = _history()
        registry.counter("ops_total").inc()
        history.sample()
        clock.now = 5.0
        registry.counter("ops_total").inc(3)
        history.sample()
        assert len(history) == 2

    def test_ring_evicts_oldest_at_capacity(self):
        clock, registry, history = _history(capacity=2)
        for t in (0.0, 1.0, 2.0):
            clock.now = t
            history.sample()
        assert len(history) == 2
        # Only the two newest samples remain: span covers [1.0, 2.0].
        assert history.query()["span_seconds"] == 1.0


class TestQuery:
    def test_counter_delta_and_rate_over_the_ring(self):
        clock, registry, history = _history()
        registry.counter("ops_total").inc(10)
        history.sample()
        clock.now = 4.0
        registry.counter("ops_total").inc(6)
        history.sample()
        row = history.query()["families"]["ops_total"]["series"][0]
        assert row["first"] == 10
        assert row["last"] == 16
        assert row["delta"] == 6
        assert row["rate_per_sec"] == 1.5

    def test_gauge_reports_last_min_max_over_samples(self):
        clock, registry, history = _history()
        gauge = registry.gauge("queue_depth")
        for t, value in ((0.0, 5), (1.0, 9), (2.0, 2)):
            clock.now = t
            gauge.set(value)
            history.sample()
        row = history.query()["families"]["queue_depth"]["series"][0]
        assert (row["last"], row["min"], row["max"]) == (2, 2, 9)

    def test_histogram_quantiles_come_from_windowed_deltas(self):
        clock, registry, history = _history()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        # Before the window: a hundred fast observations.
        for _ in range(100):
            hist.observe(0.05)
        history.sample()
        # Inside the window: all slow.
        clock.now = 10.0
        for _ in range(10):
            hist.observe(0.5)
        history.sample()
        row = history.query()["families"]["lat"]["series"][0]
        assert row["count_delta"] == 10
        assert row["rate_per_sec"] == 1.0
        # The window's p50 reflects only the slow tail, not the
        # pre-window fast observations a lifetime quantile would see.
        assert 0.1 < row["p50"] <= 1.0

    def test_window_drops_older_samples(self):
        clock, registry, history = _history()
        counter = registry.counter("ops_total")
        for t in (0.0, 10.0, 20.0):
            clock.now = t
            counter.inc()
            history.sample()
        narrow = history.query(window=10.0)
        assert narrow["samples"] == 2
        assert narrow["span_seconds"] == 10.0
        assert narrow["families"]["ops_total"]["series"][0]["delta"] == 1

    def test_family_filter_restricts_the_answer(self):
        clock, registry, history = _history()
        registry.counter("a_total").inc()
        registry.counter("b_total").inc()
        history.sample()
        clock.now = 1.0
        history.sample()
        out = history.query(family="a_total")
        assert list(out["families"]) == ["a_total"]

    def test_rejects_non_positive_window(self):
        _, _, history = _history()
        with pytest.raises(ModelError):
            history.query(window=0)

    def test_single_sample_answers_structure_without_families(self):
        _, registry, history = _history()
        registry.counter("ops_total").inc()
        history.sample()
        out = history.query()
        assert out["samples"] == 1
        assert out["families"] == {}


class TestDisabled:
    def test_null_history_samples_nothing(self):
        NULL_HISTORY.sample()
        assert len(NULL_HISTORY) == 0
        out = NULL_HISTORY.query()
        assert out["enabled"] is False
        assert out["families"] == {}

    def test_history_over_disabled_registry_is_disabled(self):
        history = MetricsHistory(MetricsRegistry(enabled=False))
        history.sample()
        assert not history.enabled
        assert len(history) == 0
