"""Trace-tree reconstruction: id minting, strict span loading, causal
linking (orphans become roots, never vanish), and the two renderings."""

import json

import pytest

from repro.obs import (
    build_trace_trees,
    load_spans,
    new_id,
    render_trace_tree,
    trace_tree_payload,
)


def _span(trace, span_id, parent=None, kind="dispatch", **extra):
    span = {
        "id": 1,
        "op": "acquire",
        "tenant": "t-0",
        "resource": 3,
        "t_enq": extra.pop("t_enq", 1.0),
        "t_disp": 1.0,
        "t_reply": extra.pop("t_reply", 2.0),
        "trace": trace,
        "span_id": span_id,
        "kind": kind,
    }
    if parent is not None:
        span["parent"] = parent
    span.update(extra)
    return span


class TestNewId:
    def test_sixteen_hex_digits_and_distinct(self):
        ids = {new_id() for _ in range(64)}
        assert len(ids) == 64
        for word in ids:
            assert len(word) == 16
            int(word, 16)


class TestLoadSpans:
    def test_merges_files_skipping_blank_lines(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text('{"op": "acquire"}\n\n{"op": "tick"}\n')
        b.write_text('{"op": "release"}\n')
        spans = load_spans([a, b])
        assert [s["op"] for s in spans] == ["acquire", "tick", "release"]

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="not a JSON object"):
            load_spans([path])

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{truncated\n")
        with pytest.raises(json.JSONDecodeError):
            load_spans([path])


class TestBuildTraceTrees:
    def test_client_relay_dispatch_chain_links_one_root(self):
        trace = "aa" * 8
        spans = [
            _span(trace, "c" * 16, kind="client"),
            _span(trace, "r" * 16, parent="c" * 16, kind="relay"),
            _span(trace, "d" * 16, parent="r" * 16, kind="dispatch"),
        ]
        trees = build_trace_trees(spans)
        (roots,) = trees.values()
        assert len(roots) == 1
        chain = [node.span["kind"] for node in roots[0].walk()]
        assert chain == ["client", "relay", "dispatch"]

    def test_untraced_spans_are_ignored(self):
        spans = [
            {"id": 1, "op": "acquire", "t_enq": 0.0},
            _span("bb" * 8, "c" * 16, kind="client"),
        ]
        trees = build_trace_trees(spans)
        assert list(trees) == ["bb" * 8]

    def test_orphan_becomes_an_extra_root(self):
        trace = "cc" * 8
        spans = [
            _span(trace, "c" * 16, kind="client"),
            # Parent never appears: the router's file was not merged in.
            _span(trace, "d" * 16, parent="gone", kind="dispatch"),
        ]
        (roots,) = build_trace_trees(spans).values()
        assert len(roots) == 2
        assert {r.span["kind"] for r in roots} == {"client", "dispatch"}

    def test_children_and_roots_sorted_by_enqueue_time(self):
        trace = "dd" * 8
        spans = [
            _span(trace, "c" * 16, kind="client", t_enq=0.0),
            _span(trace, "2" * 16, parent="c" * 16, t_enq=2.0),
            _span(trace, "1" * 16, parent="c" * 16, t_enq=1.0),
        ]
        (roots,) = build_trace_trees(spans).values()
        assert [n.span["span_id"] for n in roots[0].children] == [
            "1" * 16,
            "2" * 16,
        ]

    def test_self_parent_does_not_loop(self):
        trace = "ee" * 8
        (roots,) = build_trace_trees(
            [_span(trace, "s" * 16, parent="s" * 16)]
        ).values()
        assert len(roots) == 1
        assert len(list(roots[0].walk())) == 1


class TestFederatedMerge:
    """The overlap cases federation creates: the same span arriving via a
    worker's live buffer *and* its JSONL file, and partial live views."""

    def test_duplicate_spans_collapse_to_one_node(self):
        trace = "ab" * 8
        chain = [
            _span(trace, "c" * 16, kind="client"),
            _span(trace, "d" * 16, parent="c" * 16, kind="dispatch"),
        ]
        # The same spans again, as a federated pull would relabel them.
        relabeled = [dict(span, worker="0") for span in chain]
        (roots,) = build_trace_trees(chain + relabeled).values()
        assert len(roots) == 1
        nodes = list(roots[0].walk())
        assert len(nodes) == 2
        # First occurrence wins: the unlabeled offline span, not the
        # relabeled federated copy.
        assert all("worker" not in n.span for n in nodes)

    def test_duplicates_within_one_stream_also_collapse(self):
        trace = "cd" * 8
        span = _span(trace, "c" * 16, kind="client")
        (roots,) = build_trace_trees([span, dict(span)]).values()
        assert len(list(roots[0].walk())) == 1

    def test_orphan_relay_renders_as_root(self):
        # A live federated pull can see a worker's relay span before the
        # client's own span is anywhere: the relay must surface as a
        # root, not vanish.
        trace = "ef" * 8
        spans = [
            _span(
                trace, "r" * 16, parent="c" * 16, kind="relay", worker="1"
            ),
            _span(
                trace, "d" * 16, parent="r" * 16, kind="dispatch",
                worker="1",
            ),
        ]
        (roots,) = build_trace_trees(spans).values()
        assert len(roots) == 1
        assert roots[0].span["kind"] == "relay"
        rendered = render_trace_tree(trace, roots)
        assert "- relay acquire" in rendered
        assert "- dispatch acquire" in rendered

    def test_same_span_id_in_different_traces_is_not_a_duplicate(self):
        shared = "5" * 16
        spans = [
            _span("aa" * 8, shared, kind="client"),
            _span("bb" * 8, shared, kind="client"),
        ]
        trees = build_trace_trees(spans)
        assert set(trees) == {"aa" * 8, "bb" * 8}


class TestRenderings:
    def _tree(self):
        trace = "ff" * 8
        spans = [
            _span(trace, "c" * 16, kind="client"),
            _span(trace, "d" * 16, parent="c" * 16, kind="dispatch"),
        ]
        return trace, build_trace_trees(spans)[trace]

    def test_payload_nests_children(self):
        _, roots = self._tree()
        payload = trace_tree_payload(roots)
        assert len(payload) == 1
        assert payload[0]["kind"] == "client"
        (child,) = payload[0]["children"]
        assert child["kind"] == "dispatch"
        assert child["children"] == []
        json.dumps(payload)  # JSON-ready, no cycles

    def test_render_indents_and_names_spans(self):
        trace, roots = self._tree()
        text = render_trace_tree(trace, roots)
        lines = text.splitlines()
        assert lines[0] == f"trace {trace}"
        assert lines[1].startswith("  - client acquire tenant=t-0")
        assert lines[2].startswith("    - dispatch acquire")
        assert "1000.000ms" in lines[1]
