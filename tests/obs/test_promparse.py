"""Exposition parser and validator: round-trips against the renderer,
strictness on malformed input, and the histogram structural checks."""

import pytest

from repro.errors import ModelError
from repro.obs import (
    MetricsRegistry,
    parse_exposition,
    validate_exposition,
)


def _instrumented_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(
        "events_total", help="events applied", shard="0"
    ).inc(12)
    registry.counter("events_total", shard="1").inc(3)
    registry.gauge("queue_depth", shard="0").set(4)
    hist = registry.histogram(
        "op_latency_seconds", help="per-op latency", buckets=(0.1, 1.0),
        op="acquire",
    )
    hist.observe(0.05)
    hist.observe(0.7)
    hist.observe(3.0)
    registry.counter("odd_total", tenant='quo"te\nnl\\bs').inc()
    return registry


class TestRoundTrip:
    def test_parse_of_render_reproduces_the_registry(self):
        registry = _instrumented_registry()
        families = parse_exposition(registry.render_prometheus())
        assert set(families) == set(registry.names())
        events = families["events_total"]
        assert events.type == "counter"
        assert events.help == "events applied"
        assert sorted(
            (labels["shard"], value)
            for _, labels, value in events.samples
        ) == [("0", 12.0), ("1", 3.0)]
        latency = families["op_latency_seconds"]
        assert latency.type == "histogram"
        by_name = {}
        for name, labels, value in latency.samples:
            by_name.setdefault(name, []).append((labels, value))
        buckets = {
            labels["le"]: value
            for labels, value in by_name["op_latency_seconds_bucket"]
        }
        assert buckets == {"0.1": 1.0, "1": 2.0, "+Inf": 3.0}
        assert by_name["op_latency_seconds_count"][0][1] == 3.0
        assert by_name["op_latency_seconds_sum"][0][1] == pytest.approx(3.75)

    def test_escaped_label_values_round_trip(self):
        registry = _instrumented_registry()
        families = parse_exposition(registry.render_prometheus())
        (_, labels, _), = families["odd_total"].samples
        assert labels["tenant"] == 'quo"te\nnl\\bs'

    def test_rendered_exposition_validates_clean(self):
        assert validate_exposition(
            _instrumented_registry().render_prometheus()
        ) == []


class TestParserStrictness:
    def test_sample_without_type_declaration_rejected(self):
        with pytest.raises(ModelError, match="no # TYPE"):
            parse_exposition("orphan_total 3\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(ModelError, match="unknown metric type"):
            parse_exposition("# TYPE x summary\nx 1\n")

    def test_duplicate_type_rejected(self):
        with pytest.raises(ModelError, match="duplicate TYPE"):
            parse_exposition("# TYPE x counter\n# TYPE x counter\nx 1\n")

    def test_malformed_lines_rejected(self):
        for bad in (
            "# TYPE x counter\nx\n",  # no value
            "# TYPE x counter\nx notanumber\n",
            '# TYPE x counter\nx{a="1} 3\n',  # unterminated label value
            '# TYPE x counter\nx{a=1} 3\n',  # unquoted label value
            "# TYPE x counter\nx 3 1700000000\n",  # trailing timestamp
        ):
            with pytest.raises(ModelError):
                parse_exposition(bad)

    def test_comments_and_blank_lines_ignored(self):
        families = parse_exposition(
            "\n# just a comment\n# TYPE ok_total counter\n\nok_total 1\n"
        )
        assert families["ok_total"].samples == [("ok_total", {}, 1.0)]


class TestValidator:
    def test_empty_exposition_fails(self):
        assert validate_exposition("") == [
            "exposition declares no metric families"
        ]

    def test_parse_errors_become_failures(self):
        failures = validate_exposition("junk without declaration 3 4\n")
        assert failures and "line 1" in failures[0]

    def test_histogram_missing_inf_bucket(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="1"} 2\n'
            "lat_sum 1.5\n"
            "lat_count 2\n"
        )
        assert any("no +Inf" in f for f in validate_exposition(text))

    def test_histogram_decreasing_buckets(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="1"} 5\n'
            'lat_bucket{le="2"} 3\n'
            'lat_bucket{le="+Inf"} 5\n'
            "lat_sum 4.0\n"
            "lat_count 5\n"
        )
        assert any("decrease" in f for f in validate_exposition(text))

    def test_histogram_inf_count_mismatch(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="+Inf"} 4\n'
            "lat_sum 4.0\n"
            "lat_count 5\n"
        )
        assert any("!= _count" in f for f in validate_exposition(text))

    def test_histogram_missing_sum_and_count(self):
        text = "# TYPE lat histogram\n" 'lat_bucket{le="+Inf"} 4\n'
        failures = validate_exposition(text)
        assert any("_count" in f for f in failures)
        assert any("_sum" in f for f in failures)

    def test_count_without_buckets(self):
        text = "# TYPE lat histogram\nlat_count 5\nlat_sum 1.0\n"
        assert any(
            "without any buckets" in f for f in validate_exposition(text)
        )

    def test_negative_counter_and_nonfinite_values(self):
        text = "# TYPE bad_total counter\nbad_total -1\n"
        assert any("negative" in f for f in validate_exposition(text))
        text = "# TYPE weird gauge\nweird nan\n"
        assert any("non-finite" in f for f in validate_exposition(text))

    def test_help_without_type_fails_validation(self):
        assert any(
            "HELP without TYPE" in f
            for f in validate_exposition("# HELP ghost nothing here\n")
        )


class TestValidatorEdgeCases:
    """The malformed-exposition corpus: each corruption must be flagged."""

    def test_escaped_backslash_quote_newline_label_values(self):
        text = (
            "# TYPE esc_total counter\n"
            'esc_total{nl="a\\nb",path="C:\\\\tmp",quote="say \\"hi\\""} 1\n'
        )
        families = parse_exposition(text)
        ((_, labels, value),) = families["esc_total"].samples
        assert labels == {
            "path": "C:\\tmp",
            "quote": 'say "hi"',
            "nl": "a\nb",
        }
        assert value == 1.0
        assert validate_exposition(text) == []

    def test_positive_inf_counter_sample_flagged(self):
        text = "# TYPE runaway_total counter\nrunaway_total +Inf\n"
        assert any(
            "non-finite" in f for f in validate_exposition(text)
        )

    def test_nan_counter_sample_flagged(self):
        text = "# TYPE runaway_total counter\nrunaway_total NaN\n"
        assert any(
            "non-finite" in f for f in validate_exposition(text)
        )

    def test_nan_bucket_count_flagged(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="1"} NaN\n'
            'lat_bucket{le="+Inf"} 4\n'
            "lat_sum 2.0\n"
            "lat_count 4\n"
        )
        assert any(
            "non-finite bucket count" in f for f in validate_exposition(text)
        )

    def test_nan_count_and_inf_sum_flagged(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="+Inf"} 4\n'
            "lat_sum +Inf\n"
            "lat_count NaN\n"
        )
        failures = validate_exposition(text)
        assert any("non-finite _count" in f for f in failures)
        assert any("non-finite _sum" in f for f in failures)

    def test_out_of_order_le_bounds_flagged(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="2"} 3\n'
            'lat_bucket{le="1"} 1\n'
            'lat_bucket{le="+Inf"} 4\n'
            "lat_sum 2.0\n"
            "lat_count 4\n"
        )
        assert any(
            "out of order" in f for f in validate_exposition(text)
        )

    def test_duplicate_le_bounds_flagged(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="1"} 1\n'
            'lat_bucket{le="1"} 2\n'
            'lat_bucket{le="+Inf"} 4\n'
            "lat_sum 2.0\n"
            "lat_count 4\n"
        )
        failures = validate_exposition(text)
        assert any("duplicate le bucket bounds" in f for f in failures)
        # Duplicate wins over out-of-order: one corruption, one flag.
        assert not any("out of order" in f for f in failures)

    def test_missing_sum_alone_flagged(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="+Inf"} 2\n'
            "lat_count 2\n"
        )
        failures = validate_exposition(text)
        assert any("missing _sum" in f for f in failures)
        assert not any("_count" in f for f in failures)


class TestRelabelExposition:
    def test_injects_into_labeled_and_bare_samples(self):
        from repro.obs import relabel_exposition

        text = (
            "# HELP x_total help text\n"
            "# TYPE x_total counter\n"
            'x_total{shard="0"} 3\n'
            "bare_total 1\n"
        )
        out = relabel_exposition(
            "# TYPE bare_total counter\n" + text, worker="2"
        )
        assert '# TYPE x_total counter' in out
        assert 'x_total{worker="2",shard="0"} 3' in out
        assert 'bare_total{worker="2"} 1' in out

    def test_roundtrips_through_the_parser(self):
        from repro.obs import relabel_exposition

        registry = _instrumented_registry()
        relabeled = relabel_exposition(
            registry.render_prometheus(), worker="7"
        )
        assert validate_exposition(relabeled) == []
        families = parse_exposition(relabeled)
        for family in families.values():
            for _, labels, _ in family.samples:
                assert labels["worker"] == "7"
        # Values survive untouched.
        events = families["events_total"]
        assert sorted(
            (labels["shard"], value) for _, labels, value in events.samples
        ) == [("0", 12.0), ("1", 3.0)]

    def test_injected_values_are_escaped(self):
        from repro.obs import relabel_exposition

        out = relabel_exposition(
            "# TYPE x counter\nx 1\n", tag='a"b\\c\nd'
        )
        ((_, labels, _),) = parse_exposition(out)["x"].samples
        assert labels["tag"] == 'a"b\\c\nd'

    def test_no_labels_returns_text_unchanged(self):
        from repro.obs import relabel_exposition

        text = "# TYPE x counter\nx 1\n"
        assert relabel_exposition(text) == text

    def test_trailing_newline_preserved_and_absent_stays_absent(self):
        from repro.obs import relabel_exposition

        assert relabel_exposition("# TYPE x counter\nx 1\n", w="0").endswith(
            "\n"
        )
        assert not relabel_exposition(
            "# TYPE x counter\nx 1", w="0"
        ).endswith("\n")

    def test_malformed_sample_lines_rejected(self):
        from repro.obs import relabel_exposition

        with pytest.raises(ModelError, match="unbalanced"):
            relabel_exposition('x{a="1" 3\n', w="0")
        with pytest.raises(ModelError, match="no value"):
            relabel_exposition("loner\n", w="0")


class TestMergeExpositions:
    def test_duplicate_family_declarations_collapse_to_one(self):
        from repro.obs import merge_expositions

        worker = (
            "# HELP w_total per-worker counter.\n"
            "# TYPE w_total counter\n"
            'w_total{{worker="{n}"}} {v}\n'
        )
        merged = merge_expositions(
            worker.format(n=0, v=3), worker.format(n=1, v=4)
        )
        assert merged.count("# TYPE w_total") == 1
        assert merged.count("# HELP w_total") == 1
        families = parse_exposition(merged)
        assert validate_exposition(merged) == []
        assert sorted(
            families["w_total"].samples, key=lambda s: s[1]["worker"]
        ) == [
            ("w_total", {"worker": "0"}, 3.0),
            ("w_total", {"worker": "1"}, 4.0),
        ]

    def test_disjoint_families_pass_through(self):
        from repro.obs import merge_expositions

        a = "# TYPE a_total counter\na_total 1\n"
        b = "# TYPE b_total counter\nb_total 2\n"
        merged = merge_expositions(a, b)
        assert validate_exposition(merged) == []
        assert set(parse_exposition(merged)) == {"a_total", "b_total"}

    def test_empty_input_is_empty(self):
        from repro.obs import merge_expositions

        assert merge_expositions() == ""
