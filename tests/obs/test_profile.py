"""Sampling profiler: lifecycle, stack collapsing, the bounded ring,
snapshot aggregation, and the collapsed-stack rendering."""

import sys
import threading
import time

import pytest

from repro.errors import ModelError
from repro.obs import (
    DEFAULT_PROFILE_CAPACITY,
    DEFAULT_PROFILE_HZ,
    SamplingProfiler,
    collapse_frame,
    render_collapsed,
)


def _busy_until(stop: threading.Event) -> None:
    def inner_hot_loop():
        while not stop.is_set():
            sum(range(50))

    inner_hot_loop()


class TestCollapseFrame:
    def test_renders_root_first_semicolon_joined(self):
        def leaf():
            return collapse_frame(sys._getframe())

        def mid():
            return leaf()

        stack = mid()
        assert "test_profile:mid;test_profile:leaf" in stack
        parts = stack.split(";")
        assert parts[-1] == "test_profile:leaf"
        assert parts[-2] == "test_profile:mid"


class TestLifecycle:
    def test_rejects_bad_hz_and_capacity(self):
        with pytest.raises(ModelError):
            SamplingProfiler(hz=0)
        with pytest.raises(ModelError):
            SamplingProfiler(capacity=0)

    def test_defaults(self):
        profiler = SamplingProfiler()
        assert profiler.hz == DEFAULT_PROFILE_HZ
        assert profiler.capacity == DEFAULT_PROFILE_CAPACITY
        assert not profiler.running
        assert profiler.samples == 0

    def test_zero_cost_when_off_no_thread_until_start(self):
        before = threading.active_count()
        SamplingProfiler()
        assert threading.active_count() == before

    def test_start_stop_is_idempotent(self):
        profiler = SamplingProfiler(hz=200)
        profiler.start()
        profiler.start()  # no second thread
        assert profiler.running
        assert (
            sum(
                1
                for t in threading.enumerate()
                if t.name == "repro-profiler"
            )
            == 1
        )
        profiler.stop()
        profiler.stop()
        assert not profiler.running

    def test_samples_a_busy_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy_until, args=(stop,))
        worker.start()
        profiler = SamplingProfiler(hz=500)
        profiler.start()
        try:
            deadline = time.monotonic() + 5.0
            while profiler.samples < 5 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            profiler.stop()
            stop.set()
            worker.join()
        assert profiler.samples >= 5
        snapshot = profiler.snapshot()
        assert any(
            "test_profile:inner_hot_loop" in stack
            for stack in snapshot["stacks"]
        )

    def test_ring_is_bounded_by_capacity(self):
        profiler = SamplingProfiler(hz=100, capacity=4)
        # Feed the ring directly: the bound is the ring's, not the
        # sampler thread's.
        for i in range(10):
            profiler._ring.append(f"stack{i % 2}")
            profiler.samples += 1
        snapshot = profiler.snapshot()
        assert profiler.samples == 10
        assert snapshot["retained"] == 4

    def test_clear_resets_ring_and_counter(self):
        profiler = SamplingProfiler()
        profiler._ring.append("a;b")
        profiler.samples = 3
        profiler.clear()
        assert profiler.samples == 0
        assert profiler.snapshot()["retained"] == 0


class TestSnapshot:
    def test_aggregates_and_orders_heaviest_first(self):
        profiler = SamplingProfiler(hz=50, capacity=16)
        for stack, count in (("a;b", 1), ("a;c", 3), ("a;d", 1)):
            for _ in range(count):
                profiler._ring.append(stack)
                profiler.samples += 1
        snapshot = profiler.snapshot()
        assert snapshot["hz"] == 50.0
        assert snapshot["capacity"] == 16
        assert snapshot["running"] is False
        assert list(snapshot["stacks"]) == ["a;c", "a;b", "a;d"]
        assert snapshot["stacks"]["a;c"] == 3


class TestRenderCollapsed:
    def test_emits_stack_count_lines_heaviest_first(self):
        capture = {"stacks": {"a;b": 2, "a;c": 5}}
        assert render_collapsed(capture) == "a;c 5\na;b 2\n"

    def test_empty_capture_renders_empty(self):
        assert render_collapsed({"stacks": {}}) == ""
        assert render_collapsed({}) == ""
