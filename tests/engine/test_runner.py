"""Replay-engine determinism: same seed => identical aggregate report,
independent of worker count, plus job ordering and error handling."""

import pytest

from repro.engine import (
    render_report,
    replay,
    run_scenario,
    scenario_names,
)
from repro.errors import ModelError


class TestRunScenario:
    def test_outcome_fields(self):
        outcome = run_scenario("parking-markov", seed=7)
        assert outcome.scenario == "parking-markov"
        assert outcome.family == "parking"
        assert outcome.workload == "markov"
        assert outcome.seed == 7
        assert outcome.verified
        assert outcome.failures == ()
        assert outcome.ratio >= 1.0 - 1e-9
        assert outcome.report.opt.lower == outcome.opt.lower

    def test_repeat_runs_identical(self):
        first = run_scenario("setcover-diurnal", seed=5)
        second = run_scenario("setcover-diurnal", seed=5)
        assert first == second


class TestReplay:
    def test_job_order_names_outer_seeds_inner(self):
        outcomes = replay(
            ["parking-markov", "parking-diurnal"], seeds=[1, 2]
        )
        assert [(o.scenario, o.seed) for o in outcomes] == [
            ("parking-markov", 1),
            ("parking-markov", 2),
            ("parking-diurnal", 1),
            ("parking-diurnal", 2),
        ]

    def test_unknown_name_fails_before_forking(self):
        with pytest.raises(ModelError):
            replay(["parking-markov", "nope"], workers=4)

    def test_default_replays_whole_registry(self):
        outcomes = replay(seeds=[3], workers=4)
        assert {o.scenario for o in outcomes} >= set(scenario_names())


class TestDeterminism:
    def test_workers_1_vs_4_identical_aggregate_report(self):
        names = scenario_names()
        serial = replay(names, seeds=[7], workers=1)
        parallel = replay(names, seeds=[7], workers=4)
        assert serial == parallel
        assert render_report(serial) == render_report(parallel)
        assert all(outcome.verified for outcome in parallel)

    def test_repeated_parallel_runs_byte_identical(self):
        names = ("parking-adversarial", "deadlines-markov", "facility-batch")
        first = render_report(replay(names, seeds=[7], workers=4))
        second = render_report(replay(names, seeds=[7], workers=4))
        assert first == second


class TestTransport:
    NAMES = ("parking-markov", "broker-markov", "setcover-batch")

    @pytest.mark.parametrize("transport", ["auto", "packed", "shm", "object"])
    def test_every_transport_matches_inline(self, transport):
        inline = replay(self.NAMES, seeds=[7], workers=1)
        pooled = replay(self.NAMES, seeds=[7], workers=2, transport=transport)
        assert pooled == inline
        assert render_report(pooled) == render_report(inline)

    def test_packed_leases_behave_like_tuples(self):
        (outcome,) = replay(
            ["broker-markov"], seeds=[3], workers=2, transport="packed"
        )
        leases = outcome.run.leases
        assert len(leases) > 0
        assert leases[0].resource >= 0
        assert tuple(leases) == leases

    def test_unknown_transport_rejected(self):
        with pytest.raises(ModelError):
            replay(["parking-markov"], workers=2, transport="carrier-pigeon")

    def test_pooled_job_failure_surfaces_after_claiming_results(self):
        """A failing job must not abort siblings mid-stream (their shm
        segments are claimed first), and the raised error names the job."""
        from repro.engine import get_scenario, register
        from repro.engine import scenarios as scenarios_module

        base = get_scenario("parking-markov")

        def explode(instance, seed):
            raise RuntimeError("boom")

        register(
            scenarios_module.Scenario(
                name="test-exploding",
                family="parking",
                workload="markov",
                description="always fails",
                build=base.build,
                run=explode,
                verify=base.verify,
                optimum=base.optimum,
            )
        )
        try:
            with pytest.raises(ModelError, match="test-exploding.*boom"):
                replay(
                    ["parking-markov", "test-exploding", "broker-markov"],
                    seeds=[7],
                    workers=2,
                    transport="shm",
                )
        finally:
            scenarios_module._REGISTRY.pop("test-exploding", None)


class TestRenderReport:
    def test_contains_summary_footer_and_rows(self):
        outcomes = replay(["parking-markov"], seeds=[7])
        report = render_report(outcomes, title="unit")
        assert report.startswith("unit")
        assert "parking-markov" in report
        assert "mean ratio" in report
        assert "verified 1/1" in report

    def test_empty_outcomes(self):
        report = render_report([])
        assert "scenario" in report
