"""Replay-engine determinism: same seed => identical aggregate report,
independent of worker count, plus job ordering and error handling."""

import pytest

from repro.engine import (
    render_report,
    replay,
    run_scenario,
    scenario_names,
)
from repro.errors import ModelError


class TestRunScenario:
    def test_outcome_fields(self):
        outcome = run_scenario("parking-markov", seed=7)
        assert outcome.scenario == "parking-markov"
        assert outcome.family == "parking"
        assert outcome.workload == "markov"
        assert outcome.seed == 7
        assert outcome.verified
        assert outcome.failures == ()
        assert outcome.ratio >= 1.0 - 1e-9
        assert outcome.report.opt.lower == outcome.opt.lower

    def test_repeat_runs_identical(self):
        first = run_scenario("setcover-diurnal", seed=5)
        second = run_scenario("setcover-diurnal", seed=5)
        assert first == second


class TestReplay:
    def test_job_order_names_outer_seeds_inner(self):
        outcomes = replay(
            ["parking-markov", "parking-diurnal"], seeds=[1, 2]
        )
        assert [(o.scenario, o.seed) for o in outcomes] == [
            ("parking-markov", 1),
            ("parking-markov", 2),
            ("parking-diurnal", 1),
            ("parking-diurnal", 2),
        ]

    def test_unknown_name_fails_before_forking(self):
        with pytest.raises(ModelError):
            replay(["parking-markov", "nope"], workers=4)

    def test_default_replays_whole_registry(self):
        outcomes = replay(seeds=[3], workers=4)
        assert {o.scenario for o in outcomes} >= set(scenario_names())


class TestDeterminism:
    def test_workers_1_vs_4_identical_aggregate_report(self):
        names = scenario_names()
        serial = replay(names, seeds=[7], workers=1)
        parallel = replay(names, seeds=[7], workers=4)
        assert serial == parallel
        assert render_report(serial) == render_report(parallel)
        assert all(outcome.verified for outcome in parallel)

    def test_repeated_parallel_runs_byte_identical(self):
        names = ("parking-adversarial", "deadlines-markov", "facility-batch")
        first = render_report(replay(names, seeds=[7], workers=4))
        second = render_report(replay(names, seeds=[7], workers=4))
        assert first == second


class TestRenderReport:
    def test_contains_summary_footer_and_rows(self):
        outcomes = replay(["parking-markov"], seeds=[7])
        report = render_report(outcomes, title="unit")
        assert report.startswith("unit")
        assert "parking-markov" in report
        assert "mean ratio" in report
        assert "verified 1/1" in report

    def test_empty_outcomes(self):
        report = render_report([])
        assert "scenario" in report
