"""Registry completeness and per-scenario feasibility/determinism."""

import pytest

from repro import io as repro_io
from repro.engine import (
    WORKLOAD_NAMES,
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
)
from repro.engine.scenarios import FAMILY_NAMES, Scenario, by_family
from repro.errors import ModelError

BUILTIN_NAMES = [
    f"{family}-{workload}"
    for family in FAMILY_NAMES
    for workload in WORKLOAD_NAMES
]


class TestRegistry:
    def test_every_family_workload_combination_registered(self):
        names = set(scenario_names())
        for expected in BUILTIN_NAMES:
            assert expected in names
        assert len(BUILTIN_NAMES) == 16

    def test_scenario_metadata_consistent(self):
        for scenario in all_scenarios():
            if scenario.name in BUILTIN_NAMES:
                assert scenario.name == f"{scenario.family}-{scenario.workload}"
                assert scenario.description

    def test_by_family_partitions_builtins(self):
        for family in FAMILY_NAMES:
            members = [
                s for s in by_family(family) if s.name in BUILTIN_NAMES
            ]
            assert len(members) == len(WORKLOAD_NAMES)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ModelError):
            get_scenario("parking-hurricane")

    def test_duplicate_registration_rejected(self):
        scenario = get_scenario("parking-markov")
        with pytest.raises(ModelError):
            register(scenario)
        assert register(scenario, replace=True) is scenario

    def test_register_adhoc(self):
        base = get_scenario("parking-markov")
        adhoc = Scenario(
            name="test-adhoc",
            family="parking",
            workload="markov",
            description="registry test",
            build=base.build,
            run=base.run,
            verify=base.verify,
            optimum=base.optimum,
        )
        try:
            register(adhoc)
            assert get_scenario("test-adhoc") is adhoc
        finally:
            from repro.engine import scenarios as scenarios_module

            scenarios_module._REGISTRY.pop("test-adhoc", None)


@pytest.mark.parametrize("name", BUILTIN_NAMES)
class TestEveryScenario:
    def test_feasible_verified_and_bounded(self, name):
        scenario = get_scenario(name)
        instance = scenario.build(3)
        result = scenario.run(instance, 3)
        assert result.num_demands > 0
        report = scenario.verify(instance, result)
        assert report.ok, report.failures[:3]
        opt = scenario.optimum(instance)
        assert opt.lower > 0
        # Online can never beat the true offline optimum.
        assert result.cost >= opt.lower - 1e-6

    def test_build_is_deterministic_in_seed(self, name):
        scenario = get_scenario(name)
        first = scenario.build(11)
        second = scenario.build(11)
        assert repro_io.dumps(first) == repro_io.dumps(second)
        # The batch day pattern is seed-free, so parking/deadlines batch
        # instances legitimately coincide across seeds.
        if name not in ("parking-batch", "deadlines-batch"):
            assert repro_io.dumps(first) != repro_io.dumps(scenario.build(12))
