"""Broker lifecycle, expiry correctness, and a property test vs a naive
reference implementation (linear scans everywhere)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import LeaseSchedule
from repro.engine import LeaseBroker, generate_trace, replay_trace
from repro.engine.events import Acquire, Release, Tick
from repro.errors import ModelError
from repro.parking import DeterministicParkingPermit

# lmin=4: first purchases already outlive same-day grants, so renewals
# and explicit releases actually occur in lifecycle tests.
LONG_SCHEDULE = LeaseSchedule.from_pairs([(4, 3.0), (16, 9.0), (64, 24.0)])
SHORT_SCHEDULE = LeaseSchedule.power_of_two(3, cost_growth=1.7)


class TestLifecycle:
    def test_acquire_creates_active_grant(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        grant = broker.acquire("alice", 0, 0)
        assert grant.is_active
        assert grant.acquired_at == 0
        assert grant.expires_at == 4  # aligned length-4 lease
        assert broker.active_leases() == (grant,)
        assert broker.cost == 3.0

    def test_same_day_second_tenant_shares_the_lease(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        broker.acquire("alice", 0, 0)
        broker.acquire("bob", 0, 0)
        assert broker.num_active == 2
        assert broker.cost == 3.0  # one purchase covers both grants

    def test_acquire_while_held_renews(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        first = broker.acquire("alice", 0, 0)
        second = broker.acquire("alice", 0, 2)
        assert second.grant_id == first.grant_id
        assert broker.stats.acquires == 1
        assert broker.stats.renewals == 1

    def test_renew_extends_expiry(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        broker.acquire("alice", 0, 0)
        renewed = broker.renew("alice", 0, 3)
        # Day 3 re-raises duals; eventually a longer/later window is
        # bought, and expiry never moves backwards.
        assert renewed.expires_at >= 4
        assert renewed.released_at is None

    def test_renew_without_grant_rejected(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        with pytest.raises(ModelError):
            broker.renew("alice", 0, 0)

    def test_release_closes_grant(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        grant = broker.acquire("alice", 0, 0)
        released = broker.release("alice", 0, 2)
        assert released.grant_id == grant.grant_id
        assert released.released_at == 2
        assert broker.active_leases() == ()
        # Purchases are irrevocable: releasing refunds nothing.
        assert broker.cost == 3.0

    def test_release_without_grant_is_noop(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        assert broker.release("alice", 0, 1) is None
        assert broker.stats.noop_releases == 1

    def test_grants_expire_on_clock_advance(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        broker.acquire("alice", 0, 0)
        broker.tick(4)
        assert broker.active_leases() == ()
        assert broker.stats.expirations == 1
        # Late release of the expired grant is a no-op, not an error.
        assert broker.release("alice", 0, 5) is None

    def test_force_release_by_id(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        grant = broker.acquire("alice", 0, 0)
        closed = broker.force_release(grant.grant_id)
        assert closed.released_at == 0
        assert broker.active_leases() == ()
        with pytest.raises(ModelError):
            broker.force_release(999)

    def test_active_leases_filters(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        broker.acquire("alice", 0, 0)
        broker.acquire("bob", 1, 0)
        assert len(broker.active_leases(tenant="alice")) == 1
        assert len(broker.active_leases(resource=1)) == 1
        assert len(broker.active_leases(resource=2)) == 0

    def test_clock_must_not_regress(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        broker.acquire("alice", 0, 5)
        with pytest.raises(ModelError):
            broker.acquire("bob", 0, 4)

    def test_leases_rekeyed_per_resource(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        broker.acquire("alice", 3, 0)
        broker.acquire("alice", 7, 1)
        assert sorted({lease.resource for lease in broker.leases}) == [3, 7]

    def test_custom_policy_factory(self):
        broker = LeaseBroker(
            LONG_SCHEDULE,
            policy_factory=lambda r: DeterministicParkingPermit(SHORT_SCHEDULE),
        )
        grant = broker.acquire("alice", 0, 0)
        assert grant.expires_at == 1  # short policy buys length-1 first

    def test_trace_replay_accounts_every_event(self):
        trace = generate_trace("markov", 200, seed=11)
        broker = LeaseBroker(SHORT_SCHEDULE)
        stats = replay_trace(broker, trace)
        assert stats.events == len(trace)
        assert stats.acquires + stats.renewals == sum(
            1 for event in trace if isinstance(event, Acquire)
        )
        closed = stats.releases + stats.noop_releases
        assert closed == sum(
            1 for event in trace if isinstance(event, Release)
        )


# ----------------------------------------------------------------------
# Property test: heap-indexed broker == naive scan-everything broker
# ----------------------------------------------------------------------
class _ReferenceBroker:
    """The obviously-correct broker: linear scans, no indexes."""

    def __init__(self, schedule: LeaseSchedule):
        self.schedule = schedule
        self.policies: dict[int, DeterministicParkingPermit] = {}
        # key -> (acquired_at, expires_at)
        self.grants: dict[tuple[str, int], tuple[int, int]] = {}

    def _advance(self, now: int) -> None:
        self.grants = {
            key: grant
            for key, grant in self.grants.items()
            if grant[1] > now
        }

    def _expiry(self, resource: int, now: int) -> int:
        policy = self.policies[resource]
        return max(
            lease.end for lease in policy.leases if lease.covers(now)
        )

    def acquire(self, tenant: str, resource: int, now: int) -> None:
        self._advance(now)
        policy = self.policies.setdefault(
            resource, DeterministicParkingPermit(self.schedule)
        )
        policy.on_demand(now)
        key = (tenant, resource)
        expires = self._expiry(resource, now)
        if key in self.grants:
            acquired, old_expires = self.grants[key]
            self.grants[key] = (acquired, max(old_expires, expires))
        else:
            self.grants[key] = (now, expires)

    def release(self, tenant: str, resource: int, now: int) -> None:
        self._advance(now)
        self.grants.pop((tenant, resource), None)

    def tick(self, now: int) -> None:
        self._advance(now)

    @property
    def cost(self) -> float:
        return sum(policy.cost for policy in self.policies.values())

    def active(self, now: int) -> dict[tuple[str, int], int]:
        return {
            key: grant[1]
            for key, grant in self.grants.items()
            if grant[1] > now
        }


operations = st.lists(
    st.tuples(
        st.sampled_from(["acquire", "release", "tick"]),
        st.integers(min_value=0, max_value=2),   # tenant index
        st.integers(min_value=0, max_value=2),   # resource index
        st.integers(min_value=0, max_value=3),   # clock increment
    ),
    max_size=60,
)


@given(operations)
def test_broker_matches_naive_reference(ops):
    broker = LeaseBroker(SHORT_SCHEDULE)
    reference = _ReferenceBroker(SHORT_SCHEDULE)
    now = 0
    for op, tenant_index, resource, delta in ops:
        now += delta
        tenant = f"tenant-{tenant_index}"
        if op == "acquire":
            broker.acquire(tenant, resource, now)
            reference.acquire(tenant, resource, now)
        elif op == "release":
            broker.release(tenant, resource, now)
            reference.release(tenant, resource, now)
        else:
            broker.tick(now)
            reference.tick(now)
        got = {
            (grant.tenant, grant.resource): grant.expires_at
            for grant in broker.active_leases()
        }
        assert got == reference.active(now)
        assert broker.cost == pytest.approx(reference.cost)


# ----------------------------------------------------------------------
# Property test: coverage-cached broker == uncached broker
# ----------------------------------------------------------------------
def _stats_without_fast_path(stats):
    record = dict(vars(stats))
    record.pop("covered_fast_path")
    return record


@given(operations)
def test_coverage_caching_is_invisible(ops):
    """Cached and uncached brokers agree on grants, stats, and cost.

    The covered fast path skips the policy call entirely; for the lazy
    primal-dual default that must never change a single grant expiry,
    purchase, or counter (other than the fast-path counter itself).
    """
    cached = LeaseBroker(SHORT_SCHEDULE, coverage_caching=True)
    uncached = LeaseBroker(SHORT_SCHEDULE, coverage_caching=False)
    now = 0
    for op, tenant_index, resource, delta in ops:
        now += delta
        tenant = f"tenant-{tenant_index}"
        if op == "acquire":
            assert cached.acquire(tenant, resource, now) == uncached.acquire(
                tenant, resource, now
            )
        elif op == "release":
            assert cached.release(tenant, resource, now) == uncached.release(
                tenant, resource, now
            )
        else:
            cached.tick(now)
            uncached.tick(now)
        assert cached.active_leases() == uncached.active_leases()
    assert _stats_without_fast_path(cached.stats) == _stats_without_fast_path(
        uncached.stats
    )
    assert uncached.stats.covered_fast_path == 0
    assert cached.cost == uncached.cost
    assert cached.leases == uncached.leases


@pytest.mark.parametrize("workload", ["markov", "diurnal", "batch"])
def test_coverage_caching_identical_on_generated_traces(workload):
    trace = generate_trace(workload, 300, seed=13)
    cached = LeaseBroker(LONG_SCHEDULE, coverage_caching=True)
    uncached = LeaseBroker(LONG_SCHEDULE, coverage_caching=False)
    cached_stats = replay_trace(cached, trace)
    uncached_stats = replay_trace(uncached, trace)
    assert _stats_without_fast_path(cached_stats) == _stats_without_fast_path(
        uncached_stats
    )
    assert cached.cost == uncached.cost
    assert cached.leases == uncached.leases
    assert cached.active_leases() == uncached.active_leases()
    # The long schedule actually exercises the fast path on these traces.
    assert cached_stats.covered_fast_path > 0


# ----------------------------------------------------------------------
# Stats surfaces
# ----------------------------------------------------------------------
class TestStatsSurfaces:
    def test_full_dict_carries_every_counter(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        broker.acquire("a", 0, 0)
        broker.release("a", 0, 0)
        full = broker.stats.full_dict()
        # The exporter surface is a superset of the merge-frozen shapes:
        # everything in as_dict, compactions included.
        assert full == broker.stats.as_dict()
        assert set(broker.stats.mergeable()) | {"compactions"} == set(full)
        assert full["acquires"] == 1
        assert full["releases"] == 1

    def test_table_size_properties_track_grants(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        assert broker.num_grants == 0
        broker.acquire("a", 0, 0)
        broker.acquire("b", 1, 0)
        assert broker.num_grants == 2
        assert broker.heap_size >= broker.num_active == 2
        broker.release("a", 0, 0)
        # Closed grants stay in the table until compaction.
        assert broker.num_grants == 2
        assert broker.num_active == 1


# ----------------------------------------------------------------------
# Grant-table compaction
# ----------------------------------------------------------------------
class TestCompaction:
    def test_closed_grants_compacted_past_retention(self):
        broker = LeaseBroker(LONG_SCHEDULE, max_closed_grants=5)
        for day in range(25):
            broker.acquire("alice", 0, day)
            broker.release("alice", 0, day)
        assert broker.stats.compactions >= 1
        retained = [g for g in broker._grants.values()]
        assert len(retained) <= 2 * 5 + 1
        # The most recent closed grants survive; ancient ones are gone.
        with pytest.raises(ModelError):
            broker.grant(1)
        broker.grant(retained[-1].grant_id)

    def test_active_grants_never_compacted(self):
        broker = LeaseBroker(LONG_SCHEDULE, max_closed_grants=2)
        broker.acquire("keeper", 99, 0)
        for day in range(1, 20):
            broker.acquire("alice", 0, day)
            broker.release("alice", 0, day)
            # Re-acquire keeps one grant live (renewal or re-open) while
            # alice's churn triggers compactions around it.
            keeper = broker.acquire("keeper", 99, day)
        assert broker.grant(keeper.grant_id).is_active
        assert any(
            grant.grant_id == keeper.grant_id
            for grant in broker.active_leases()
        )

    def test_compaction_disabled_with_none(self):
        broker = LeaseBroker(LONG_SCHEDULE, max_closed_grants=None)
        for day in range(30):
            broker.acquire("alice", 0, day)
            broker.release("alice", 0, day)
        assert broker.stats.compactions == 0
        broker.grant(1)  # full history retained

    def test_compaction_does_not_disturb_stats_or_cost(self):
        bounded = LeaseBroker(LONG_SCHEDULE, max_closed_grants=3)
        unbounded = LeaseBroker(LONG_SCHEDULE, max_closed_grants=None)
        trace = generate_trace("markov", 250, seed=5)
        bounded_stats = replay_trace(bounded, trace)
        unbounded_stats = replay_trace(unbounded, trace)
        skip = {"compactions"}
        assert {
            k: v for k, v in vars(bounded_stats).items() if k not in skip
        } == {
            k: v for k, v in vars(unbounded_stats).items() if k not in skip
        }
        assert bounded.cost == unbounded.cost
        assert bounded.active_leases() == unbounded.active_leases()
