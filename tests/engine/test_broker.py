"""Broker lifecycle, expiry correctness, and a property test vs a naive
reference implementation (linear scans everywhere)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import LeaseSchedule
from repro.engine import LeaseBroker, generate_trace, replay_trace
from repro.engine.events import Acquire, Release, Tick
from repro.errors import ModelError
from repro.parking import DeterministicParkingPermit

# lmin=4: first purchases already outlive same-day grants, so renewals
# and explicit releases actually occur in lifecycle tests.
LONG_SCHEDULE = LeaseSchedule.from_pairs([(4, 3.0), (16, 9.0), (64, 24.0)])
SHORT_SCHEDULE = LeaseSchedule.power_of_two(3, cost_growth=1.7)


class TestLifecycle:
    def test_acquire_creates_active_grant(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        grant = broker.acquire("alice", 0, 0)
        assert grant.is_active
        assert grant.acquired_at == 0
        assert grant.expires_at == 4  # aligned length-4 lease
        assert broker.active_leases() == (grant,)
        assert broker.cost == 3.0

    def test_same_day_second_tenant_shares_the_lease(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        broker.acquire("alice", 0, 0)
        broker.acquire("bob", 0, 0)
        assert broker.num_active == 2
        assert broker.cost == 3.0  # one purchase covers both grants

    def test_acquire_while_held_renews(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        first = broker.acquire("alice", 0, 0)
        second = broker.acquire("alice", 0, 2)
        assert second.grant_id == first.grant_id
        assert broker.stats.acquires == 1
        assert broker.stats.renewals == 1

    def test_renew_extends_expiry(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        broker.acquire("alice", 0, 0)
        renewed = broker.renew("alice", 0, 3)
        # Day 3 re-raises duals; eventually a longer/later window is
        # bought, and expiry never moves backwards.
        assert renewed.expires_at >= 4
        assert renewed.released_at is None

    def test_renew_without_grant_rejected(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        with pytest.raises(ModelError):
            broker.renew("alice", 0, 0)

    def test_release_closes_grant(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        grant = broker.acquire("alice", 0, 0)
        released = broker.release("alice", 0, 2)
        assert released.grant_id == grant.grant_id
        assert released.released_at == 2
        assert broker.active_leases() == ()
        # Purchases are irrevocable: releasing refunds nothing.
        assert broker.cost == 3.0

    def test_release_without_grant_is_noop(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        assert broker.release("alice", 0, 1) is None
        assert broker.stats.noop_releases == 1

    def test_grants_expire_on_clock_advance(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        broker.acquire("alice", 0, 0)
        broker.tick(4)
        assert broker.active_leases() == ()
        assert broker.stats.expirations == 1
        # Late release of the expired grant is a no-op, not an error.
        assert broker.release("alice", 0, 5) is None

    def test_force_release_by_id(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        grant = broker.acquire("alice", 0, 0)
        closed = broker.force_release(grant.grant_id)
        assert closed.released_at == 0
        assert broker.active_leases() == ()
        with pytest.raises(ModelError):
            broker.force_release(999)

    def test_active_leases_filters(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        broker.acquire("alice", 0, 0)
        broker.acquire("bob", 1, 0)
        assert len(broker.active_leases(tenant="alice")) == 1
        assert len(broker.active_leases(resource=1)) == 1
        assert len(broker.active_leases(resource=2)) == 0

    def test_clock_must_not_regress(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        broker.acquire("alice", 0, 5)
        with pytest.raises(ModelError):
            broker.acquire("bob", 0, 4)

    def test_leases_rekeyed_per_resource(self):
        broker = LeaseBroker(LONG_SCHEDULE)
        broker.acquire("alice", 3, 0)
        broker.acquire("alice", 7, 1)
        assert sorted({lease.resource for lease in broker.leases}) == [3, 7]

    def test_custom_policy_factory(self):
        broker = LeaseBroker(
            LONG_SCHEDULE,
            policy_factory=lambda r: DeterministicParkingPermit(SHORT_SCHEDULE),
        )
        grant = broker.acquire("alice", 0, 0)
        assert grant.expires_at == 1  # short policy buys length-1 first

    def test_trace_replay_accounts_every_event(self):
        trace = generate_trace("markov", 200, seed=11)
        broker = LeaseBroker(SHORT_SCHEDULE)
        stats = replay_trace(broker, trace)
        assert stats.events == len(trace)
        assert stats.acquires + stats.renewals == sum(
            1 for event in trace if isinstance(event, Acquire)
        )
        closed = stats.releases + stats.noop_releases
        assert closed == sum(
            1 for event in trace if isinstance(event, Release)
        )


# ----------------------------------------------------------------------
# Property test: heap-indexed broker == naive scan-everything broker
# ----------------------------------------------------------------------
class _ReferenceBroker:
    """The obviously-correct broker: linear scans, no indexes."""

    def __init__(self, schedule: LeaseSchedule):
        self.schedule = schedule
        self.policies: dict[int, DeterministicParkingPermit] = {}
        # key -> (acquired_at, expires_at)
        self.grants: dict[tuple[str, int], tuple[int, int]] = {}

    def _advance(self, now: int) -> None:
        self.grants = {
            key: grant
            for key, grant in self.grants.items()
            if grant[1] > now
        }

    def _expiry(self, resource: int, now: int) -> int:
        policy = self.policies[resource]
        return max(
            lease.end for lease in policy.leases if lease.covers(now)
        )

    def acquire(self, tenant: str, resource: int, now: int) -> None:
        self._advance(now)
        policy = self.policies.setdefault(
            resource, DeterministicParkingPermit(self.schedule)
        )
        policy.on_demand(now)
        key = (tenant, resource)
        expires = self._expiry(resource, now)
        if key in self.grants:
            acquired, old_expires = self.grants[key]
            self.grants[key] = (acquired, max(old_expires, expires))
        else:
            self.grants[key] = (now, expires)

    def release(self, tenant: str, resource: int, now: int) -> None:
        self._advance(now)
        self.grants.pop((tenant, resource), None)

    def tick(self, now: int) -> None:
        self._advance(now)

    @property
    def cost(self) -> float:
        return sum(policy.cost for policy in self.policies.values())

    def active(self, now: int) -> dict[tuple[str, int], int]:
        return {
            key: grant[1]
            for key, grant in self.grants.items()
            if grant[1] > now
        }


operations = st.lists(
    st.tuples(
        st.sampled_from(["acquire", "release", "tick"]),
        st.integers(min_value=0, max_value=2),   # tenant index
        st.integers(min_value=0, max_value=2),   # resource index
        st.integers(min_value=0, max_value=3),   # clock increment
    ),
    max_size=60,
)


@given(operations)
def test_broker_matches_naive_reference(ops):
    broker = LeaseBroker(SHORT_SCHEDULE)
    reference = _ReferenceBroker(SHORT_SCHEDULE)
    now = 0
    for op, tenant_index, resource, delta in ops:
        now += delta
        tenant = f"tenant-{tenant_index}"
        if op == "acquire":
            broker.acquire(tenant, resource, now)
            reference.acquire(tenant, resource, now)
        elif op == "release":
            broker.release(tenant, resource, now)
            reference.release(tenant, resource, now)
        else:
            broker.tick(now)
            reference.tick(now)
        got = {
            (grant.tenant, grant.resource): grant.expires_at
            for grant in broker.active_leases()
        }
        assert got == reference.active(now)
        assert broker.cost == pytest.approx(reference.cost)
