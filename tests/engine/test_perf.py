"""Perf harness mechanics: record shape, trajectory files, and the
regression gate.  Rates themselves are machine-dependent and never
asserted — structure and gating logic are."""

import copy
import json
from pathlib import Path

import pytest

from repro.engine import perf
from repro.errors import ModelError

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def p01_record():
    return perf.measure("p01_broker", "unit")


@pytest.fixture(scope="module")
def p02_record():
    return perf.measure("p02_runner", "unit")


@pytest.fixture(scope="module")
def p03_record():
    return perf.measure("p03_serve", "unit")


@pytest.fixture(scope="module")
def p04_record():
    return perf.measure("p04_cluster", "unit")


@pytest.fixture(scope="module")
def p05_record():
    return perf.measure("p05_obs", "unit")


@pytest.fixture(scope="module")
def p06_record():
    return perf.measure("p06_durable", "unit")


@pytest.fixture(scope="module")
def p09_record():
    return perf.measure("p09_direct", "unit")


class TestMeasure:
    def test_p01_record_shape(self, p01_record):
        assert p01_record["schema"] == perf.SCHEMA
        assert p01_record["bench"] == "p01_broker"
        assert p01_record["mode"] == "unit"
        metrics = p01_record["metrics"]
        assert metrics["events"] == 2 * p01_record["params"]["num_days"]
        assert metrics["events_per_sec"] > 0
        assert metrics["leases"] > 0
        assert p01_record["env"]["cpus"] >= 1

    def test_p02_record_shape(self, p02_record):
        metrics = p02_record["metrics"]
        assert metrics["byte_identical"] is True
        assert metrics["verified"] is True
        assert metrics["events"] > 0
        assert metrics["shard_speedup"] > 0

    def test_p03_record_shape(self, p03_record):
        assert p03_record["bench"] == "p03_serve"
        metrics = p03_record["metrics"]
        assert metrics["report_equal"] is True
        assert metrics["verified"] is True
        assert metrics["events"] > 0
        assert metrics["events"] == metrics["requests"]
        assert metrics["tenants"] == (
            p03_record["params"]["num_resources"]
            * p03_record["params"]["tenants_per_resource"]
        )
        assert metrics["events_per_sec"] > 0

    def test_p04_record_shape(self, p04_record):
        assert p04_record["bench"] == "p04_cluster"
        metrics = p04_record["metrics"]
        assert metrics["report_equal"] is True
        assert metrics["verified"] is True
        assert metrics["events"] > 0
        assert metrics["events"] == metrics["requests"]
        assert metrics["workers"] == p04_record["params"]["num_workers"] == 2
        assert metrics["tenants"] == (
            p04_record["params"]["num_resources"]
            * p04_record["params"]["tenants_per_resource"]
        )
        assert metrics["events_per_sec"] > 0
        assert p04_record["params"]["codec"] == "bin"

    def test_p04_matches_p03_structure_exactly(self, p03_record, p04_record):
        """Same workload, same seed: the cluster must apply exactly the
        events, buy exactly the leases, and pay exactly the cost the
        single-process server does — scaling out changes the wall clock,
        never the books."""
        for key in ("events", "leases", "tenants", "requests"):
            assert p04_record["metrics"][key] == p03_record["metrics"][key]
        assert p04_record["metrics"]["cost"] == p03_record["metrics"]["cost"]

    def test_p05_record_shape(self, p05_record):
        assert p05_record["bench"] == "p05_obs"
        metrics = p05_record["metrics"]
        # Observation must not perturb behaviour: every arm's aggregate
        # is identical to the bare one, and all match the inline replay.
        assert metrics["reports_identical"] is True
        assert metrics["report_equal"] is True
        assert metrics["verified"] is True
        assert metrics["events"] > 0
        for arm in ("off", "on", "traced"):
            assert metrics[f"{arm}_events_per_sec"] > 0
        # One span per dispatched request plus the broadcast ticks.
        assert metrics["trace_spans"] >= metrics["requests"]
        assert metrics["overhead_ratio"] > 0
        assert metrics["traced_ratio"] > 0

    def test_p05_matches_p03_structure_exactly(self, p03_record, p05_record):
        for key in ("events", "leases", "tenants", "requests"):
            assert p05_record["metrics"][key] == p03_record["metrics"][key]
        assert p05_record["metrics"]["cost"] == p03_record["metrics"]["cost"]

    def test_p06_record_shape(self, p06_record):
        assert p06_record["bench"] == "p06_durable"
        metrics = p06_record["metrics"]
        # Durability must not perturb behaviour: every arm's aggregate
        # is identical to the WAL-off one, and all match the replay.
        assert metrics["reports_identical"] is True
        assert metrics["report_equal"] is True
        assert metrics["verified"] is True
        assert metrics["events"] > 0
        for arm in ("off", "batch", "always"):
            assert metrics[f"{arm}_events_per_sec"] > 0
        assert metrics["batch_ratio"] > 0
        assert metrics["always_ratio"] > 0
        # The always arm left a real WAL on disk (log + snapshots).
        assert metrics["wal_bytes"] > 0

    def test_p06_matches_p03_structure_exactly(self, p03_record, p06_record):
        for key in ("events", "leases", "tenants", "requests"):
            assert p06_record["metrics"][key] == p03_record["metrics"][key]
        assert p06_record["metrics"]["cost"] == p03_record["metrics"]["cost"]

    def test_p09_record_shape(self, p09_record):
        assert p09_record["bench"] == "p09_direct"
        metrics = p09_record["metrics"]
        # The topology moves bytes, never behaviour: both arms equal
        # the inline replay and each other.
        assert metrics["reports_identical"] is True
        assert metrics["report_equal"] is True
        assert metrics["verified"] is True
        assert metrics["events"] > 0
        assert metrics["events"] == metrics["requests"]
        assert metrics["workers"] == p09_record["params"]["num_workers"] == 2
        for arm in ("routed", "direct"):
            assert metrics[f"{arm}_events_per_sec"] > 0
        assert metrics["direct_ratio"] > 0
        # Every tenant of the direct arm performed the route handshake.
        assert metrics["handshakes"] >= metrics["tenants"]
        assert metrics["retried_ops"] == 0  # nothing died

    def test_p09_matches_p04_structure_exactly(self, p04_record, p09_record):
        """Same workload, same seed, same fleet shape: both topologies
        must apply exactly the events and pay exactly the cost the
        routed cluster bench does."""
        for key in ("events", "leases", "tenants", "requests"):
            assert p09_record["metrics"][key] == p04_record["metrics"][key]
        assert p09_record["metrics"]["cost"] == p04_record["metrics"]["cost"]

    def test_p03_is_deterministic_in_structure(self, p03_record):
        again = perf.measure("p03_serve", "unit")
        for key in ("events", "leases", "cost", "tenants"):
            assert again["metrics"][key] == p03_record["metrics"][key]

    def test_p01_is_deterministic_in_structure(self, p01_record):
        again = perf.measure("p01_broker", "unit")
        for key in ("events", "leases", "cost"):
            assert again["metrics"][key] == p01_record["metrics"][key]

    def test_unknown_bench_and_mode_rejected(self):
        with pytest.raises(ModelError):
            perf.measure("p99_nope")
        with pytest.raises(ModelError):
            perf.measure_p01("huge")


class TestTrajectoryFiles:
    def test_update_and_reload(self, tmp_path, p01_record):
        committed = {"schema": perf.SCHEMA, "bench": "p01_broker"}
        perf.update_committed(committed, p01_record)
        path = tmp_path / "BENCH.json"
        perf.dump_json(committed, path)
        loaded = perf.load_committed(path)
        assert loaded["modes"]["unit"]["metrics"] == p01_record["metrics"]

    def test_update_rejects_mismatched_bench(self, p01_record):
        with pytest.raises(ModelError):
            perf.update_committed(
                {"schema": perf.SCHEMA, "bench": "p02_runner"}, p01_record
            )

    def test_update_preserves_baseline(self, p01_record):
        committed = {
            "schema": perf.SCHEMA,
            "bench": "p01_broker",
            "baseline": {"events_per_sec": 122_335},
        }
        perf.update_committed(committed, p01_record)
        assert committed["baseline"] == {"events_per_sec": 122_335}

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope/9"}))
        with pytest.raises(ModelError):
            perf.load_committed(path)

    @pytest.mark.parametrize("bench", perf.BENCH_NAMES)
    def test_committed_files_are_valid(self, bench):
        committed = perf.load_committed(REPO_ROOT / perf.BENCH_FILES[bench])
        assert committed["bench"] == bench
        assert "baseline" in committed
        for mode, entry in committed["modes"].items():
            assert mode in perf.MODES
            assert entry["metrics"]["events"] > 0

    def test_committed_p01_shows_the_2x_gain(self):
        committed = perf.load_committed(
            REPO_ROOT / perf.BENCH_FILES["p01_broker"]
        )
        current = committed["modes"]["full"]["metrics"]["events_per_sec"]
        baseline = committed["baseline"]["events_per_sec"]
        assert current >= 2 * baseline


class TestCheck:
    def _committed(self, record):
        return perf.update_committed(
            {"schema": perf.SCHEMA, "bench": record["bench"]},
            copy.deepcopy(record),
        )

    def test_identical_record_passes(self, p01_record):
        assert perf.check(self._committed(p01_record), p01_record) == []

    def test_rate_regression_fails(self, p01_record):
        committed = self._committed(p01_record)
        slow = copy.deepcopy(p01_record)
        slow["metrics"]["events_per_sec"] = int(
            p01_record["metrics"]["events_per_sec"] * 0.5
        )
        failures = perf.check(committed, slow)
        assert any("events_per_sec" in f for f in failures)

    def test_small_wobble_tolerated(self, p01_record):
        committed = self._committed(p01_record)
        wobble = copy.deepcopy(p01_record)
        wobble["metrics"]["events_per_sec"] = int(
            p01_record["metrics"]["events_per_sec"] * 0.85
        )
        wobble["metrics"]["leases_per_sec"] = int(
            p01_record["metrics"]["leases_per_sec"] * 0.85
        )
        assert perf.check(committed, wobble) == []

    def test_structural_change_fails_exactly(self, p02_record):
        committed = self._committed(p02_record)
        broken = copy.deepcopy(p02_record)
        broken["metrics"]["byte_identical"] = False
        failures = perf.check(committed, broken)
        assert any("byte_identical" in f for f in failures)

    def test_missing_mode_reports_instead_of_crashing(self, p01_record):
        failures = perf.check(
            {"schema": perf.SCHEMA, "bench": "p01_broker", "modes": {}},
            p01_record,
        )
        assert failures and "no committed numbers" in failures[0]

    def test_p04_beats_baseline_gated_only_on_multicore(self, p04_record):
        committed = self._committed(p04_record)
        # Freeze a baseline the fresh record cannot beat.
        committed["baseline"] = {
            "events_per_sec": p04_record["metrics"]["events_per_sec"] * 10
        }
        below = copy.deepcopy(p04_record)
        committed["modes"]["unit"]["env"]["cpus"] = 4
        below["env"]["cpus"] = 4
        failures = perf.check(committed, below)
        assert any("single-process p03 baseline" in f for f in failures)
        # Same record on a single-core machine: not gated.
        solo = copy.deepcopy(below)
        solo["env"]["cpus"] = 1
        assert not any("baseline" in f for f in perf.check(committed, solo))
        # And a cluster that does beat the baseline passes on multi-core.
        committed["baseline"] = {
            "events_per_sec": max(
                1, p04_record["metrics"]["events_per_sec"] // 10
            )
        }
        assert not any("baseline" in f for f in perf.check(committed, below))

    def test_p05_overhead_gate_is_machine_independent(self, p05_record):
        """The metrics-on arm must hold 90% of the bare rate measured in
        the *same run* — gated on every machine, since it is a ratio of
        two wall clocks from the same box."""
        committed = self._committed(p05_record)
        heavy = copy.deepcopy(p05_record)
        heavy["metrics"]["off_events_per_sec"] = 10_000
        heavy["metrics"]["on_events_per_sec"] = 8_500
        heavy["metrics"]["overhead_ratio"] = round(10_000 / 8_500, 4)
        # Keep the committed rates close so only the overhead gate fires.
        committed["modes"]["unit"]["metrics"]["off_events_per_sec"] = 10_000
        committed["modes"]["unit"]["metrics"]["on_events_per_sec"] = 8_500
        failures = perf.check(committed, heavy)
        assert any("instrumented serving dropped" in f for f in failures)
        # 95% of the bare rate: inside the floor, no failure.
        fine = copy.deepcopy(heavy)
        fine["metrics"]["on_events_per_sec"] = 9_500
        assert not any(
            "instrumented" in f for f in perf.check(committed, fine)
        )

    def test_p06_batch_gate_is_machine_independent(self, p06_record):
        """The batch-fsync arm must hold 80% of the WAL-off rate from
        the *same run* — a ratio of two wall clocks from the same box,
        so it gates everywhere."""
        committed = self._committed(p06_record)
        heavy = copy.deepcopy(p06_record)
        heavy["metrics"]["off_events_per_sec"] = 10_000
        heavy["metrics"]["batch_events_per_sec"] = 7_500
        heavy["metrics"]["batch_ratio"] = round(10_000 / 7_500, 4)
        # Keep the committed rates close so only the ratio gate fires.
        committed["modes"]["unit"]["metrics"]["off_events_per_sec"] = 10_000
        committed["modes"]["unit"]["metrics"]["batch_events_per_sec"] = 7_500
        failures = perf.check(committed, heavy)
        assert any("batch-fsynced serving dropped" in f for f in failures)
        # 85% of the WAL-off rate: inside the floor, no failure.
        fine = copy.deepcopy(heavy)
        fine["metrics"]["batch_events_per_sec"] = 8_500
        assert not any(
            "batch-fsynced" in f for f in perf.check(committed, fine)
        )

    def test_p09_direct_beats_routed_gated_only_on_multicore(
        self, p09_record
    ):
        """The direct data plane must at least match the routed relay
        from the same run — but only where there are cores to pay with;
        a 1-cpu box serialises both arms and is not gated."""
        committed = self._committed(p09_record)
        committed["modes"]["unit"]["env"]["cpus"] = 4
        slow = copy.deepcopy(p09_record)
        slow["env"]["cpus"] = 4
        slow["metrics"]["direct_ratio"] = 0.9
        failures = perf.check(committed, slow)
        assert any("no longer beats the routed relay" in f for f in failures)
        # Same record on a single-core machine: not gated.
        solo = copy.deepcopy(slow)
        solo["env"]["cpus"] = 1
        assert not any(
            "routed relay" in f for f in perf.check(committed, solo)
        )
        # A ratio at or above 1.0 passes on multi-core.
        fine = copy.deepcopy(slow)
        fine["metrics"]["direct_ratio"] = 1.0
        assert not any(
            "routed relay" in f for f in perf.check(committed, fine)
        )

    def test_shard_speedup_gated_only_on_multicore(self, p02_record):
        committed = self._committed(p02_record)
        committed["modes"]["unit"]["env"]["cpus"] = 4
        slow = copy.deepcopy(p02_record)
        slow["env"]["cpus"] = 4
        slow["metrics"]["shard_speedup"] = 0.8
        failures = perf.check(committed, slow)
        assert any("shard" in f for f in failures)
        # Same record on a single-core machine: not gated.
        solo = copy.deepcopy(slow)
        solo["env"]["cpus"] = 1
        assert not any("shard" in f for f in perf.check(committed, solo))
