"""Tests for the typed event/trace model: generation, ordering, JSONL."""

import pytest

from repro import io as repro_io
from repro.engine import (
    WORKLOAD_NAMES,
    Acquire,
    Release,
    Tick,
    day_pattern,
    event_from_payload,
    event_to_payload,
    generate_trace,
    trace_from_jsonl,
    trace_to_jsonl,
)
from repro.errors import ModelError
from repro.workloads import make_rng


class TestDayPatterns:
    def test_all_workloads_named(self):
        assert set(WORKLOAD_NAMES) == {
            "adversarial", "batch", "diurnal", "markov",
        }

    @pytest.mark.parametrize("workload", WORKLOAD_NAMES)
    def test_days_sorted_unique_in_range(self, workload):
        days = day_pattern(workload, 200, make_rng(5))
        assert days == sorted(set(days))
        assert all(0 <= day < 200 for day in days)
        assert days  # every shape produces demand at this horizon

    @pytest.mark.parametrize("workload", WORKLOAD_NAMES)
    def test_deterministic_in_seed(self, workload):
        assert day_pattern(workload, 150, make_rng(9)) == day_pattern(
            workload, 150, make_rng(9)
        )

    def test_unknown_workload_rejected(self):
        with pytest.raises(ModelError):
            day_pattern("fullmoon", 10, make_rng(0))


class TestGenerateTrace:
    def test_deterministic(self):
        first = generate_trace("markov", 120, seed=4)
        second = generate_trace("markov", 120, seed=4)
        assert first == second
        assert first != generate_trace("markov", 120, seed=5)

    def test_time_nondecreasing_and_day_ordering(self):
        trace = generate_trace("diurnal", 150, seed=2)
        times = [event.time for event in trace]
        assert times == sorted(times)
        # Within a day: ticks, then releases, then acquires.
        rank = {Tick: 0, Release: 1, Acquire: 2}
        for earlier, later in zip(trace, trace[1:]):
            if earlier.time == later.time:
                assert rank[type(earlier)] <= rank[type(later)]

    def test_contains_full_lifecycle(self):
        trace = generate_trace("markov", 150, seed=1)
        kinds = {type(event) for event in trace}
        assert kinds == {Acquire, Release, Tick}

    def test_every_acquire_gets_a_release(self):
        trace = generate_trace("batch", 100, seed=3)
        acquired = {
            (e.tenant, e.resource) for e in trace if isinstance(e, Acquire)
        }
        released = {
            (e.tenant, e.resource) for e in trace if isinstance(e, Release)
        }
        assert acquired == released


class TestJsonlRoundTrip:
    def test_round_trip_equality(self):
        trace = generate_trace("adversarial", 100, seed=8)
        assert trace_from_jsonl(trace_to_jsonl(trace)) == trace

    def test_file_round_trip_via_io(self, tmp_path):
        trace = generate_trace("markov", 80, seed=6)
        path = tmp_path / "trace.jsonl"
        repro_io.save_trace(trace, path)
        assert repro_io.load_trace(path) == trace

    def test_payload_round_trip_each_kind(self):
        for event in (
            Acquire(time=3, tenant="a", resource=1),
            Release(time=4, tenant="a", resource=1),
            Tick(time=5),
        ):
            assert event_from_payload(event_to_payload(event)) == event

    def test_rejects_unknown_kind(self):
        with pytest.raises(ModelError):
            event_from_payload({"kind": "preempt", "time": 0})

    def test_rejects_missing_header(self):
        with pytest.raises(ModelError):
            trace_from_jsonl('{"kind": "tick", "time": 0}')

    def test_rejects_unserializable_event(self):
        with pytest.raises(ModelError):
            event_to_payload("not an event")
