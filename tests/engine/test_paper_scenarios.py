"""The experiment-to-engine map: E-index completeness, paper-scenario
determinism, seed contracts, and the E11 closed form."""

import importlib
import sys
from pathlib import Path

import pytest

from repro import io as repro_io
from repro.deadlines import expected_ratio_lower_bound
from repro.engine import (
    EXPERIMENT_INDEX,
    experiment,
    get_scenario,
    render_report,
    replay,
    run_scenario,
)
from repro.engine import scenarios as scenarios_module
from repro.engine.paper import (
    E06_SCENARIOS,
    E07_SCENARIOS,
    E08_SCENARIOS,
    E09_SCENARIOS,
    E10_SCENARIOS,
    E11_POINTS,
    E11_SCENARIOS,
    E12_SCENARIOS,
    E13_SCENARIOS,
    E15_SCENARIOS,
)

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"

#: One cheap representative per ported experiment (used where running
#: every sweep point would slow tier-1 for no extra coverage).
REPRESENTATIVES = (
    "setcover-e06-n6",
    "setcover-e07-n8",
    "setcover-e08-n6",
    "facility-e09-constant",
    "deadline-e10-u0",
    "deadline-e11-d8",
    "deadline-e12-d0",
    "deadline-e13-h16",
    "forecast-pure-e25",
    "forecast-hedged-e0",
    "forecast-primal-dual",
)


class TestExperimentIndex:
    def test_covers_e1_through_e15(self):
        assert [entry.ident for entry in EXPERIMENT_INDEX] == [
            f"E{i}" for i in range(1, 16)
        ]
        for entry in EXPERIMENT_INDEX:
            assert entry.scenarios
            assert entry.module
            assert entry.claim

    def test_engine_registered_rows_resolve(self):
        for entry in EXPERIMENT_INDEX:
            if entry.registrar is not None:
                continue
            for name in entry.scenarios:
                scenario = get_scenario(name)
                assert scenario.description
                assert scenario.paper_result

    def test_adhoc_rows_resolve_after_bench_import(self):
        """E1–E5/E14 register their sweep points at bench import; every
        indexed name must then resolve.  The registry is restored so the
        ad-hoc scenarios don't leak into whole-registry tests."""
        saved = dict(scenarios_module._REGISTRY)
        sys.path.insert(0, str(BENCHMARKS_DIR))
        try:
            for entry in EXPERIMENT_INDEX:
                if entry.registrar is None:
                    continue
                importlib.import_module(entry.registrar)
                for name in entry.scenarios:
                    assert get_scenario(name).description
        finally:
            sys.path.remove(str(BENCHMARKS_DIR))
            scenarios_module._REGISTRY.clear()
            scenarios_module._REGISTRY.update(saved)

    def test_experiment_lookup(self):
        assert experiment("E11").scenarios == E11_SCENARIOS
        with pytest.raises(KeyError):
            experiment("E99")

    def test_ported_families_fully_indexed(self):
        assert experiment("E6").scenarios == E06_SCENARIOS
        assert experiment("E7").scenarios == E07_SCENARIOS
        assert experiment("E8").scenarios == E08_SCENARIOS
        assert experiment("E9").scenarios == E09_SCENARIOS
        assert experiment("E10").scenarios == E10_SCENARIOS
        assert experiment("E12").scenarios == E12_SCENARIOS
        assert experiment("E13").scenarios == E13_SCENARIOS
        assert experiment("E15").scenarios == E15_SCENARIOS


@pytest.mark.parametrize("name", REPRESENTATIVES)
class TestRepresentativeScenarios:
    def test_runs_verified_and_bounded(self, name):
        outcome = run_scenario(name, seed=1)
        assert outcome.verified, outcome.failures[:3]
        assert outcome.run.num_demands > 0
        assert outcome.opt.lower > 0
        # Online can never beat the true offline optimum.
        assert outcome.run.cost >= outcome.opt.lower - 1e-6

    def test_same_seed_byte_identical_report(self, name):
        first = render_report(replay([name], seeds=[5]))
        second = render_report(replay([name], seeds=[5]))
        assert first == second


class TestSeedContracts:
    def test_fixed_instance_families_ignore_replay_seed(self):
        # E6/E7/E12/E13/E15: the paper fixes the workload; only the
        # algorithm's coins (or oracle noise) follow the replay seed.
        for name in (
            "setcover-e06-n6",
            "setcover-e07-n8",
            "deadline-e12-d2",
            "deadline-e13-h16",
            "forecast-pure-e50",
        ):
            scenario = get_scenario(name)
            assert repro_io.dumps(scenario.build(1)) == repro_io.dumps(
                scenario.build(2)
            )

    def test_e10_replay_seed_draws_the_instance(self):
        scenario = get_scenario("deadline-e10-s2")
        assert repro_io.dumps(scenario.build(1)) != repro_io.dumps(
            scenario.build(2)
        )

    def test_coin_seed_varies_the_run(self):
        scenario = get_scenario("setcover-e06-n6")
        instance = scenario.build(0)
        costs = {scenario.run(instance, seed).cost for seed in range(4)}
        assert len(costs) > 1


class TestVerifyRepetitions:
    def test_invalid_assignments_report_instead_of_crashing(self):
        """Corrupt run outputs must yield a failing report (never an
        exception inside the runner): non-containing sets, unleased
        sets, out-of-range indices, and same-element reuse."""
        from repro.analysis import verify_repetitions

        instance = get_scenario("setcover-e08-n6").build(0)
        element, arrival = instance.stream[0]
        containing = [
            i
            for i, members in enumerate(instance.base.system.sets)
            if element in members
        ]
        non_containing = next(
            i
            for i in range(len(instance.base.system.sets))
            if i not in containing
        )
        for set_index, expected in (
            (non_containing, "non-containing"),
            (containing[0], "no active lease"),
            (len(instance.base.system.sets), "nonexistent"),
            (-1, "nonexistent"),
        ):
            report = verify_repetitions(
                instance, [(element, arrival, set_index)], []
            )
            assert not report.ok
            assert any(expected in failure for failure in report.failures), (
                expected,
                report.failures,
            )

    def test_valid_run_verifies(self):
        outcome = run_scenario("setcover-e08-n6", seed=3)
        assert outcome.verified


class TestE11ClosedForm:
    def test_tight_example_cost_matches_closed_form(self):
        """The measured ratio realises the designed Omega(dmax/lmin)
        floor and stays within the Step-2 overshoot factor."""
        outcomes = replay(E11_SCENARIOS, seeds=[0])
        assert all(outcome.verified for outcome in outcomes)
        for (tag, (dmax, lmin)), outcome in zip(E11_POINTS, outcomes):
            designed = expected_ratio_lower_bound(dmax, lmin)
            assert outcome.ratio >= 0.9 * designed
            assert outcome.ratio <= 2.2 * designed + 2.0

    def test_every_seed_replays_the_same_construction(self):
        first = run_scenario("deadline-e11-d16", seed=0)
        second = run_scenario("deadline-e11-d16", seed=9)
        assert first.run.cost == second.run.cost
        assert first.opt == second.opt
