"""Intra-scenario sharding: per-shard replay merges to the unsharded
run byte for byte, for every shard count, worker count, and transport."""

import pytest

from repro.engine import (
    WORKLOAD_NAMES,
    make_broker_scenario,
    merge_shard_outcomes,
    render_report,
    replay_sharded,
    run_scenario,
    run_scenario_shard,
)
from repro.engine.scenarios import get_scenario
from repro.errors import ModelError


class TestShardedReplay:
    @pytest.mark.parametrize("workload", WORKLOAD_NAMES)
    def test_merged_outcome_equals_unsharded(self, workload):
        name = f"broker-{workload}"
        unsharded = run_scenario(name, seed=7)
        sharded = replay_sharded(name, seed=7, shards=4, workers=2)
        assert sharded == unsharded
        assert render_report([sharded]) == render_report([unsharded])

    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 8])
    def test_any_shard_count_is_byte_identical(self, shards):
        unsharded = render_report([run_scenario("broker-markov", seed=3)])
        sharded = render_report(
            # workers=1 keeps this inline: shard semantics must not
            # depend on the pool at all.
            [replay_sharded("broker-markov", seed=3, shards=shards, workers=1)]
        )
        assert sharded == unsharded

    def test_shards_partition_the_demands(self):
        outcomes = [
            run_scenario_shard("broker-diurnal", 5, shard, 4)
            for shard in range(4)
        ]
        merged = merge_shard_outcomes(get_scenario("broker-diurnal"), outcomes)
        assert merged.run.num_demands == sum(
            outcome.run.num_demands for outcome in outcomes
        )
        assert len(merged.run.leases) == sum(
            len(outcome.run.leases) for outcome in outcomes
        )
        assert merged.verified

    def test_shard_stats_merge_counts_ticks_once(self):
        unsharded = run_scenario("broker-markov", seed=2)
        sharded = replay_sharded("broker-markov", seed=2, shards=4, workers=1)
        assert (
            sharded.run.detail["broker_stats"]
            == unsharded.run.detail["broker_stats"]
        )

    def test_non_shardable_scenario_rejected(self):
        with pytest.raises(ModelError):
            replay_sharded("parking-markov", shards=2)
        with pytest.raises(ModelError):
            run_scenario_shard("parking-markov", 0, 0, 2)

    def test_bad_shard_arguments_rejected(self):
        with pytest.raises(ModelError):
            replay_sharded("broker-markov", shards=0)
        scenario = get_scenario("broker-markov")
        with pytest.raises(ModelError):
            scenario.build_shard(0, 4, 4)

    def test_shardable_flag(self):
        assert get_scenario("broker-markov").shardable
        assert not get_scenario("parking-markov").shardable


class TestShardPurity:
    def test_shard_traces_partition_the_full_trace(self):
        scenario = get_scenario("broker-batch")
        full = scenario.build(11)
        shard_events = []
        for shard in range(3):
            shard_events.append(scenario.build_shard(11, shard, 3).events)
        # Non-tick events partition exactly; ticks replicate per shard.
        def non_ticks(events):
            return [e for e in events if hasattr(e, "resource")]

        merged = sorted(
            (e for events in shard_events for e in non_ticks(events)),
            key=lambda e: (e.time, e.tenant, e.resource),
        )
        assert merged == sorted(
            non_ticks(full.events),
            key=lambda e: (e.time, e.tenant, e.resource),
        )
        full_ticks = [e for e in full.events if not hasattr(e, "resource")]
        for events in shard_events:
            assert [
                e for e in events if not hasattr(e, "resource")
            ] == full_ticks

    def test_heavier_adhoc_scenario_shards_identically(self):
        from repro.engine import register

        scenario = register(
            make_broker_scenario(
                "markov",
                name="test-broker-heavyish",
                horizon=1024,
                num_resources=12,
            ),
            replace=True,
        )
        try:
            unsharded = run_scenario(scenario.name, seed=9)
            sharded = replay_sharded(scenario.name, seed=9, shards=4, workers=2)
            assert render_report([sharded]) == render_report([unsharded])
            assert sharded.run.cost == unsharded.run.cost
            assert tuple(sharded.run.leases) == tuple(unsharded.run.leases)
        finally:
            from repro.engine import scenarios as scenarios_module

            scenarios_module._REGISTRY.pop("test-broker-heavyish", None)
