"""Broker snapshot/restore: byte-identical state across a restart.

The recovery invariant the WAL rides on: restoring a snapshot into a
fresh broker and continuing the trace must be indistinguishable — state,
stats, grants, float cost sums — from the broker that never stopped.
"""

import json

import pytest

from repro.core import LeaseSchedule
from repro.engine import LeaseBroker, generate_trace, replay_trace
from repro.engine.events import generate_resource_trace
from repro.errors import ModelError
from repro.parking import DeterministicParkingPermit

SCHEDULE = LeaseSchedule.power_of_two(4, cost_growth=1.7)


def _snapshot_roundtrip(state: dict) -> dict:
    """Force the JSON round trip a real snapshot file goes through."""
    return json.loads(json.dumps(state))


class TestPolicyState:
    def test_state_dict_roundtrip_mid_stream(self):
        left = DeterministicParkingPermit(SCHEDULE)
        for day in (0, 1, 5, 9, 17):
            left.on_demand(day)
        right = DeterministicParkingPermit(SCHEDULE)
        right.restore_state(_snapshot_roundtrip(left.state_dict()))
        assert right.cost == left.cost
        assert right.leases == left.leases
        assert right.duals == left.duals
        # Continue both: the restored instance must behave identically.
        for day in (18, 25, 40):
            left.on_demand(day)
            right.on_demand(day)
        assert right.cost == left.cost
        assert right.leases == left.leases
        assert right.duals == left.duals

    def test_restored_contribution_dicts_feed_the_hot_path(self):
        # _type_rows holds references to the contribution dicts; restore
        # must mutate them in place or on_demand reads stale zeros.
        policy = DeterministicParkingPermit(SCHEDULE)
        policy.on_demand(3)
        restored = DeterministicParkingPermit(SCHEDULE)
        restored.restore_state(policy.state_dict())
        assert all(
            row[3] is restored._contribution[row[0]]
            for row in restored._type_rows
        )
        assert restored._contribution == policy._contribution


class TestBrokerSnapshot:
    def _split_replay(self, trace, cut):
        continuous = LeaseBroker(SCHEDULE)
        replay_trace(continuous, trace)

        first = LeaseBroker(SCHEDULE)
        replay_trace(first, trace[:cut])
        state = _snapshot_roundtrip(first.snapshot_state())
        recovered = LeaseBroker(SCHEDULE)
        recovered.restore_state(state)
        replay_trace(recovered, trace[cut:])
        return continuous, recovered

    def test_mid_trace_snapshot_restore_continue_is_byte_identical(self):
        trace = generate_trace("markov", 300, seed=11)
        continuous, recovered = self._split_replay(trace, len(trace) // 2)
        assert recovered.snapshot_state() == continuous.snapshot_state()
        assert recovered.cost == continuous.cost
        assert recovered.leases == continuous.leases
        assert recovered.stats.full_dict() == continuous.stats.full_dict()
        assert recovered.active_leases() == continuous.active_leases()

    @pytest.mark.parametrize("workload", ["markov", "diurnal", "adversarial"])
    def test_identity_holds_at_every_quartile(self, workload):
        trace = generate_resource_trace(
            workload, 128, 7, num_resources=4, tenants_per_resource=2
        )
        for cut in (1, len(trace) // 4, len(trace) // 2, len(trace) - 1):
            continuous, recovered = self._split_replay(trace, cut)
            assert (
                recovered.snapshot_state() == continuous.snapshot_state()
            ), f"divergence at cut {cut}"

    def test_restore_requires_fresh_broker(self):
        broker = LeaseBroker(SCHEDULE)
        broker.acquire("alice", 0, 0)
        state = broker.snapshot_state()
        with pytest.raises(ModelError, match="fresh"):
            broker.restore_state(state)

    def test_snapshot_rejects_stateless_policy(self):
        class Opaque:
            def on_demand(self, day):
                pass

            cost = 0.0
            leases = ()

        broker = LeaseBroker(
            SCHEDULE, policy_factory=lambda resource: Opaque()
        )
        with pytest.raises(ModelError, match="covering day"):
            # Opaque buys nothing, so the acquire itself fails first;
            # exercise snapshot via a policy that exists but is opaque.
            broker.acquire("alice", 0, 0)

        class OpaqueCovering(Opaque):
            leases = ()

            def __init__(self):
                from repro.core.store import LeaseStore

                self.store = LeaseStore()
                self.store.buy(SCHEDULE.window(3, 0))

        broker = LeaseBroker(
            SCHEDULE, policy_factory=lambda resource: OpaqueCovering()
        )
        broker.acquire("alice", 0, 0)
        with pytest.raises(ModelError, match="not snapshottable"):
            broker.snapshot_state()

    def test_grant_table_and_heap_survive_verbatim(self):
        trace = generate_trace("markov", 200, seed=3)
        broker = LeaseBroker(SCHEDULE)
        replay_trace(broker, trace)
        state = _snapshot_roundtrip(broker.snapshot_state())
        recovered = LeaseBroker(SCHEDULE)
        recovered.restore_state(state)
        assert recovered._grant_heap == broker._grant_heap
        assert recovered._active == broker._active
        assert recovered.clock == broker.clock
        assert recovered.num_grants == broker.num_grants
        # Expiry behaviour after restore matches: tick far forward.
        broker.tick(broker.clock + 1000)
        recovered.tick(recovered.clock + 1000)
        assert recovered.stats.full_dict() == broker.stats.full_dict()
