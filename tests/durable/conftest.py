"""Durable-suite fixtures: short socket paths, same as the serve suite.

Unix socket paths are capped around 100 bytes by the kernel, so the
fixture allocates its own short ``/tmp`` directory instead of using
pytest's (potentially deep) ``tmp_path``.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import pytest


@pytest.fixture
def sock_path():
    workdir = tempfile.mkdtemp(prefix="rdu-")
    try:
        yield str(Path(workdir) / "serve.sock")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
