"""WAL framing, torn-tail tolerance, snapshots, and shard recovery."""

import json

import pytest

from repro.core import LeaseSchedule
from repro.durable.wal import (
    SNAPSHOT_FILE,
    WAL_FILE,
    ShardWal,
    read_wal_records,
    recover_shard,
    require_fsync_mode,
)
from repro.engine import LeaseBroker, replay_trace
from repro.engine.events import generate_resource_trace
from repro.errors import ModelError

SCHEDULE = LeaseSchedule.power_of_two(4, cost_growth=2.0)


def _fill(wal: ShardWal) -> list[tuple]:
    ops = [
        ("acquire", 0, "alice", 3),
        ("acquire", 0, "bob", 3),
        ("release", 1, "alice", 3),
        ("tick", 2, None, None),
        ("acquire", 2, "carol", 5),
    ]
    for op, time, tenant, resource in ops:
        wal.append(op, time, tenant=tenant, resource=resource)
    return ops


class TestWalFile:
    def test_append_read_roundtrip(self, tmp_path):
        wal = ShardWal(tmp_path / "shard-0", fsync="off")
        ops = _fill(wal)
        wal.close()
        records = read_wal_records(tmp_path / "shard-0" / WAL_FILE)
        assert [r["id"] for r in records] == list(range(1, len(ops) + 1))
        assert [r["op"] for r in records] == [op for op, *_ in ops]
        assert records[0] == {
            "id": 1, "op": "acquire", "tenant": "alice",
            "resource": 3, "time": 0,
        }
        assert records[3] == {"id": 4, "op": "tick", "time": 2}

    @pytest.mark.parametrize("cut", [1, 3, 7])
    def test_torn_tail_is_dropped_at_the_frame_boundary(self, tmp_path, cut):
        wal = ShardWal(tmp_path / "shard-0", fsync="always")
        _fill(wal)
        wal.close()
        log = tmp_path / "shard-0" / WAL_FILE
        data = log.read_bytes()
        log.write_bytes(data[:-cut])
        records = read_wal_records(log)
        assert [r["id"] for r in records] == [1, 2, 3, 4]

    def test_garbage_tail_stops_cleanly(self, tmp_path):
        wal = ShardWal(tmp_path / "shard-0", fsync="batch")
        _fill(wal)
        wal.flush()
        wal.close()
        log = tmp_path / "shard-0" / WAL_FILE
        with open(log, "ab") as handle:
            handle.write(b"\x00\x00\x00\x04junk")
        records = read_wal_records(log)
        assert len(records) == 5

    def test_unknown_fsync_mode_rejected(self, tmp_path):
        with pytest.raises(ModelError, match="fsync"):
            ShardWal(tmp_path / "shard-0", fsync="sometimes")
        with pytest.raises(ModelError, match="fsync"):
            require_fsync_mode("yes")


class TestSnapshotAndRecovery:
    def test_snapshot_truncates_and_recovery_skips_covered_seqs(
        self, tmp_path
    ):
        wal = ShardWal(tmp_path / "shard-0", fsync="batch")
        _fill(wal)
        wal.write_snapshot({"marker": 1}, applied=[{"kind": "tick"}])
        assert wal.appended_since_snapshot == 0
        wal.append("acquire", 6, tenant="dave", resource=1)
        wal.close()

        recovery = recover_shard(tmp_path / "shard-0")
        assert recovery.state == {"marker": 1}
        assert recovery.applied == [{"kind": "tick"}]
        assert [r["id"] for r in recovery.records] == [6]
        assert recovery.last_seq == 6

    def test_crash_between_snapshot_and_truncate(self, tmp_path):
        # Simulate the crash window: records up to seq 5 in the log, a
        # snapshot claiming seq 3 — recovery must replay only 4 and 5.
        wal = ShardWal(tmp_path / "shard-0", fsync="off")
        _fill(wal)
        wal.close()
        snap = {"version": 1, "seq": 3, "state": {"s": 1}, "applied": None}
        (tmp_path / "shard-0" / SNAPSHOT_FILE).write_text(json.dumps(snap))
        recovery = recover_shard(tmp_path / "shard-0")
        assert [r["id"] for r in recovery.records] == [4, 5]
        assert recovery.state == {"s": 1}

    def test_cold_start_is_empty(self, tmp_path):
        recovery = recover_shard(tmp_path / "nonexistent")
        assert recovery.state is None
        assert recovery.records == []
        assert recovery.last_seq == 0

    def test_corrupt_snapshot_raises(self, tmp_path):
        shard = tmp_path / "shard-0"
        shard.mkdir()
        (shard / SNAPSHOT_FILE).write_text("{not json")
        with pytest.raises(ModelError, match="corrupt snapshot"):
            recover_shard(shard)

    def test_broker_recovery_through_wal_is_byte_identical(self, tmp_path):
        """End-to-end: snapshot + WAL replay == the broker that never died."""
        trace = generate_resource_trace(
            "markov", 96, 7, num_resources=2, tenants_per_resource=2
        )
        continuous = LeaseBroker(SCHEDULE)
        replay_trace(continuous, trace)

        cut = len(trace) // 3
        wal = ShardWal(tmp_path / "shard-0", fsync="always")
        first = LeaseBroker(SCHEDULE)
        replay_trace(first, trace[:cut])
        wal.write_snapshot(first.snapshot_state())
        # The rest of the trace goes through the WAL as applied events
        # (acquire covers renewals, exactly like the applied stream).
        from repro.engine.events import Acquire, Release, Tick

        for event in trace[cut:]:
            kind = type(event)
            if kind is Acquire:
                wal.append(
                    "acquire", event.time,
                    tenant=event.tenant, resource=event.resource,
                )
            elif kind is Release:
                wal.append(
                    "release", event.time,
                    tenant=event.tenant, resource=event.resource,
                )
            elif kind is Tick:
                wal.append("tick", event.time)
        wal.close()

        recovery = recover_shard(tmp_path / "shard-0")
        recovered = LeaseBroker(SCHEDULE)
        recovered.restore_state(recovery.state)
        for record in recovery.records:
            if record["op"] == "acquire":
                recovered._acquire(
                    record["tenant"], record["resource"], record["time"]
                )
            elif record["op"] == "release":
                recovered._release(
                    record["tenant"], record["resource"], record["time"]
                )
            else:
                recovered.tick(record["time"])
        assert recovered.snapshot_state() == continuous.snapshot_state()
        assert recovered.cost == continuous.cost
        assert recovered.leases == continuous.leases

    def test_wal_metrics_counters(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        wal = ShardWal(
            tmp_path / "shard-0", fsync="always", metrics=registry, shard=0
        )
        _fill(wal)
        wal.write_snapshot({"s": 1})
        wal.close()
        rendered = registry.render_prometheus()
        assert 'wal_appends_total{shard="0"} 5' in rendered
        assert 'wal_snapshots_total{shard="0"} 1' in rendered
        assert 'wal_fsyncs_total{shard="0"} 5' in rendered
