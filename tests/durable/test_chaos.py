"""Fault injection end to end: SIGKILL a worker mid-drive, watch the
supervised router respawn it from its WAL, and demand the clustered
aggregate still equal the inline replay byte for byte."""

from pathlib import Path

import pytest

from repro.durable.chaos import (
    build_chaos_instance,
    default_kill_schedule,
    run_chaos,
)
from repro.cluster.loadgen import build_cluster_instance
from repro.errors import ModelError


def _instance(wal_root, **kwargs):
    defaults = dict(
        num_resources=6,
        tenants_per_resource=2,
        num_workers=2,
        shards_per_worker=1,
    )
    defaults.update(kwargs)
    return build_chaos_instance("markov", 48, 9, wal_root, **defaults)


class TestKillSchedule:
    def test_default_schedule_is_deterministic_and_in_range(self, sock_path):
        instance = _instance(sock_path + ".wal")
        first = default_kill_schedule(instance, kills=3)
        second = default_kill_schedule(instance, kills=3)
        assert first == second
        days = {event.time for event in instance.trace.events}
        for day, worker in first:
            assert day in days
            assert 0 <= worker < instance.num_workers

    def test_zero_kills_is_empty(self, sock_path):
        instance = _instance(sock_path + ".wal")
        assert default_kill_schedule(instance, kills=0) == ()


class TestChaosPreconditions:
    def test_rejects_undurable_fleet(self):
        instance = build_cluster_instance(
            "markov", 32, 0, num_resources=6, tenants_per_resource=2,
            num_workers=2, shards_per_worker=1, record=True,
        )
        with pytest.raises(ModelError):
            run_chaos(instance)

    def test_rejects_unrecorded_fleet(self, sock_path):
        instance = build_cluster_instance(
            "markov", 32, 0, num_resources=6, tenants_per_resource=2,
            num_workers=2, shards_per_worker=1,
            record=False, wal_root=sock_path + ".wal",
        )
        with pytest.raises(ModelError):
            run_chaos(instance)

    def test_rejects_out_of_range_victim(self, sock_path):
        instance = _instance(sock_path + ".wal")
        with pytest.raises(ModelError):
            run_chaos(instance, kill_schedule=[(0, 99)])


class TestChaosRun:
    def test_clean_shutdown_snapshots_instead_of_respawning(self, sock_path):
        """A supervised fleet stopped over the wire must not trip the
        death detector: the shutdown EOF is expected, so every worker
        finishes its graceful stop — each shard folds its WAL tail into
        a final snapshot — instead of being SIGKILL'd by a spurious
        respawn mid-write (which left ``snap.json.tmp`` orphans)."""
        wal_root = sock_path + ".wal"
        instance = _instance(wal_root)
        outcome = run_chaos(instance, kill_schedule=())
        assert outcome.executed == ()
        assert outcome.respawns == 0
        assert outcome.report_equal
        shard_dirs = sorted(Path(wal_root).glob("worker-*/shard-*"))
        assert shard_dirs
        for directory in shard_dirs:
            assert (directory / "snap.json").is_file()
            assert not (directory / "snap.json.tmp").exists()


    def test_sigkill_mid_drive_recovers_byte_identically(self, sock_path):
        """The tentpole gate: a worker dies under load, its successor
        recovers from the WAL, retried ops dedup, and the merged report
        still equals the inline replay exactly."""
        instance = _instance(sock_path + ".wal")
        outcome = run_chaos(
            instance, kill_schedule=default_kill_schedule(instance, kills=1)
        )
        assert outcome.executed == outcome.scheduled
        assert len(outcome.executed) == 1
        assert outcome.respawns >= 1
        assert outcome.report_equal
        assert outcome.ok
        assert outcome.fsync == "always"
        assert outcome.requests > 0
        assert outcome.result.cost == pytest.approx(outcome.cost)

    def test_direct_topology_sigkill_recovers_byte_identically(
        self, sock_path
    ):
        """The same gate over the two-plane shape: tenants hold *direct*
        worker links, so each kill severs their data connections too.
        Recovery must compose the router's supervised respawn with the
        clients' stale-route re-handshake and marked resend — and the
        merged report must still equal the inline replay exactly."""
        instance = _instance(sock_path + ".wal", topology="direct")
        outcome = run_chaos(
            instance, kill_schedule=default_kill_schedule(instance, kills=2)
        )
        assert outcome.executed == outcome.scheduled
        assert len(outcome.executed) == 2
        assert outcome.respawns >= 2
        assert outcome.ok
        detail = outcome.result.detail["cluster"]
        assert detail["topology"] == "direct"
        # Every tenant handshook at least once; the kills forced the
        # severed ones back through the route table.
        assert detail["handshakes"] >= len(instance.tenants)
        assert detail["retried_ops"] >= 1
