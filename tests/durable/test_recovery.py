"""Server-level durability: crash mid-stream, restart, recover — the
report a recovered server produces must be indistinguishable from one
that never crashed, and retry-marked resends must apply exactly once."""

import asyncio

from repro.core import LeaseSchedule
from repro.engine.events import Release, Tick, generate_resource_trace
from repro.serve import (
    AsyncLeaseClient,
    LeaseServer,
    merge_shard_payloads,
    replay_applied,
)

SCHEDULE = LeaseSchedule.power_of_two(4, cost_growth=2.0)


def _events(horizon=48, seed=11):
    return list(
        generate_resource_trace(
            "markov", horizon, seed=seed,
            num_resources=6, tenants_per_resource=2,
        )
    )


async def _apply(client, event):
    if type(event) is Tick:
        return await client.tick(event.time)
    if type(event) is Release:
        return await client.release(event.tenant, event.resource, event.time)
    return await client.acquire(event.tenant, event.resource, event.time)


def _server(wal_dir=None, **kwargs):
    extra = {} if wal_dir is None else {"wal_dir": wal_dir}
    extra.update(kwargs)
    return LeaseServer(
        SCHEDULE, num_resources=6, num_shards=3, record=True, **extra
    )


def _drive(sock_path, events, wal_dir=None, crash=False, **kwargs):
    """Drive ``events`` through a fresh server; maybe crash at the end.

    ``crash=True`` abandons the server without ``shutdown()`` — the
    closing event loop tears down listeners and dispatchers mid-flight,
    the in-process stand-in for an abrupt death.  A crashed drive
    returns ``recovered`` only; a clean one also fetches report + trace.
    """

    async def main():
        server = _server(wal_dir=wal_dir, **kwargs)
        await server.start_unix(sock_path)
        client = await AsyncLeaseClient.open_unix(sock_path)
        for event in events:
            await _apply(client, event)
        if crash:
            await client.close()
            return server.recovered_events, None, None
        report = await client.report()
        trace = await client.trace()
        await client.close()
        await server.shutdown()
        return server.recovered_events, report, trace

    return asyncio.run(main())


class TestCrashRecovery:
    def test_mid_stream_crash_recovers_byte_identically(self, sock_path):
        """Crash halfway with fsync=always, restart on the same WAL,
        finish the stream: the report must equal an uncrashed control
        run's byte for byte, and both must equal the inline replay."""
        events = _events()
        half = len(events) // 2
        wal_dir = sock_path + ".wal"

        _drive(sock_path, events[:half], wal_dir=wal_dir,
               fsync="always", crash=True)
        recovered, report, trace = _drive(
            sock_path, events[half:], wal_dir=wal_dir, fsync="always"
        )
        assert recovered > 0  # the restart actually replayed a WAL tail

        _, control_report, control_trace = _drive(sock_path + ".b", events)
        assert report["shards"] == control_report["shards"]
        assert trace["shards"] == control_trace["shards"]

        served = merge_shard_payloads(report["shards"])
        replayed = replay_applied(SCHEDULE, trace)
        assert served.cost == replayed.cost
        assert tuple(served.leases) == tuple(replayed.leases)
        assert served.detail["broker_stats"] == replayed.detail["broker_stats"]

    def test_clean_shutdown_snapshots_then_recovers_without_replay(
        self, sock_path
    ):
        """A clean shutdown snapshots every shard, so the next startup
        restores state from snapshots alone — zero WAL records — and
        still reports the same world."""
        events = _events(horizon=32, seed=3)
        wal_dir = sock_path + ".wal"

        _, report, trace = _drive(sock_path, events, wal_dir=wal_dir)
        recovered, report2, trace2 = _drive(
            sock_path, [], wal_dir=wal_dir
        )
        assert recovered == 0
        assert report2["shards"] == report["shards"]
        assert trace2["shards"] == trace["shards"]

    def test_periodic_snapshots_bound_the_replayed_tail(self, sock_path):
        """With snapshot_every=4 the WAL is repeatedly truncated, so a
        crash replays only the short tail since the last snapshot —
        never the whole history — and recovery still lands exactly."""
        events = _events(horizon=40, seed=7)
        wal_dir = sock_path + ".wal"

        _drive(sock_path, events, wal_dir=wal_dir, fsync="always",
               snapshot_every=4, crash=True)
        recovered, report, trace = _drive(
            sock_path, [], wal_dir=wal_dir, fsync="always", snapshot_every=4
        )
        # 3 shards x at most 3 un-snapshotted events each.
        assert 0 <= recovered < len(events)
        assert recovered <= 3 * 3

        _, control_report, _ = _drive(sock_path + ".b", events)
        assert report["shards"] == control_report["shards"]

    def test_batch_fsync_recovers_after_quiesce(self, sock_path):
        """fsync=batch flushes at dispatch-queue drain: once the stream
        has quiesced, even an abrupt death loses nothing."""
        events = _events(horizon=32, seed=5)
        wal_dir = sock_path + ".wal"

        async def drive_and_quiesce():
            server = _server(wal_dir=wal_dir, fsync="batch")
            await server.start_unix(sock_path)
            client = await AsyncLeaseClient.open_unix(sock_path)
            for event in events:
                await _apply(client, event)
            # All replies are in, so the queues have drained and the
            # drain-triggered flush has run; give the loop one beat.
            await asyncio.sleep(0.05)
            await client.close()

        asyncio.run(drive_and_quiesce())
        recovered, report, _ = _drive(sock_path, [], wal_dir=wal_dir)
        assert recovered > 0
        _, control_report, _ = _drive(sock_path + ".b", events)
        assert report["shards"] == control_report["shards"]


class TestRetryDedup:
    def test_retry_marked_resend_applies_exactly_once(self, sock_path):
        """The router's crash-retry contract: a retry=True resend of an
        already-applied mutation is answered from the applied log and
        the broker sees it once."""

        async def main():
            server = _server(wal_dir=sock_path + ".wal", fsync="always")
            await server.start_unix(sock_path)
            client = await AsyncLeaseClient.open_unix(sock_path)
            first = await client.acquire("t0", 0, 5)
            again = await client.call(
                "acquire", tenant="t0", resource=0, time=5, retry=True
            )
            report = await client.report()
            trace = await client.trace()
            await client.close()
            await server.shutdown()
            return first, again, report, trace

        first, again, report, trace = asyncio.run(main())
        assert again["applied_time"] == first["applied_time"]
        assert again["grant"] == first["grant"]
        # Exactly one acquire reached the brokers.
        applied = [
            payload
            for shard in trace["shards"]
            for payload in shard["events"]
        ]
        assert len(applied) == 1

    def test_unapplied_retry_applies_normally(self, sock_path):
        """A retry whose original never landed is not in the applied
        log, so it must apply for real — retries are at-least-once on
        the wire, exactly-once on the broker."""

        async def main():
            server = _server(wal_dir=sock_path + ".wal", fsync="always")
            await server.start_unix(sock_path)
            client = await AsyncLeaseClient.open_unix(sock_path)
            reply = await client.call(
                "acquire", tenant="t0", resource=1, time=2, retry=True
            )
            trace = await client.trace()
            await client.close()
            await server.shutdown()
            return reply, trace

        reply, trace = asyncio.run(main())
        assert reply["grant"] is not None
        applied = [
            payload
            for shard in trace["shards"]
            for payload in shard["events"]
        ]
        assert len(applied) == 1

    def test_retry_flag_is_inert_without_a_wal(self, sock_path):
        """No WAL means no dedup log; retry-marked frames are applied
        like any other traffic instead of crashing the server."""

        async def main():
            server = _server()
            await server.start_unix(sock_path)
            client = await AsyncLeaseClient.open_unix(sock_path)
            await client.acquire("t0", 0, 0)
            reply = await client.call(
                "acquire", tenant="t0", resource=0, time=0, retry=True
            )
            await client.close()
            await server.shutdown()
            return reply

        reply = asyncio.run(main())
        assert reply["grant"] is not None
