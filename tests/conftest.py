"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.core import LeaseSchedule
from repro.workloads import make_rng

# One moderate profile for all property tests: exhaustive enough to catch
# logic errors, fast enough that the suite stays interactive.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng():
    """A deterministic RNG; reseed inside tests when independence matters."""
    return make_rng(12345)


@pytest.fixture
def schedule2():
    """Two power-of-two lease types (lengths 1, 2)."""
    return LeaseSchedule.power_of_two(2)


@pytest.fixture
def schedule3():
    """Three power-of-two lease types (lengths 1, 2, 4)."""
    return LeaseSchedule.power_of_two(3)


@pytest.fixture
def schedule4():
    """Four power-of-two lease types (lengths 1, 2, 4, 8)."""
    return LeaseSchedule.power_of_two(4)


@pytest.fixture
def general_schedule():
    """A non-power-of-two schedule for interval-model reduction tests."""
    return LeaseSchedule.from_pairs([(3, 2.0), (7, 3.5), (25, 8.0)])
