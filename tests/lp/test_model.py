"""Unit tests for the covering-program builder."""

import pytest

from repro.errors import ModelError
from repro.lp import CoveringProgram


def small_program():
    program = CoveringProgram()
    a = program.add_variable(1.0, name="a")
    b = program.add_variable(2.0, name="b")
    c = program.add_variable(4.0, name="c")
    program.add_constraint({a: 1, b: 1}, rhs=1)
    program.add_constraint({b: 1, c: 1}, rhs=1)
    return program, (a, b, c)


class TestBuilder:
    def test_variable_indices_sequential(self):
        program, (a, b, c) = small_program()
        assert (a, b, c) == (0, 1, 2)
        assert program.num_variables == 3
        assert program.num_constraints == 2

    def test_rejects_negative_cost(self):
        program = CoveringProgram()
        with pytest.raises(ModelError):
            program.add_variable(-1.0)

    def test_rejects_negative_coefficient(self):
        program = CoveringProgram()
        v = program.add_variable(1.0)
        with pytest.raises(ModelError):
            program.add_constraint({v: -1.0}, rhs=1)

    def test_rejects_negative_rhs(self):
        program = CoveringProgram()
        v = program.add_variable(1.0)
        with pytest.raises(ModelError):
            program.add_constraint({v: 1.0}, rhs=-1)

    def test_rejects_unknown_variable(self):
        program = CoveringProgram()
        program.add_variable(1.0)
        with pytest.raises(ModelError):
            program.add_constraint({7: 1.0}, rhs=1)

    def test_rejects_unsatisfiable_row(self):
        program = CoveringProgram()
        v = program.add_variable(1.0)
        with pytest.raises(ModelError):
            program.add_constraint({v: 1.0}, rhs=2.0)

    def test_zero_coefficients_dropped(self):
        program = CoveringProgram()
        a = program.add_variable(1.0)
        b = program.add_variable(1.0)
        row = program.add_constraint({a: 0.0, b: 1.0}, rhs=1)
        assert program.constraints[row].terms == ((b, 1.0),)

    def test_payloads_recorded(self):
        program = CoveringProgram()
        program.add_variable(1.0, payload="lease-x")
        assert program.selected_payloads([1.0]) == ["lease-x"]
        assert program.selected_payloads([0.0]) == []


class TestEvaluation:
    def test_objective(self):
        program, _ = small_program()
        assert program.objective([1, 1, 0]) == 3.0

    def test_feasibility(self):
        program, _ = small_program()
        assert program.is_feasible([0, 1, 0])      # b covers both rows
        assert not program.is_feasible([1, 0, 0])  # a misses row 2
        assert program.is_feasible([1, 0, 1])

    def test_violated_rows(self):
        program, _ = small_program()
        assert program.violated_rows([1, 0, 0]) == [1]
        assert program.violated_rows([0, 0, 0]) == [0, 1]

    def test_fractional_feasibility(self):
        program, _ = small_program()
        assert program.is_feasible([0.5, 0.5, 0.5])
