"""Weak-duality checker tests (Theorem 2.3 machinery)."""

import pytest

from repro.lp import (
    CoveringProgram,
    check_duality,
    dual_column_slacks,
    dual_value,
)


def two_row_program():
    program = CoveringProgram()
    a = program.add_variable(3.0)
    b = program.add_variable(2.0)
    program.add_constraint({a: 1.0, b: 1.0}, rhs=1.0)
    program.add_constraint({b: 1.0}, rhs=1.0)
    return program


class TestDualValue:
    def test_weighted_by_rhs(self):
        program = CoveringProgram()
        v = program.add_variable(1.0)
        program.add_constraint({v: 2.0}, rhs=2.0)
        assert dual_value(program, [1.5]) == pytest.approx(3.0)


class TestColumnSlacks:
    def test_slack_computation(self):
        program = two_row_program()
        slacks = dual_column_slacks(program, [1.0, 1.0])
        # a participates in row 0 only: 3 - 1 = 2.
        # b participates in both rows: 2 - 2 = 0.
        assert slacks == pytest.approx([2.0, 0.0])


class TestCheckDuality:
    def test_valid_pair(self):
        program = two_row_program()
        report = check_duality(program, x=[0.0, 1.0], y=[0.0, 2.0])
        assert report.primal_feasible
        assert report.dual_feasible
        assert report.weak_duality_holds
        assert report.dual_value == pytest.approx(2.0)
        assert report.primal_value == pytest.approx(2.0)

    def test_infeasible_dual_detected(self):
        program = two_row_program()
        report = check_duality(program, x=[0.0, 1.0], y=[0.0, 5.0])
        assert not report.dual_feasible
        assert report.max_dual_violation == pytest.approx(3.0)
        assert not report.weak_duality_holds

    def test_infeasible_primal_detected(self):
        program = two_row_program()
        report = check_duality(program, x=[1.0, 0.0], y=[0.0, 0.0])
        assert not report.primal_feasible

    def test_negative_dual_rejected(self):
        program = two_row_program()
        report = check_duality(program, x=[0.0, 1.0], y=[-0.5, 0.0])
        assert not report.dual_feasible

    def test_weak_duality_gap(self):
        """Any feasible dual sits below any feasible primal (Theorem 2.3)."""
        program = two_row_program()
        for y in ([0.0, 0.0], [0.5, 0.5], [1.0, 1.0], [0.0, 2.0]):
            report = check_duality(program, x=[1.0, 1.0], y=list(y))
            if report.dual_feasible:
                assert report.dual_value <= report.primal_value + 1e-9
