"""The library must stay correct when scipy is unavailable.

The solver front-end promises a pure-Python fallback (branch and bound
for exact ILPs, dual ascent for LP lower bounds).  These tests flip the
``HAVE_SCIPY`` switch and verify the fallback paths produce the same
exact optima and valid brackets.
"""

import random

import pytest

from repro.lp import CoveringProgram, solve_ilp
from repro.lp import solver as solver_module
from repro.parking import make_instance, optimal_interval
from repro.core import LeaseSchedule


@pytest.fixture
def no_scipy(monkeypatch):
    monkeypatch.setattr(solver_module, "HAVE_SCIPY", False)


def random_program(seed, num_vars=7, num_rows=5):
    rng = random.Random(seed)
    program = CoveringProgram()
    for _ in range(num_vars):
        program.add_variable(cost=rng.uniform(0.5, 4.0))
    for _ in range(num_rows):
        support = rng.sample(range(num_vars), rng.randint(1, 3))
        program.add_constraint({v: 1.0 for v in support}, rhs=1)
    return program


class TestFallbackExactness:
    @pytest.mark.parametrize("seed", range(8))
    def test_branch_and_bound_matches_scipy_value(self, seed, monkeypatch):
        program = random_program(seed)
        with_scipy = solver_module.solve_ilp(program)
        monkeypatch.setattr(solver_module, "HAVE_SCIPY", False)
        without = solver_module.solve_ilp(program)
        assert without.method == "branch-and-bound"
        assert without.value == pytest.approx(with_scipy.value, abs=1e-6)

    def test_lp_fallback_is_valid_lower_bound(self, no_scipy):
        program = random_program(3)
        value, method = solver_module.lp_relaxation_value(program)
        assert method == "dual-ascent"
        exact = solve_ilp(program)
        assert value <= exact.value + 1e-9

    def test_opt_bounds_bracket_without_scipy(self, no_scipy):
        program = random_program(5, num_vars=10, num_rows=8)
        bounds = solver_module.opt_bounds(program, exact_variable_limit=1)
        assert not bounds.exact
        assert bounds.lower <= bounds.upper + 1e-9
        assert "dual-ascent" in bounds.method

    def test_parking_pipeline_without_scipy(self, no_scipy):
        """End to end: the parking ILP baseline still solves exactly."""
        schedule = LeaseSchedule.power_of_two(3)
        instance = make_instance(schedule, [0, 1, 4, 9, 10])
        solution = solver_module.solve_ilp(instance.to_covering_program())
        assert solution.value == pytest.approx(
            optimal_interval(instance).cost, abs=1e-6
        )
