"""Solver tests: exactness, agreement between backends, bound ordering."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.lp import (
    CoveringProgram,
    HAVE_SCIPY,
    dual_ascent_bound,
    greedy_cover,
    lp_relaxation_value,
    opt_bounds,
    solve_branch_and_bound,
    solve_ilp,
)


def random_covering_program(rng: random.Random, num_vars=8, num_rows=6):
    """A random feasible covering program with unit coefficients."""
    program = CoveringProgram()
    for _ in range(num_vars):
        program.add_variable(cost=rng.uniform(0.5, 5.0))
    for _ in range(num_rows):
        support = rng.sample(range(num_vars), rng.randint(1, 4))
        rhs = rng.randint(1, min(2, len(support)))
        program.add_constraint({v: 1.0 for v in support}, rhs=rhs)
    return program


class TestBranchAndBound:
    def test_simple_exact(self):
        program = CoveringProgram()
        a = program.add_variable(1.0)
        b = program.add_variable(2.0)
        c = program.add_variable(2.5)
        program.add_constraint({a: 1, c: 1}, rhs=1)
        program.add_constraint({b: 1, c: 1}, rhs=1)
        solution = solve_branch_and_bound(program)
        # Either {c} at 2.5 or {a, b} at 3.0: c wins.
        assert solution.value == pytest.approx(2.5)

    def test_multicover_rhs(self):
        program = CoveringProgram()
        variables = [program.add_variable(float(i + 1)) for i in range(4)]
        program.add_constraint({v: 1.0 for v in variables}, rhs=3)
        solution = solve_branch_and_bound(program)
        assert solution.value == pytest.approx(1 + 2 + 3)

    def test_node_budget_enforced(self):
        rng = random.Random(0)
        program = random_covering_program(rng, num_vars=14, num_rows=12)
        with pytest.raises(SolverError):
            solve_branch_and_bound(program, node_budget=1)

    @given(seed=st.integers(min_value=0, max_value=200))
    def test_agrees_with_scipy(self, seed):
        if not HAVE_SCIPY:
            pytest.skip("scipy unavailable")
        program = random_covering_program(random.Random(seed))
        ours = solve_branch_and_bound(program)
        scipy_solution = solve_ilp(program)
        assert ours.value == pytest.approx(scipy_solution.value, abs=1e-6)
        assert program.is_feasible(list(ours.x))


class TestGreedyCover:
    @given(seed=st.integers(min_value=0, max_value=200))
    def test_greedy_feasible_and_above_opt(self, seed):
        program = random_covering_program(random.Random(seed))
        x = greedy_cover(program)
        assert x is not None
        assert program.is_feasible(x)
        assert program.objective(x) >= solve_ilp(program).value - 1e-9


class TestDualAscent:
    @given(seed=st.integers(min_value=0, max_value=200))
    def test_lower_bounds_opt(self, seed):
        program = random_covering_program(random.Random(seed))
        bound = dual_ascent_bound(program, set(), set())
        assert bound <= solve_ilp(program).value + 1e-9

    def test_infinite_when_unsatisfiable_under_fixing(self):
        program = CoveringProgram()
        v = program.add_variable(1.0)
        program.add_constraint({v: 1.0}, rhs=1)
        assert dual_ascent_bound(program, set(), {v}) == float("inf")


class TestLpRelaxation:
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_sandwich(self, seed):
        """LP relaxation <= ILP <= greedy — the OPT sandwich invariant."""
        program = random_covering_program(random.Random(seed))
        lp_value, _ = lp_relaxation_value(program)
        ilp = solve_ilp(program)
        greedy_value = program.objective(greedy_cover(program))
        assert lp_value <= ilp.value + 1e-6
        assert ilp.value <= greedy_value + 1e-6


class TestOptBounds:
    def test_exact_for_small(self):
        program = CoveringProgram()
        a = program.add_variable(1.0)
        program.add_constraint({a: 1.0}, rhs=1)
        bounds = opt_bounds(program)
        assert bounds.exact
        assert bounds.lower == bounds.upper == pytest.approx(1.0)

    def test_bracketed_for_large(self):
        rng = random.Random(3)
        program = random_covering_program(rng, num_vars=10, num_rows=8)
        bounds = opt_bounds(program, exact_variable_limit=2)
        assert not bounds.exact
        assert bounds.lower <= bounds.upper + 1e-9

    def test_empty_program(self):
        bounds = opt_bounds(CoveringProgram())
        assert bounds.lower == bounds.upper == 0.0

    def test_no_variables_positive_demand_raises(self):
        """solve_ilp guards the degenerate empty-but-demanding program.

        The builder refuses impossible rows, so the row is injected
        directly to exercise the solver-side guard.
        """
        from repro.lp.model import Constraint

        program = CoveringProgram()
        program.constraints.append(
            Constraint(terms=(), rhs=1.0, name="impossible")
        )
        with pytest.raises(SolverError):
            solve_ilp(program)
