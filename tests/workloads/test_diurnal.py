"""Tests for the diurnal (sinusoidal) demand generator."""

import pytest

from repro.core import LeaseSchedule, run_online
from repro.errors import ModelError
from repro.parking import (
    DeterministicParkingPermit,
    make_instance,
    optimal_interval,
)
from repro.workloads import diurnal_days, make_rng


class TestDiurnalDays:
    def test_range_and_order(self):
        days = diurnal_days(200, 24, 0.9, 0.1, make_rng(0))
        assert days == sorted(set(days))
        assert all(0 <= d < 200 for d in days)

    def test_rejects_crossed_probabilities(self):
        with pytest.raises(ModelError):
            diurnal_days(100, 24, 0.1, 0.9, make_rng(0))

    def test_peak_phase_denser_than_trough_phase(self):
        """First half of each period (sin > 0) must carry more demand."""
        period = 40
        days = diurnal_days(4000, period, 0.95, 0.05, make_rng(3))
        peak = sum(1 for d in days if (d % period) < period // 2)
        trough = len(days) - peak
        assert peak > 2 * trough

    def test_zero_amplitude_is_bernoulli_like(self):
        days = diurnal_days(2000, 24, 0.3, 0.3, make_rng(1))
        rate = len(days) / 2000
        assert 0.25 < rate < 0.35

    def test_parking_algorithm_handles_diurnal_load(self):
        """End to end: the Theorem 2.7 bound holds on diurnal demand."""
        schedule = LeaseSchedule.power_of_two(4, cost_growth=1.6)
        days = diurnal_days(256, 32, 0.9, 0.02, make_rng(7))
        instance = make_instance(schedule, days)
        algorithm = DeterministicParkingPermit(schedule)
        run_online(algorithm, instance.rainy_days)
        assert instance.is_feasible_solution(list(algorithm.leases))
        opt = optimal_interval(instance).cost
        assert algorithm.cost <= schedule.num_types * opt + 1e-6
