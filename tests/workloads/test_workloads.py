"""Tests for workload generators: determinism, ranges, pattern shapes."""

import pytest

from repro.errors import ModelError
from repro.workloads import (
    bernoulli_days,
    burst_days,
    constant_batches,
    deadline_arrivals,
    element_arrivals,
    exponential_batches,
    make_rng,
    markov_days,
    nonincreasing_batches,
    poisson_like_batches,
    polynomial_batches,
    seasonal_days,
    sparse_days,
    spawn,
)


class TestRng:
    def test_seeded_reproducibility(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_spawn_independent_streams(self):
        parent = make_rng(1)
        a = spawn(parent, 1)
        b = spawn(parent, 2)
        assert a.random() != b.random()

    def test_spawn_deterministic(self):
        a = spawn(make_rng(3), 7).random()
        b = spawn(make_rng(3), 7).random()
        assert a == b


class TestWeather:
    def test_bernoulli_range_and_sorted(self):
        days = bernoulli_days(100, 0.3, make_rng(0))
        assert days == sorted(set(days))
        assert all(0 <= day < 100 for day in days)

    def test_bernoulli_extremes(self):
        assert bernoulli_days(10, 0.0, make_rng(0)) == []
        assert bernoulli_days(10, 1.0, make_rng(0)) == list(range(10))

    def test_bernoulli_rejects_bad_probability(self):
        with pytest.raises(ModelError):
            bernoulli_days(10, 1.5, make_rng(0))

    def test_markov_persistence_creates_runs(self):
        """High persistence must produce longer runs than iid at same rate."""
        rng = make_rng(42)
        persistent = markov_days(2000, 0.05, 0.95, rng)

        def mean_run_length(days):
            if not days:
                return 0.0
            runs, current = [], 1
            for a, b in zip(days, days[1:]):
                if b == a + 1:
                    current += 1
                else:
                    runs.append(current)
                    current = 1
            runs.append(current)
            return sum(runs) / len(runs)

        iid = bernoulli_days(2000, len(persistent) / 2000, make_rng(7))
        assert mean_run_length(persistent) > 2 * mean_run_length(iid)

    def test_seasonal_wet_seasons_denser(self):
        days = seasonal_days(400, 50, 0.8, 0.05, make_rng(3))
        wet = sum(1 for d in days if (d // 50) % 2 == 0)
        dry = len(days) - wet
        assert wet > 3 * dry

    def test_sparse_exact_count(self):
        days = sparse_days(100, 7, make_rng(1))
        assert len(days) == 7
        assert days == sorted(days)

    def test_sparse_count_validation(self):
        with pytest.raises(ModelError):
            sparse_days(5, 10, make_rng(0))

    def test_burst_days_solid_stretches(self):
        days = burst_days(200, 1, 10, make_rng(5))
        assert len(days) == 10
        assert days == list(range(days[0], days[0] + 10))


class TestBatches:
    def test_constant(self):
        assert constant_batches(4, 3) == [3, 3, 3, 3]

    def test_nonincreasing_is_nonincreasing(self):
        sizes = nonincreasing_batches(30, 20, make_rng(2))
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))

    def test_polynomial_growth(self):
        assert polynomial_batches(4, 2) == [1, 4, 9, 16]

    def test_exponential_growth(self):
        assert exponential_batches(5) == [1, 2, 4, 8, 16]

    def test_poisson_like_mean(self):
        sizes = poisson_like_batches(2000, 2.5, make_rng(9))
        mean = sum(sizes) / len(sizes)
        assert 2.2 < mean < 2.8


class TestArrivals:
    def test_deadline_arrivals_uniform_slack(self):
        clients = deadline_arrivals(
            50, 0.5, max_slack=9, rng=make_rng(0), uniform_slack=4
        )
        assert all(slack == 4 for _, slack in clients)

    def test_deadline_arrivals_slack_range(self):
        clients = deadline_arrivals(200, 0.5, max_slack=6, rng=make_rng(1))
        assert all(0 <= slack <= 6 for _, slack in clients)
        assert [t for t, _ in clients] == sorted(t for t, _ in clients)

    def test_element_arrivals_no_repeats_mode(self):
        demands = element_arrivals(
            50, 10, 0.8, make_rng(2), repeats_allowed=False
        )
        elements = [element for element, _, _ in demands]
        assert len(elements) == len(set(elements))

    def test_element_arrivals_coverage_range(self):
        demands = element_arrivals(
            40, 8, 1.0, make_rng(3), max_coverage=3
        )
        assert all(1 <= coverage <= 3 for _, _, coverage in demands)

    def test_element_arrivals_sorted_by_time(self):
        demands = element_arrivals(40, 8, 1.5, make_rng(4))
        times = [t for _, t, _ in demands]
        assert times == sorted(times)
