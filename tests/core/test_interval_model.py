"""Tests for the interval model and the Lemma 2.6 reduction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    IntervalModelReduction,
    LeaseSchedule,
    next_power_of_two,
    round_schedule,
    general_to_interval_cover,
    to_general_solution,
)
from repro.errors import ModelError
from repro.parking import (
    DeterministicParkingPermit,
    make_instance,
    optimal_general,
)
from repro.workloads import bernoulli_days, make_rng


class TestNextPowerOfTwo:
    @pytest.mark.parametrize(
        "value, expected",
        [(1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (17, 32), (1024, 1024)],
    )
    def test_values(self, value, expected):
        assert next_power_of_two(value) == expected

    def test_rejects_zero(self):
        with pytest.raises(ModelError):
            next_power_of_two(0)

    @given(n=st.integers(min_value=1, max_value=10**6))
    def test_is_power_and_tight(self, n):
        p = next_power_of_two(n)
        assert p >= n
        assert p & (p - 1) == 0
        assert p < 2 * n  # tightness: never more than double


class TestRoundSchedule:
    def test_rounds_lengths_up(self, general_schedule):
        rounded = round_schedule(general_schedule)
        assert [t.length for t in rounded] == [4, 8, 32]
        assert rounded.is_power_of_two()

    def test_costs_preserved(self, general_schedule):
        rounded = round_schedule(general_schedule)
        assert [t.cost for t in rounded] == [2.0, 3.5, 8.0]

    def test_collision_keeps_cheaper(self):
        schedule = LeaseSchedule.from_pairs([(3, 5.0), (4, 2.0)])
        rounded = round_schedule(schedule)
        assert rounded.num_types == 1
        assert rounded[0].length == 4
        assert rounded[0].cost == 2.0

    def test_original_type_tracking(self, general_schedule):
        rounded = round_schedule(general_schedule)
        assert rounded.original_type_of == (0, 1, 2)


class TestLemma26Reduction:
    """Empirical verification of the 4x bound (experiment E5's invariant)."""

    def test_forward_translation_doubles_cost(self, general_schedule):
        rounded = round_schedule(general_schedule)
        algorithm = DeterministicParkingPermit(rounded)
        for day in [0, 1, 5, 9, 30]:
            algorithm.on_demand(day)
        result = to_general_solution(
            general_schedule, rounded, list(algorithm.leases)
        )
        assert result.general_cost == pytest.approx(2 * result.interval_cost)
        assert len(result.general_leases) == 2 * len(result.interval_leases)

    def test_forward_translation_preserves_coverage(self, general_schedule):
        rounded = round_schedule(general_schedule)
        algorithm = DeterministicParkingPermit(rounded)
        days = [0, 1, 5, 9, 30, 31, 44]
        for day in days:
            algorithm.on_demand(day)
        result = to_general_solution(
            general_schedule, rounded, list(algorithm.leases)
        )
        for day in days:
            assert any(lease.covers(day) for lease in result.general_leases)

    def test_backward_cover_covers_general_solution(self, general_schedule):
        rounded = round_schedule(general_schedule)
        instance = make_instance(general_schedule, [0, 2, 9, 15, 26])
        general = optimal_general(instance)
        cover = general_to_interval_cover(
            general_schedule, rounded, list(general.leases)
        )
        # Each general lease's window is inside the union of its two covers.
        for lease in general.leases:
            for day in range(lease.start, lease.end):
                assert any(c.covers(day) for c in cover)

    def test_backward_cover_at_most_doubles(self, general_schedule):
        rounded = round_schedule(general_schedule)
        instance = make_instance(general_schedule, [0, 2, 9, 15, 26])
        general = optimal_general(instance)
        cover = general_to_interval_cover(
            general_schedule, rounded, list(general.leases)
        )
        cover_cost = sum(lease.cost for lease in cover)
        assert cover_cost <= 2 * general.cost + 1e-9

    @given(seed=st.integers(min_value=0, max_value=500))
    def test_end_to_end_factor_reasonable(self, seed):
        """Reduction output is feasible; cost within (4 * K) * OPT.

        Lemma 2.6 promises a factor 4 on top of the algorithm's own
        competitive factor (K for the deterministic algorithm), so the
        wrapped run must stay below 4K * OPT_general.
        """
        rng = make_rng(seed)
        schedule = LeaseSchedule.from_pairs([(3, 1.5), (10, 3.0), (21, 5.0)])
        days = bernoulli_days(60, 0.25, rng)
        if not days:
            return
        instance = make_instance(schedule, days)
        reduction = IntervalModelReduction(
            schedule, lambda rounded: DeterministicParkingPermit(rounded)
        )
        for day in instance.rainy_days:
            reduction.on_demand(day)
        assert instance.is_feasible_solution(list(reduction.leases))
        opt = optimal_general(instance).cost
        assert reduction.cost <= 4 * schedule.num_types * opt + 1e-6


class TestIntervalModelReductionWrapper:
    def test_cost_property_matches_result(self, general_schedule):
        reduction = IntervalModelReduction(
            general_schedule, lambda rounded: DeterministicParkingPermit(rounded)
        )
        reduction.on_demand(3)
        reduction.on_demand(11)
        assert reduction.cost == pytest.approx(reduction.result.general_cost)

    def test_translation_requires_round_schedule(self, general_schedule):
        other = LeaseSchedule.power_of_two(2)
        with pytest.raises(ModelError):
            to_general_solution(general_schedule, other, [])
