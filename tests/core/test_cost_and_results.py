"""Unit tests for CostLedger, RunResult, OptBounds and RatioReport."""

import pytest

from repro.core import CostLedger, OptBounds, RatioReport, RunResult


class TestCostLedger:
    def test_totals_by_category(self):
        ledger = CostLedger()
        ledger.add(0, "leasing", 5.0)
        ledger.add(1, "leasing", 2.0)
        ledger.add(1, "connection", 1.5)
        assert ledger.total == 8.5
        assert ledger.total_for("leasing") == 7.0
        assert ledger.total_for("connection") == 1.5
        assert ledger.by_category() == {"leasing": 7.0, "connection": 1.5}

    def test_rejects_negative_charge(self):
        ledger = CostLedger()
        with pytest.raises(ValueError):
            ledger.add(0, "leasing", -1.0)

    def test_cumulative_curve_sorted_and_running(self):
        ledger = CostLedger()
        ledger.add(5, "a", 1.0)
        ledger.add(2, "a", 2.0)
        ledger.add(5, "b", 3.0)
        assert ledger.cumulative_by_day() == [(2, 2.0), (5, 6.0)]

    def test_empty_ledger(self):
        ledger = CostLedger()
        assert ledger.total == 0.0
        assert ledger.cumulative_by_day() == []


class TestOptBounds:
    def test_exactly(self):
        opt = OptBounds.exactly(4.0, method="dp")
        assert opt.lower == opt.upper == 4.0
        assert opt.exact

    def test_rejects_crossed_bounds(self):
        with pytest.raises(ValueError):
            OptBounds(lower=5.0, upper=4.0)

    def test_bracket(self):
        opt = OptBounds(lower=3.0, upper=4.0, method="lp+greedy")
        assert not opt.exact


class TestRatioReport:
    def run(self, cost):
        return RunResult(algorithm="x", cost=cost, leases=(), num_demands=1)

    def test_exact_ratio(self):
        report = RatioReport(run=self.run(8.0), opt=OptBounds.exactly(4.0))
        assert report.ratio == pytest.approx(2.0)
        assert report.ratio_vs_lower == report.ratio_vs_upper

    def test_bracketed_ratio(self):
        report = RatioReport(
            run=self.run(8.0), opt=OptBounds(lower=2.0, upper=4.0)
        )
        assert report.ratio_vs_lower == pytest.approx(4.0)
        assert report.ratio_vs_upper == pytest.approx(2.0)

    def test_zero_opt_with_zero_cost(self):
        report = RatioReport(run=self.run(0.0), opt=OptBounds.exactly(0.0))
        assert report.ratio == 1.0

    def test_zero_opt_with_positive_cost(self):
        report = RatioReport(run=self.run(1.0), opt=OptBounds.exactly(0.0))
        assert report.ratio == float("inf")
