"""Unit tests for LeaseStore bookkeeping."""

from repro.core import Lease, LeaseStore


def lease(resource=0, type_index=0, start=0, length=4, cost=2.0):
    return Lease(
        resource=resource,
        type_index=type_index,
        start=start,
        length=length,
        cost=cost,
    )


class TestBuy:
    def test_buy_returns_true_for_new(self):
        store = LeaseStore()
        assert store.buy(lease()) is True

    def test_rebuy_is_free_noop(self):
        store = LeaseStore()
        store.buy(lease())
        assert store.buy(lease()) is False
        assert store.total_cost == 2.0
        assert len(store) == 1

    def test_buy_all_counts_new(self):
        store = LeaseStore()
        count = store.buy_all([lease(), lease(start=4), lease()])
        assert count == 2

    def test_total_cost_accumulates(self):
        store = LeaseStore()
        store.buy(lease(cost=2.0))
        store.buy(lease(resource=1, cost=3.5))
        assert store.total_cost == 5.5


class TestQueries:
    def test_covers_respects_resource(self):
        store = LeaseStore()
        store.buy(lease(resource=1, start=0, length=4))
        assert store.covers(1, 3)
        assert not store.covers(0, 3)
        assert not store.covers(1, 4)

    def test_covering_lists_active_leases(self):
        store = LeaseStore()
        a = lease(start=0, length=4)
        b = lease(type_index=1, start=0, length=8)
        store.buy(a)
        store.buy(b)
        assert set(l.key for l in store.covering(0, 2)) == {a.key, b.key}
        assert [l.key for l in store.covering(0, 6)] == [b.key]

    def test_covering_any_resource(self):
        store = LeaseStore()
        store.buy(lease(resource=0, start=0))
        store.buy(lease(resource=5, start=0))
        assert len(store.covering_any_resource(1)) == 2

    def test_resources_covering(self):
        store = LeaseStore()
        store.buy(lease(resource=0, start=0, length=2))
        store.buy(lease(resource=3, start=0, length=8))
        assert store.resources_covering(1) == {0, 3}
        assert store.resources_covering(5) == {3}

    def test_owns_exact_triple(self):
        store = LeaseStore()
        store.buy(lease(resource=2, type_index=1, start=8))
        assert store.owns(2, 1, 8)
        assert not store.owns(2, 1, 0)
        assert not store.owns(2, 0, 8)

    def test_intersecting_closed_interval(self):
        store = LeaseStore()
        store.buy(lease(start=10, length=5))  # covers [10, 15)
        assert store.intersecting(0, 14, 20)
        assert store.intersecting(0, 0, 10)
        assert not store.intersecting(0, 0, 9)
        assert not store.intersecting(0, 15, 20)

    def test_contains_by_key(self):
        store = LeaseStore()
        store.buy(lease(resource=1, type_index=0, start=4))
        assert (1, 0, 4) in store
        assert (1, 0, 8) not in store

    def test_iteration_preserves_purchase_order(self):
        store = LeaseStore()
        first = lease(start=0)
        second = lease(start=8)
        store.buy(first)
        store.buy(second)
        assert [l.key for l in store] == [first.key, second.key]
        assert store.leases == (first, second)

    def test_leases_since_is_incremental(self):
        store = LeaseStore()
        first = lease(start=0)
        store.buy(first)
        watermark = len(store)
        assert store.leases_since(0) == [first]
        second = lease(start=8)
        store.buy(second)
        assert store.leases_since(watermark) == [second]
        assert store.leases_since(len(store)) == []


class TestExpiryIndex:
    def test_earliest_expiry_tracks_min_end(self):
        store = LeaseStore()
        assert store.earliest_expiry is None
        store.buy(lease(start=4, length=8))   # ends 12
        store.buy(lease(start=0, length=4))   # ends 4
        assert store.earliest_expiry == 4

    def test_pop_expired_returns_each_lease_once_in_end_order(self):
        store = LeaseStore()
        short = lease(start=0, length=2)                 # ends 2
        medium = lease(type_index=1, start=0, length=4)  # ends 4
        long = lease(type_index=2, start=0, length=16)   # ends 16
        for item in (long, short, medium):
            store.buy(item)
        assert store.pop_expired(1) == []
        assert [l.key for l in store.pop_expired(4)] == [short.key, medium.key]
        assert store.pop_expired(4) == []  # already drained
        assert store.earliest_expiry == 16
        assert [l.key for l in store.pop_expired(100)] == [long.key]
        assert store.earliest_expiry is None
        # The purchase record itself is untouched.
        assert len(store) == 3

    def test_rebuy_does_not_duplicate_watch(self):
        store = LeaseStore()
        store.buy(lease(start=0, length=2))
        store.buy(lease(start=0, length=2))
        assert len(store.pop_expired(10)) == 1
