"""Model-based (stateful) testing of LeaseStore.

Hypothesis drives random buy/query sequences against both the real
:class:`LeaseStore` and a deliberately naive reference implementation
(a plain list with linear scans); any behavioural divergence — coverage,
ownership, totals, ordering — fails the run.  This is the strongest
guarantee we can give for the data structure every algorithm leans on.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import Lease, LeaseStore

resources = st.integers(min_value=0, max_value=3)
types = st.integers(min_value=0, max_value=2)
starts = st.integers(min_value=0, max_value=12)
lengths = st.sampled_from([1, 2, 4])
days = st.integers(min_value=0, max_value=20)


class _Reference:
    """The obviously-correct (and obviously slow) lease store."""

    def __init__(self):
        self.leases: list[Lease] = []

    def buy(self, lease: Lease) -> bool:
        if any(l.key == lease.key for l in self.leases):
            return False
        self.leases.append(lease)
        return True

    def total_cost(self) -> float:
        return sum(l.cost for l in self.leases)

    def covers(self, resource: int, t: int) -> bool:
        return any(
            l.resource == resource and l.start <= t < l.start + l.length
            for l in self.leases
        )

    def resources_covering(self, t: int) -> set[int]:
        return {
            l.resource
            for l in self.leases
            if l.start <= t < l.start + l.length
        }


class StoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = LeaseStore()
        self.reference = _Reference()

    @rule(
        resource=resources,
        type_index=types,
        start=starts,
        length=lengths,
        cost=st.floats(min_value=0.1, max_value=9.0, allow_nan=False),
    )
    def buy(self, resource, type_index, start, length, cost):
        lease = Lease(
            resource=resource,
            type_index=type_index,
            start=start,
            length=length,
            cost=cost,
        )
        assert self.store.buy(lease) == self.reference.buy(lease)

    @rule(resource=resources, t=days)
    def check_covers(self, resource, t):
        assert self.store.covers(resource, t) == self.reference.covers(
            resource, t
        )

    @rule(t=days)
    def check_resources_covering(self, t):
        assert (
            self.store.resources_covering(t)
            == self.reference.resources_covering(t)
        )

    @rule(resource=resources, type_index=types, start=starts)
    def check_owns(self, resource, type_index, start):
        expected = any(
            l.key == (resource, type_index, start)
            for l in self.reference.leases
        )
        assert self.store.owns(resource, type_index, start) == expected

    @invariant()
    def totals_agree(self):
        assert abs(
            self.store.total_cost - self.reference.total_cost()
        ) < 1e-9

    @invariant()
    def purchase_order_preserved(self):
        assert [l.key for l in self.store.leases] == [
            l.key for l in self.reference.leases
        ]


TestStoreStateful = StoreMachine.TestCase
TestStoreStateful.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
