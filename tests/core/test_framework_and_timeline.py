"""Tests for the Section 2.3 framework helpers and the run driver."""

import pytest

from repro.core import (
    Demand,
    LeaseSchedule,
    buy_forever_schedule,
    candidate_triples,
    infrastructure_lease,
    replay_prefixes,
    run_online,
)
from repro.errors import ModelError
from repro.parking import DeterministicParkingPermit


class TestBuyForeverSchedule:
    def test_single_type_spans_horizon(self):
        schedule = buy_forever_schedule(100, cost=7.0)
        assert schedule.num_types == 1
        assert schedule.lmax >= 100
        assert schedule[0].cost == 7.0

    def test_length_is_power_of_two(self):
        assert buy_forever_schedule(100, 1.0).is_power_of_two()

    def test_one_window_covers_everything(self):
        schedule = buy_forever_schedule(50, 1.0)
        starts = {schedule[0].aligned_start(t) for t in range(50)}
        assert starts == {0}

    def test_rejects_zero_horizon(self):
        with pytest.raises(ModelError):
            buy_forever_schedule(0, 1.0)


class TestInfrastructureLease:
    def test_cost_override(self, schedule3):
        lease = infrastructure_lease(schedule3, resource=4, type_index=1, t=5, cost=9.0)
        assert lease.resource == 4
        assert lease.cost == 9.0
        assert lease.covers(5)

    def test_candidate_triples_size(self, schedule3):
        triples = candidate_triples(
            schedule3, resources=[0, 1], t=3, cost_of=lambda r, k: 1.0
        )
        assert len(triples) == 2 * schedule3.num_types
        assert all(lease.covers(3) for lease in triples)


class TestDemand:
    def test_rejects_negative_arrival(self):
        with pytest.raises(ModelError):
            Demand(ident=0, arrival=-1)


class TestRunOnline:
    def test_runs_in_order_and_reports(self, schedule3):
        algorithm = DeterministicParkingPermit(schedule3)
        result = run_online(algorithm, [1, 2, 5])
        assert result.num_demands == 3
        assert result.cost == algorithm.cost
        assert result.algorithm == "DeterministicParkingPermit"

    def test_rejects_out_of_order_demands(self, schedule3):
        algorithm = DeterministicParkingPermit(schedule3)
        with pytest.raises(ModelError):
            run_online(algorithm, [5, 2])

    def test_custom_name(self, schedule3):
        result = run_online(
            DeterministicParkingPermit(schedule3), [0], name="det"
        )
        assert result.algorithm == "det"

    def test_replay_prefixes_monotone(self, schedule3):
        """Online cost is non-decreasing in the demand prefix."""
        days = [0, 3, 4, 9, 10, 11]
        costs = replay_prefixes(
            lambda: DeterministicParkingPermit(schedule3),
            days,
            range(len(days) + 1),
        )
        assert costs == sorted(costs)
        assert costs[0] == 0.0
