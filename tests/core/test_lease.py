"""Unit tests for the lease model (LeaseType, Lease, LeaseSchedule)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Lease, LeaseSchedule, LeaseType
from repro.errors import ModelError


class TestLeaseType:
    def test_basic_fields(self):
        lease_type = LeaseType(index=1, length=4, cost=3.0)
        assert lease_type.length == 4
        assert lease_type.cost == 3.0
        assert lease_type.cost_per_day == 0.75

    def test_rejects_zero_length(self):
        with pytest.raises(ModelError):
            LeaseType(index=0, length=0, cost=1.0)

    def test_rejects_negative_cost(self):
        with pytest.raises(ModelError):
            LeaseType(index=0, length=1, cost=-1.0)

    def test_rejects_zero_cost(self):
        with pytest.raises(ModelError):
            LeaseType(index=0, length=1, cost=0.0)

    def test_rejects_bool_length(self):
        with pytest.raises(ModelError):
            LeaseType(index=0, length=True, cost=1.0)

    @given(t=st.integers(min_value=0, max_value=10_000),
           length=st.integers(min_value=1, max_value=64))
    def test_aligned_start_covers_t(self, t, length):
        lease_type = LeaseType(index=0, length=length, cost=1.0)
        start = lease_type.aligned_start(t)
        assert start % length == 0
        assert start <= t < start + length


class TestLease:
    def test_covers_half_open(self):
        lease = Lease(resource=0, type_index=0, start=4, length=4, cost=1.0)
        assert not lease.covers(3)
        assert lease.covers(4)
        assert lease.covers(7)
        assert not lease.covers(8)

    def test_end_exclusive(self):
        lease = Lease(resource=0, type_index=1, start=2, length=3, cost=1.0)
        assert lease.end == 5

    def test_intersects_closed_interval(self):
        lease = Lease(resource=0, type_index=0, start=10, length=5, cost=1.0)
        assert lease.intersects(14, 20)
        assert lease.intersects(0, 10)
        assert not lease.intersects(0, 9)
        assert not lease.intersects(15, 20)

    def test_key_identity(self):
        lease = Lease(resource=3, type_index=1, start=8, length=2, cost=9.0)
        assert lease.key == (3, 1, 8)

    def test_rejects_zero_length(self):
        with pytest.raises(ModelError):
            Lease(resource=0, type_index=0, start=0, length=0, cost=1.0)


class TestLeaseSchedule:
    def test_from_pairs_assigns_indices(self):
        schedule = LeaseSchedule.from_pairs([(1, 1.0), (4, 2.0)])
        assert schedule[0].index == 0
        assert schedule[1].index == 1
        assert schedule.num_types == 2

    def test_requires_increasing_lengths(self):
        with pytest.raises(ModelError):
            LeaseSchedule.from_pairs([(4, 1.0), (2, 2.0)])

    def test_rejects_equal_lengths(self):
        with pytest.raises(ModelError):
            LeaseSchedule.from_pairs([(2, 1.0), (2, 2.0)])

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            LeaseSchedule([])

    def test_rejects_misindexed_types(self):
        types = [LeaseType(index=1, length=1, cost=1.0)]
        with pytest.raises(ModelError):
            LeaseSchedule(types)

    def test_lmin_lmax(self, schedule4):
        assert schedule4.lmin == 1
        assert schedule4.lmax == 8

    def test_power_of_two_factory(self):
        schedule = LeaseSchedule.power_of_two(5)
        assert [t.length for t in schedule] == [1, 2, 4, 8, 16]
        assert schedule.is_power_of_two()
        assert schedule.is_nested()

    def test_power_of_two_has_economies_of_scale(self):
        assert LeaseSchedule.power_of_two(4, cost_growth=1.8).has_economies_of_scale()

    def test_steep_cost_growth_breaks_economies(self):
        schedule = LeaseSchedule.power_of_two(3, cost_growth=2.5)
        assert not schedule.has_economies_of_scale()

    def test_meyerson_lower_bound_schedule(self):
        schedule = LeaseSchedule.meyerson_lower_bound(3)
        assert [t.cost for t in schedule] == [1.0, 2.0, 4.0]
        assert [t.length for t in schedule] == [1, 6, 36]

    def test_is_nested_non_power_of_two(self):
        schedule = LeaseSchedule.from_pairs([(3, 1.0), (9, 2.0)])
        assert schedule.is_nested()
        assert not schedule.is_power_of_two()

    def test_not_nested(self):
        schedule = LeaseSchedule.from_pairs([(2, 1.0), (5, 2.0)])
        assert not schedule.is_nested()

    def test_windows_covering_one_per_type(self, schedule4):
        windows = schedule4.windows_covering(13)
        assert len(windows) == 4
        for window in windows:
            assert window.covers(13)
            assert window.start % window.length == 0

    def test_windows_covering_types_distinct(self, schedule4):
        windows = schedule4.windows_covering(5)
        assert sorted(w.type_index for w in windows) == [0, 1, 2, 3]

    def test_windows_intersecting_counts(self, schedule4):
        # Interval [0, 7]: 8 windows of length 1, 4 of length 2, 2 of 4, 1 of 8.
        windows = schedule4.windows_intersecting(0, 7)
        by_type = {}
        for window in windows:
            by_type.setdefault(window.type_index, []).append(window)
        assert len(by_type[0]) == 8
        assert len(by_type[1]) == 4
        assert len(by_type[2]) == 2
        assert len(by_type[3]) == 1

    def test_windows_intersecting_rejects_empty_interval(self, schedule4):
        with pytest.raises(ModelError):
            schedule4.windows_intersecting(5, 4)

    @given(first=st.integers(min_value=0, max_value=200),
           width=st.integers(min_value=0, max_value=50))
    def test_windows_intersecting_all_intersect(self, first, width):
        schedule = LeaseSchedule.power_of_two(3)
        last = first + width
        for window in schedule.windows_intersecting(first, last):
            assert window.intersects(first, last)

    @given(first=st.integers(min_value=0, max_value=200),
           width=st.integers(min_value=0, max_value=50))
    def test_windows_intersecting_complete(self, first, width):
        """Every aligned window meeting the interval is enumerated."""
        schedule = LeaseSchedule.power_of_two(3)
        last = first + width
        enumerated = {
            (w.type_index, w.start)
            for w in schedule.windows_intersecting(first, last)
        }
        for lease_type in schedule:
            start = 0
            while start <= last:
                if start + lease_type.length > first:
                    assert (lease_type.index, start) in enumerated
                start += lease_type.length

    def test_max_windows_per_interval_bound(self, schedule4):
        # Theorem 5.3's counting: sum ceil(d/l_k) + K candidates.
        bound = schedule4.max_windows_per_interval(8)
        actual = len(schedule4.windows_intersecting(0, 8))
        assert actual <= bound

    def test_equality_and_hash(self):
        a = LeaseSchedule.power_of_two(3)
        b = LeaseSchedule.power_of_two(3)
        assert a == b
        assert hash(a) == hash(b)

    def test_repr_mentions_pairs(self):
        assert "(1, 1)" in repr(LeaseSchedule.power_of_two(1))
