"""Columnar lease payloads: pack/view round-trip, tuple-compatible
equality, and the shared-memory transport handshake."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Lease, LeaseView, claim_payload, pack_leases, share_payload
from repro.core.leasebuf import LEASE_RECORD_SIZE
from repro.errors import ModelError

LEASES = (
    Lease(resource=0, type_index=0, start=0, length=1, cost=1.0),
    Lease(resource=3, type_index=2, start=16, length=4, cost=3.4),
    Lease(resource=7, type_index=1, start=100, length=64, cost=12.25),
)


class TestPackRoundTrip:
    def test_round_trip(self):
        view = LeaseView(pack_leases(LEASES))
        assert len(view) == 3
        assert tuple(view) == LEASES
        assert view.to_tuple() == LEASES

    def test_empty(self):
        view = LeaseView(pack_leases(()))
        assert len(view) == 0
        assert tuple(view) == ()
        assert view == ()

    def test_indexing(self):
        view = LeaseView(pack_leases(LEASES))
        assert view[0] == LEASES[0]
        assert view[-1] == LEASES[-1]
        assert view[1:] == LEASES[1:]
        with pytest.raises(IndexError):
            view[3]

    def test_payload_size(self):
        view = LeaseView(pack_leases(LEASES))
        assert view.nbytes == len(view.payload)
        assert view.nbytes >= 3 * LEASE_RECORD_SIZE

    def test_corrupt_payload_rejected(self):
        payload = pack_leases(LEASES)
        with pytest.raises(ModelError):
            LeaseView(payload[:-1])  # truncated
        with pytest.raises(ModelError):
            LeaseView(b"nope" + payload[4:])  # bad magic
        with pytest.raises(ModelError):
            LeaseView(b"")


class TestTupleSemantics:
    def test_equality_both_directions(self):
        view = LeaseView(pack_leases(LEASES))
        assert view == LEASES
        assert LEASES == view
        assert view != LEASES[:-1]
        assert view == LeaseView(pack_leases(LEASES))

    def test_hash_matches_tuple(self):
        view = LeaseView(pack_leases(LEASES))
        assert hash(view) == hash(LEASES)
        assert len({view, LEASES}) == 1


lease_strategy = st.builds(
    Lease,
    resource=st.integers(min_value=0, max_value=10_000),
    type_index=st.integers(min_value=0, max_value=16),
    start=st.integers(min_value=0, max_value=10**9),
    length=st.integers(min_value=1, max_value=10**6),
    cost=st.floats(
        min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
)


@given(st.lists(lease_strategy, max_size=40))
def test_pack_round_trips_exactly(leases):
    view = LeaseView(pack_leases(leases))
    assert list(view) == leases
    assert view == tuple(leases)


class TestSharedMemoryTransport:
    def test_share_and_claim(self):
        payload = pack_leases(LEASES)
        try:
            name, size = share_payload(payload)
        except OSError:  # pragma: no cover - no /dev/shm in this sandbox
            pytest.skip("shared memory unavailable")
        assert size == len(payload)
        assert claim_payload(name, size) == payload
        # The segment is unlinked after the claim: a second attach fails.
        with pytest.raises(FileNotFoundError):
            claim_payload(name, size)

    def test_share_empty_payload(self):
        try:
            name, size = share_payload(b"")
        except OSError:  # pragma: no cover - no /dev/shm in this sandbox
            pytest.skip("shared memory unavailable")
        assert size == 0
        assert claim_payload(name, size) == b""
