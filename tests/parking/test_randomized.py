"""Tests for Algorithm 2 (randomized parking permit) and its fractional core."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import LeaseSchedule, run_online
from repro.analysis import expected_ratio
from repro.parking import (
    FractionalParkingPermit,
    RandomizedParkingPermit,
    make_instance,
    optimal_interval,
)

day_sets = st.lists(
    st.integers(min_value=0, max_value=60), min_size=1, max_size=20
)


class TestFractional:
    def test_first_client_reaches_unit_coverage(self, schedule3):
        fractional = FractionalParkingPermit(schedule3)
        fractional.on_demand(5)
        assert fractional.candidate_sum(5) >= 1.0

    def test_no_increment_when_already_covered(self, schedule3):
        fractional = FractionalParkingPermit(schedule3)
        fractional.on_demand(5)
        increments = fractional.increments
        fractional.on_demand(5)
        assert fractional.increments == increments

    def test_fractions_nondecreasing(self, schedule3):
        fractional = FractionalParkingPermit(schedule3)
        fractional.on_demand(0)
        snapshot = dict(fractional.fractions)
        fractional.on_demand(1)
        for key, value in snapshot.items():
            assert fractional.fractions[key] >= value - 1e-12

    @given(days=day_sets)
    def test_fractional_cost_logK_bound(self, days):
        """Section 2.2.3(i): fractional cost = O(log K) * OPT.

        Each increment adds at most 2 to the fractional cost and at most
        O(c_opt log K) increments charge to each optimal lease; with the
        explicit constants the bound 2 * (c + 1) * (log2 K + 3) per
        optimal-lease-cost unit is safe for power-of-two schedules.
        """
        schedule = LeaseSchedule.power_of_two(4)
        instance = make_instance(schedule, days)
        fractional = FractionalParkingPermit(schedule)
        run_online(fractional, instance.rainy_days)
        opt = optimal_interval(instance).cost
        K = schedule.num_types
        bound = 2.0 * (math.log2(K) + 3.0) * (opt + schedule[0].cost)
        assert fractional.cost <= bound + 1e-6

    @given(days=day_sets)
    def test_increment_count_bound(self, days):
        """Total increments are O(OPT * log K) with explicit constants."""
        schedule = LeaseSchedule.power_of_two(3)
        instance = make_instance(schedule, days)
        fractional = FractionalParkingPermit(schedule)
        run_online(fractional, instance.rainy_days)
        opt = optimal_interval(instance).cost
        K = schedule.num_types
        # Each increment adds ~[1,2] fractional cost; fractional cost is
        # O(log K) OPT, so increments <= 2 (log2 K + 3)(OPT + c_min).
        bound = 2.0 * (math.log2(K) + 3.0) * (opt + schedule[0].cost)
        assert fractional.increments <= bound + 1e-6


class TestRandomized:
    @given(days=day_sets, seed=st.integers(min_value=0, max_value=50))
    def test_feasibility_for_any_seed(self, days, seed):
        schedule = LeaseSchedule.power_of_two(3)
        instance = make_instance(schedule, days)
        algorithm = RandomizedParkingPermit(schedule, seed=seed)
        run_online(algorithm, instance.rainy_days)
        assert instance.is_feasible_solution(list(algorithm.leases))

    def test_reproducible_given_seed(self, schedule3):
        days = [0, 1, 4, 9, 10]
        costs = set()
        for _ in range(3):
            algorithm = RandomizedParkingPermit(schedule3, seed=7)
            run_online(algorithm, days)
            costs.add(round(algorithm.cost, 9))
        assert len(costs) == 1

    def test_tau_in_unit_interval(self, schedule3):
        for seed in range(30):
            algorithm = RandomizedParkingPermit(schedule3, seed=seed)
            assert 0.0 < algorithm.tau <= 1.0

    def test_buys_single_lease_per_uncovered_day(self, schedule3):
        algorithm = RandomizedParkingPermit(schedule3, seed=1)
        algorithm.on_demand(0)
        assert len(algorithm.leases) >= 1
        assert algorithm.covers(0)

    def test_expected_cost_tracks_fractional(self, schedule4):
        """E[integer cost] stays within a small factor of fractional cost.

        Section 2.2.3(ii) proves E[int] <= frac; empirically the mean over
        seeds should not exceed the fractional cost by more than small
        noise (we allow 1.5x for 40 seeds).
        """
        days = [0, 1, 2, 3, 8, 9, 20, 33, 34, 35]
        fractional_cost = None
        costs = []
        for seed in range(40):
            algorithm = RandomizedParkingPermit(schedule4, seed=seed)
            run_online(algorithm, days)
            costs.append(algorithm.cost)
            fractional_cost = algorithm.fractional_cost
        mean = sum(costs) / len(costs)
        assert mean <= 1.5 * fractional_cost + 1e-6

    def test_expected_ratio_close_to_logK_not_K(self, schedule4):
        """On a bursty workload the randomized mean beats the K bound."""
        days = sorted(
            set(
                list(range(0, 8))
                + list(range(16, 20))
                + [30, 40, 41, 42, 43, 44]
            )
        )
        instance = make_instance(schedule4, days)
        opt = optimal_interval(instance).cost

        def run_with_seed(seed):
            algorithm = RandomizedParkingPermit(schedule4, seed=seed)
            run_online(algorithm, days)
            return algorithm.cost

        summary = expected_ratio(run_with_seed, opt, seeds=range(30))
        assert summary.mean <= schedule4.num_types + 1e-9
