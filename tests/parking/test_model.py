"""Unit tests for the parking permit instance model."""

import pytest

from repro.errors import ModelError
from repro.lp import solve_ilp
from repro.parking import ParkingPermitInstance, make_instance


class TestConstruction:
    def test_make_instance_sorts_and_dedupes(self, schedule3):
        instance = make_instance(schedule3, [5, 1, 5, 3])
        assert instance.rainy_days == (1, 3, 5)

    def test_rejects_negative_day(self, schedule3):
        with pytest.raises(ModelError):
            ParkingPermitInstance(schedule=schedule3, rainy_days=(-1,))

    def test_rejects_unsorted(self, schedule3):
        with pytest.raises(ModelError):
            ParkingPermitInstance(schedule=schedule3, rainy_days=(3, 1))

    def test_rejects_duplicates(self, schedule3):
        with pytest.raises(ModelError):
            ParkingPermitInstance(schedule=schedule3, rainy_days=(1, 1))

    def test_empty_instance(self, schedule3):
        instance = make_instance(schedule3, [])
        assert instance.num_days == 0
        assert instance.horizon == 0

    def test_horizon(self, schedule3):
        assert make_instance(schedule3, [0, 7]).horizon == 8


class TestCandidates:
    def test_one_candidate_per_type(self, schedule4):
        instance = make_instance(schedule4, [5])
        candidates = instance.candidates(5)
        assert len(candidates) == 4
        assert all(lease.covers(5) for lease in candidates)


class TestFeasibility:
    def test_feasible_and_infeasible(self, schedule3):
        instance = make_instance(schedule3, [0, 3])
        good = instance.candidates(0) + instance.candidates(3)
        assert instance.is_feasible_solution(good)
        assert not instance.is_feasible_solution(instance.candidates(0)[:1])


class TestCoveringProgram:
    def test_one_row_per_day(self, schedule3):
        instance = make_instance(schedule3, [0, 1, 9])
        program = instance.to_covering_program()
        assert program.num_constraints == 3

    def test_windows_shared_across_days(self, schedule3):
        # Days 0 and 1 share the length-2 window [0,2) and length-4 [0,4).
        instance = make_instance(schedule3, [0, 1])
        program = instance.to_covering_program()
        # 2 length-1 windows + 1 length-2 + 1 length-4 = 4 variables.
        assert program.num_variables == 4

    def test_ilp_solution_is_feasible_lease_set(self, schedule3):
        instance = make_instance(schedule3, [0, 1, 2, 9])
        program = instance.to_covering_program()
        solution = solve_ilp(program)
        leases = program.selected_payloads(list(solution.x))
        assert instance.is_feasible_solution(leases)

    def test_with_days_rebuilds(self, schedule3):
        instance = make_instance(schedule3, [0])
        other = instance.with_days([4, 2])
        assert other.rainy_days == (2, 4)
        assert other.schedule is schedule3
