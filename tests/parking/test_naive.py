"""Tests for the naive strawman policies (E14 baselines)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import LeaseSchedule, run_online
from repro.parking import (
    AlwaysLongest,
    AlwaysShortest,
    DeterministicParkingPermit,
    RentThenBuy,
    make_instance,
    optimal_interval,
)

day_sets = st.lists(
    st.integers(min_value=0, max_value=50), min_size=1, max_size=15
)


@pytest.mark.parametrize(
    "policy_class", [AlwaysShortest, AlwaysLongest, RentThenBuy]
)
class TestAllPolicies:
    @given(days=day_sets)
    def test_feasible(self, policy_class, days):
        schedule = LeaseSchedule.power_of_two(3)
        instance = make_instance(schedule, days)
        policy = policy_class(schedule)
        run_online(policy, instance.rainy_days)
        assert instance.is_feasible_solution(list(policy.leases))

    def test_idempotent_on_covered_days(self, policy_class, schedule3):
        policy = policy_class(schedule3)
        policy.on_demand(0)
        cost = policy.cost
        policy.on_demand(0)
        assert policy.cost == cost


class TestFailureModes:
    def test_always_shortest_loses_on_dense_demand(self):
        """Dense rain: renting daily pays ~lmax while one lease suffices."""
        schedule = LeaseSchedule.power_of_two(4, cost_growth=1.3)
        days = list(range(16))
        shortest = AlwaysShortest(schedule)
        run_online(shortest, days)
        instance = make_instance(schedule, days)
        opt = optimal_interval(instance).cost
        assert shortest.cost > 2.0 * opt

    def test_always_longest_loses_on_sparse_demand(self):
        """Isolated rainy days: buying 8-day leases wastes most of each."""
        schedule = LeaseSchedule.power_of_two(4, cost_growth=1.3)
        days = [0, 20, 40, 60]
        longest = AlwaysLongest(schedule)
        run_online(longest, days)
        instance = make_instance(schedule, days)
        opt = optimal_interval(instance).cost
        assert longest.cost > 2.0 * opt

    def test_primal_dual_avoids_both_failure_modes(self):
        """Algorithm 1 beats each strawman on that strawman's bad workload.

        The schedule balances the two failure modes: cost ratio
        c_K / c_1 = sqrt(l_max), so daily renting over a dense window and
        long-leasing isolated days are both ~4x wasteful.
        """
        schedule = LeaseSchedule.power_of_two(5, cost_growth=2 ** 0.5)
        dense = list(range(16))
        sparse = [100, 200, 300, 400]

        def cost_of(policy, days):
            run_online(policy, days)
            return policy.cost

        # Dense window: AlwaysShortest pays per day; primal-dual ratchets
        # up to the long lease.
        pd_dense = cost_of(DeterministicParkingPermit(schedule), dense)
        shortest_dense = cost_of(AlwaysShortest(schedule), dense)
        assert pd_dense < shortest_dense

        # Isolated days: AlwaysLongest wastes whole long leases;
        # primal-dual buys singles.
        pd_sparse = cost_of(DeterministicParkingPermit(schedule), sparse)
        longest_sparse = cost_of(AlwaysLongest(schedule), sparse)
        assert pd_sparse < longest_sparse

        # And the theorem bound holds on the combined stream.
        days = dense + sparse
        instance = make_instance(schedule, days)
        opt = optimal_interval(instance).cost
        combined = cost_of(DeterministicParkingPermit(schedule), days)
        assert combined <= schedule.num_types * opt + 1e-6


class TestRentThenBuy:
    def test_buys_long_lease_after_enough_rent(self):
        schedule = LeaseSchedule.from_pairs([(1, 1.0), (8, 3.0)])
        policy = RentThenBuy(schedule)
        for day in range(5):
            policy.on_demand(day)
        # Rents twice (cost 2), then 2 + 1 >= 3 triggers the buy.
        types = [lease.type_index for lease in policy.leases]
        assert types.count(1) == 1
        assert policy.cost == pytest.approx(2 * 1.0 + 3.0)

    def test_within_classic_ski_rental_factor(self):
        schedule = LeaseSchedule.from_pairs([(1, 1.0), (32, 10.0)])
        days = list(range(32))
        instance = make_instance(schedule, days)
        policy = RentThenBuy(schedule)
        run_online(policy, days)
        opt = optimal_interval(instance).cost
        # rent-then-buy is 2-competitive against the rent/buy optimum.
        assert policy.cost <= 2.0 * opt + schedule[0].cost + 1e-6
