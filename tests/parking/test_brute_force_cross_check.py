"""A third, independent optimum solver: exhaustive window enumeration.

The interval DP and the ILP already cross-check each other; this adds a
brute-force enumerator over *all subsets* of candidate windows for tiny
instances, closing the loop: if all three agree everywhere hypothesis
looks, a shared blind spot is very unlikely.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LeaseSchedule, run_online
from repro.parking import (
    DeterministicParkingPermit,
    make_instance,
    optimal_general,
    optimal_interval,
)

tiny_days = st.lists(
    st.integers(min_value=0, max_value=7), min_size=1, max_size=6
)


def brute_force_interval_opt(instance) -> float:
    """True optimum by trying every subset of demand-relevant windows."""
    windows = {}
    for day in instance.rainy_days:
        for lease in instance.candidates(day):
            windows[lease.key] = lease
    window_list = list(windows.values())
    best = float("inf")
    for size in range(len(window_list) + 1):
        for subset in itertools.combinations(window_list, size):
            cost = sum(lease.cost for lease in subset)
            if cost >= best:
                continue
            if instance.is_feasible_solution(list(subset)):
                best = cost
    return best


class TestThreeSolverAgreement:
    @given(days=tiny_days)
    @settings(max_examples=30)
    def test_dp_matches_brute_force(self, days):
        schedule = LeaseSchedule.power_of_two(2, cost_growth=1.6)
        instance = make_instance(schedule, days)
        assert abs(
            optimal_interval(instance).cost
            - brute_force_interval_opt(instance)
        ) < 1e-9

    @given(days=tiny_days)
    @settings(max_examples=20)
    def test_general_dp_never_above_brute_force(self, days):
        """The general model allows arbitrary starts, so its optimum can
        only be at most the interval brute force value."""
        schedule = LeaseSchedule.power_of_two(2, cost_growth=1.6)
        instance = make_instance(schedule, days)
        assert (
            optimal_general(instance).cost
            <= brute_force_interval_opt(instance) + 1e-9
        )

    @given(days=tiny_days)
    @settings(max_examples=20)
    def test_online_bound_against_brute_force(self, days):
        """Theorem 2.7 checked against the most trustworthy optimum."""
        schedule = LeaseSchedule.power_of_two(2, cost_growth=1.6)
        instance = make_instance(schedule, days)
        algorithm = DeterministicParkingPermit(schedule)
        run_online(algorithm, instance.rainy_days)
        opt = brute_force_interval_opt(instance)
        assert algorithm.cost <= schedule.num_types * opt + 1e-6
