"""Exact offline solvers: DP correctness and cross-validation against ILP."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import LeaseSchedule
from repro.errors import ModelError
from repro.lp import solve_ilp
from repro.parking import (
    make_instance,
    optimal_general,
    optimal_interval,
    optimal_interval_cost,
)

day_sets = st.lists(
    st.integers(min_value=0, max_value=80), min_size=0, max_size=25
)


class TestOptimalGeneral:
    def test_empty(self, schedule3):
        assert optimal_general(make_instance(schedule3, [])).cost == 0.0

    def test_single_day_buys_cheapest(self, schedule3):
        solution = optimal_general(make_instance(schedule3, [7]))
        assert solution.cost == pytest.approx(schedule3[0].cost)

    def test_dense_block_prefers_long_lease(self):
        schedule = LeaseSchedule.power_of_two(3, cost_growth=1.5)
        # 4 consecutive days: one length-4 lease at 2.25 beats 4 singles at 4.
        solution = optimal_general(make_instance(schedule, [0, 1, 2, 3]))
        assert solution.cost == pytest.approx(schedule[2].cost)

    def test_general_leases_start_on_rainy_days(self, schedule3):
        instance = make_instance(schedule3, [3, 4, 11])
        solution = optimal_general(instance)
        rainy = set(instance.rainy_days)
        assert all(lease.start in rainy for lease in solution.leases)

    @given(days=day_sets)
    def test_solution_is_feasible(self, days):
        schedule = LeaseSchedule.power_of_two(3)
        instance = make_instance(schedule, days)
        solution = optimal_general(instance)
        assert instance.is_feasible_solution(list(solution.leases))
        assert solution.cost == pytest.approx(
            sum(lease.cost for lease in solution.leases)
        )


class TestOptimalInterval:
    def test_requires_nested_lengths(self):
        schedule = LeaseSchedule.from_pairs([(2, 1.0), (5, 2.0)])
        with pytest.raises(ModelError):
            optimal_interval(make_instance(schedule, [0]))

    def test_empty(self, schedule3):
        assert optimal_interval(make_instance(schedule3, [])).cost == 0.0

    @given(days=day_sets)
    def test_matches_ilp_exactly(self, days):
        """Two independent exact solvers must agree (interval model)."""
        schedule = LeaseSchedule.power_of_two(3)
        instance = make_instance(schedule, days)
        dp_cost = optimal_interval(instance).cost
        ilp = solve_ilp(instance.to_covering_program())
        assert dp_cost == pytest.approx(ilp.value, abs=1e-6)

    @given(days=day_sets)
    def test_interval_at_least_general(self, days):
        """Restricting starts to aligned positions can only cost more."""
        schedule = LeaseSchedule.power_of_two(3)
        instance = make_instance(schedule, days)
        assert (
            optimal_general(instance).cost
            <= optimal_interval(instance).cost + 1e-9
        )

    @given(days=day_sets)
    def test_interval_within_double_of_general(self, days):
        """Lemma 2.6 backward direction: OPT_interval <= 2 OPT_general."""
        schedule = LeaseSchedule.power_of_two(3)
        instance = make_instance(schedule, days)
        assert (
            optimal_interval(instance).cost
            <= 2 * optimal_general(instance).cost + 1e-9
        )

    @given(days=day_sets)
    def test_solution_leases_match_cost(self, days):
        schedule = LeaseSchedule.power_of_two(4)
        instance = make_instance(schedule, days)
        solution = optimal_interval(instance)
        assert instance.is_feasible_solution(list(solution.leases))
        assert solution.cost == pytest.approx(
            sum(lease.cost for lease in solution.leases)
        )

    def test_cost_shortcut(self, schedule3):
        instance = make_instance(schedule3, [0, 1, 5])
        assert optimal_interval_cost(instance) == pytest.approx(
            optimal_interval(instance).cost
        )


class TestMonotonicity:
    @given(days=day_sets, extra=st.integers(min_value=0, max_value=80))
    def test_opt_monotone_in_demands(self, days, extra):
        """Adding a rainy day never decreases the offline optimum."""
        schedule = LeaseSchedule.power_of_two(3)
        base = make_instance(schedule, days)
        grown = make_instance(schedule, list(days) + [extra])
        assert (
            optimal_general(base).cost
            <= optimal_general(grown).cost + 1e-9
        )
