"""Tests for Algorithm 1 (deterministic primal-dual parking permit)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import LeaseSchedule, run_online
from repro.lp import check_duality
from repro.parking import (
    DeterministicParkingPermit,
    make_instance,
    optimal_interval,
)

day_sets = st.lists(
    st.integers(min_value=0, max_value=60), min_size=1, max_size=20
)


def run_on(schedule, days):
    instance = make_instance(schedule, days)
    algorithm = DeterministicParkingPermit(schedule)
    run_online(algorithm, instance.rainy_days)
    return instance, algorithm


class TestBehaviour:
    def test_first_client_buys_cheapest_tight_lease(self, schedule3):
        _, algorithm = run_on(schedule3, [0])
        # Dual rises to the cheapest candidate cost; exactly it goes tight.
        assert algorithm.cost == pytest.approx(schedule3[0].cost)
        assert algorithm.duals[0] == pytest.approx(schedule3[0].cost)

    def test_covered_day_costs_nothing_extra(self, schedule3):
        instance, algorithm = run_on(schedule3, [0])
        cost_before = algorithm.cost
        algorithm.on_demand(0)  # duplicate arrival
        assert algorithm.cost == cost_before

    def test_accumulated_duals_eventually_buy_longer_lease(self):
        # Equal-cost types: one client should tighten all candidates at once.
        schedule = LeaseSchedule.from_pairs([(1, 1.0), (2, 1.0), (4, 1.0)])
        _, algorithm = run_on(schedule, [0])
        assert algorithm.cost == pytest.approx(3.0)
        assert len(algorithm.leases) == 3

    def test_repeated_days_in_same_window_trigger_upgrade(self):
        schedule = LeaseSchedule.from_pairs([(1, 1.0), (4, 2.0)])
        instance, algorithm = run_on(schedule, [0, 1])
        # Day 0: dual 1 buys [0,1) and contributes 1 to window [0,4).
        # Day 1: slack of [0,4) is 1, slack of [1,2) is 1 -> both tight.
        assert instance.is_feasible_solution(list(algorithm.leases))
        assert algorithm.covers(2)  # long lease bought
        assert algorithm.cost == pytest.approx(1.0 + 1.0 + 2.0)

    def test_covers_query(self, schedule3):
        _, algorithm = run_on(schedule3, [4])
        assert algorithm.covers(4)
        assert not algorithm.covers(5)


class TestInvariants:
    @given(days=day_sets)
    def test_feasibility(self, days):
        schedule = LeaseSchedule.power_of_two(3)
        instance, algorithm = run_on(schedule, days)
        assert instance.is_feasible_solution(list(algorithm.leases))

    @given(days=day_sets)
    def test_theorem_2_7_bound(self, days):
        """ALG <= K * OPT_interval (Theorem 2.7, exact constant)."""
        schedule = LeaseSchedule.power_of_two(4)
        instance, algorithm = run_on(schedule, days)
        opt = optimal_interval(instance).cost
        assert algorithm.cost <= schedule.num_types * opt + 1e-6

    @given(days=day_sets)
    def test_dual_is_feasible_and_weak_duality_holds(self, days):
        """The constructed dual never violates Figure 2.2's constraints."""
        schedule = LeaseSchedule.power_of_two(3)
        instance, algorithm = run_on(schedule, days)
        program = instance.to_covering_program()
        owned = {lease.key for lease in algorithm.leases}
        x = [
            1.0 if payload.key in owned else 0.0
            for payload in program.payloads
        ]
        y = [algorithm.duals.get(day, 0.0) for day in instance.rainy_days]
        report = check_duality(program, x, y)
        assert report.primal_feasible
        assert report.dual_feasible
        assert report.weak_duality_holds

    @given(days=day_sets)
    def test_primal_cost_at_most_K_times_dual(self, days):
        """The per-day candidate count caps primal/dual at K (proof of 2.7)."""
        schedule = LeaseSchedule.power_of_two(4)
        instance, algorithm = run_on(schedule, days)
        dual_total = sum(algorithm.duals.values())
        assert algorithm.cost <= schedule.num_types * dual_total + 1e-6

    @given(days=day_sets)
    def test_duals_nonnegative(self, days):
        schedule = LeaseSchedule.power_of_two(3)
        _, algorithm = run_on(schedule, days)
        assert all(value >= 0 for value in algorithm.duals.values())
