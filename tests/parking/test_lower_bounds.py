"""Tests for the Theorem 2.8 / 2.9 lower-bound constructions."""

import pytest

from repro.core import LeaseSchedule
from repro.errors import ModelError
from repro.parking import (
    AdaptiveAdversary,
    DeterministicParkingPermit,
    adversarial_schedule,
    make_instance,
    optimal_general,
    sample_randomized_lower_bound,
)
from repro.workloads import make_rng


class TestAdversarialSchedule:
    def test_costs_and_lengths(self):
        schedule = adversarial_schedule(4)
        assert [t.cost for t in schedule] == [1.0, 2.0, 4.0, 8.0]
        assert [t.length for t in schedule] == [1, 8, 64, 512]


class TestAdaptiveAdversary:
    def test_every_request_arrives_uncovered(self):
        schedule = adversarial_schedule(3)
        adversary = AdaptiveAdversary(schedule, horizon=40)

        class Spy(DeterministicParkingPermit):
            def __init__(self, inner_schedule):
                super().__init__(inner_schedule)
                self.was_covered_at_arrival = []

            def on_demand(self, day):
                self.was_covered_at_arrival.append(self.covers(day))
                super().on_demand(day)

        spy = Spy(schedule)
        adversary.run(spy)
        assert spy.was_covered_at_arrival
        assert not any(spy.was_covered_at_arrival)

    def test_outcome_instance_matches_requests(self):
        schedule = adversarial_schedule(2)
        adversary = AdaptiveAdversary(schedule, horizon=10)
        outcome = adversary.run(DeterministicParkingPermit(schedule))
        assert outcome.num_requests == len(outcome.instance.rainy_days)
        assert outcome.online_cost > 0

    def test_ratio_grows_with_K(self):
        """The adversary forces a ratio that increases with K (Omega(K))."""
        ratios = []
        for num_types in (1, 2, 3, 4):
            schedule = adversarial_schedule(num_types)
            adversary = AdaptiveAdversary(
                schedule, horizon=min(schedule.lmax, 4000)
            )
            outcome = adversary.run(DeterministicParkingPermit(schedule))
            opt = optimal_general(outcome.instance).cost
            ratios.append(outcome.online_cost / opt)
        assert ratios[0] == pytest.approx(1.0)
        # Strict growth across the sweep and a linear-ish last value.
        assert ratios == sorted(ratios)
        assert ratios[-1] >= ratios[0] * 2

    def test_rejects_zero_horizon(self, schedule2):
        with pytest.raises(ModelError):
            AdaptiveAdversary(schedule2, horizon=0)


class TestRandomizedLowerBound:
    def test_instance_valid_and_nonempty(self):
        instance = sample_randomized_lower_bound(3, make_rng(0))
        assert instance.num_days >= 1
        assert instance.schedule.num_types == 3

    def test_first_subinterval_always_active(self):
        """Day 0 is always rainy: the first child is active at every level."""
        for seed in range(10):
            instance = sample_randomized_lower_bound(3, make_rng(seed))
            assert instance.rainy_days[0] == 0

    def test_costs_double_per_level(self):
        instance = sample_randomized_lower_bound(4, make_rng(1))
        assert [t.cost for t in instance.schedule] == [1.0, 2.0, 4.0, 8.0]

    def test_branching_validation(self):
        with pytest.raises(ModelError):
            sample_randomized_lower_bound(3, make_rng(0), branching=1)

    def test_expected_days_grow_with_K(self):
        """Active-interval recursion doubles expected demand per level."""
        means = []
        for num_types in (2, 4):
            sizes = [
                sample_randomized_lower_bound(
                    num_types, make_rng(seed)
                ).num_days
                for seed in range(40)
            ]
            means.append(sum(sizes) / len(sizes))
        assert means[1] > means[0] * 1.8

    def test_deterministic_algorithm_suffers(self):
        """Deterministic Alg 1 averages a super-constant ratio on the
        hard distribution (the Theorem 2.9 shape, measured loosely)."""
        ratios = []
        for seed in range(25):
            instance = sample_randomized_lower_bound(
                4, make_rng(seed), branching=8
            )
            algorithm = DeterministicParkingPermit(instance.schedule)
            for day in instance.rainy_days:
                algorithm.on_demand(day)
            opt = optimal_general(instance).cost
            ratios.append(algorithm.cost / opt)
        assert sum(ratios) / len(ratios) > 1.1
