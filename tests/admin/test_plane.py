"""AdminPlane routing over a fake backend: every endpoint, pagination,
parameter validation, and the sync-or-async backend contract."""

import asyncio
import json

from repro.admin import AdminPlane
from repro.admin.plane import (
    DEFAULT_PAGE_LIMIT,
    DEFAULT_PROFILE_SECONDS,
    MAX_PAGE_LIMIT,
    MAX_PROFILE_SECONDS,
)


class FakeBackend:
    """Backend double mixing sync and async admin methods on purpose —
    the plane must await coroutines and pass plain values through."""

    def __init__(self, leases=None, ready=True):
        self.leases = leases or []
        self.ready = ready
        self.calls = []

    async def admin_metrics(self):
        return "# TYPE up gauge\nup 1\n"

    def admin_health(self):
        return {"state": "serving", "shards": 2}

    def admin_ready(self):
        return self.ready, {"ready": self.ready, "state": "serving"}

    async def admin_leases(self, tenant=None, resource=None):
        self.calls.append(("leases", tenant, resource))
        book = self.leases
        if tenant is not None:
            book = [l for l in book if l["tenant"] == tenant]
        if resource is not None:
            book = [l for l in book if l["resource"] == resource]
        return book

    def admin_trace(self, trace_id):
        if trace_id == "ab" * 8:
            return [{"kind": "client", "children": []}]
        return None

    async def admin_force_release(self, lease_id):
        self.calls.append(("force-release", lease_id))
        if lease_id == "0:1":
            return {"lease_id": lease_id, "ok": True}
        return None

    def admin_drain(self, worker):
        self.calls.append(("drain", worker))
        return "draining" if worker == 0 else None

    def admin_undrain(self, worker):
        return "serving" if worker == 0 else None

    def admin_history(self, family=None, window=None):
        self.calls.append(("history", family, window))
        return {"enabled": True, "families": {}}

    async def admin_profile(self, seconds):
        self.calls.append(("profile", seconds))
        return {"seconds": seconds, "stacks": {}}


def _book(n):
    return [
        {"tenant": f"t-{i % 2}", "resource": i, "lease_id": f"0:{i}"}
        for i in range(n)
    ]


def _request(backend, method, target):
    """Run one HTTP request against a plane over ``backend``."""

    async def main():
        plane = AdminPlane(backend)
        port = await plane.start_tcp()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                f"{method} {target} HTTP/1.1\r\n"
                f"Connection: close\r\n\r\n".encode()
            )
            await writer.drain()
            raw = await reader.read(-1)
            writer.close()
            await writer.wait_closed()
        finally:
            await plane.close()
        head, _, body = raw.partition(b"\r\n\r\n")
        status = int(head.split(b" ", 2)[1])
        content_type = ""
        for line in head.decode("latin-1").splitlines():
            if line.lower().startswith("content-type:"):
                content_type = line.split(":", 1)[1].strip()
        return status, content_type, body

    return asyncio.run(main())


class TestReadEndpoints:
    def test_metrics_is_prometheus_text(self):
        status, content_type, body = _request(FakeBackend(), "GET", "/metrics")
        assert status == 200
        assert content_type == "text/plain; version=0.0.4"
        assert b"up 1" in body

    def test_healthz_returns_backend_dict(self):
        status, content_type, body = _request(FakeBackend(), "GET", "/healthz")
        assert status == 200
        assert content_type == "application/json"
        assert json.loads(body) == {"state": "serving", "shards": 2}

    def test_readyz_200_when_ready(self):
        status, _, body = _request(FakeBackend(ready=True), "GET", "/readyz")
        assert status == 200
        assert json.loads(body)["ready"] is True

    def test_readyz_503_when_not_ready(self):
        status, _, body = _request(FakeBackend(ready=False), "GET", "/readyz")
        assert status == 503
        assert json.loads(body)["ready"] is False

    def test_trace_tree_found(self):
        status, _, body = _request(FakeBackend(), "GET", f"/trace/{'ab' * 8}")
        assert status == 200
        payload = json.loads(body)
        assert payload["trace"] == "ab" * 8
        assert payload["roots"][0]["kind"] == "client"

    def test_trace_tree_missing_is_404(self):
        status, _, body = _request(FakeBackend(), "GET", "/trace/deadbeef")
        assert status == 404

    def test_unknown_path_is_404(self):
        status, _, _ = _request(FakeBackend(), "GET", "/nope")
        assert status == 404

    def test_unsupported_method_is_405(self):
        status, _, _ = _request(FakeBackend(), "DELETE", "/leases")
        assert status == 405


class TestLeasesPagination:
    def test_defaults(self):
        backend = FakeBackend(leases=_book(3))
        status, _, body = _request(backend, "GET", "/leases")
        assert status == 200
        payload = json.loads(body)
        assert payload["total"] == 3
        assert payload["offset"] == 0
        assert payload["limit"] == DEFAULT_PAGE_LIMIT
        assert [l["lease_id"] for l in payload["leases"]] == [
            "0:0", "0:1", "0:2",
        ]

    def test_offset_and_limit_slice_the_book(self):
        backend = FakeBackend(leases=_book(10))
        _, _, body = _request(backend, "GET", "/leases?offset=4&limit=3")
        payload = json.loads(body)
        assert payload["total"] == 10
        assert [l["resource"] for l in payload["leases"]] == [4, 5, 6]

    def test_limit_is_clamped_to_max(self):
        backend = FakeBackend(leases=_book(2))
        _, _, body = _request(
            backend, "GET", f"/leases?limit={MAX_PAGE_LIMIT * 10}"
        )
        assert json.loads(body)["limit"] == MAX_PAGE_LIMIT

    def test_tenant_and_resource_filters_reach_backend(self):
        backend = FakeBackend(leases=_book(6))
        _, _, body = _request(
            backend, "GET", "/leases?tenant=t-1&resource=3"
        )
        payload = json.loads(body)
        assert backend.calls == [("leases", "t-1", 3)]
        assert [l["resource"] for l in payload["leases"]] == [3]

    def test_non_integer_params_are_400(self):
        for target in (
            "/leases?resource=abc",
            "/leases?offset=-1",
            "/leases?limit=huge",
        ):
            status, _, body = _request(FakeBackend(), "GET", target)
            assert status == 400, target
            assert "error" in json.loads(body)


class TestMetricsHistory:
    def test_defaults_pass_none_for_family_and_window(self):
        backend = FakeBackend()
        status, content_type, body = _request(
            backend, "GET", "/metrics/history"
        )
        assert status == 200
        assert content_type == "application/json"
        assert json.loads(body)["enabled"] is True
        assert backend.calls == [("history", None, None)]

    def test_family_and_window_params_reach_backend(self):
        backend = FakeBackend()
        _request(
            backend, "GET", "/metrics/history?family=ops_total&window=30"
        )
        assert backend.calls == [("history", "ops_total", 30.0)]

    def test_non_numeric_window_is_400(self):
        status, _, body = _request(
            FakeBackend(), "GET", "/metrics/history?window=soon"
        )
        assert status == 400
        assert "window" in json.loads(body)["error"]

    def test_non_positive_window_is_400(self):
        status, _, _ = _request(
            FakeBackend(), "GET", "/metrics/history?window=0"
        )
        assert status == 400


class TestProfile:
    def test_seconds_defaults(self):
        backend = FakeBackend()
        status, _, body = _request(backend, "GET", "/profile")
        assert status == 200
        assert json.loads(body)["seconds"] == DEFAULT_PROFILE_SECONDS
        assert backend.calls == [("profile", DEFAULT_PROFILE_SECONDS)]

    def test_seconds_param_reaches_backend(self):
        backend = FakeBackend()
        _request(backend, "GET", "/profile?seconds=2.5")
        assert backend.calls == [("profile", 2.5)]

    def test_seconds_is_clamped_to_max(self):
        backend = FakeBackend()
        _request(backend, "GET", "/profile?seconds=9000")
        assert backend.calls == [("profile", MAX_PROFILE_SECONDS)]

    def test_bad_seconds_is_400(self):
        for target in ("/profile?seconds=fast", "/profile?seconds=-1"):
            status, _, _ = _request(FakeBackend(), "GET", target)
            assert status == 400, target


class TestMutations:
    def test_force_release_hits_backend_and_returns_result(self):
        backend = FakeBackend()
        status, _, body = _request(
            backend, "POST", "/leases/0:1/force-release"
        )
        assert status == 200
        assert json.loads(body) == {"lease_id": "0:1", "ok": True}
        assert ("force-release", "0:1") in backend.calls

    def test_force_release_unknown_lease_is_404(self):
        status, _, _ = _request(
            FakeBackend(), "POST", "/leases/9:9/force-release"
        )
        assert status == 404

    def test_drain_and_undrain_round_trip(self):
        status, _, body = _request(FakeBackend(), "POST", "/workers/0/drain")
        assert status == 200
        assert json.loads(body) == {"worker": 0, "state": "draining"}
        status, _, body = _request(FakeBackend(), "POST", "/workers/0/undrain")
        assert status == 200
        assert json.loads(body) == {"worker": 0, "state": "serving"}

    def test_unknown_worker_is_404(self):
        status, _, _ = _request(FakeBackend(), "POST", "/workers/7/drain")
        assert status == 404

    def test_non_integer_worker_is_400(self):
        status, _, _ = _request(FakeBackend(), "POST", "/workers/two/drain")
        assert status == 400

    def test_post_to_unknown_path_is_404(self):
        status, _, _ = _request(FakeBackend(), "POST", "/leases/0:1/evict")
        assert status == 404
