"""The minimal HTTP/1.1 layer: request parsing, limits, and the
bounded keep-alive server loop."""

import asyncio
import json

import pytest

from repro.admin.http import (
    MAX_BODY_BYTES,
    MAX_HEADER_LINES,
    MAX_REQUESTS_PER_CONNECTION,
    HttpError,
    HttpRequest,
    HttpServer,
    json_response,
    read_request,
    text_response,
)


def _parse(data: bytes) -> HttpRequest | None:
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(main())


class TestReadRequest:
    def test_parses_method_path_query_headers(self):
        request = _parse(
            b"GET /leases?tenant=t-0&limit=5 HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Accept: */*\r\n"
            b"\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/leases"
        assert request.query == {"tenant": "t-0", "limit": "5"}
        assert request.headers["host"] == "localhost"
        assert request.body == b""

    def test_percent_decodes_path_and_keeps_blank_query_values(self):
        request = _parse(b"GET /trace/ab%20cd?x= HTTP/1.1\r\n\r\n")
        assert request.path == "/trace/ab cd"
        assert request.query == {"x": ""}

    def test_reads_content_length_body(self):
        request = _parse(
            b"POST /leases/0:1/force-release HTTP/1.1\r\n"
            b"Content-Length: 4\r\n"
            b"\r\n"
            b"{}ok"
        )
        assert request.method == "POST"
        assert request.body == b"{}ok"

    def test_clean_close_returns_none(self):
        assert _parse(b"") is None

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as exc:
            _parse(b"GET /healthz\r\n\r\n")
        assert exc.value.status == 400

    def test_non_http_version_is_400(self):
        with pytest.raises(HttpError) as exc:
            _parse(b"GET /healthz SPDY/3\r\n\r\n")
        assert exc.value.status == 400

    def test_header_without_colon_is_400(self):
        with pytest.raises(HttpError) as exc:
            _parse(b"GET / HTTP/1.1\r\nbogus header\r\n\r\n")
        assert exc.value.status == 400

    def test_too_many_header_lines_is_400(self):
        flood = b"".join(
            b"x-h%d: v\r\n" % i for i in range(MAX_HEADER_LINES + 1)
        )
        with pytest.raises(HttpError) as exc:
            _parse(b"GET / HTTP/1.1\r\n" + flood + b"\r\n")
        assert exc.value.status == 400
        assert "too many" in exc.value.message

    def test_bad_content_length_is_400(self):
        with pytest.raises(HttpError) as exc:
            _parse(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n")
        assert exc.value.status == 400

    def test_oversized_content_length_is_400(self):
        huge = str(MAX_BODY_BYTES + 1).encode()
        with pytest.raises(HttpError) as exc:
            _parse(b"POST / HTTP/1.1\r\nContent-Length: " + huge + b"\r\n\r\n")
        assert exc.value.status == 400


class TestResponses:
    def test_json_response_is_sorted_and_newline_terminated(self):
        response = json_response({"b": 1, "a": 2})
        assert response.status == 200
        assert response.content_type == "application/json"
        assert response.body.endswith(b"\n")
        assert json.loads(response.body) == {"a": 2, "b": 1}
        assert response.body.index(b'"a"') < response.body.index(b'"b"')

    def test_text_response_defaults_to_prometheus_type(self):
        response = text_response("x_total 1\n")
        assert response.content_type.startswith("text/plain")
        assert response.body == b"x_total 1\n"


async def _raw_request(port: int, payload: bytes) -> tuple[int, bytes]:
    """One request, reading the response to EOF.

    The payload must either send ``Connection: close`` or be malformed
    (the server drops the connection after a parse error) — a keep-alive
    request would leave the read-to-EOF waiting forever.
    """
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(payload)
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body


async def _read_response(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str], bytes]:
    """One framed response off a keep-alive connection."""
    status_line = await reader.readline()
    status = int(status_line.split(b" ", 2)[1])
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers["content-length"]))
    return status, headers, body


class TestHttpServer:
    def test_serves_one_request_then_closes(self):
        async def handler(request):
            return json_response({"path": request.path})

        async def main():
            server = HttpServer(handler)
            port = await server.start_tcp()
            try:
                return await _raw_request(
                    port,
                    b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
                )
            finally:
                await server.close()

        status, body = asyncio.run(main())
        assert status == 200
        assert json.loads(body) == {"path": "/healthz"}

    def test_handler_http_error_maps_to_json_error_body(self):
        async def handler(request):
            raise HttpError(404, "nope")

        async def main():
            server = HttpServer(handler)
            port = await server.start_tcp()
            try:
                return await _raw_request(
                    port, b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n"
                )
            finally:
                await server.close()

        status, body = asyncio.run(main())
        assert status == 404
        assert json.loads(body) == {"error": "nope"}

    def test_malformed_request_gets_400_not_a_hang(self):
        async def handler(request):  # pragma: no cover - never reached
            return json_response({})

        async def main():
            server = HttpServer(handler)
            port = await server.start_tcp()
            try:
                return await _raw_request(port, b"garbage\r\n\r\n")
            finally:
                await server.close()

        status, body = asyncio.run(main())
        assert status == 400
        assert "malformed" in json.loads(body)["error"]

    def test_port_is_none_until_started_and_after_close(self):
        async def handler(request):  # pragma: no cover
            return json_response({})

        async def main():
            server = HttpServer(handler)
            assert server.port is None
            port = await server.start_tcp()
            assert server.port == port
            await server.close()
            assert server.port is None

        asyncio.run(main())


class TestKeepAlive:
    def _run(self, main):
        async def wrapped():
            async def handler(request):
                if request.path == "/boom":
                    raise HttpError(404, "nope")
                return json_response({"path": request.path})

            server = HttpServer(handler)
            port = await server.start_tcp()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                try:
                    return await main(reader, writer)
                finally:
                    writer.close()
                    await writer.wait_closed()
            finally:
                await server.close()

        return asyncio.run(wrapped())

    def test_sequential_requests_reuse_one_connection(self):
        async def main(reader, writer):
            got = []
            for i in range(3):
                writer.write(b"GET /r%d HTTP/1.1\r\n\r\n" % i)
                await writer.drain()
                status, headers, body = await _read_response(reader)
                got.append(
                    (status, headers["connection"], json.loads(body)["path"])
                )
            return got

        assert self._run(main) == [
            (200, "keep-alive", f"/r{i}") for i in range(3)
        ]

    def test_handler_error_keeps_the_connection_alive(self):
        async def main(reader, writer):
            writer.write(b"GET /boom HTTP/1.1\r\n\r\n")
            await writer.drain()
            status, headers, _ = await _read_response(reader)
            assert (status, headers["connection"]) == (404, "keep-alive")
            writer.write(b"GET /after HTTP/1.1\r\n\r\n")
            await writer.drain()
            status, _, body = await _read_response(reader)
            return status, json.loads(body)

        assert self._run(main) == (200, {"path": "/after"})

    def test_connection_close_header_is_honored(self):
        async def main(reader, writer):
            writer.write(b"GET /one HTTP/1.1\r\nConnection: close\r\n\r\n")
            await writer.drain()
            status, headers, _ = await _read_response(reader)
            trailing = await reader.read(-1)
            return status, headers["connection"], trailing

        assert self._run(main) == (200, "close", b"")

    def test_request_cap_bounds_one_connection(self):
        async def main(reader, writer):
            connections = []
            for i in range(MAX_REQUESTS_PER_CONNECTION):
                writer.write(b"GET /n HTTP/1.1\r\n\r\n")
                await writer.drain()
                _, headers, _ = await _read_response(reader)
                connections.append(headers["connection"])
            trailing = await reader.read(-1)
            return connections, trailing

        connections, trailing = self._run(main)
        assert connections[:-1] == ["keep-alive"] * (
            MAX_REQUESTS_PER_CONNECTION - 1
        )
        assert connections[-1] == "close"
        assert trailing == b""

    def test_parse_error_answers_then_drops_the_connection(self):
        async def main(reader, writer):
            writer.write(b"garbage\r\n\r\n")
            await writer.drain()
            status, headers, body = await _read_response(reader)
            trailing = await reader.read(-1)
            return status, headers["connection"], json.loads(body), trailing

        status, connection, body, trailing = self._run(main)
        assert status == 400
        assert connection == "close"
        assert "malformed" in body["error"]
        assert trailing == b""
