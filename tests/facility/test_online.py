"""Tests for the two-phase online facility leasing algorithm (Section 4.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LeaseSchedule
from repro.analysis import verify_facility
from repro.facility import (
    Client,
    FacilityLeasingInstance,
    OnlineFacilityLeasing,
    make_instance,
    optimum,
    run_facility_leasing,
    theoretical_bound,
)
from repro.workloads import constant_batches, make_rng, nonincreasing_batches


def random_instance(seed, batches=None, num_facilities=3, num_types=2):
    rng = make_rng(seed)
    schedule = LeaseSchedule.power_of_two(num_types)
    if batches is None:
        batches = [rng.randint(0, 3) for _ in range(6)]
        if sum(batches) == 0:
            batches[0] = 1
    return make_instance(
        schedule,
        num_facilities=num_facilities,
        batch_sizes=batches,
        rng=rng,
    )


class TestFeasibility:
    @given(seed=st.integers(min_value=0, max_value=80))
    @settings(max_examples=20)
    def test_always_feasible(self, seed):
        instance = random_instance(seed)
        algorithm = run_facility_leasing(instance)
        verify_facility(
            instance, list(algorithm.leases), algorithm.connections
        ).raise_if_failed()

    @given(seed=st.integers(min_value=0, max_value=40))
    @settings(max_examples=10)
    def test_every_client_connected_exactly_once(self, seed):
        instance = random_instance(seed)
        algorithm = run_facility_leasing(instance)
        connected = [c.client for c in algorithm.connections]
        assert sorted(connected) == list(range(instance.num_clients))

    def test_empty_batches_are_noops(self, schedule2):
        instance = FacilityLeasingInstance(
            facility_points=((0.0, 0.0),),
            lease_costs=((2.0, 3.0),),
            schedule=schedule2,
            clients=(Client(ident=0, point=(1.0, 0.0), arrival=3),),
        )
        algorithm = OnlineFacilityLeasing(instance)
        from repro.facility.model import ClientBatch

        algorithm.on_demand(ClientBatch(arrival=0, clients=()))
        assert algorithm.cost == 0.0
        algorithm.on_demand(ClientBatch(arrival=3, clients=instance.clients))
        assert algorithm.cost > 0.0


class TestSingleStepBehaviour:
    def one_facility_instance(self, schedule, client_points, facility_cost=4.0):
        return FacilityLeasingInstance(
            facility_points=((0.0, 0.0),),
            lease_costs=((facility_cost,) * schedule.num_types,),
            schedule=schedule,
            clients=tuple(
                Client(ident=i, point=p, arrival=0)
                for i, p in enumerate(client_points)
            ),
        )

    def test_single_client_pays_cost_plus_distance(self):
        schedule = LeaseSchedule.from_pairs([(4, 4.0)])
        instance = self.one_facility_instance(schedule, [(3.0, 0.0)])
        algorithm = run_facility_leasing(instance)
        assert algorithm.leasing_cost == pytest.approx(4.0)
        assert algorithm.connection_cost == pytest.approx(3.0)

    def test_alpha_hat_equals_cost_share_plus_distance(self):
        """With one facility and one client, alpha = d + c (JV invariant)."""
        schedule = LeaseSchedule.from_pairs([(4, 4.0)])
        instance = self.one_facility_instance(schedule, [(3.0, 0.0)])
        algorithm = run_facility_leasing(instance)
        assert algorithm.alpha_hat[0] == pytest.approx(3.0 + 4.0)

    def test_two_clients_share_opening_cost(self):
        schedule = LeaseSchedule.from_pairs([(4, 4.0)])
        instance = self.one_facility_instance(
            schedule, [(1.0, 0.0), (-1.0, 0.0)]
        )
        algorithm = run_facility_leasing(instance)
        # Both potentials grow past distance 1, then split the cost 4:
        # alpha = 1 + 2 each.
        assert algorithm.alpha_hat[0] == pytest.approx(3.0)
        assert algorithm.alpha_hat[1] == pytest.approx(3.0)
        assert algorithm.leasing_cost == pytest.approx(4.0)

    def test_conflict_resolution_opens_one_of_two_close_facilities(self):
        schedule = LeaseSchedule.from_pairs([(4, 2.0)])
        instance = FacilityLeasingInstance(
            facility_points=((0.0, 0.0), (0.5, 0.0)),
            lease_costs=((2.0,), (2.0,)),
            schedule=schedule,
            clients=(
                Client(ident=0, point=(0.25, 0.0), arrival=0),
                Client(ident=1, point=(0.25, 1.0), arrival=0),
            ),
        )
        algorithm = run_facility_leasing(instance)
        # Both facilities go tight around the same moment; the conflict
        # graph must keep only one.
        assert len(algorithm.leases) == 1


class TestReuseAcrossSteps:
    def test_open_lease_reused_while_active(self):
        """A second batch inside the lease window connects for free-ish."""
        schedule = LeaseSchedule.from_pairs([(8, 5.0)])
        instance = FacilityLeasingInstance(
            facility_points=((0.0, 0.0),),
            lease_costs=((5.0,),),
            schedule=schedule,
            clients=(
                Client(ident=0, point=(1.0, 0.0), arrival=0),
                Client(ident=1, point=(1.0, 0.0), arrival=3),
            ),
        )
        algorithm = run_facility_leasing(instance)
        assert algorithm.leasing_cost == pytest.approx(5.0)  # one lease only
        assert len(algorithm.leases) == 1

    def test_expired_lease_repurchased(self):
        schedule = LeaseSchedule.from_pairs([(2, 5.0)])
        instance = FacilityLeasingInstance(
            facility_points=((0.0, 0.0),),
            lease_costs=((5.0,),),
            schedule=schedule,
            clients=(
                Client(ident=0, point=(1.0, 0.0), arrival=0),
                Client(ident=1, point=(1.0, 0.0), arrival=4),
            ),
        )
        algorithm = run_facility_leasing(instance)
        assert algorithm.leasing_cost == pytest.approx(10.0)
        assert len(algorithm.leases) == 2


class TestCompetitiveness:
    @given(seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=8)
    def test_theorem_4_5_bound(self, seed):
        """Measured ratio stays below 4(3+K) H_lmax."""
        rng = make_rng(seed)
        schedule = LeaseSchedule.power_of_two(2)
        batches = constant_batches(4, 2)
        instance = make_instance(
            schedule, num_facilities=3, batch_sizes=batches, rng=rng
        )
        algorithm = run_facility_leasing(instance)
        opt = optimum(instance)
        bound = theoretical_bound(schedule, batches)
        assert algorithm.cost <= bound * opt.lower + 1e-6

    def test_nonincreasing_batches_low_ratio(self):
        rng = make_rng(17)
        schedule = LeaseSchedule.power_of_two(2)
        batches = nonincreasing_batches(6, 4, rng)
        instance = make_instance(
            schedule, num_facilities=3, batch_sizes=batches, rng=rng
        )
        algorithm = run_facility_leasing(instance)
        opt = optimum(instance)
        assert algorithm.cost <= theoretical_bound(schedule, batches) * opt.lower
