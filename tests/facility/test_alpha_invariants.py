"""Measured invariants of the facility algorithm's analysis (Section 4.4).

The proof of Theorem 4.5 rests on per-run quantities we can check
directly on every execution:

* Lemma 4.1: total solution cost <= (3 + K) * sum of alpha_hat values.
* Proposition 4.2: every client's final connection distance <= 3 alpha_hat.
* INV2: a client's alpha_hat is set exactly once, at its arrival step.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LeaseSchedule
from repro.facility import make_instance, run_facility_leasing
from repro.workloads import make_rng


def run_random(seed, steps=5, per_step=2, num_facilities=3, num_types=2):
    rng = make_rng(seed)
    schedule = LeaseSchedule.power_of_two(num_types)
    instance = make_instance(
        schedule,
        num_facilities=num_facilities,
        batch_sizes=[per_step] * steps,
        rng=rng,
    )
    return instance, run_facility_leasing(instance)


class TestLemma41:
    @given(seed=st.integers(min_value=0, max_value=60))
    @settings(max_examples=15)
    def test_cost_at_most_3_plus_K_alpha_sum(self, seed):
        instance, algorithm = run_random(seed)
        alpha_sum = sum(algorithm.alpha_hat.values())
        K = instance.schedule.num_types
        assert algorithm.cost <= (3 + K) * alpha_sum + 1e-6

    @given(seed=st.integers(min_value=0, max_value=40))
    @settings(max_examples=10)
    def test_alpha_covers_own_connection(self, seed):
        """Phase-1 connections satisfy alpha_hat >= distance."""
        instance, algorithm = run_random(seed)
        by_client = {c.client: c for c in algorithm.connections}
        for client_id, alpha in algorithm.alpha_hat.items():
            connection = by_client[client_id]
            # Proposition 4.2: even after MIS reconnection the distance is
            # at most 3 alpha_hat.
            assert connection.distance <= 3 * alpha + 1e-6


class TestAlphaHatLifecycle:
    def test_set_once_per_client(self):
        instance, algorithm = run_random(3)
        assert set(algorithm.alpha_hat) == set(
            range(instance.num_clients)
        )
        assert all(alpha > 0 for alpha in algorithm.alpha_hat.values())

    def test_alpha_stable_across_later_steps(self):
        """Re-running the tail of the stream never rewrites old alphas."""
        instance, _ = run_random(9)
        from repro.facility import OnlineFacilityLeasing

        algorithm = OnlineFacilityLeasing(instance)
        batches = instance.batches()
        algorithm.on_demand(batches[0])
        snapshot = dict(algorithm.alpha_hat)
        for batch in batches[1:]:
            algorithm.on_demand(batch)
        for client_id, alpha in snapshot.items():
            assert algorithm.alpha_hat[client_id] == pytest.approx(alpha)

    def test_connection_count_equals_clients(self):
        instance, algorithm = run_random(12)
        assert len(algorithm.connections) == instance.num_clients


class TestCostDecomposition:
    @given(seed=st.integers(min_value=0, max_value=40))
    @settings(max_examples=10)
    def test_ledger_matches_totals(self, seed):
        _, algorithm = run_random(seed)
        assert algorithm.ledger.total_for("leasing") == pytest.approx(
            algorithm.leasing_cost
        )
        assert algorithm.ledger.total_for("connection") == pytest.approx(
            algorithm.connection_cost
        )
        assert algorithm.cost == pytest.approx(algorithm.ledger.total)
