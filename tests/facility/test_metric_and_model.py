"""Tests for the metric substrate and the facility leasing model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import LeaseSchedule
from repro.errors import ModelError
from repro.facility import (
    Client,
    Connection,
    DistanceMatrix,
    FacilityLeasingInstance,
    clustered_points,
    euclidean,
    random_points,
    triangle_violation,
)
from repro.workloads import make_rng


class TestEuclidean:
    def test_known_distance(self):
        assert euclidean((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)

    @given(
        ax=st.floats(-100, 100), ay=st.floats(-100, 100),
        bx=st.floats(-100, 100), by=st.floats(-100, 100),
        cx=st.floats(-100, 100), cy=st.floats(-100, 100),
    )
    def test_triangle_inequality(self, ax, ay, bx, by, cx, cy):
        a, b, c = (ax, ay), (bx, by), (cx, cy)
        assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-9


class TestPointGenerators:
    def test_random_points_in_box(self, rng):
        points = random_points(50, rng, box=10.0)
        assert len(points) == 50
        assert all(0 <= x <= 10 and 0 <= y <= 10 for x, y in points)

    def test_clustered_points_count(self, rng):
        assert len(clustered_points(30, 3, rng)) == 30


class TestDistanceMatrix:
    def test_valid_metric(self):
        matrix = DistanceMatrix([[0, 1, 2], [1, 0, 1], [2, 1, 0]])
        assert matrix.distance(0, 2) == 2

    def test_rejects_triangle_violation(self):
        with pytest.raises(ModelError):
            DistanceMatrix([[0, 1, 5], [1, 0, 1], [5, 1, 0]])

    def test_rejects_asymmetry(self):
        with pytest.raises(ModelError):
            DistanceMatrix([[0, 1], [2, 0]])

    def test_rejects_nonzero_diagonal(self):
        with pytest.raises(ModelError):
            DistanceMatrix([[1]])

    def test_triangle_violation_zero_for_metric(self):
        assert triangle_violation([[0, 1], [1, 0]]) == 0.0


def tiny_instance(schedule):
    return FacilityLeasingInstance(
        facility_points=((0.0, 0.0), (10.0, 0.0)),
        lease_costs=((5.0, 8.0), (5.0, 8.0)),
        schedule=schedule,
        clients=(
            Client(ident=0, point=(1.0, 0.0), arrival=0),
            Client(ident=1, point=(9.0, 0.0), arrival=0),
            Client(ident=2, point=(1.0, 1.0), arrival=1),
        ),
    )


class TestInstance:
    def test_batches_grouping(self, schedule2):
        instance = tiny_instance(schedule2)
        batches = instance.batches()
        assert [batch.arrival for batch in batches] == [0, 1]
        assert len(batches[0].clients) == 2

    def test_batch_sizes(self, schedule2):
        assert tiny_instance(schedule2).batch_sizes() == [2, 1]

    def test_distance(self, schedule2):
        instance = tiny_instance(schedule2)
        assert instance.distance(0, 0) == pytest.approx(1.0)
        assert instance.distance(1, 0) == pytest.approx(9.0)

    def test_rejects_bad_cost_shape(self, schedule2):
        with pytest.raises(ModelError):
            FacilityLeasingInstance(
                facility_points=((0.0, 0.0),),
                lease_costs=((1.0,),),
                schedule=schedule2,
                clients=(),
            )

    def test_rejects_unsorted_clients(self, schedule2):
        with pytest.raises(ModelError):
            FacilityLeasingInstance(
                facility_points=((0.0, 0.0),),
                lease_costs=((1.0, 2.0),),
                schedule=schedule2,
                clients=(
                    Client(ident=0, point=(0.0, 0.0), arrival=5),
                    Client(ident=1, point=(0.0, 0.0), arrival=1),
                ),
            )

    def test_rejects_misnumbered_idents(self, schedule2):
        with pytest.raises(ModelError):
            FacilityLeasingInstance(
                facility_points=((0.0, 0.0),),
                lease_costs=((1.0, 2.0),),
                schedule=schedule2,
                clients=(Client(ident=3, point=(0.0, 0.0), arrival=0),),
            )

    def test_facility_lease_costs(self, schedule2):
        instance = tiny_instance(schedule2)
        lease = instance.facility_lease(1, 1, t=1)
        assert lease.cost == 8.0
        assert lease.covers(1)

    def test_feasibility_checks_lease_activity(self, schedule2):
        instance = tiny_instance(schedule2)
        lease = instance.facility_lease(0, 0, t=0)  # covers step 0 only
        good = Connection(client=0, facility=0, distance=1.0)
        late = Connection(client=2, facility=0, distance=1.5)
        assert not instance.is_feasible_solution([lease], [good, late])

    def test_feasibility_rejects_understated_distance(self, schedule2):
        instance = tiny_instance(schedule2)
        leases = [
            instance.facility_lease(0, 1, t=0),
            instance.facility_lease(1, 1, t=0),
        ]
        connections = [
            Connection(client=0, facility=0, distance=0.0),  # lies: 1.0
            Connection(client=1, facility=1, distance=1.0),
            Connection(client=2, facility=0, distance=2.0),
        ]
        assert not instance.is_feasible_solution(leases, connections)

    def test_solution_cost_dedupes_leases(self, schedule2):
        instance = tiny_instance(schedule2)
        lease = instance.facility_lease(0, 0, t=0)
        cost = instance.solution_cost([lease, lease], [])
        assert cost == pytest.approx(lease.cost)
