"""Tests for facility offline baselines and the H_q arrival series."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LeaseSchedule
from repro.facility import (
    Client,
    FacilityLeasingInstance,
    harmonic_series,
    lp_lower_bound,
    make_instance,
    nearest_heuristic,
    optimal_brute,
    optimal_ilp,
    optimum,
    theoretical_bound,
)
from repro.errors import SolverError
from repro.workloads import (
    constant_batches,
    exponential_batches,
    make_rng,
    polynomial_batches,
)


def small_instance(seed, steps=4, per_step=2, num_facilities=3):
    rng = make_rng(seed)
    schedule = LeaseSchedule.power_of_two(2)
    return make_instance(
        schedule,
        num_facilities=num_facilities,
        batch_sizes=[per_step] * steps,
        rng=rng,
    )


class TestHarmonicSeries:
    def test_constant_batches_are_harmonic(self):
        # |D_i| = c: H_q = 1 + 1/2 + ... + 1/q.
        assert harmonic_series([5, 5, 5]) == pytest.approx(1 + 0.5 + 1 / 3)

    def test_empty_batches_skipped(self):
        assert harmonic_series([0, 4, 0, 4]) == pytest.approx(1 + 0.5)

    def test_single_batch(self):
        assert harmonic_series([7]) == pytest.approx(1.0)

    def test_exponential_batches_linear_H(self):
        """|D_i| = 2^i gives H_q ~ q/2 (the conjectured hard pattern)."""
        sizes = exponential_batches(10)
        value = harmonic_series(sizes)
        assert value > 0.4 * len(sizes)

    def test_polynomial_batches_log_H(self):
        sizes = polynomial_batches(64, degree=2)
        value = harmonic_series(sizes)
        # Poly growth keeps H logarithmic-ish: far below q/2.
        assert value < 0.25 * len(sizes)

    def test_theoretical_bound_uses_per_round_maximum(self):
        schedule = LeaseSchedule.power_of_two(2)  # lmax = 2
        sizes = [1, 1, 8, 8]
        per_round = max(harmonic_series([1, 1]), harmonic_series([8, 8]))
        assert theoretical_bound(schedule, sizes) == pytest.approx(
            4 * (3 + 2) * per_round
        )


class TestOfflineSolvers:
    @given(seed=st.integers(min_value=0, max_value=40))
    @settings(max_examples=8)
    def test_lp_below_ilp_below_heuristic(self, seed):
        instance = small_instance(seed)
        lp = lp_lower_bound(instance)
        ilp = optimal_ilp(instance)
        heuristic = nearest_heuristic(instance)
        assert lp <= ilp.cost + 1e-6
        assert ilp.cost <= heuristic.cost + 1e-6

    @given(seed=st.integers(min_value=0, max_value=40))
    @settings(max_examples=8)
    def test_ilp_solution_feasible(self, seed):
        instance = small_instance(seed)
        solution = optimal_ilp(instance)
        assert instance.is_feasible_solution(
            list(solution.leases), list(solution.connections)
        )
        assert solution.cost == pytest.approx(
            instance.solution_cost(
                list(solution.leases), list(solution.connections)
            )
        )

    def test_heuristic_feasible(self):
        instance = small_instance(9)
        solution = nearest_heuristic(instance)
        assert instance.is_feasible_solution(
            list(solution.leases), list(solution.connections)
        )

    def test_brute_force_matches_ilp_on_tiny(self):
        schedule = LeaseSchedule.from_pairs([(2, 3.0), (4, 5.0)])
        instance = FacilityLeasingInstance(
            facility_points=((0.0, 0.0), (10.0, 0.0)),
            lease_costs=((3.0, 5.0), (3.0, 5.0)),
            schedule=schedule,
            clients=(
                Client(ident=0, point=(1.0, 0.0), arrival=0),
                Client(ident=1, point=(9.0, 0.0), arrival=1),
            ),
        )
        brute = optimal_brute(instance)
        ilp = optimal_ilp(instance)
        assert brute.cost == pytest.approx(ilp.cost, abs=1e-6)

    def test_brute_force_rejects_large(self):
        instance = small_instance(0, steps=6, per_step=3, num_facilities=4)
        with pytest.raises(SolverError):
            optimal_brute(instance, max_windows=4)

    def test_optimum_exact_with_scipy(self):
        bounds = optimum(small_instance(1))
        assert bounds.exact
