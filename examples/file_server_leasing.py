#!/usr/bin/env python3
"""The file-server scenario opening thesis Chapter 3, as set multicover
leasing.

A fleet of servers each hosts a subset of files.  Users request files
over time; for redundancy, hot files must be served by several distinct
active servers at once.  Activating (leasing) a server for longer costs
less per day.  Chapter 3's randomized online algorithm decides which
servers to activate, when, and for how long; we measure it against the
exact ILP optimum and the offline greedy.

Run:  python examples/file_server_leasing.py
"""

from repro.core import LeaseSchedule, run_online
from repro.analysis import print_table, verify_multicover
from repro.setcover import (
    MulticoverDemand,
    OnlineSetMulticoverLeasing,
    SetMulticoverLeasingInstance,
    SetSystem,
    greedy,
    optimum,
)
from repro.workloads import element_arrivals, make_rng


def main() -> None:
    rng = make_rng(303)
    num_files, num_servers = 12, 8
    schedule = LeaseSchedule.power_of_two(3, base_cost=2.0, cost_growth=1.7)

    # Each server hosts a random handful of files; every file lives on at
    # least three servers so requests with redundancy 2 are satisfiable.
    hosted = [set(rng.sample(range(num_files), 5)) for _ in range(num_servers)]
    for file_id in range(num_files):
        while sum(1 for files in hosted if file_id in files) < 3:
            hosted[rng.randrange(num_servers)].add(file_id)
    activation_costs = [
        [(1.0 + rng.random()) * lease_type.cost for lease_type in schedule]
        for _ in range(num_servers)
    ]
    system = SetSystem(
        num_elements=num_files, sets=hosted, lease_costs=activation_costs
    )
    print(
        f"{num_files} files on {num_servers} servers "
        f"(delta = {system.delta} servers/file)"
    )

    # A month of file requests; popular files need 2 replicas (p = 2).
    raw = element_arrivals(
        30, num_files, 1.2, rng, max_coverage=2, repeats_allowed=True
    )
    demands = tuple(MulticoverDemand(e, t, p) for e, t, p in raw)
    instance = SetMulticoverLeasingInstance(
        system=system, schedule=schedule, demands=demands
    )
    redundancy_2 = sum(1 for demand in demands if demand.coverage == 2)
    print(
        f"{len(demands)} file requests over 30 days "
        f"({redundancy_2} need 2 replicas)\n"
    )

    # Online: Algorithms 3+4.
    online = OnlineSetMulticoverLeasing(instance, seed=1)
    run_online(online, instance.demands)
    verify_multicover(instance, list(online.leases)).raise_if_failed()

    greedy_solution = greedy(instance)
    opt = optimum(instance)

    print_table(
        ["strategy", "cost", "leases", "vs OPT"],
        [
            [
                "randomized online (Ch. 3)",
                online.cost,
                len(online.leases),
                online.cost / opt.lower,
            ],
            [
                "offline greedy",
                greedy_solution.cost,
                len(greedy_solution.leases),
                greedy_solution.cost / opt.lower,
            ],
            ["offline optimum (ILP)", opt.lower, "", 1.0],
        ],
        title="Server activation report",
    )
    print(
        f"\nTheorem 3.3 shape: O(log(delta K) log n) "
        f"= O(log({system.delta}x{schedule.num_types}) log {num_files}) "
        "— a few small logs, not a linear factor."
    )


if __name__ == "__main__":
    main()
