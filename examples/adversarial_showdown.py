#!/usr/bin/env python3
"""Lower bounds live: adversaries vs online algorithms.

Two demonstrations from Chapter 2's competitive analysis:

1. The Theorem 2.8 adaptive adversary interrogates the deterministic
   algorithm and forces a ratio that climbs linearly in K — watching the
   transcript shows *why*: every request lands just outside what the
   algorithm covered.

2. The Theorem 2.9 random instance family, where the deterministic
   algorithm's expected ratio grows while randomization (Algorithm 2)
   softens the blow.

Run:  python examples/adversarial_showdown.py
"""

import statistics

from repro.analysis import print_table
from repro.parking import (
    AdaptiveAdversary,
    DeterministicParkingPermit,
    RandomizedParkingPermit,
    adversarial_schedule,
    optimal_general,
    sample_randomized_lower_bound,
)
from repro.workloads import make_rng


def deterministic_adversary() -> None:
    print("=== Theorem 2.8: the adaptive adversary ===\n")
    rows = []
    for num_types in (1, 2, 3, 4):
        schedule = adversarial_schedule(num_types)
        horizon = min(schedule.lmax, 5000)
        adversary = AdaptiveAdversary(schedule, horizon=horizon)
        outcome = adversary.run(DeterministicParkingPermit(schedule))
        opt = optimal_general(outcome.instance).cost
        rows.append(
            [
                num_types,
                outcome.num_requests,
                outcome.online_cost,
                opt,
                outcome.online_cost / opt,
            ]
        )
    print_table(
        ["K", "forced requests", "online", "OPT", "ratio"],
        rows,
        title="Adversary transcript summaries (c_k = 2^k, l_k = (2K)^k)",
    )
    print(
        "\nThe ratio column *is* K: no deterministic algorithm can do "
        "better (Theorem 2.8).\n"
    )


def randomized_hard_distribution() -> None:
    print("=== Theorem 2.9: the hard random instance family ===\n")
    rows = []
    for num_types in (2, 3, 4, 5):
        det_ratios, rand_ratios = [], []
        for seed in range(30):
            instance = sample_randomized_lower_bound(
                num_types, make_rng(seed), branching=8
            )
            opt = optimal_general(instance).cost
            deterministic = DeterministicParkingPermit(instance.schedule)
            randomized = RandomizedParkingPermit(instance.schedule, seed=seed)
            for day in instance.rainy_days:
                deterministic.on_demand(day)
                randomized.on_demand(day)
            det_ratios.append(deterministic.cost / opt)
            rand_ratios.append(randomized.cost / opt)
        rows.append(
            [
                num_types,
                statistics.fmean(det_ratios),
                statistics.fmean(rand_ratios),
            ]
        )
    print_table(
        ["K", "E[ratio] deterministic", "E[ratio] randomized"],
        rows,
        title="Expected ratios over 30 sampled instances",
    )
    print(
        "\nBoth grow with K (the Omega(log K) floor applies to everyone), "
        "but randomization stays consistently below the deterministic "
        "mean — the O(log K) vs O(K) separation in action."
    )


if __name__ == "__main__":
    deterministic_adversary()
    randomized_hard_distribution()
