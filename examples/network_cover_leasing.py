#!/usr/bin/env python3
"""Graph leasing problems from the thesis outlook: monitoring a network.

Two scenarios on one backbone network:

1. **Vertex cover leasing** (Section 3.5 outlook): links flare up over
   time and must be watched by a monitoring agent leased on one of the
   link's endpoints.  delta = 2 gives the leasing algorithm an
   O(log(2K) log n) guarantee via the Chapter 3 reduction.

2. **Steiner tree leasing** (Section 5.1, Meyerson's model): pairs of
   sites request a private connection; every edge on the path needs an
   active lease, with a per-edge doubling ratchet choosing lease lengths.

Run:  python examples/network_cover_leasing.py
"""

import networkx as nx

from repro.analysis import print_table
from repro.core import LeaseSchedule
from repro.graphs import (
    EdgeDemand,
    OnlineSteinerLeasing,
    OnlineVertexCoverLeasing,
    PairDemand,
    SteinerLeasingInstance,
    VertexCoverLeasingInstance,
    offline_heuristic,
    optimum,
)
from repro.workloads import make_rng


def vertex_cover_demo() -> None:
    print("=== Link monitoring as vertex cover leasing ===\n")
    rng = make_rng(8)
    schedule = LeaseSchedule.power_of_two(3, base_cost=2.0, cost_growth=1.7)
    num_routers = 10
    # Flaring links over three weeks; hubs 0-2 are cheap to instrument.
    flare_edges = []
    for t in range(20):
        u = rng.randrange(3)  # one endpoint is always a hub
        v = rng.randrange(3, num_routers)
        flare_edges.append(EdgeDemand(u, v, t))
    costs = [
        [0.6 * lt.cost for lt in schedule] if router < 3
        else [3.0 * lt.cost for lt in schedule]
        for router in range(num_routers)
    ]
    instance = VertexCoverLeasingInstance(
        num_vertices=num_routers,
        vertex_costs=tuple(tuple(row) for row in costs),
        schedule=schedule,
        demands=tuple(flare_edges),
    )
    algorithm = OnlineVertexCoverLeasing(instance, seed=1)
    for demand in instance.demands:
        algorithm.on_demand(demand)
    assert instance.is_feasible_solution(list(algorithm.leases))
    opt = optimum(instance)
    hub_leases = sum(1 for lease in algorithm.leases if lease.resource < 3)
    print_table(
        ["quantity", "value"],
        [
            ["flaring links", len(flare_edges)],
            ["monitor leases bought", len(algorithm.leases)],
            ["  ...on cheap hubs", hub_leases],
            ["online cost", algorithm.cost],
            ["offline optimum", opt.lower],
            ["ratio", algorithm.cost / opt.lower],
        ],
    )
    print()


def steiner_demo() -> None:
    print("=== Private connections as Steiner tree leasing ===\n")
    rng = make_rng(9)
    schedule = LeaseSchedule.power_of_two(3, base_cost=1.0, cost_growth=1.6)
    graph = nx.convert_node_labels_to_integers(
        nx.grid_2d_graph(4, 4), ordering="sorted"
    )
    nx.set_edge_attributes(graph, 1.0, "weight")
    pairs = []
    for t in range(10):
        s, target = rng.sample(range(16), 2)
        pairs.append(PairDemand(s, target, t))
    instance = SteinerLeasingInstance(
        graph=graph, schedule=schedule, demands=tuple(pairs)
    )
    algorithm = OnlineSteinerLeasing(instance)
    for demand in instance.demands:
        algorithm.on_demand(demand)
    assert instance.is_feasible_solution(list(algorithm.leases))
    upgraded = sum(1 for lease in algorithm.leases if lease.type_index > 0)
    baseline = offline_heuristic(instance)
    print_table(
        ["quantity", "value"],
        [
            ["connection requests", len(pairs)],
            ["edge leases bought", len(algorithm.leases)],
            ["  ...ratcheted to longer types", upgraded],
            ["online cost", algorithm.cost],
            ["offline round-tree heuristic", baseline],
            ["online / heuristic", algorithm.cost / baseline],
        ],
    )
    print(
        "\nEdges leased repeatedly graduate to longer leases — the "
        "per-edge ski-rental ratchet."
    )


if __name__ == "__main__":
    vertex_cover_demo()
    steiner_demo()
