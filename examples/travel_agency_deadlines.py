#!/usr/bin/env python3
"""The travel-agency scenario opening thesis Chapter 5: flexible demands.

Tourists arrive daily and want a guided city tour *before they leave* —
any day inside their stay works.  Hiring a guide means leasing them for
1, 2, 4 or 8 consecutive days (longer is cheaper per day).  Chapter 5's
primal-dual algorithm (OLD) decides when to hire and for how long; we
show how customer flexibility (longer stays) lowers both the optimum and
the online cost, and reproduce the Figure 5.3 worst case.

Run:  python examples/travel_agency_deadlines.py
"""

from repro.core import LeaseSchedule
from repro.analysis import print_table, verify_old
from repro.deadlines import (
    make_old_instance,
    optimal_dp,
    run_old,
    tight_example,
)
from repro.workloads import deadline_arrivals, make_rng


def main() -> None:
    schedule = LeaseSchedule.power_of_two(4, base_cost=3.0, cost_growth=1.7)
    print(
        "Guide contracts:",
        [(t.length, round(t.cost, 2)) for t in schedule],
    )

    rows = []
    for stay_length in (0, 2, 5, 10):
        rng = make_rng(60 + stay_length)
        tourists = deadline_arrivals(
            horizon=60,
            arrival_probability=0.45,
            max_slack=0,
            rng=rng,
            uniform_slack=stay_length,
        )
        instance = make_old_instance(schedule, tourists).normalized()
        algorithm = run_old(instance)
        verify_old(instance, list(algorithm.leases)).raise_if_failed()
        opt = optimal_dp(instance)
        rows.append(
            [
                f"{stay_length} days",
                len(instance.clients),
                algorithm.cost,
                opt,
                algorithm.cost / opt,
                algorithm.skipped,
            ]
        )
    print()
    print_table(
        ["flexibility", "tourists", "online", "OPT", "ratio", "skipped"],
        rows,
        title="Season cost vs tourist flexibility (uniform stays)",
    )
    print(
        "\nMore flexibility lowers everyone's cost; Theorem 5.3 keeps the "
        f"online ratio below 2K = {2 * schedule.num_types} throughout."
    )

    # The adversarial flip side: Figure 5.3's tight example.
    print("\n--- Figure 5.3: when flexibility misleads the algorithm ---")
    worst = tight_example(dmax=16, lmin=1, epsilon=0.05)
    algorithm = run_old(worst)
    opt = optimal_dp(worst)
    print(
        f"16-day-flexible first customer + daily followers: online pays "
        f"{algorithm.cost:.2f}, optimum pays {opt:.2f} "
        f"(ratio {algorithm.cost / opt:.1f} ~ dmax/lmin = 16)."
    )
    print(
        "This is Proposition 5.4: the Theta(K + dmax/lmin) analysis is "
        "tight, not pessimism."
    )


if __name__ == "__main__":
    main()
