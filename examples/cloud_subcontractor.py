#!/usr/bin/env python3
"""The cloud subcontractor of thesis Section 1.3, as facility leasing.

You broker cloud machines: each day clients call wanting a machine, every
provider can host it, but the connection price grows with the distance
between client and provider — and you must *lease* provider capacity for
one of several durations before serving anyone.  Chapter 4's two-phase
primal-dual algorithm makes the lease/connect decisions online; we
compare it against the exact offline optimum and a naive
lease-on-demand policy, and show the cost split over time.

Run:  python examples/cloud_subcontractor.py
"""

from repro.core import LeaseSchedule
from repro.analysis import print_table, verify_facility
from repro.facility import (
    harmonic_series,
    make_instance,
    nearest_heuristic,
    optimum,
    run_facility_leasing,
    theoretical_bound,
)
from repro.workloads import make_rng, poisson_like_batches


def main() -> None:
    # Provider capacity leases: 1, 2, 4 or 8 days; longer = cheaper/day.
    schedule = LeaseSchedule.power_of_two(3, base_cost=1.0, cost_growth=1.8)
    rng = make_rng(44)

    # Two work weeks of client calls, ~2 per day, clustered in districts.
    batches = poisson_like_batches(10, 2.0, rng)
    if sum(batches) == 0:
        batches[0] = 1
    instance = make_instance(
        schedule,
        num_facilities=5,
        batch_sizes=batches,
        rng=rng,
        clustered=True,
        facility_cost_scale=25.0,
    )
    print(
        f"{instance.num_clients} client calls over {len(batches)} days, "
        f"{instance.num_facilities} providers, "
        f"K={schedule.num_types} lease types"
    )
    print(f"Arrival pattern H = {harmonic_series(batches):.2f}\n")

    # The Chapter 4 online algorithm.
    online = run_facility_leasing(instance)
    verify_facility(
        instance, list(online.leases), online.connections
    ).raise_if_failed()

    # Baselines.
    naive = nearest_heuristic(instance)
    opt = optimum(instance)

    print_table(
        ["strategy", "leasing", "connection", "total", "vs OPT"],
        [
            [
                "primal-dual online (Ch. 4)",
                online.leasing_cost,
                online.connection_cost,
                online.cost,
                online.cost / opt.lower,
            ],
            [
                "naive lease-on-demand",
                sum(lease.cost for lease in naive.leases),
                sum(c.distance for c in naive.connections),
                naive.cost,
                naive.cost / opt.lower,
            ],
            ["offline optimum (MILP)", "", "", opt.lower, 1.0],
        ],
        title="Two-week cost report",
    )

    bound = theoretical_bound(schedule, batches)
    print(
        f"\nTheorem 4.5 guarantee: online <= 4(3+K) H_lmax x OPT "
        f"= {bound:.1f} x {opt.lower:.1f} = {bound * opt.lower:.1f}"
    )

    print("\nCumulative online spend by day:")
    for day, total in online.ledger.cumulative_by_day():
        bar = "#" * int(total / online.cost * 40)
        print(f"  day {day:2d}  {total:8.1f}  {bar}")


if __name__ == "__main__":
    main()
