"""A lease-broker service in front of the online leasing algorithms.

The story: a compute platform rents GPU pods (resources) to project teams
(tenants).  Teams say *when* they need a pod (``acquire``) and when they
are done (``release``); the broker decides *how long to lease* each pod
from the provider by delegating every request to Meyerson's primal-dual
parking-permit algorithm — the rent-or-buy decision the paper solves with
an O(K) guarantee.

The demo replays a year of Markov-weather demand through the broker,
prints the service counters and the grant table an operations dashboard
would show, force-releases the stragglers (the admin action for stuck
tenants), and compares the primal-dual backend against a naive
always-shortest-lease backend on identical traffic.
"""

from repro.core import LeaseSchedule
from repro.engine import LeaseBroker, generate_trace, replay_trace
from repro.parking import AlwaysShortest
from repro.analysis import print_table

# Pod lease terms: 4-day spot, 16-day weekly-ish, 64-day quarterly.
# Longer terms are much cheaper per day — the economies of scale that
# make the rent-or-buy decision interesting.
SCHEDULE = LeaseSchedule.from_pairs([(4, 4.0), (16, 8.0), (64, 12.0)])

trace = generate_trace(
    "markov", horizon=365, seed=42, num_tenants=4, num_resources=3, hold=3
)

broker = LeaseBroker(SCHEDULE)
stats = replay_trace(broker, trace)
replay_cost = broker.cost

print_table(
    ["metric", "value"],
    [
        ["events replayed", stats.events],
        ["acquires", stats.acquires],
        ["renewals", stats.renewals],
        ["releases", stats.releases],
        ["expirations", stats.expirations],
        ["leases bought", len(broker.leases)],
        ["total leasing cost", replay_cost],
    ],
    title="broker service: one year of GPU-pod demand, 4 tenants, 3 pods",
)

# Two teams grab pods after the replay and wander off without releasing —
# the "stuck run" case the admin surface exists for.
day = broker.clock + 1
broker.acquire("team-ml", 0, day)
broker.acquire("team-sim", 2, day)

print()
active = broker.active_leases()
print_table(
    ["grant", "tenant", "pod", "acquired", "expires"],
    [
        [g.grant_id, g.tenant, g.resource, g.acquired_at, g.expires_at]
        for g in active
    ],
    title=f"{len(active)} grants still active at day {day}",
)
for grant in active:
    broker.force_release(grant.grant_id)
print(f"force-released {len(active)} stuck grants (admin sweep); "
      f"{broker.num_active} remain")

# Same traffic, naive backend: always rent the shortest lease.
naive = LeaseBroker(SCHEDULE, policy_factory=lambda r: AlwaysShortest(SCHEDULE))
replay_trace(naive, trace)

print()
print_table(
    ["backend", "cost", "vs primal-dual"],
    [
        ["primal-dual (Alg 1)", replay_cost, 1.0],
        ["always-shortest", naive.cost, naive.cost / replay_cost],
    ],
    title="backend comparison on identical traffic",
)
