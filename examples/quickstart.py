#!/usr/bin/env python3
"""Quickstart: the parking permit problem in ten lines of library use.

Scenario (thesis Figure 1.1): on rainy days you must hold a parking
permit; permits come in several durations with economies of scale.  We
generate a month of weather, run Meyerson's deterministic and randomized
online algorithms, and compare against the exact offline optimum.

Run:  python examples/quickstart.py
"""

from repro.core import LeaseSchedule, run_online
from repro.analysis import print_table, verify_parking
from repro.parking import (
    DeterministicParkingPermit,
    RandomizedParkingPermit,
    make_instance,
    optimal_general,
    optimal_interval,
)
from repro.workloads import make_rng, markov_days


def main() -> None:
    # Permits: 1 day ($1), 2 days ($1.80), 4 days ($3.24), 8 days ($5.83).
    schedule = LeaseSchedule.power_of_two(4, base_cost=1.0, cost_growth=1.8)
    print("Permit types:", [(t.length, round(t.cost, 2)) for t in schedule])

    # A rainy season: weather with memory (rain tends to persist).
    rng = make_rng(2015)
    rainy_days = markov_days(
        horizon=90, start_rain=0.15, stay_rain=0.8, rng=rng
    )
    instance = make_instance(schedule, rainy_days)
    print(f"{instance.num_days} rainy days over {instance.horizon} days\n")

    # Online algorithms: decisions made day by day, no forecasts.
    deterministic = DeterministicParkingPermit(schedule)
    run_online(deterministic, instance.rainy_days)
    verify_parking(instance, list(deterministic.leases)).raise_if_failed()

    randomized = RandomizedParkingPermit(schedule, seed=7)
    run_online(randomized, instance.rainy_days)
    verify_parking(instance, list(randomized.leases)).raise_if_failed()

    # Offline optima (they know the whole season in advance).
    opt = optimal_general(instance)
    opt_interval = optimal_interval(instance)

    print_table(
        ["algorithm", "cost", "vs optimal"],
        [
            ["deterministic online (Alg 1)", deterministic.cost,
             deterministic.cost / opt.cost],
            ["randomized online (Alg 2)", randomized.cost,
             randomized.cost / opt.cost],
            ["offline optimum (interval model)", opt_interval.cost,
             opt_interval.cost / opt.cost],
            ["offline optimum (general)", opt.cost, 1.0],
        ],
        title="Season summary",
    )
    print(
        f"\nTheorem 2.7 guarantee: deterministic <= K x OPT "
        f"= {schedule.num_types} x {opt_interval.cost:.2f} "
        f"= {schedule.num_types * opt_interval.cost:.2f}"
    )


if __name__ == "__main__":
    main()
