"""Structured feasibility verification for every problem family.

Each verifier re-checks an online (or offline) solution against the raw
model semantics — independent of the algorithm's own bookkeeping — and
returns a :class:`VerificationReport` listing any unserved demands.  Tests
and benchmarks call these after every run; a silent infeasibility would
make every measured ratio meaningless.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.lease import Lease
from ..deadlines.model import OLDInstance
from ..deadlines.scld import SCLDInstance
from ..facility.model import Connection, FacilityLeasingInstance
from ..parking.model import ParkingPermitInstance
from ..setcover.model import SetMulticoverLeasingInstance
from ..setcover.special_cases import RepetitionsInstance


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of a feasibility check.

    Attributes:
        ok: whether every demand is served.
        failures: human-readable description of each unserved demand.
        checked: number of demands examined.
    """

    ok: bool
    failures: tuple[str, ...] = field(default_factory=tuple)
    checked: int = 0

    def raise_if_failed(self) -> None:
        """Raise ``AssertionError`` with the failure list when not ok."""
        if not self.ok:
            raise AssertionError(
                f"{len(self.failures)} of {self.checked} demands unserved: "
                + "; ".join(self.failures[:5])
            )


def verify_parking(
    instance: ParkingPermitInstance, leases: list[Lease]
) -> VerificationReport:
    """Every rainy day covered by some lease."""
    failures = [
        f"day {day} uncovered"
        for day in instance.rainy_days
        if not any(lease.covers(day) for lease in leases)
    ]
    return VerificationReport(
        ok=not failures,
        failures=tuple(failures),
        checked=len(instance.rainy_days),
    )


def verify_multicover(
    instance: SetMulticoverLeasingInstance, leases: list[Lease]
) -> VerificationReport:
    """Every demand covered by enough *distinct* leased sets."""
    failures = []
    for demand in instance.demands:
        got = len(instance.covering_sets(leases, demand))
        if got < demand.coverage:
            failures.append(
                f"element {demand.element}@{demand.arrival} has {got} of "
                f"{demand.coverage} sets"
            )
    return VerificationReport(
        ok=not failures,
        failures=tuple(failures),
        checked=len(instance.demands),
    )


def verify_facility(
    instance: FacilityLeasingInstance,
    leases: list[Lease],
    connections: list[Connection],
) -> VerificationReport:
    """Every client connected to a facility leased at its arrival step."""
    by_client = {connection.client: connection for connection in connections}
    failures = []
    for client in instance.clients:
        connection = by_client.get(client.ident)
        if connection is None:
            failures.append(f"client {client.ident} never connected")
            continue
        if not any(
            lease.resource == connection.facility
            and lease.covers(client.arrival)
            for lease in leases
        ):
            failures.append(
                f"client {client.ident} connected to facility "
                f"{connection.facility} with no active lease at "
                f"{client.arrival}"
            )
    return VerificationReport(
        ok=not failures,
        failures=tuple(failures),
        checked=len(instance.clients),
    )


def verify_old(
    instance: OLDInstance, leases: list[Lease]
) -> VerificationReport:
    """Every client's interval met by some lease."""
    failures = [
        f"client ({client.arrival},{client.slack}) unserved"
        for client in instance.clients
        if not any(
            lease.intersects(client.arrival, client.deadline)
            for lease in leases
        )
    ]
    return VerificationReport(
        ok=not failures,
        failures=tuple(failures),
        checked=len(instance.clients),
    )


def verify_repetitions(
    instance: RepetitionsInstance,
    assignments: list[tuple[int, int, int]],
    leases: list[Lease],
) -> VerificationReport:
    """Every repeated arrival got a fresh, containing, leased set.

    Re-checks the Corollary 3.5 requirements from the run's outputs
    alone: the assignment list matches the arrival stream one to one,
    each assigned set contains its element and holds a lease covering
    the arrival time, and no element reuses a set across its arrivals.
    """
    failures: list[str] = []
    if len(assignments) != len(instance.stream):
        failures.append(
            f"{len(assignments)} assignments for "
            f"{len(instance.stream)} arrivals"
        )
    used: dict[int, set[int]] = {}
    sets = instance.base.system.sets
    for (element, arrival), assignment in zip(instance.stream, assignments):
        got_element, got_arrival, set_index = assignment
        if (got_element, got_arrival) != (element, arrival):
            failures.append(
                f"assignment ({got_element},{got_arrival}) does not match "
                f"arrival ({element},{arrival})"
            )
            continue
        if not 0 <= set_index < len(sets):
            failures.append(
                f"element {element}@{arrival} assigned nonexistent "
                f"set {set_index}"
            )
            continue
        if element not in sets[set_index]:
            failures.append(
                f"element {element}@{arrival} assigned non-containing "
                f"set {set_index}"
            )
        elif not any(
            lease.resource == set_index and lease.covers(arrival)
            for lease in leases
        ):
            failures.append(
                f"element {element}@{arrival} assigned set {set_index} "
                "with no active lease"
            )
        elif set_index in used.get(element, set()):
            failures.append(
                f"element {element}@{arrival} reuses set {set_index}"
            )
        used.setdefault(element, set()).add(set_index)
    return VerificationReport(
        ok=not failures,
        failures=tuple(failures),
        checked=len(instance.stream),
    )


def verify_scld(
    instance: SCLDInstance, leases: list[Lease]
) -> VerificationReport:
    """Every deadline element served by a containing leased set."""
    failures = [
        f"element {demand.element}@{demand.arrival}+{demand.slack} unserved"
        for demand in instance.demands
        if not instance.is_served(leases, demand)
    ]
    return VerificationReport(
        ok=not failures,
        failures=tuple(failures),
        checked=len(instance.demands),
    )
