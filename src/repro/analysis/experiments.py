"""Experiment sweep runner shared by the benchmark suite.

Each thesis experiment (E1-E14 in DESIGN.md) is a parameter sweep
producing rows of ``(parameters, online cost, OPT, ratio, theory bound)``.
:class:`Sweep` collects such rows and renders/validates them uniformly so
each benchmark module stays focused on its workload, not on bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .tables import format_table


@dataclass(frozen=True, slots=True)
class ExperimentRow:
    """One sweep point: parameters plus measured and predicted quantities."""

    params: dict
    online_cost: float
    opt_cost: float
    bound: float | None = None
    note: str = ""

    @property
    def ratio(self) -> float:
        if self.opt_cost <= 0:
            return float("inf") if self.online_cost > 0 else 1.0
        return self.online_cost / self.opt_cost

    @property
    def within_bound(self) -> bool:
        """Whether the measured ratio respects the theory bound (if any)."""
        if self.bound is None:
            return True
        return self.ratio <= self.bound + 1e-6


@dataclass
class Sweep:
    """A named collection of experiment rows with rendering helpers."""

    name: str
    rows: list[ExperimentRow] = field(default_factory=list)

    def add(
        self,
        params: dict,
        online_cost: float,
        opt_cost: float,
        bound: float | None = None,
        note: str = "",
    ) -> ExperimentRow:
        """Record one sweep point and return it."""
        row = ExperimentRow(
            params=dict(params),
            online_cost=online_cost,
            opt_cost=opt_cost,
            bound=bound,
            note=note,
        )
        self.rows.append(row)
        return row

    @property
    def param_names(self) -> list[str]:
        names: list[str] = []
        for row in self.rows:
            for key in row.params:
                if key not in names:
                    names.append(key)
        return names

    def all_within_bounds(self) -> bool:
        """Whether every row respects its theory bound."""
        return all(row.within_bound for row in self.rows)

    def max_ratio(self) -> float:
        """Largest measured ratio across the sweep."""
        return max((row.ratio for row in self.rows), default=0.0)

    def render(self) -> str:
        """The sweep as an aligned table (the benchmark's printed output)."""
        names = self.param_names
        headers = names + ["online", "OPT", "ratio", "bound", "note"]
        table_rows: list[Sequence] = []
        for row in self.rows:
            table_rows.append(
                [row.params.get(name, "") for name in names]
                + [
                    row.online_cost,
                    row.opt_cost,
                    row.ratio,
                    row.bound if row.bound is not None else "",
                    row.note,
                ]
            )
        return format_table(headers, table_rows, title=self.name)
