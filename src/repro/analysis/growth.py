"""Growth-order estimation for competitive-ratio sweeps.

The thesis' bounds separate *orders of growth* — O(K) vs O(log K),
O(log n) vs time-independent — and the benchmarks' shape checks need a
principled way to say "this series grows like log x, not x".  This module
fits simple least-squares models through measured (x, ratio) points and
reports which of three canonical shapes — constant, logarithmic, linear —
explains the series best.

No numpy: ordinary least squares in two unknowns is closed-form, and the
series involved are a handful of points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .._validation import require


@dataclass(frozen=True, slots=True)
class GrowthFit:
    """One fitted model: ``ratio ~ intercept + slope * basis(x)``."""

    shape: str
    intercept: float
    slope: float
    residual: float

    def predict(self, x: float) -> float:
        return self.intercept + self.slope * _BASES[self.shape](x)


_BASES = {
    "constant": lambda x: 0.0,
    "logarithmic": lambda x: math.log(max(x, 1e-12)),
    "linear": lambda x: float(x),
}


def _least_squares(
    xs: Sequence[float], ys: Sequence[float], shape: str
) -> GrowthFit:
    basis = [_BASES[shape](x) for x in xs]
    n = len(xs)
    mean_b = sum(basis) / n
    mean_y = sum(ys) / n
    var_b = sum((b - mean_b) ** 2 for b in basis)
    if var_b < 1e-15:
        slope = 0.0
        intercept = mean_y
    else:
        cov = sum(
            (b - mean_b) * (y - mean_y) for b, y in zip(basis, ys)
        )
        slope = cov / var_b
        intercept = mean_y - slope * mean_b
    residual = sum(
        (y - (intercept + slope * b)) ** 2 for b, y in zip(basis, ys)
    )
    return GrowthFit(
        shape=shape, intercept=intercept, slope=slope, residual=residual
    )


def fit_growth(
    xs: Sequence[float], ys: Sequence[float]
) -> dict[str, GrowthFit]:
    """Fit all canonical shapes; returns a dict keyed by shape name."""
    require(len(xs) == len(ys), "xs and ys must have equal length")
    require(len(xs) >= 3, "need at least three points to compare shapes")
    require(all(x > 0 for x in xs), "xs must be positive")
    return {shape: _least_squares(xs, ys, shape) for shape in _BASES}


def best_shape(xs: Sequence[float], ys: Sequence[float]) -> str:
    """The canonical shape with the smallest residual.

    Ties (within 1e-12) break toward the *simpler* shape in the order
    constant < logarithmic < linear, so flat series are called constant
    even though the other models can represent them too.
    """
    fits = fit_growth(xs, ys)
    order = ["constant", "logarithmic", "linear"]
    best = order[0]
    for shape in order[1:]:
        if fits[shape].residual < fits[best].residual - 1e-12:
            best = shape
    return best


def grows_sublinearly(xs: Sequence[float], ys: Sequence[float]) -> bool:
    """Whether the series is better explained by log/constant than linear.

    The benchmarks' 'this is O(log K), not Theta(K)' check: true when the
    linear fit is not the strictly best model.
    """
    return best_shape(xs, ys) != "linear"
