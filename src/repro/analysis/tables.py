"""Plain-text table rendering for experiment output.

Benchmarks print the same rows the thesis' theorems predict; a small
formatter keeps that output aligned and dependency-free.  Numbers are
rendered with sensible precision, everything else with ``str``.
"""

from __future__ import annotations

from typing import Sequence


def _render(value) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Render rows as an aligned ASCII table (one string, no trailing \\n)."""
    rendered = [[_render(cell) for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[col]) for row in rendered))
        if rendered
        else len(header)
        for col, header in enumerate(headers)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> None:
    """Print :func:`format_table` output."""
    print(format_table(headers, rows, title=title))
