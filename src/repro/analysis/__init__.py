"""Competitive-analysis harness: verification, ratios, experiment sweeps.

The empirical counterpart of Definitions 2.1/2.2: verify feasibility of
every solution, measure online-vs-OPT ratios (in expectation for
randomized algorithms), and collect parameter sweeps into the tables the
benchmark suite prints.
"""

from .experiments import ExperimentRow, Sweep
from .growth import GrowthFit, best_shape, fit_growth, grows_sublinearly
from .ratio import (
    RatioSummary,
    expected_ratio,
    ratio_of,
    ratios_over_instances,
    summarize_reports,
)
from .tables import format_table, print_table
from .verify import (
    VerificationReport,
    verify_facility,
    verify_multicover,
    verify_old,
    verify_parking,
    verify_repetitions,
    verify_scld,
)

__all__ = [
    "ExperimentRow",
    "GrowthFit",
    "RatioSummary",
    "Sweep",
    "VerificationReport",
    "best_shape",
    "expected_ratio",
    "fit_growth",
    "format_table",
    "grows_sublinearly",
    "print_table",
    "ratio_of",
    "ratios_over_instances",
    "summarize_reports",
    "verify_facility",
    "verify_multicover",
    "verify_old",
    "verify_parking",
    "verify_repetitions",
    "verify_scld",
]
