"""Competitive-ratio measurement utilities.

Definitions 2.1/2.2 compare online cost against the offline optimum; the
experiments measure that ratio over seeded workloads.  Randomized
algorithms are measured in expectation (Section 2.1), so
:func:`expected_ratio` averages over independent coin-flip seeds while
holding the instance fixed.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.results import OptBounds, RatioReport


@dataclass(frozen=True, slots=True)
class RatioSummary:
    """Aggregate of ratio measurements over seeds or instances."""

    mean: float
    maximum: float
    minimum: float
    stdev: float
    count: int

    @classmethod
    def of(cls, ratios: Sequence[float]) -> "RatioSummary":
        """Summarise a non-empty sequence of ratios."""
        values = list(ratios)
        return cls(
            mean=statistics.fmean(values),
            maximum=max(values),
            minimum=min(values),
            stdev=statistics.stdev(values) if len(values) > 1 else 0.0,
            count=len(values),
        )


def ratio_of(online_cost: float, opt: OptBounds | float) -> float:
    """Conservative competitive ratio: online cost over the OPT lower bound."""
    lower = opt.lower if isinstance(opt, OptBounds) else float(opt)
    if lower <= 0:
        return float("inf") if online_cost > 0 else 1.0
    return online_cost / lower


def expected_ratio(
    run_with_seed: Callable[[int], float],
    opt: OptBounds | float,
    seeds: Sequence[int],
) -> RatioSummary:
    """Expected ratio of a randomized algorithm on one fixed instance.

    Args:
        run_with_seed: runs the algorithm with the given coin seed and
            returns its cost.
        opt: the instance's offline optimum (or bounds).
        seeds: independent seeds; 20+ give stable means for the
            logarithmic-factor experiments.
    """
    return RatioSummary.of(
        [ratio_of(run_with_seed(seed), opt) for seed in seeds]
    )


def ratios_over_instances(
    runs: Sequence[tuple[float, OptBounds | float]]
) -> RatioSummary:
    """Summarise ``(online cost, opt)`` pairs across different instances."""
    return RatioSummary.of([ratio_of(cost, opt) for cost, opt in runs])


def summarize_reports(reports: Sequence[RatioReport]) -> RatioSummary:
    """Aggregate per-run :class:`RatioReport` ratios across scenarios.

    The scenario-replay engine produces one report per (scenario, seed)
    job; this is the cross-scenario rollup its aggregate table prints.
    """
    return RatioSummary.of([report.ratio for report in reports])
