"""Fault injection: SIGKILL workers mid-loadgen, prove exactly-once.

The harness behind ``engine chaos``.  It runs a normal clustered
loadgen cycle (:func:`~repro.cluster.loadgen.cluster_once`) over a
WAL'd, supervised fleet, but with a *kill schedule* wired into the
drive loop: at chosen simulated days, chosen workers take ``SIGKILL``
mid-traffic.  The router's supervision respawns each victim with its
WAL directory, the successor recovers a byte-identical broker, the
in-flight ops resend under the ``retry`` marker, and the drive rides
through the crash as a stall.

The verdict is the repository's strongest gate applied under failure:
the merged clustered report must equal the inline replay of the
canonical trace **byte for byte** — same float cost, same lease tuple,
same broker counters.  Any lost ack (``fsync`` weaker than ``always``),
double-applied retry (broken dedup), or mis-ordered recovery breaks the
equality and fails the run.

Kill schedules are deterministic: a list of ``(day, worker)`` pairs,
with :func:`default_kill_schedule` spreading kills evenly through the
horizon round-robin over workers — no randomness, so a failing chaos
run reproduces exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.loadgen import (
    ClusterInstance,
    build_cluster_instance,
    cluster_once,
    run_cluster_instance,
)
from ..core.results import RunResult
from ..errors import ModelError
from ..obs.metrics import MetricsRegistry

#: Kills per run when no explicit schedule is given.
DEFAULT_KILLS = 2


def build_chaos_instance(
    workload: str,
    horizon: int,
    seed: int,
    wal_root: str,
    num_resources: int = 8,
    tenants_per_resource: int = 2,
    num_workers: int = 2,
    shards_per_worker: int = 2,
    fsync: str = "always",
    snapshot_every: int | None = None,
    tick_every: int = 32,
    topology: str = "routed",
) -> ClusterInstance:
    """A cluster instance shaped for fault injection.

    ``record=True`` is forced — the workers' applied-event logs are what
    recovery rebuilds its retry-dedup keys from, the exactly-once half
    of surviving a kill.  ``fsync`` defaults to ``always`` because only
    per-append fsync makes *acked* ops survive ``SIGKILL``; weaker modes
    trade that away for throughput and would fail the byte-identity
    gate whenever a kill lands inside an unsynced batch.

    ``topology="direct"`` drives the kills against the two-plane shape:
    tenants hold direct worker connections, so a kill severs *their*
    links too, and recovery exercises the client-side stale-route
    re-handshake + marked resend on top of the router's supervision.
    """
    return build_cluster_instance(
        workload,
        horizon,
        seed,
        num_resources=num_resources,
        tenants_per_resource=tenants_per_resource,
        tick_every=tick_every,
        num_workers=num_workers,
        shards_per_worker=shards_per_worker,
        record=True,
        wal_root=wal_root,
        fsync=fsync,
        snapshot_every=snapshot_every,
        topology=topology,
    )


def default_kill_schedule(
    instance: ClusterInstance, kills: int = DEFAULT_KILLS
) -> tuple[tuple[int, int], ...]:
    """``kills`` deterministic ``(day, worker)`` pairs through the run.

    Kill days sit at even fractions of the distinct-day sequence (one
    third and two thirds in, for the default two), and victims rotate
    round-robin over the fleet, so every run of the same instance kills
    the same workers at the same points.
    """
    days = sorted({event.time for event in instance.trace.events})
    if not days or kills < 1:
        return ()
    picks = []
    for k in range(kills):
        day = days[min(len(days) - 1, (k + 1) * len(days) // (kills + 1))]
        picks.append((day, k % instance.num_workers))
    return tuple(dict.fromkeys(picks))


@dataclass(frozen=True)
class ChaosResult:
    """One chaos run's verdict and the evidence behind it."""

    scheduled: tuple[tuple[int, int], ...]
    executed: tuple[tuple[int, int], ...]
    respawns: int
    requests: int
    report_equal: bool
    cost: float
    fsync: str
    result: RunResult

    @property
    def ok(self) -> bool:
        """Did every kill recover into byte-identical state?"""
        return self.report_equal and len(self.executed) == len(self.scheduled)


def run_chaos(
    instance: ClusterInstance,
    kill_schedule=None,
    retry_for: float = 60.0,
    metrics: MetricsRegistry | None = None,
) -> ChaosResult:
    """Drive the instance through its kill schedule and judge the wreck.

    Each scheduled ``(day, worker)`` sends ``SIGKILL`` to that worker's
    process right before the day's tick and bursts hit the router; the
    drive then proceeds normally — stalling while supervision respawns
    the victim — and the merged report is compared against the inline
    replay of the canonical trace.
    """
    if instance.wal_root is None:
        raise ModelError(
            "chaos needs a WAL'd cluster (set wal_root); killing an "
            "undurable worker loses state by construction"
        )
    if not instance.record:
        raise ModelError(
            "chaos needs record=True: the applied-event log is what a "
            "recovered worker deduplicates retried ops against"
        )
    if kill_schedule is None:
        kill_schedule = default_kill_schedule(instance)
    schedule: dict[int, list[int]] = {}
    for day, worker in kill_schedule:
        if not 0 <= worker < instance.num_workers:
            raise ModelError(
                f"kill schedule names worker {worker}, fleet has "
                f"{instance.num_workers}"
            )
        schedule.setdefault(day, []).append(worker)
    executed: list[tuple[int, int]] = []

    def fault_hook(day: int, workers) -> None:
        for victim in schedule.get(day, ()):
            proc = workers[victim]
            if proc.alive:
                proc.process.kill()
                executed.append((day, victim))

    report = cluster_once(
        instance, retry_for=retry_for, metrics=metrics,
        fault_hook=fault_hook,
    )
    result = run_cluster_instance(instance, report=report)
    detail = result.detail["cluster"]
    return ChaosResult(
        scheduled=tuple(kill_schedule),
        executed=tuple(executed),
        respawns=report.get("respawns", 0),
        requests=report["requests"],
        report_equal=bool(detail["report_equal"]),
        cost=result.cost,
        fsync=instance.fsync,
        result=result,
    )
