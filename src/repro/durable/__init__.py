"""Durability layer: per-shard WALs, snapshots, recovery, fault injection.

:mod:`repro.durable.wal` persists each serving shard's applied events as
binary wire frames plus periodic broker snapshots, and recovers a
byte-identical broker on restart.  :mod:`repro.durable.chaos` is the
fault-injection harness: it SIGKILLs cluster workers mid-loadgen on a
schedule and asserts the merged clustered report still matches the
inline replay byte for byte.
"""

from .wal import (
    DEFAULT_SNAPSHOT_EVERY,
    FSYNC_MODES,
    ShardRecovery,
    ShardWal,
    read_wal_records,
    recover_shard,
    require_fsync_mode,
)

__all__ = [
    "DEFAULT_SNAPSHOT_EVERY",
    "FSYNC_MODES",
    "ShardRecovery",
    "ShardWal",
    "read_wal_records",
    "recover_shard",
    "require_fsync_mode",
]
