"""Per-shard write-ahead log and grant-table snapshots.

One :class:`ShardWal` owns a directory holding two files:

* ``wal.log`` — an append-only sequence of *applied-event records*.
  Each record is one binary-codec wire frame (the PR 4 mutation layout,
  header and all): ``op`` is the applied operation (``acquire`` —
  covering renews too, exactly like the applied-trace stream —
  ``release``, or ``tick``), the envelope's u64 ``id`` field carries the
  shard's monotonic *sequence number*, and ``time`` is the post-ratchet
  applied day.  Reusing the wire frame buys the codec's torn-write
  semantics for free: a record cut short by a crash is an incomplete
  frame, which recovery simply ignores.
* ``snap.json`` — the latest broker snapshot
  (:meth:`~repro.engine.broker.LeaseBroker.snapshot_state`), the
  sequence number it covers, and — when the server records applied
  traces — the applied event list itself, so the ``trace`` op stays
  exact across recovery and WAL truncation.  Written atomically
  (tmp + fsync + rename), after which the log is truncated.

The log handle is unbuffered: every append is a single ``write``
syscall, so a record sits in the OS page cache — and survives this
process's own death, ``kill -9`` included — the moment :meth:`append`
returns, under every fsync mode.  The **fsync policy** (``fsync=``)
therefore only governs durability against a *host* crash: ``"off"``
never fsyncs, ``"batch"`` group-commits an fsync at burst boundaries
(when a shard's dispatch queue drains) at most every
:data:`BATCH_SYNC_INTERVAL` seconds, and ``"always"`` fsyncs every
append before the caller acks.  Only ``"always"`` makes an acked
operation power-loss durable; ``"batch"`` bounds that loss window to
the sync interval.  Recovery is correct under any mode: the recovered
state is exactly the prefix the log captured, and the cluster layer
re-drives anything un-acked.

**Recovery invariant.**  ``restore(snapshot) + replay(records with seq >
snapshot.seq)`` is byte-identical to the broker that wrote them — the
crash window between snapshot write and log truncation is covered by
the seq filter (duplicate records below the snapshot's seq are
skipped), and a torn final record is dropped at the frame boundary.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ModelError
from ..serve.protocol import (
    BIN_FLAG,
    HEADER,
    MUTATION_OPS,
    ProtocolError,
    _BIN_KIND_MUTATION,
    _MUTATION_OPCODES,
    _MUTATION_STRUCT,
    _split_header,
    decode_body,
    decode_body_bin,
)

#: Valid ``fsync=`` policies, weakest first.
FSYNC_MODES: tuple[str, ...] = ("off", "batch", "always")

#: Minimum seconds between fsyncs under ``fsync="batch"``.  Batch
#: boundaries on a busy single-core server can arrive once per request,
#: which would degrade group commit into per-op fsync; rate-limiting the
#: sync keeps batch mode cheap while bounding the power-loss window.
#: Appends land in the OS page cache immediately (the handle is
#: unbuffered), so only a *host* crash can eat the portion synced less
#: than this interval ago — the same order of window as PostgreSQL's
#: asynchronous commit or a metadata-journalled filesystem's commit
#: interval.  Every shard fsyncs on the event-loop thread, so the
#: interval also caps how often the whole server stalls behind the
#: disk.
BATCH_SYNC_INTERVAL = 0.25

#: Default applied-event count between automatic snapshots.
DEFAULT_SNAPSHOT_EVERY = 4096

SNAPSHOT_VERSION = 1

WAL_FILE = "wal.log"
SNAPSHOT_FILE = "snap.json"


def require_fsync_mode(mode: str) -> str:
    """Validate an ``fsync=`` policy name, returning it."""
    if mode not in FSYNC_MODES:
        raise ModelError(
            f"unknown fsync mode {mode!r}; known: {', '.join(FSYNC_MODES)}"
        )
    return mode


class ShardWal:
    """Append-only applied-event log plus snapshot for one shard.

    Args:
        directory: the shard's WAL directory (created if missing).
        fsync: durability policy; see the module docstring.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when given, appends/fsyncs/bytes/snapshots are counted under
            a ``shard`` label.
        shard: label value for the metrics series.
    """

    def __init__(
        self,
        directory: str | Path,
        fsync: str = "batch",
        metrics=None,
        shard: int | str = 0,
    ):
        self.fsync = require_fsync_mode(fsync)
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.log_path = self.directory / WAL_FILE
        self.snapshot_path = self.directory / SNAPSHOT_FILE
        # Unbuffered: one write syscall per append, straight into the
        # OS page cache — no Python-side buffer to lose with the
        # process, and nothing to flush at burst boundaries.
        self._handle = open(self.log_path, "ab", buffering=0)
        #: Last sequence number appended (or recovered into).
        self.seq = 0
        #: Appends since the last snapshot, the snapshot-cadence counter.
        self.appended_since_snapshot = 0
        # Bytes written since the last fsync.
        self._dirty = False
        # Group-commit clock starts at open: the first sync lands once
        # the interval elapses, so the loss window is bounded from the
        # first append without paying an fsync on the first boundary.
        self._last_sync = time.monotonic()
        if metrics is not None:
            label = str(shard)
            self._appends = metrics.counter(
                "wal_appends_total", "WAL records appended", shard=label
            )
            self._fsyncs = metrics.counter(
                "wal_fsyncs_total", "WAL fsync calls", shard=label
            )
            self._bytes = metrics.counter(
                "wal_bytes_total", "WAL bytes written", shard=label
            )
            self._snapshots = metrics.counter(
                "wal_snapshots_total", "snapshots written", shard=label
            )
        else:
            self._appends = self._fsyncs = None
            self._bytes = self._snapshots = None

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(
        self,
        op: str,
        time: int,
        tenant: str | None = None,
        resource: int | None = None,
    ) -> int:
        """Append one applied-event record; returns its sequence number.

        Under ``fsync="always"`` the record is durable when this
        returns; other modes defer the fsync to :meth:`flush` (batch
        boundaries).  The frame is packed directly into the binary
        mutation layout — byte-identical to
        ``encode_frame(request(op, seq, ...), CODEC_BIN)``, minus the
        dict round-trip, because this runs once per applied event on
        the serving hot path.
        """
        self.seq += 1
        if op == "tick":
            body = _MUTATION_STRUCT.pack(
                _BIN_KIND_MUTATION, _MUTATION_OPCODES["tick"],
                self.seq, time, 0, 0,
            )
        else:
            raw = tenant.encode("utf-8")
            body = _MUTATION_STRUCT.pack(
                _BIN_KIND_MUTATION, _MUTATION_OPCODES[op],
                self.seq, time, resource, len(raw),
            ) + raw
        frame = HEADER.pack(len(body) | BIN_FLAG) + body
        self._handle.write(frame)
        self.appended_since_snapshot += 1
        self._dirty = True
        if self._appends is not None:
            self._appends.inc()
            self._bytes.inc(len(frame))
        if self.fsync == "always":
            self._sync()
        return self.seq

    def _sync(self) -> None:
        os.fsync(self._handle.fileno())
        self._dirty = False
        self._last_sync = time.monotonic()
        if self._fsyncs is not None:
            self._fsyncs.inc()

    def flush(self) -> None:
        """Batch boundary: maybe group-commit an fsync.

        Appends already sit in the page cache (the handle is
        unbuffered), so ``"batch"`` only fsyncs here — and only when
        the last sync is at least :data:`BATCH_SYNC_INTERVAL` old; a
        busy server's boundaries can arrive per-request, and syncing
        each would turn batch mode into ``"always"``.  ``"off"`` and
        ``"always"`` have nothing to do.
        """
        if (
            self._dirty
            and self.fsync == "batch"
            and time.monotonic() - self._last_sync >= BATCH_SYNC_INTERVAL
        ):
            self._sync()

    # ------------------------------------------------------------------
    # Snapshots and truncation
    # ------------------------------------------------------------------
    def write_snapshot(
        self, state: dict, applied: list[dict] | None = None
    ) -> None:
        """Atomically persist a broker snapshot, then truncate the log.

        The snapshot lands via tmp + fsync + rename, so a crash leaves
        either the old snapshot or the new one, never a torn file.  The
        log is truncated only *after* the rename; a crash in between
        merely leaves records the next recovery skips by seq.
        """
        document = {
            "version": SNAPSHOT_VERSION,
            "seq": self.seq,
            "state": state,
            "applied": applied,
        }
        tmp_path = self.snapshot_path.with_name(SNAPSHOT_FILE + ".tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.snapshot_path)
        self._fsync_directory()
        # Truncate: everything up to `seq` now lives in the snapshot.
        self._handle.close()
        self._handle = open(self.log_path, "wb", buffering=0)
        self._dirty = False
        self.appended_since_snapshot = 0
        if self._snapshots is not None:
            self._snapshots.inc()

    def _fsync_directory(self) -> None:
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def close(self) -> None:
        """Close the log handle, syncing a dirty batch-mode log first.

        The sync is unconditional — a clean close should leave no
        power-loss window behind, whatever the group-commit clock says.
        """
        if not self._handle.closed:
            if self._dirty and self.fsync == "batch":
                self._sync()
            self._handle.close()


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ShardRecovery:
    """What one shard directory yields on restart.

    ``state`` is the snapshot's broker state (``None`` for a cold
    start), ``applied`` the snapshot's embedded applied-event payloads
    (``None`` unless the server was recording), ``records`` the log
    records past the snapshot in seq order, and ``last_seq`` the highest
    sequence number recovered — the value a fresh :class:`ShardWal`
    should continue from.
    """

    state: dict | None = None
    applied: list[dict] | None = None
    records: list[dict] = field(default_factory=list)
    last_seq: int = 0

    @property
    def events(self) -> int:
        """How many log records will be replayed."""
        return len(self.records)


def read_wal_records(path: str | Path) -> list[dict]:
    """Decode every complete record of one WAL file, in file order.

    Stops at the first incomplete frame (a torn final write) or
    undecodable record (tail corruption) — everything before the cut is
    kept, which is exactly the durable prefix the fsync policy promised.
    """
    data = Path(path).read_bytes()
    records: list[dict] = []
    offset = 0
    size = len(data)
    while size - offset >= HEADER.size:
        (word,) = HEADER.unpack_from(data, offset)
        try:
            length, binary = _split_header(word)
        except ProtocolError:
            break
        end = offset + HEADER.size + length
        if end > size:
            break  # torn final record
        body = data[offset + HEADER.size:end]
        try:
            payload = decode_body_bin(body) if binary else decode_body(body)
        except ProtocolError:
            break
        if (
            payload.get("op") in MUTATION_OPS
            and isinstance(payload.get("id"), int)
        ):
            records.append(payload)
        offset = end
    return records


def load_snapshot(path: str | Path) -> dict | None:
    """Read one ``snap.json``; ``None`` when absent."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ModelError(f"corrupt snapshot {path}: {exc}") from exc
    if document.get("version") != SNAPSHOT_VERSION:
        raise ModelError(
            f"{path}: unsupported snapshot version "
            f"{document.get('version')!r}"
        )
    return document


def recover_shard(directory: str | Path) -> ShardRecovery:
    """Load a shard directory back into snapshot + replayable records.

    Records at or below the snapshot's sequence number are skipped —
    they double-cover the window between a snapshot landing and the log
    truncating, should a crash split the two.
    """
    directory = Path(directory)
    recovery = ShardRecovery()
    snapshot = load_snapshot(directory / SNAPSHOT_FILE)
    if snapshot is not None:
        recovery.state = snapshot["state"]
        recovery.applied = snapshot.get("applied")
        recovery.last_seq = int(snapshot["seq"])
    log_path = directory / WAL_FILE
    if log_path.exists():
        for record in read_wal_records(log_path):
            if record["id"] > recovery.last_seq:
                recovery.records.append(record)
                recovery.last_seq = record["id"]
    return recovery
