"""Online-run driver: feed a demand sequence to an algorithm in time order.

All algorithms in the library are *event driven* — they expose
``on_demand`` and keep their own state — so the driver is a thin loop that
enforces the one rule of the online setting: demands are revealed in
non-decreasing arrival order and decisions are never revisited.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..errors import ModelError
from .results import RunResult


def run_online(
    algorithm,
    demands: Sequence,
    arrival_of: Callable = None,
    name: str = None,
) -> RunResult:
    """Feed ``demands`` to ``algorithm`` in arrival order; return the result.

    Args:
        algorithm: object with ``on_demand(demand)``, ``cost`` and
            ``leases`` (see :class:`repro.core.framework.OnlineLeasingAlgorithm`).
        demands: the demand sequence.  Must already be sorted by arrival;
            the driver validates rather than sorts, because silently
            reordering would hide instance-construction bugs.
        arrival_of: extracts the arrival day from a demand; defaults to the
            demand's ``arrival`` attribute, falling back to the demand
            itself for bare-int demand sequences (parking permit days).
        name: algorithm name for the report; defaults to the class name.

    Returns:
        A :class:`RunResult` with the final cost and purchases.
    """
    if arrival_of is None:
        def arrival_of(demand):
            return getattr(demand, "arrival", demand)

    previous = None
    count = 0
    for demand in demands:
        arrival = arrival_of(demand)
        if previous is not None and arrival < previous:
            raise ModelError(
                "demands must be fed in non-decreasing arrival order: "
                f"saw arrival {arrival} after {previous}"
            )
        previous = arrival
        algorithm.on_demand(demand)
        count += 1

    return RunResult(
        algorithm=name or type(algorithm).__name__,
        cost=algorithm.cost,
        leases=tuple(algorithm.leases),
        num_demands=count,
    )


def replay_prefixes(
    algorithm_factory: Callable[[], object],
    demands: Sequence,
    prefix_lengths: Iterable[int],
) -> list[float]:
    """Online cost after each demand-sequence prefix (fresh algorithm each).

    Used by monotonicity property tests: online cost is non-decreasing in
    the demand prefix because decisions are irrevocable.
    """
    costs: list[float] = []
    for length in prefix_lengths:
        algorithm = algorithm_factory()
        for demand in demands[:length]:
            algorithm.on_demand(demand)
        costs.append(algorithm.cost)
    return costs
