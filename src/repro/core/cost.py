"""Categorised cost accounting for online runs.

Facility leasing splits its objective into *leasing* plus *connection*
costs; the other problems only lease.  :class:`CostLedger` records every
charge with a category and the simulation day it was incurred, so
experiments can report cost decompositions and cost-over-time curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Charge:
    """One recorded expense: ``amount`` in ``category`` at day ``time``."""

    time: int
    category: str
    amount: float
    note: str = ""


@dataclass
class CostLedger:
    """Append-only list of charges with per-category totals."""

    charges: list[Charge] = field(default_factory=list)

    def add(
        self, time: int, category: str, amount: float, note: str = ""
    ) -> None:
        """Record a charge of ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"charges must be non-negative, got {amount}")
        self.charges.append(Charge(time, category, amount, note))

    @property
    def total(self) -> float:
        """Sum of all charges across categories."""
        return sum(charge.amount for charge in self.charges)

    def total_for(self, category: str) -> float:
        """Sum of charges recorded under ``category``."""
        return sum(
            charge.amount
            for charge in self.charges
            if charge.category == category
        )

    def by_category(self) -> dict[str, float]:
        """Totals keyed by category name."""
        totals: dict[str, float] = {}
        for charge in self.charges:
            totals[charge.category] = (
                totals.get(charge.category, 0.0) + charge.amount
            )
        return totals

    def cumulative_by_day(self) -> list[tuple[int, float]]:
        """Running total after each day with at least one charge.

        Returns ``(day, cumulative_total)`` pairs sorted by day — the
        cost-over-time curve used in the example scripts.
        """
        per_day: dict[int, float] = {}
        for charge in self.charges:
            per_day[charge.time] = per_day.get(charge.time, 0.0) + charge.amount
        running = 0.0
        curve: list[tuple[int, float]] = []
        for day in sorted(per_day):
            running += per_day[day]
            curve.append((day, running))
        return curve
