"""Purchased-lease bookkeeping shared by every online algorithm.

:class:`LeaseStore` records which ``(resource, lease type, start)`` triples
have been bought, answers coverage queries ("is resource ``r`` leased at
day ``t``?"), and accumulates total cost.  Purchases are idempotent: buying
the same triple twice is a no-op and costs nothing, matching the ILP
formulations where each indicator variable is set to one at most once.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from .lease import Lease


class LeaseStore:
    """An append-only set of purchased leases with coverage queries.

    The store is deliberately simple — a dict keyed by the lease identity
    triple plus a per-resource index — because instance sizes in the
    reproduction are simulation-scale (thousands of leases, not millions).
    Three additions serve incremental consumers such as the
    :mod:`repro.engine` broker: an O(1) coverage horizon
    (:meth:`furthest_end` / :attr:`coverage_horizon`, which the broker's
    covered fast path reads per event), :meth:`leases_since` (generic
    incremental polling of new purchases without re-materialising the
    full tuple), and an opt-in expiry watch (:meth:`pop_expired` /
    :attr:`earliest_expiry`, a min-heap on lease end).  The watch is
    built lazily on first use, so algorithms that never poll it pay
    nothing per purchase.
    """

    def __init__(self) -> None:
        self._leases: dict[tuple[int, int, int], Lease] = {}
        self._by_resource: dict[int, list[Lease]] = {}
        self._order: list[Lease] = []
        self._total_cost = 0.0
        # resource -> max lease end ever purchased; O(1) coverage-horizon
        # queries for serving-layer fast paths (see furthest_end).
        self._max_end: dict[int, int] = {}
        #: Largest (exclusive) lease end ever purchased, 0 when empty.
        #: Public so hot paths can read the horizon as a bare attribute;
        #: treat as read-only.
        self.coverage_horizon: int = 0
        # (end, sequence, lease) — sequence breaks ties so heapq never
        # compares Lease objects.  None until a caller opts in.
        self._expiry_heap: list[tuple[int, int, Lease]] | None = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def buy(self, lease: Lease) -> bool:
        """Record a purchase; return ``True`` iff the lease is new.

        Re-buying an identical triple is free (the indicator variable is
        already one), so algorithms may call :meth:`buy` unconditionally.
        """
        resource = lease.resource
        key = (resource, lease.type_index, lease.start)
        leases = self._leases
        if key in leases:
            return False
        leases[key] = lease
        self._by_resource.setdefault(resource, []).append(lease)
        self._order.append(lease)
        self._total_cost += lease.cost
        end = lease.start + lease.length
        known = self._max_end.get(resource)
        if known is None or end > known:
            self._max_end[resource] = end
        if end > self.coverage_horizon:
            self.coverage_horizon = end
        if self._expiry_heap is not None:
            heapq.heappush(
                self._expiry_heap, (end, len(self._order), lease)
            )
        return True

    def buy_all(self, leases: Iterable[Lease]) -> int:
        """Buy each lease in ``leases``; return how many were new."""
        return sum(1 for lease in leases if self.buy(lease))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._leases)

    def __iter__(self) -> Iterator[Lease]:
        return iter(self._leases.values())

    def __contains__(self, key: tuple[int, int, int]) -> bool:
        return key in self._leases

    @property
    def total_cost(self) -> float:
        """Sum of costs over all distinct purchased leases."""
        return self._total_cost

    @property
    def leases(self) -> tuple[Lease, ...]:
        """All purchased leases in purchase order."""
        return tuple(self._order)

    def leases_since(self, start: int) -> list[Lease]:
        """Purchases from position ``start`` onwards, in purchase order.

        Incremental consumers (the broker's per-resource coverage index)
        poll this with their last-seen ``len(store)`` so each lease is
        examined once, instead of re-materialising the full purchase
        tuple on every event.
        """
        return self._order[start:]

    def furthest_end(self, resource: int | None = None) -> int | None:
        """Largest (exclusive) ``end`` purchased, O(1).

        With a ``resource``, restricted to that resource's leases; with
        ``None``, across every purchase.  ``None`` when there are no
        matching purchases.  For policies whose purchases always start at
        or before the day that triggered them — every primal-dual
        algorithm in the library — this *is* the coverage horizon: day
        ``t`` is covered iff ``furthest_end(...) > t``.  The broker's
        covered fast path rides on exactly this query.
        """
        if resource is None:
            return self.coverage_horizon if self._leases else None
        return self._max_end.get(resource)

    def owns(self, resource: int, type_index: int, start: int) -> bool:
        """Whether the exact triple has been purchased."""
        return (resource, type_index, start) in self._leases

    def covers(self, resource: int, t: int) -> bool:
        """Whether some purchased lease of ``resource`` covers day ``t``."""
        return any(
            lease.covers(t) for lease in self._by_resource.get(resource, ())
        )

    def covering(self, resource: int, t: int) -> list[Lease]:
        """All purchased leases of ``resource`` covering day ``t``."""
        return [
            lease
            for lease in self._by_resource.get(resource, ())
            if lease.covers(t)
        ]

    def covering_any_resource(self, t: int) -> list[Lease]:
        """All purchased leases (any resource) covering day ``t``."""
        return [lease for lease in self._leases.values() if lease.covers(t)]

    def resources_covering(self, t: int) -> set[int]:
        """Distinct resources with at least one active lease at day ``t``."""
        return {
            resource
            for resource, leases in self._by_resource.items()
            if any(lease.covers(t) for lease in leases)
        }

    # ------------------------------------------------------------------
    # Expiry watch (opt-in, built lazily)
    # ------------------------------------------------------------------
    def _watch(self) -> list[tuple[int, int, Lease]]:
        if self._expiry_heap is None:
            self._expiry_heap = [
                (lease.end, index, lease)
                for index, lease in enumerate(self._order)
            ]
            heapq.heapify(self._expiry_heap)
        return self._expiry_heap

    @property
    def earliest_expiry(self) -> int | None:
        """Smallest ``end`` among leases not yet drained by :meth:`pop_expired`."""
        heap = self._watch()
        if not heap:
            return None
        return heap[0][0]

    def pop_expired(self, now: int) -> list[Lease]:
        """Drain and return every lease whose window ended by day ``now``.

        Each purchased lease is returned exactly once, in ``end`` order,
        the first time ``now`` reaches its (exclusive) end.  The purchase
        record itself is untouched — the store stays append-only; only the
        expiry *watch* is consumed.  Cost is O(log n) per expired lease,
        so an event-driven consumer can track expirations over a long
        stream without ever rescanning its whole lease table.
        """
        heap = self._watch()
        expired: list[Lease] = []
        while heap and heap[0][0] <= now:
            expired.append(heapq.heappop(heap)[2])
        return expired

    def intersecting(
        self, resource: int, first: int, last: int
    ) -> list[Lease]:
        """Leases of ``resource`` meeting the closed interval ``[first, last]``."""
        return [
            lease
            for lease in self._by_resource.get(resource, ())
            if lease.intersects(first, last)
        ]
