"""Purchased-lease bookkeeping shared by every online algorithm.

:class:`LeaseStore` records which ``(resource, lease type, start)`` triples
have been bought, answers coverage queries ("is resource ``r`` leased at
day ``t``?"), and accumulates total cost.  Purchases are idempotent: buying
the same triple twice is a no-op and costs nothing, matching the ILP
formulations where each indicator variable is set to one at most once.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .lease import Lease


class LeaseStore:
    """An append-only set of purchased leases with coverage queries.

    The store is deliberately simple — a dict keyed by the lease identity
    triple plus a per-resource index — because instance sizes in the
    reproduction are simulation-scale (thousands of leases, not millions).
    """

    def __init__(self) -> None:
        self._leases: dict[tuple[int, int, int], Lease] = {}
        self._by_resource: dict[int, list[Lease]] = {}
        self._total_cost = 0.0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def buy(self, lease: Lease) -> bool:
        """Record a purchase; return ``True`` iff the lease is new.

        Re-buying an identical triple is free (the indicator variable is
        already one), so algorithms may call :meth:`buy` unconditionally.
        """
        if lease.key in self._leases:
            return False
        self._leases[lease.key] = lease
        self._by_resource.setdefault(lease.resource, []).append(lease)
        self._total_cost += lease.cost
        return True

    def buy_all(self, leases: Iterable[Lease]) -> int:
        """Buy each lease in ``leases``; return how many were new."""
        return sum(1 for lease in leases if self.buy(lease))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._leases)

    def __iter__(self) -> Iterator[Lease]:
        return iter(self._leases.values())

    def __contains__(self, key: tuple[int, int, int]) -> bool:
        return key in self._leases

    @property
    def total_cost(self) -> float:
        """Sum of costs over all distinct purchased leases."""
        return self._total_cost

    @property
    def leases(self) -> tuple[Lease, ...]:
        """All purchased leases in purchase order."""
        return tuple(self._leases.values())

    def owns(self, resource: int, type_index: int, start: int) -> bool:
        """Whether the exact triple has been purchased."""
        return (resource, type_index, start) in self._leases

    def covers(self, resource: int, t: int) -> bool:
        """Whether some purchased lease of ``resource`` covers day ``t``."""
        return any(
            lease.covers(t) for lease in self._by_resource.get(resource, ())
        )

    def covering(self, resource: int, t: int) -> list[Lease]:
        """All purchased leases of ``resource`` covering day ``t``."""
        return [
            lease
            for lease in self._by_resource.get(resource, ())
            if lease.covers(t)
        ]

    def covering_any_resource(self, t: int) -> list[Lease]:
        """All purchased leases (any resource) covering day ``t``."""
        return [lease for lease in self._leases.values() if lease.covers(t)]

    def resources_covering(self, t: int) -> set[int]:
        """Distinct resources with at least one active lease at day ``t``."""
        return {
            resource
            for resource, leases in self._by_resource.items()
            if any(lease.covers(t) for lease in leases)
        }

    def intersecting(
        self, resource: int, first: int, last: int
    ) -> list[Lease]:
        """Leases of ``resource`` meeting the closed interval ``[first, last]``."""
        return [
            lease
            for lease in self._by_resource.get(resource, ())
            if lease.intersects(first, last)
        ]
