"""Lease types, lease schedules, and purchased leases (thesis Section 2.2.1).

The leasing model of Meyerson (and of the whole thesis) is parameterised by
``K`` *lease types*.  Lease type ``k`` has an integer *length* ``l_k`` and a
*cost* ``c_k``; buying a lease of type ``k`` at time ``t`` covers the
half-open window ``[t, t + l_k)``.  Longer leases typically cost less per
unit time (economies of scale), but the model does not require it.

Three classes live here:

* :class:`LeaseType` — one ``(length, cost)`` pair, with its index ``k``.
* :class:`LeaseSchedule` — the ordered collection of all ``K`` types, plus
  derived quantities (``l_min``, ``l_max``) and interval-model helpers.
* :class:`Lease` — a concrete purchase: a type instantiated at a start time.

Per-resource cost overrides (a set ``S`` costing ``c_{Sk}``, a facility ``i``
costing ``c_{ik}``) are layered on top by the problem models; the schedule
only carries lease *lengths* plus default costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .._validation import (
    require,
    require_nonnegative_int,
    require_positive_int,
    require_positive_number,
)


@dataclass(frozen=True, slots=True)
class LeaseType:
    """A single lease type ``k``: length ``l_k`` days at cost ``c_k``.

    Attributes:
        index: zero-based type index ``k`` within its schedule.
        length: lease duration ``l_k`` in days (``>= 1``).
        cost: purchase cost ``c_k`` (``> 0``).
    """

    index: int
    length: int
    cost: float

    def __post_init__(self) -> None:
        require_nonnegative_int(self.index, "LeaseType.index")
        require_positive_int(self.length, "LeaseType.length")
        require_positive_number(self.cost, "LeaseType.cost")

    @property
    def cost_per_day(self) -> float:
        """Cost per unit time, ``c_k / l_k``."""
        return self.cost / self.length

    def aligned_start(self, t: int) -> int:
        """Start of the unique interval-model window of this type covering ``t``.

        In the interval model (Definition 2.5) leases of type ``k`` start
        only at multiples of ``l_k``, so the window covering day ``t`` starts
        at ``(t // l_k) * l_k``.
        """
        return (t // self.length) * self.length


@dataclass(frozen=True, slots=True)
class Lease:
    """A concrete lease purchase: type ``k`` starting at day ``start``.

    Covers the half-open window ``[start, start + length)``.  ``resource``
    identifies the leased infrastructure element (set index, facility index,
    ...); single-resource problems such as the parking permit problem use
    ``resource=0``.
    """

    resource: int
    type_index: int
    start: int
    length: int
    cost: float

    def __post_init__(self) -> None:
        require_positive_int(self.length, "Lease.length")

    @property
    def end(self) -> int:
        """First day *not* covered by the lease (exclusive end)."""
        return self.start + self.length

    def covers(self, t: int) -> bool:
        """Whether day ``t`` falls inside ``[start, end)``."""
        return self.start <= t < self.end

    def intersects(self, first: int, last: int) -> bool:
        """Whether the lease window meets the *closed* interval ``[first, last]``."""
        return self.start <= last and first < self.end

    @property
    def key(self) -> tuple[int, int, int]:
        """Identity triple ``(resource, type_index, start)`` used for dedup."""
        return (self.resource, self.type_index, self.start)


class LeaseSchedule:
    """The ordered collection of the ``K`` available lease types.

    The schedule validates that lengths are strictly increasing (the
    thesis indexes types by increasing duration) and exposes the derived
    quantities used throughout the analysis: ``K``, ``l_min``, ``l_max``.

    Args:
        types: lease types in increasing length order.  Indices must be
            ``0..K-1`` in order; use :meth:`from_pairs` to avoid writing
            indices by hand.
    """

    #: Window-memo entries kept before the cache resets.  Each entry is
    #: one aligned ``(type_index, start)`` window, so the bound caps the
    #: schedule's footprint on million-event traces without ever evicting
    #: the working set of a realistic horizon.
    WINDOW_CACHE_LIMIT = 65536

    def __init__(self, types: Sequence[LeaseType]):
        types = tuple(types)
        require(len(types) > 0, "LeaseSchedule needs at least one lease type")
        for position, lease_type in enumerate(types):
            require(
                lease_type.index == position,
                f"LeaseType at position {position} has index {lease_type.index}; "
                "use LeaseSchedule.from_pairs to assign indices automatically",
            )
        for shorter, longer in zip(types, types[1:]):
            require(
                shorter.length < longer.length,
                "lease lengths must be strictly increasing, got "
                f"{shorter.length} then {longer.length}",
            )
        self._types = types
        # (type_index, start) -> Lease memo shared by every consumer of
        # this schedule (policies, brokers, tenants).  Lease is frozen,
        # so handing the same object out repeatedly is safe; identity
        # and equality never diverge.
        self._window_cache: dict[tuple[int, int], Lease] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, float]]) -> "LeaseSchedule":
        """Build a schedule from ``(length, cost)`` pairs in length order."""
        types = [
            LeaseType(index=k, length=length, cost=float(cost))
            for k, (length, cost) in enumerate(pairs)
        ]
        return cls(types)

    @classmethod
    def power_of_two(
        cls,
        num_types: int,
        base_cost: float = 1.0,
        cost_growth: float = 1.8,
    ) -> "LeaseSchedule":
        """A canonical interval-model schedule: lengths ``1, 2, 4, ...``.

        Costs grow by ``cost_growth`` per doubling of length, so with the
        default ``1.8 < 2`` longer leases are cheaper per day — the
        economies of scale the thesis motivates.
        """
        require_positive_int(num_types, "num_types")
        require_positive_number(cost_growth, "cost_growth")
        pairs = [
            (2**k, base_cost * cost_growth**k) for k in range(num_types)
        ]
        return cls.from_pairs(pairs)

    @classmethod
    def meyerson_lower_bound(cls, num_types: int) -> "LeaseSchedule":
        """The Theorem 2.8 adversarial schedule: ``c_k = 2^k``, ``l_k = (2K)^k``.

        Lengths grow by a factor ``2K`` per type while costs only double, so
        an online algorithm keeps facing the rent-or-buy dilemma at every
        scale.  Used by the deterministic lower-bound experiment (E3).
        """
        require_positive_int(num_types, "num_types")
        pairs = [
            ((2 * num_types) ** k, float(2**k)) for k in range(num_types)
        ]
        return cls.from_pairs(pairs)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._types)

    def __iter__(self) -> Iterator[LeaseType]:
        return iter(self._types)

    def __getitem__(self, k: int) -> LeaseType:
        return self._types[k]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LeaseSchedule):
            return NotImplemented
        return self._types == other._types

    def __hash__(self) -> int:
        return hash(self._types)

    def __repr__(self) -> str:
        pairs = ", ".join(f"({t.length}, {t.cost:g})" for t in self._types)
        return f"LeaseSchedule([{pairs}])"

    @property
    def num_types(self) -> int:
        """The number of lease types, ``K``."""
        return len(self._types)

    @property
    def types(self) -> tuple[LeaseType, ...]:
        """All lease types in increasing length order."""
        return self._types

    @property
    def lmin(self) -> int:
        """Shortest lease length ``l_min``."""
        return self._types[0].length

    @property
    def lmax(self) -> int:
        """Longest lease length ``l_max``."""
        return self._types[-1].length

    @property
    def min_cost(self) -> float:
        """Cheapest single-lease cost across all types."""
        return min(t.cost for t in self._types)

    # ------------------------------------------------------------------
    # Structural predicates used by algorithms and tests
    # ------------------------------------------------------------------
    def is_power_of_two(self) -> bool:
        """Whether every lease length is a power of two (Definition 2.5)."""
        return all(t.length & (t.length - 1) == 0 for t in self._types)

    def is_nested(self) -> bool:
        """Whether each length divides the next (interval windows nest)."""
        return all(
            longer.length % shorter.length == 0
            for shorter, longer in zip(self._types, self._types[1:])
        )

    def has_economies_of_scale(self) -> bool:
        """Whether cost-per-day is non-increasing in the lease length."""
        return all(
            longer.cost_per_day <= shorter.cost_per_day + 1e-12
            for shorter, longer in zip(self._types, self._types[1:])
        )

    # ------------------------------------------------------------------
    # Window enumeration (interval model)
    # ------------------------------------------------------------------
    def window(self, type_index: int, start: int) -> Lease:
        """The aligned window of ``type_index`` starting at ``start``, memoised.

        Hot paths call this once per candidate per demand; the memo turns
        repeat visits to the same ``(type_index, start)`` bucket — every
        demand inside one window shares it — into a dict hit instead of a
        fresh ``Lease`` construction plus validation.  The cache resets
        wholesale past :data:`WINDOW_CACHE_LIMIT` entries, bounding memory
        on unbounded horizons.
        """
        cache = self._window_cache
        key = (type_index, start)
        lease = cache.get(key)
        if lease is None:
            lease_type = self._types[type_index]
            # Direct slot fill: the schedule already validated its
            # lengths, so Lease's __post_init__ re-check is skipped on
            # this (hot) constructor.
            lease = object.__new__(Lease)
            set_slot = object.__setattr__
            set_slot(lease, "resource", 0)
            set_slot(lease, "type_index", type_index)
            set_slot(lease, "start", start)
            set_slot(lease, "length", lease_type.length)
            set_slot(lease, "cost", lease_type.cost)
            if len(cache) >= self.WINDOW_CACHE_LIMIT:
                cache.clear()
            cache[key] = lease
        return lease

    def windows_covering(self, t: int) -> list[Lease]:
        """The ``K`` aligned windows covering day ``t`` (one per type).

        In the interval model each day is covered by exactly one window per
        lease type; these are the *candidates* of a client arriving at ``t``
        (thesis Section 2.2.2).  ``resource`` is set to 0; callers re-key
        for multi-resource problems.
        """
        return [
            self.window(lease_type.index, lease_type.aligned_start(t))
            for lease_type in self._types
        ]

    def windows_intersecting(self, first: int, last: int) -> list[Lease]:
        """All aligned windows meeting the closed day interval ``[first, last]``.

        Used by the deadline model (Chapter 5), where a client ``(t, d)``
        may be served by any lease whose window intersects ``[t, t + d]``.
        """
        require(first <= last, f"empty interval [{first}, {last}]")
        windows: list[Lease] = []
        for lease_type in self._types:
            start = lease_type.aligned_start(first)
            while start <= last:
                windows.append(self.window(lease_type.index, start))
                start += lease_type.length
        return windows

    def max_windows_per_interval(self, interval_length: int) -> int:
        """Upper bound on candidates per client interval of given length.

        Mirrors the thesis bound ``sum_k ceil(d_max / l_k) <= K + d_max/l_min``
        used in Theorem 5.3.
        """
        require_nonnegative_int(interval_length, "interval_length")
        return sum(
            math.ceil(interval_length / t.length) + 1 for t in self._types
        )
