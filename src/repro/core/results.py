"""Result records produced by online runs and offline baselines.

:class:`RunResult` captures what an online algorithm did on one instance;
:class:`OptBounds` brackets the unknown offline optimum between a lower
bound (LP relaxation or exact) and an upper bound (exact or heuristic);
:class:`RatioReport` combines the two into the bracketed competitive ratio
reported by every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .lease import Lease


@dataclass(frozen=True, slots=True)
class RunResult:
    """Outcome of one online run.

    Attributes:
        algorithm: human-readable algorithm name.
        cost: total online cost (leasing + any connection costs).
        leases: purchased leases in purchase order.
        num_demands: demands served.
        detail: free-form per-run extras (e.g. cost decomposition).
    """

    algorithm: str
    cost: float
    leases: tuple[Lease, ...]
    num_demands: int
    detail: dict = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class OptBounds:
    """Bracket on the offline optimum: ``lower <= OPT <= upper``.

    ``exact`` marks that both sides coincide (an exact solver ran).
    """

    lower: float
    upper: float
    exact: bool = False
    method: str = ""

    def __post_init__(self) -> None:
        if self.lower > self.upper + 1e-9:
            raise ValueError(
                f"OPT lower bound {self.lower} exceeds upper bound {self.upper}"
            )

    @classmethod
    def exactly(cls, value: float, method: str = "exact") -> "OptBounds":
        """An exact optimum: both bounds equal ``value``."""
        return cls(lower=value, upper=value, exact=True, method=method)


@dataclass(frozen=True, slots=True)
class RatioReport:
    """Competitive ratio of one run, bracketed by the OPT bounds.

    ``ratio_vs_upper <= true ratio <= ratio_vs_lower``; when the OPT is
    exact the two coincide in :attr:`ratio`.
    """

    run: RunResult
    opt: OptBounds

    @property
    def ratio_vs_lower(self) -> float:
        """Online cost over the OPT *lower* bound (upper bound on ratio)."""
        if self.opt.lower <= 0:
            return float("inf") if self.run.cost > 0 else 1.0
        return self.run.cost / self.opt.lower

    @property
    def ratio_vs_upper(self) -> float:
        """Online cost over the OPT *upper* bound (lower bound on ratio)."""
        if self.opt.upper <= 0:
            return float("inf") if self.run.cost > 0 else 1.0
        return self.run.cost / self.opt.upper

    @property
    def ratio(self) -> float:
        """The exact ratio when OPT is exact, else the conservative bound."""
        return self.ratio_vs_lower
