"""The leasing framework of thesis Section 2.3.

The framework transforms any online problem with a *temporal covering
aspect* — demands arrive over time and are covered by bought infrastructure
elements — into its leasing variant: instead of buying element ``i``
forever at cost ``c_i``, one leases ``(i, k, t)`` for lease type ``k`` at
cost ``c_{ik}``, covering demands only during ``[t, t + l_k)``.

Setting ``K = 1`` with a single lease long enough to span the whole
horizon recovers the original non-leasing problem; :func:`buy_forever_schedule`
builds exactly that degenerate schedule, which is how the library realises
the special cases ``OnlineSetMulticover`` (Corollary 3.4) and
``OnlineSetCoverWithRepetitions`` (Corollary 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from .._validation import require_nonnegative_int, require_positive_int
from .lease import Lease, LeaseSchedule


@dataclass(frozen=True, slots=True)
class Demand:
    """A demand ``(j, t)``: identity ``j`` arriving at day ``t``."""

    ident: int
    arrival: int

    def __post_init__(self) -> None:
        require_nonnegative_int(self.arrival, "Demand.arrival")


@runtime_checkable
class OnlineLeasingAlgorithm(Protocol):
    """Interface every online algorithm in the library implements.

    An algorithm consumes demands one at a time through ``on_demand`` and
    exposes its irrevocable purchases through ``leases`` and their total
    through ``cost``.  Demand signatures vary per problem (a day, an
    element with a coverage requirement, a batch of clients, ...), hence
    the permissive ``*args``.
    """

    def on_demand(self, *args, **kwargs) -> None:
        """Serve the next demand, possibly buying new leases."""
        ...

    @property
    def cost(self) -> float:
        """Total cost of all purchases so far."""
        ...

    @property
    def leases(self) -> tuple[Lease, ...]:
        """All purchased leases so far."""
        ...


def buy_forever_schedule(horizon: int, cost: float) -> LeaseSchedule:
    """The degenerate ``K = 1`` schedule realising the non-leasing problem.

    One lease type whose length is a power of two at least ``horizon``
    (so a single aligned window spans the entire run) at the given cost.
    Feeding this schedule to a leasing algorithm turns it into the
    corresponding classical online algorithm, per Section 2.3.
    """
    require_positive_int(horizon, "horizon")
    length = 1
    while length < horizon:
        length *= 2
    return LeaseSchedule.from_pairs([(length, cost)])


def infrastructure_lease(
    schedule: LeaseSchedule, resource: int, type_index: int, t: int, cost: float
) -> Lease:
    """The aligned lease triple ``(i, k, t')`` of ``resource`` covering day ``t``.

    The interval model guarantees exactly one window per ``(resource, k)``
    covers any day; this helper materialises it with a per-resource cost
    override (``c_{ik}`` instead of the schedule default ``c_k``).
    """
    lease_type = schedule[type_index]
    return Lease(
        resource=resource,
        type_index=type_index,
        start=lease_type.aligned_start(t),
        length=lease_type.length,
        cost=cost,
    )


def candidate_triples(
    schedule: LeaseSchedule,
    resources: list[int],
    t: int,
    cost_of,
) -> list[Lease]:
    """All candidate triples ``(i, k, window covering t)`` for the resources.

    ``cost_of(resource, type_index)`` supplies the per-resource lease cost
    ``c_{ik}``.  This is the common candidate enumeration used by the set
    cover and facility algorithms: ``|candidates| = K * len(resources)``.
    """
    return [
        infrastructure_lease(
            schedule, resource, lease_type.index, t,
            cost_of(resource, lease_type.index),
        )
        for resource in resources
        for lease_type in schedule
    ]
