"""Columnar lease buffers: struct-packed bulk transport for ``Lease`` data.

Pickling a million-lease ``RunResult`` across a process pool serialises a
million dataclass instances one reference walk at a time.  This module
replaces that with a *columnar* codec: five flat arrays (resource, type
index, start, length as ``int64``; cost as ``float64``) packed into one
contiguous ``bytes`` payload, 40 bytes per lease, one ``memcpy`` to ship.

Two pieces:

* :func:`pack_leases` / :class:`LeaseView` — the codec.  ``LeaseView`` is
  a lazy, immutable :class:`~collections.abc.Sequence` over a payload:
  ``len`` is O(1), element access decodes one ``Lease`` on demand, and
  equality/hash match a tuple of the same leases, so views drop into
  result records unchanged.  Consumers that only need counts (the report
  renderer) never materialise a single ``Lease``.
* :func:`share_payload` / :func:`claim_payload` — optional
  :mod:`multiprocessing.shared_memory` transport for large payloads: the
  worker publishes the buffer under a name, the parent claims it with one
  copy and unlinks immediately, so the segment's lifetime is bounded by
  the claiming call and nothing ever travels through the pool pipe.

The broker, runner, and perf harness use this for fan-out; everything
else keeps its plain tuples.
"""

from __future__ import annotations

import struct
from array import array
from typing import Iterator, Sequence

from ..errors import ModelError
from .lease import Lease

#: Payload header: magic, format version, lease count.
_HEADER = struct.Struct("<4sIQ")
_MAGIC = b"LEA\x01"
FORMAT_VERSION = 1
#: Bytes per lease in the packed columns (4 x int64 + 1 x float64).
LEASE_RECORD_SIZE = 40


def pack_leases(leases: Sequence[Lease]) -> bytes:
    """Pack leases into one contiguous columnar payload.

    Layout: header, then the five columns back to back —
    ``resource[n] | type_index[n] | start[n] | length[n]`` as little-endian
    ``int64`` and ``cost[n]`` as ``float64``.  Column order matches
    :class:`LeaseView`'s decoder; round-trip is exact (costs are stored as
    raw doubles, never reformatted).
    """
    n = len(leases)
    resources = array("q", bytes(8 * n))
    types = array("q", bytes(8 * n))
    starts = array("q", bytes(8 * n))
    lengths = array("q", bytes(8 * n))
    costs = array("d", bytes(8 * n))
    for i, lease in enumerate(leases):
        resources[i] = lease.resource
        types[i] = lease.type_index
        starts[i] = lease.start
        lengths[i] = lease.length
        costs[i] = lease.cost
    return b"".join(
        (
            _HEADER.pack(_MAGIC, FORMAT_VERSION, n),
            resources.tobytes(),
            types.tobytes(),
            starts.tobytes(),
            lengths.tobytes(),
            costs.tobytes(),
        )
    )


class LeaseView(Sequence):
    """A lazy, immutable sequence of :class:`Lease` over a packed payload.

    Decodes columns on first access and individual ``Lease`` objects on
    demand; ``len`` and per-index access never touch the other records.
    Equality and hashing are defined by content, matching a tuple of the
    same leases, so a view and the tuple it was packed from are
    interchangeable in result records and assertions.
    """

    __slots__ = ("_payload", "_count", "_columns", "_hash")

    def __init__(self, payload: bytes):
        if len(payload) < _HEADER.size:
            raise ModelError("lease payload too short for its header")
        magic, version, count = _HEADER.unpack_from(payload)
        if magic != _MAGIC or version != FORMAT_VERSION:
            raise ModelError(
                f"unsupported lease payload (magic {magic!r}, version {version})"
            )
        expected = _HEADER.size + count * LEASE_RECORD_SIZE
        if len(payload) != expected:
            raise ModelError(
                f"lease payload is {len(payload)} bytes; "
                f"{expected} expected for {count} leases"
            )
        self._payload = payload
        self._count = count
        self._columns: tuple[array, ...] | None = None
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _decode_columns(self) -> tuple[array, ...]:
        if self._columns is None:
            n = self._count
            offset = _HEADER.size
            columns = []
            for typecode in ("q", "q", "q", "q", "d"):
                column = array(typecode)
                column.frombytes(self._payload[offset:offset + 8 * n])
                columns.append(column)
                offset += 8 * n
            self._columns = tuple(columns)
        return self._columns

    @property
    def nbytes(self) -> int:
        """Size of the packed payload in bytes."""
        return len(self._payload)

    @property
    def payload(self) -> bytes:
        """The raw packed payload (shareable, immutable)."""
        return self._payload

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index):
        if isinstance(index, slice):
            return tuple(
                self._lease_at(i) for i in range(*index.indices(self._count))
            )
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError("lease view index out of range")
        return self._lease_at(index)

    def _lease_at(self, i: int) -> Lease:
        resources, types, starts, lengths, costs = self._decode_columns()
        return Lease(
            resource=resources[i],
            type_index=types[i],
            start=starts[i],
            length=lengths[i],
            cost=costs[i],
        )

    def __iter__(self) -> Iterator[Lease]:
        if self._count:
            resources, types, starts, lengths, costs = self._decode_columns()
            for i in range(self._count):
                yield Lease(
                    resource=resources[i],
                    type_index=types[i],
                    start=starts[i],
                    length=lengths[i],
                    cost=costs[i],
                )

    def to_tuple(self) -> tuple[Lease, ...]:
        """Materialise every lease (the eager escape hatch)."""
        return tuple(self)

    # ------------------------------------------------------------------
    # Equality and hashing (content semantics, tuple-compatible)
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, LeaseView):
            return self._payload == other._payload
        if isinstance(other, (tuple, list)):
            return len(other) == self._count and all(
                mine == theirs for mine, theirs in zip(self, other)
            )
        return NotImplemented

    def __hash__(self) -> int:
        # Must match hash(tuple(...)) because views compare equal to
        # tuples of the same leases.
        if self._hash is None:
            self._hash = hash(self.to_tuple())
        return self._hash

    def __repr__(self) -> str:
        return f"LeaseView({self._count} leases, {self.nbytes} bytes)"


# ----------------------------------------------------------------------
# Shared-memory transport
# ----------------------------------------------------------------------
def share_payload(payload: bytes) -> tuple[str, int]:
    """Publish a payload in a shared-memory segment; returns ``(name, size)``.

    Intended for the *producing* process of a fork pool: the segment is
    closed locally (not unlinked) and deregistered from this process's
    resource tracker, because ownership transfers to whichever process
    calls :func:`claim_payload` — exactly once — with the returned name.
    """
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
    try:
        segment.buf[: len(payload)] = payload
        name = segment.name
    finally:
        segment.close()
    _untrack(name)
    return name, len(payload)


def claim_payload(name: str, size: int) -> bytes:
    """Copy a payload out of a shared segment and unlink it.

    The single copy here is the only one the payload makes end to end;
    the segment is gone when this returns, so lifetimes stay bounded by
    the claiming call even when results are held indefinitely.
    """
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=name)
    try:
        payload = bytes(segment.buf[:size])
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass
    return payload


def _untrack(name: str) -> None:
    """Deregister a segment from this process's resource tracker.

    The tracker would otherwise unlink the segment when *this* process
    exits — racing the consumer that the name was handed to.  Failure is
    harmless (the consumer unlinks explicitly); it only risks a spurious
    leak warning on interpreters without the tracker API.
    """
    try:  # pragma: no cover - tracker internals vary across versions
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass
