"""Core leasing substrate: lease types, interval model, stores, framework.

This package holds everything the four problem families (parking permit,
set multicover leasing, facility leasing, leasing with deadlines) share:
the lease-schedule model of Section 2.2.1, the interval model and Lemma 2.6
reduction, purchased-lease bookkeeping, cost accounting, the Section 2.3
leasing framework, and the online-run driver.
"""

from .cost import Charge, CostLedger
from .framework import (
    Demand,
    OnlineLeasingAlgorithm,
    buy_forever_schedule,
    candidate_triples,
    infrastructure_lease,
)
from .interval_model import (
    IntervalModelReduction,
    ReductionResult,
    general_to_interval_cover,
    next_power_of_two,
    round_schedule,
    to_general_solution,
)
from .lease import Lease, LeaseSchedule, LeaseType
from .leasebuf import LeaseView, claim_payload, pack_leases, share_payload
from .results import OptBounds, RatioReport, RunResult
from .store import LeaseStore
from .timeline import replay_prefixes, run_online

__all__ = [
    "Charge",
    "CostLedger",
    "Demand",
    "IntervalModelReduction",
    "Lease",
    "LeaseSchedule",
    "LeaseStore",
    "LeaseType",
    "LeaseView",
    "OnlineLeasingAlgorithm",
    "OptBounds",
    "RatioReport",
    "ReductionResult",
    "RunResult",
    "buy_forever_schedule",
    "candidate_triples",
    "claim_payload",
    "general_to_interval_cover",
    "infrastructure_lease",
    "next_power_of_two",
    "pack_leases",
    "replay_prefixes",
    "round_schedule",
    "share_payload",
    "run_online",
    "to_general_solution",
]
