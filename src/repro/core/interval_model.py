"""The interval model and the Lemma 2.6 reduction (thesis Section 2.2.1).

Meyerson's *interval model* simplifies the general leasing model in two
ways: lease lengths are powers of two, and leases of the same type start
only at multiples of their length (so same-type windows tile the timeline
without overlapping).  Lemma 2.6 shows the simplification is almost free:

    Any c-competitive algorithm for the interval model yields a
    4c-competitive algorithm for the original model.

The factor 4 decomposes into two factors of 2:

* *Forward* (algorithm side): each interval-model lease of rounded length
  ``2^ceil(log2 l_k)`` is replaced by **two consecutive** original leases of
  type ``k`` — covering at least the same window at twice the cost.
* *Backward* (optimum side): each original lease of an optimal solution is
  covered by **two aligned** interval-model windows, so the interval-model
  optimum is at most twice the general-model optimum.

This module implements both directions so the factor can be verified
empirically (experiment E5) and so every algorithm in the library can be
run against *arbitrary* lease schedules via :class:`IntervalModelReduction`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import require
from .lease import Lease, LeaseSchedule, LeaseType


def next_power_of_two(n: int) -> int:
    """Smallest power of two ``>= n`` (``n >= 1``)."""
    require(n >= 1, f"next_power_of_two requires n >= 1, got {n}")
    return 1 << (n - 1).bit_length()


def round_schedule(schedule: LeaseSchedule) -> LeaseSchedule:
    """Round every lease length up to the next power of two (Lemma 2.6).

    Costs are unchanged.  If two original types round to the same power of
    two, the cheaper one is kept (the longer-but-equal-length duplicate can
    never help).
    """
    best_cost_by_length: dict[int, float] = {}
    original_type_by_length: dict[int, int] = {}
    for lease_type in schedule:
        rounded = next_power_of_two(lease_type.length)
        if (
            rounded not in best_cost_by_length
            or lease_type.cost < best_cost_by_length[rounded]
        ):
            best_cost_by_length[rounded] = lease_type.cost
            original_type_by_length[rounded] = lease_type.index
    pairs = sorted(best_cost_by_length.items())
    rounded_schedule = LeaseSchedule.from_pairs(pairs)
    # Remember which original type each rounded type came from, for the
    # forward translation of purchases.
    rounded_schedule.original_type_of = tuple(  # type: ignore[attr-defined]
        original_type_by_length[length] for length, _ in pairs
    )
    return rounded_schedule


@dataclass(frozen=True, slots=True)
class ReductionResult:
    """Outcome of translating an interval-model solution back (Lemma 2.6).

    Attributes:
        interval_leases: leases bought by the interval-model algorithm.
        general_leases: the doubled general-model leases implementing them.
        interval_cost: total cost in the interval model.
        general_cost: total cost after translation (exactly twice
            ``interval_cost`` by construction).
    """

    interval_leases: tuple[Lease, ...]
    general_leases: tuple[Lease, ...]
    interval_cost: float
    general_cost: float


def to_general_solution(
    schedule: LeaseSchedule,
    rounded: LeaseSchedule,
    interval_leases: list[Lease],
) -> ReductionResult:
    """Translate interval-model purchases into general-model purchases.

    For each interval-model lease of rounded type ``k'`` bought at ``t``,
    buy two consecutive general leases of the originating type ``k`` at
    ``t`` and ``t + l_k``; since ``2 * l_k >= 2^ceil(log2 l_k)``, the pair
    covers the whole rounded window (Lemma 2.6 forward direction).
    """
    original_of = getattr(rounded, "original_type_of", None)
    require(
        original_of is not None,
        "rounded schedule must come from round_schedule()",
    )
    general: list[Lease] = []
    for lease in interval_leases:
        origin: LeaseType = schedule[original_of[lease.type_index]]
        for offset in (0, origin.length):
            general.append(
                Lease(
                    resource=lease.resource,
                    type_index=origin.index,
                    start=lease.start + offset,
                    length=origin.length,
                    cost=origin.cost,
                )
            )
    interval_cost = sum(lease.cost for lease in interval_leases)
    general_cost = sum(lease.cost for lease in general)
    return ReductionResult(
        interval_leases=tuple(interval_leases),
        general_leases=tuple(general),
        interval_cost=interval_cost,
        general_cost=general_cost,
    )


def general_to_interval_cover(
    schedule: LeaseSchedule,
    rounded: LeaseSchedule,
    general_leases: list[Lease],
) -> list[Lease]:
    """Cover a general-model solution by aligned interval-model windows.

    Lemma 2.6 backward direction: a general lease of type ``k`` at time
    ``t`` is covered by the two aligned rounded windows starting at
    ``floor(t / l'_k) * l'_k`` and the following one.  The result witnesses
    ``OPT_interval <= 2 * OPT_general``.
    """
    original_of = getattr(rounded, "original_type_of", None)
    require(
        original_of is not None,
        "rounded schedule must come from round_schedule()",
    )
    rounded_index_of_original = {
        original: rounded_index
        for rounded_index, original in enumerate(original_of)
    }
    cover: dict[tuple[int, int, int], Lease] = {}
    for lease in general_leases:
        rounded_index = rounded_index_of_original.get(lease.type_index)
        if rounded_index is None:
            # The original type was shadowed by a cheaper same-length type
            # during rounding; use the window of the same rounded length.
            rounded_index = next(
                t.index
                for t in rounded
                if t.length >= next_power_of_two(lease.length)
            )
        window_type = rounded[rounded_index]
        first_start = window_type.aligned_start(lease.start)
        for start in (first_start, first_start + window_type.length):
            candidate = Lease(
                resource=lease.resource,
                type_index=window_type.index,
                start=start,
                length=window_type.length,
                cost=window_type.cost,
            )
            cover[candidate.key] = candidate
    return list(cover.values())


class IntervalModelReduction:
    """Run an interval-model online algorithm on a general-model schedule.

    Wraps an algorithm factory so that demands are fed to the algorithm
    under the rounded schedule, while the reported solution/cost are the
    Lemma 2.6 translated general-model purchases (twice the interval cost).

    Args:
        schedule: the general-model lease schedule.
        algorithm_factory: callable taking a :class:`LeaseSchedule` (the
            rounded one) and returning an online algorithm exposing
            ``on_demand`` and ``leases`` / ``cost``.
    """

    def __init__(self, schedule: LeaseSchedule, algorithm_factory):
        self.schedule = schedule
        self.rounded = round_schedule(schedule)
        self.algorithm = algorithm_factory(self.rounded)

    def on_demand(self, *args, **kwargs) -> None:
        """Forward a demand to the wrapped interval-model algorithm."""
        self.algorithm.on_demand(*args, **kwargs)

    @property
    def result(self) -> ReductionResult:
        """The translated general-model solution so far."""
        return to_general_solution(
            self.schedule, self.rounded, list(self.algorithm.leases)
        )

    @property
    def cost(self) -> float:
        """General-model cost so far (twice the interval-model cost)."""
        return self.result.general_cost

    @property
    def leases(self) -> tuple[Lease, ...]:
        """General-model leases implementing the interval-model solution."""
        return self.result.general_leases
