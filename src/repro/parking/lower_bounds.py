"""Lower-bound constructions for the parking permit problem.

Two constructions from the thesis:

* Theorem 2.8 (deterministic Omega(K)): an *adaptive adversary* that keeps
  requesting the earliest day the online algorithm has not covered, under
  the schedule ``c_k = 2^k``, ``l_k = (2K)^k``.  Any deterministic
  algorithm is forced to pay Omega(K) times the offline optimum.
  :class:`AdaptiveAdversary` implements the interrogation loop against any
  algorithm exposing ``covers``/``on_demand``.

* Theorem 2.9 (randomized Omega(log K)): a *distribution* over instances
  built recursively — inside an active type-``k`` interval, the ``i``-th
  type-``k-1`` sub-interval is active with probability ``2^{1-i}`` — such
  that every deterministic algorithm's expected ratio is Omega(log K).
  :func:`sample_randomized_lower_bound` draws instances from it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .._validation import require, require_positive_int
from ..core.lease import LeaseSchedule
from .model import ParkingPermitInstance


@dataclass(frozen=True, slots=True)
class AdversaryOutcome:
    """Result of an adversary run: the days played and the final instance."""

    instance: ParkingPermitInstance
    online_cost: float
    num_requests: int


class AdaptiveAdversary:
    """The Theorem 2.8 adaptive adversary.

    Walks the horizon left to right; whenever the algorithm's current
    solution does not cover "today", a client is issued there (so every
    request provably arrives uncovered, the hallmark of the lower-bound
    strategy).  The adversary observes only coverage, matching the
    adaptive-adversary model of Section 2.1.
    """

    def __init__(self, schedule: LeaseSchedule, horizon: int):
        require_positive_int(horizon, "horizon")
        self.schedule = schedule
        self.horizon = horizon

    def run(self, algorithm) -> AdversaryOutcome:
        """Interrogate ``algorithm`` and return the instance it produced."""
        days: list[int] = []
        for day in range(self.horizon):
            if not algorithm.covers(day):
                algorithm.on_demand(day)
                days.append(day)
        instance = ParkingPermitInstance(
            schedule=self.schedule, rainy_days=tuple(days)
        )
        return AdversaryOutcome(
            instance=instance,
            online_cost=algorithm.cost,
            num_requests=len(days),
        )


def adversarial_schedule(num_types: int) -> LeaseSchedule:
    """The Theorem 2.8 schedule: ``c_k = 2^k``, ``l_k = (2K)^k``."""
    return LeaseSchedule.meyerson_lower_bound(num_types)


def sample_randomized_lower_bound(
    num_types: int,
    rng: random.Random,
    branching: int = 8,
) -> ParkingPermitInstance:
    """Draw one instance from the Theorem 2.9 hard distribution.

    The schedule has ``c_k = 2^k`` and lengths growing by ``branching``
    per level (the proof wants "arbitrarily larger"; any factor >= 2 shows
    the logarithmic shape).  Active intervals recurse: inside an active
    level-``k`` interval, sub-interval ``i`` (1-based) is active with
    probability ``2^{1-i}`` — the first child is always active.  Each
    active level-0 interval contributes one rainy day at its first day.

    Args:
        num_types: ``K``, the number of permit types.
        rng: source of randomness (seed it for reproducibility).
        branching: sub-intervals per level; must be >= 2.
    """
    require_positive_int(num_types, "num_types")
    require(branching >= 2, "branching must be >= 2")
    schedule = LeaseSchedule.from_pairs(
        [(branching**k, float(2**k)) for k in range(num_types)]
    )

    rainy: list[int] = []

    def recurse(level: int, start: int) -> None:
        if level == 0:
            rainy.append(start)
            return
        child_length = branching ** (level - 1)
        for i in range(branching):
            # 1-based child index i+1 active with probability 2^{-i}.
            if i == 0 or rng.random() < 2.0 ** (-i):
                recurse(level - 1, start + i * child_length)

    recurse(num_types - 1, 0)
    return ParkingPermitInstance(
        schedule=schedule, rainy_days=tuple(sorted(rainy))
    )
