"""The parking permit problem (thesis Chapter 2 / Meyerson 2005).

The first and simplest leasing model: one resource, ``K`` permit types,
rainy days must be covered.  This package provides the instance model and
Figure 2.2 ILP, two exact offline solvers, Meyerson's deterministic O(K)
and randomized O(log K) online algorithms, both lower-bound constructions,
and naive strawman policies.
"""

from .deterministic import DeterministicParkingPermit
from .lower_bounds import (
    AdaptiveAdversary,
    AdversaryOutcome,
    adversarial_schedule,
    sample_randomized_lower_bound,
)
from .model import ParkingPermitInstance, make_instance
from .naive import AlwaysLongest, AlwaysShortest, RentThenBuy
from .offline import (
    OfflineSolution,
    optimal_general,
    optimal_interval,
    optimal_interval_cost,
)
from .randomized import FractionalParkingPermit, RandomizedParkingPermit

__all__ = [
    "AdaptiveAdversary",
    "AdversaryOutcome",
    "AlwaysLongest",
    "AlwaysShortest",
    "DeterministicParkingPermit",
    "FractionalParkingPermit",
    "OfflineSolution",
    "ParkingPermitInstance",
    "RandomizedParkingPermit",
    "RentThenBuy",
    "adversarial_schedule",
    "make_instance",
    "optimal_general",
    "optimal_interval",
    "optimal_interval_cost",
    "sample_randomized_lower_bound",
]
