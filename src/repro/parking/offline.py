"""Exact offline optima for the parking permit problem.

Two exact solvers, used as the OPT baseline in every Chapter 2 experiment:

* :func:`optimal_general` — the *general* model (leases may start any day).
  A dynamic program over rainy days: some optimal solution starts every
  lease on a rainy day (shifting a lease right to the first rainy day it
  covers never uncovers anything), so the state space is the rainy-day
  index and the transition chooses the lease type bought there.

* :func:`optimal_interval` — the *interval* model (Definition 2.5).  When
  lease lengths nest (each divides the next — powers of two do), aligned
  windows form a tree and the optimum decomposes recursively: cover a
  window either by buying its lease or by optimally covering its child
  windows that contain demands.

Both return the full purchase list so feasibility can be re-verified.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from functools import lru_cache

from .._validation import require
from ..core.lease import Lease
from .model import ParkingPermitInstance


@dataclass(frozen=True, slots=True)
class OfflineSolution:
    """An offline solution: total cost and the leases realising it."""

    cost: float
    leases: tuple[Lease, ...]
    method: str


def optimal_general(instance: ParkingPermitInstance) -> OfflineSolution:
    """Exact optimum when leases may start on any day (general model).

    ``O(n * K)`` dynamic program over the ``n`` rainy days: ``best(i)`` is
    the minimum cost to cover rainy days ``i..n-1``; buying type ``k`` at
    day ``rainy[i]`` covers through ``rainy[i] + l_k - 1`` and jumps to the
    first uncovered rainy day.
    """
    days = instance.rainy_days
    schedule = instance.schedule
    n = len(days)
    if n == 0:
        return OfflineSolution(cost=0.0, leases=(), method="dp-general")

    best_cost = [0.0] * (n + 1)
    best_choice: list[int] = [0] * n
    for i in range(n - 1, -1, -1):
        best = float("inf")
        choice = 0
        for lease_type in schedule:
            # First rainy day not covered by (type, start=days[i]).
            next_index = bisect.bisect_left(days, days[i] + lease_type.length)
            total = lease_type.cost + best_cost[next_index]
            if total < best - 1e-12:
                best = total
                choice = lease_type.index
        best_cost[i] = best
        best_choice[i] = choice

    leases: list[Lease] = []
    i = 0
    while i < n:
        lease_type = schedule[best_choice[i]]
        leases.append(
            Lease(
                resource=0,
                type_index=lease_type.index,
                start=days[i],
                length=lease_type.length,
                cost=lease_type.cost,
            )
        )
        i = bisect.bisect_left(days, days[i] + lease_type.length)
    return OfflineSolution(
        cost=best_cost[0], leases=tuple(leases), method="dp-general"
    )


def optimal_interval(instance: ParkingPermitInstance) -> OfflineSolution:
    """Exact optimum in the interval model, for nested lease lengths.

    Requires :meth:`LeaseSchedule.is_nested` (powers of two qualify).  The
    recursion on aligned windows: the best way to cover the demands inside
    a type-``k`` window is the cheaper of (a) buying that window's lease
    and (b) covering each demand-containing type-``k-1`` child window
    optimally.  Base case ``k = 0``: buy the window iff it contains a
    demand.
    """
    schedule = instance.schedule
    require(
        schedule.is_nested(),
        "optimal_interval requires nested lease lengths "
        "(each length divides the next); round the schedule first",
    )
    days = instance.rainy_days
    if not days:
        return OfflineSolution(cost=0.0, leases=(), method="dp-interval")

    def demands_in(start: int, length: int) -> bool:
        left = bisect.bisect_left(days, start)
        return left < len(days) and days[left] < start + length

    @lru_cache(maxsize=None)
    def window_cost(type_index: int, start: int) -> float:
        lease_type = schedule[type_index]
        if not demands_in(start, lease_type.length):
            return 0.0
        if type_index == 0:
            return lease_type.cost
        child = schedule[type_index - 1]
        children_total = sum(
            window_cost(type_index - 1, child_start)
            for child_start in range(
                start, start + lease_type.length, child.length
            )
        )
        return min(lease_type.cost, children_total)

    def collect(type_index: int, start: int, out: list[Lease]) -> None:
        lease_type = schedule[type_index]
        if not demands_in(start, lease_type.length):
            return
        children_total = float("inf")
        if type_index > 0:
            child = schedule[type_index - 1]
            children_total = sum(
                window_cost(type_index - 1, child_start)
                for child_start in range(
                    start, start + lease_type.length, child.length
                )
            )
        if lease_type.cost <= children_total:
            out.append(
                Lease(
                    resource=0,
                    type_index=type_index,
                    start=start,
                    length=lease_type.length,
                    cost=lease_type.cost,
                )
            )
            return
        child = schedule[type_index - 1]
        for child_start in range(
            start, start + lease_type.length, child.length
        ):
            collect(type_index - 1, child_start, out)

    top = schedule[schedule.num_types - 1]
    total = 0.0
    leases: list[Lease] = []
    start = top.aligned_start(days[0])
    last = days[-1]
    while start <= last:
        total += window_cost(top.index, start)
        collect(top.index, start, leases)
        start += top.length
    return OfflineSolution(
        cost=total, leases=tuple(leases), method="dp-interval"
    )


def optimal_interval_cost(instance: ParkingPermitInstance) -> float:
    """Cost-only shortcut for :func:`optimal_interval`."""
    return optimal_interval(instance).cost
