"""Meyerson's randomized O(log K)-competitive algorithm (thesis Alg. 2).

Two stages, both online:

1. *Fractional*: each candidate window keeps a fraction ``f``; when a
   rainy day arrives with candidate fractions summing below one, every
   candidate is updated ``f <- f * (1 + 1/c_k) + 1/(|Q| c_k)`` until the
   sum reaches one.  Section 2.2.3(i) shows the total fractional cost is
   O(log K) times the offline optimum.

2. *Rounding*: a single threshold ``tau ~ U(0, 1]`` drawn up front converts
   the fractional solution to purchases: buy the type ``k`` whose suffix
   sum ``f_K + ... + f_k`` first reaches ``tau`` (Section 2.2.3(ii): the
   integer solution costs at most the fractional one in expectation).

:class:`FractionalParkingPermit` exposes stage 1 alone so the O(log K)
fractional bound can be tested directly; :class:`RandomizedParkingPermit`
adds the rounding.  A safety net buys the cheapest candidate if rounding
ever leaves a day uncovered (it cannot, but the cost accounting stays
honest if numerics misbehave).
"""

from __future__ import annotations

import random

from ..core.lease import Lease, LeaseSchedule
from ..core.store import LeaseStore
from ..workloads.rng import make_rng


class FractionalParkingPermit:
    """Stage 1 alone: the online fractional solution of Algorithm 2."""

    def __init__(self, schedule: LeaseSchedule):
        self.schedule = schedule
        self.fractions: dict[tuple[int, int], float] = {}
        self.increments = 0

    def candidate_keys(self, day: int) -> list[tuple[int, int]]:
        """Window keys ``(type, start)`` of the ``K`` candidates of ``day``."""
        return [
            (window.type_index, window.start)
            for window in self.schedule.windows_covering(day)
        ]

    def candidate_sum(self, day: int) -> float:
        """Current fractional coverage of ``day``."""
        return sum(
            self.fractions.get(key, 0.0) for key in self.candidate_keys(day)
        )

    def on_demand(self, day: int) -> None:
        """Raise candidate fractions until they sum to at least one."""
        keys = self.candidate_keys(day)
        num_candidates = len(keys)
        while self.candidate_sum(day) < 1.0:
            self.increments += 1
            for key in keys:
                cost = self.schedule[key[0]].cost
                current = self.fractions.get(key, 0.0)
                self.fractions[key] = (
                    current * (1.0 + 1.0 / cost)
                    + 1.0 / (num_candidates * cost)
                )

    @property
    def cost(self) -> float:
        """Fractional cost: sum of cost-weighted fractions (capped at 1)."""
        return sum(
            self.schedule[type_index].cost * min(1.0, fraction)
            for (type_index, _), fraction in self.fractions.items()
        )

    @property
    def leases(self) -> tuple[Lease, ...]:
        """Fractional algorithms own no integral leases."""
        return ()


class RandomizedParkingPermit:
    """Algorithm 2 in full: fractional stage plus threshold rounding.

    Args:
        schedule: the permit types (interval model assumed, as in Alg. 1).
        seed: seeds the single threshold draw; fix it for reproducibility.
    """

    def __init__(self, schedule: LeaseSchedule, seed: int | None = 0):
        self.schedule = schedule
        self.fractional = FractionalParkingPermit(schedule)
        self.store = LeaseStore()
        self._rng: random.Random = make_rng(seed)
        # tau ~ U(0,1]; random() returns [0,1), so flip it around.
        self.tau = 1.0 - self._rng.random()
        self.fallback_purchases = 0

    def on_demand(self, day: int) -> None:
        """Serve a rainy day: update fractions, then round by threshold."""
        self.fractional.on_demand(day)
        windows = self.schedule.windows_covering(day)
        # Suffix sums from the longest lease type downward: buy the type at
        # which the running sum first reaches tau.
        running = 0.0
        chosen = None
        for window in reversed(windows):
            running += self.fractional.fractions.get(
                (window.type_index, window.start), 0.0
            )
            if running >= self.tau:
                chosen = window
                break
        if chosen is not None:
            self.store.buy(chosen)
        if not self.store.covers(0, day):
            # Unreachable when fractions sum >= 1 >= tau; kept as an honest
            # safety net whose cost is counted.
            self.fallback_purchases += 1
            cheapest = min(windows, key=lambda w: w.cost)
            self.store.buy(cheapest)

    def covers(self, day: int) -> bool:
        """Whether the current integral solution covers ``day``."""
        return self.store.covers(0, day)

    @property
    def cost(self) -> float:
        """Total cost of integral purchases so far."""
        return self.store.total_cost

    @property
    def fractional_cost(self) -> float:
        """Cost of the underlying fractional solution."""
        return self.fractional.cost

    @property
    def leases(self) -> tuple[Lease, ...]:
        """Purchased leases in purchase order."""
        return self.store.leases
