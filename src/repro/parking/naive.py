"""Naive online strawmen for experiment E14 (heuristic baselines).

The introduction motivates leasing by the two failure modes of naive
policies: buying long leases that go unused, and buying short leases when
a long one would have amortised.  These strawmen realise exactly those
policies so the benchmark can show both losing to the primal-dual
algorithms on the workloads where the *other* failure mode bites.
"""

from __future__ import annotations

from ..core.lease import Lease, LeaseSchedule
from ..core.store import LeaseStore


class _SingleTypePolicy:
    """Buy the fixed lease type's aligned window whenever a day is uncovered."""

    def __init__(self, schedule: LeaseSchedule, type_index: int):
        self.schedule = schedule
        self.type_index = type_index
        self.store = LeaseStore()

    def on_demand(self, day: int) -> None:
        if self.store.covers(0, day):
            return
        lease_type = self.schedule[self.type_index]
        self.store.buy(
            Lease(
                resource=0,
                type_index=lease_type.index,
                start=lease_type.aligned_start(day),
                length=lease_type.length,
                cost=lease_type.cost,
            )
        )

    def covers(self, day: int) -> bool:
        return self.store.covers(0, day)

    @property
    def cost(self) -> float:
        return self.store.total_cost

    @property
    def leases(self) -> tuple[Lease, ...]:
        return self.store.leases


class AlwaysShortest(_SingleTypePolicy):
    """Rent day by day: always buy the shortest lease (ski-rental 'rent')."""

    def __init__(self, schedule: LeaseSchedule):
        super().__init__(schedule, type_index=0)


class AlwaysLongest(_SingleTypePolicy):
    """Always buy the longest lease (ski-rental 'buy')."""

    def __init__(self, schedule: LeaseSchedule):
        super().__init__(schedule, type_index=schedule.num_types - 1)


class RentThenBuy(_SingleTypePolicy):
    """Classic 2-competitive ski-rental lifted to K types.

    Pays for short leases until the money spent inside the current longest
    window reaches the longest lease's cost, then buys the long lease.
    With K = 2 this is the textbook rent-or-buy policy; it serves as the
    strongest naive baseline in E14.
    """

    def __init__(self, schedule: LeaseSchedule):
        super().__init__(schedule, type_index=0)
        self._spent_in_window: dict[int, float] = {}

    def on_demand(self, day: int) -> None:
        if self.store.covers(0, day):
            return
        longest = self.schedule[self.schedule.num_types - 1]
        window_start = longest.aligned_start(day)
        spent = self._spent_in_window.get(window_start, 0.0)
        shortest = self.schedule[0]
        if spent + shortest.cost >= longest.cost:
            self.store.buy(
                Lease(
                    resource=0,
                    type_index=longest.index,
                    start=window_start,
                    length=longest.length,
                    cost=longest.cost,
                )
            )
            return
        self._spent_in_window[window_start] = spent + shortest.cost
        self.store.buy(
            Lease(
                resource=0,
                type_index=shortest.index,
                start=shortest.aligned_start(day),
                length=shortest.length,
                cost=shortest.cost,
            )
        )
