"""Meyerson's deterministic O(K)-competitive algorithm (thesis Alg. 1).

The algorithm is primal-dual: when an (uncovered) rainy day arrives, its
dual variable is raised until the constraint of some candidate lease —
one of the ``K`` interval-model windows covering the day — becomes tight,
and every tight candidate is bought.  Theorem 2.7 proves O(K)
competitiveness; Theorem 2.8 shows no deterministic algorithm (whose ratio
depends only on K) does better.

The implementation keeps, per window, the accumulated *contribution*
(the sum of dual values of clients inside it); a window is tight when its
contribution reaches its cost.  Both the primal (purchases) and the dual
(per-day values) are exposed so tests can verify feasibility and weak
duality against the Figure 2.2 ILP.
"""

from __future__ import annotations

from ..core.lease import Lease, LeaseSchedule
from ..core.store import LeaseStore


class DeterministicParkingPermit:
    """Online primal-dual parking permit algorithm (Algorithm 1).

    Args:
        schedule: the permit types.  The algorithm operates in the interval
            model (aligned windows); arbitrary schedules are accepted and
            aligned implicitly, but the O(K) analysis assumes the interval
            model — wrap with
            :class:`~repro.core.interval_model.IntervalModelReduction`
            for general schedules.
    """

    def __init__(self, schedule: LeaseSchedule):
        self.schedule = schedule
        self.store = LeaseStore()
        # Contributions keyed per type by aligned window *start* — int
        # keys instead of (type, start) tuples keep the per-demand loop
        # allocation-free.
        self._contribution: list[dict[int, float]] = [
            {} for _ in schedule.types
        ]
        self._dual: dict[int, float] = {}
        # (index, length, cost, contributions) rows: plain tuples keep
        # the per-demand candidate loop free of attribute lookups.
        self._type_rows = tuple(
            (t.index, t.length, t.cost, self._contribution[t.index])
            for t in schedule.types
        )

    # ------------------------------------------------------------------
    # Online interface
    # ------------------------------------------------------------------
    def on_demand(self, day: int) -> None:
        """Serve the rainy day ``day`` (raise its dual, buy tight leases).

        The loop works on ``(type_index, aligned start)`` keys and only
        materialises a :class:`~repro.core.lease.Lease` (via the
        schedule's memoised window constructor) for candidates that
        actually become tight — the serving hot path never allocates for
        the common buy-nothing case.
        """
        if day in self._dual:
            return  # duplicate arrival: constraint already exists
        rows = self._type_rows
        starts: list[int] = []
        min_slack = None
        for index, length, cost, contrib in rows:
            start = day - day % length
            starts.append(start)
            slack = cost - contrib.get(start, 0.0)
            if min_slack is None or slack < min_slack:
                min_slack = slack
        # If some candidate is already tight (e.g. already bought), the
        # dual cannot be raised at all.
        raise_by = min_slack if min_slack > 0.0 else 0.0
        self._dual[day] = raise_by
        window = self.schedule.window
        buy = self.store.buy
        for (index, length, cost, contrib), start in zip(rows, starts):
            total = contrib.get(start, 0.0) + raise_by
            contrib[start] = total
            if total >= cost - 1e-9:
                buy(window(index, start))

    def covers(self, day: int) -> bool:
        """Whether the current solution already covers ``day``."""
        return self.store.covers(0, day)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def cost(self) -> float:
        """Total cost of purchases so far."""
        return self.store.total_cost

    @property
    def leases(self) -> tuple[Lease, ...]:
        """Purchased leases in purchase order."""
        return self.store.leases

    @property
    def duals(self) -> dict[int, float]:
        """The dual value assigned to each served day (Figure 2.2 duals)."""
        return dict(self._dual)

    # ------------------------------------------------------------------
    # Durable state (snapshot / restore)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-ready algorithm state for durable snapshots.

        Purchases are recorded as ``(type_index, start)`` pairs in
        purchase order: restoring re-buys them through the schedule's
        memoised window constructor in the same order, so the store's
        float cost accumulation — and hence every downstream cost sum —
        is reproduced bit for bit.  Contributions and duals are emitted
        as sorted pairs (JSON objects would stringify the int keys).
        """
        return {
            "purchases": [
                [lease.type_index, lease.start] for lease in self.store.leases
            ],
            "contribution": [
                sorted(contrib.items()) for contrib in self._contribution
            ],
            "dual": sorted(self._dual.items()),
        }

    def restore_state(self, state: dict) -> None:
        """Load a :meth:`state_dict` snapshot into this (fresh) instance.

        Mutates the existing ``_contribution`` dicts in place —
        ``_type_rows`` holds references to them, so rebinding would
        silently disconnect the hot-path candidate loop from the
        restored contributions.
        """
        window = self.schedule.window
        buy = self.store.buy
        for type_index, start in state["purchases"]:
            buy(window(int(type_index), int(start)))
        for contrib, pairs in zip(self._contribution, state["contribution"]):
            contrib.clear()
            for start, value in pairs:
                contrib[int(start)] = float(value)
        self._dual.clear()
        for day, value in state["dual"]:
            self._dual[int(day)] = float(value)
