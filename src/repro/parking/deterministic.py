"""Meyerson's deterministic O(K)-competitive algorithm (thesis Alg. 1).

The algorithm is primal-dual: when an (uncovered) rainy day arrives, its
dual variable is raised until the constraint of some candidate lease —
one of the ``K`` interval-model windows covering the day — becomes tight,
and every tight candidate is bought.  Theorem 2.7 proves O(K)
competitiveness; Theorem 2.8 shows no deterministic algorithm (whose ratio
depends only on K) does better.

The implementation keeps, per window, the accumulated *contribution*
(the sum of dual values of clients inside it); a window is tight when its
contribution reaches its cost.  Both the primal (purchases) and the dual
(per-day values) are exposed so tests can verify feasibility and weak
duality against the Figure 2.2 ILP.
"""

from __future__ import annotations

from ..core.lease import Lease, LeaseSchedule
from ..core.store import LeaseStore


class DeterministicParkingPermit:
    """Online primal-dual parking permit algorithm (Algorithm 1).

    Args:
        schedule: the permit types.  The algorithm operates in the interval
            model (aligned windows); arbitrary schedules are accepted and
            aligned implicitly, but the O(K) analysis assumes the interval
            model — wrap with
            :class:`~repro.core.interval_model.IntervalModelReduction`
            for general schedules.
    """

    def __init__(self, schedule: LeaseSchedule):
        self.schedule = schedule
        self.store = LeaseStore()
        self._contribution: dict[tuple[int, int], float] = {}
        self._dual: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Online interface
    # ------------------------------------------------------------------
    def on_demand(self, day: int) -> None:
        """Serve the rainy day ``day`` (raise its dual, buy tight leases)."""
        if day in self._dual:
            return  # duplicate arrival: constraint already exists
        candidates = self.schedule.windows_covering(day)
        slacks = [
            candidate.cost
            - self._contribution.get(
                (candidate.type_index, candidate.start), 0.0
            )
            for candidate in candidates
        ]
        # If some candidate is already tight (e.g. already bought), the
        # dual cannot be raised at all.
        raise_by = max(0.0, min(slacks))
        self._dual[day] = raise_by
        for candidate in candidates:
            key = (candidate.type_index, candidate.start)
            self._contribution[key] = (
                self._contribution.get(key, 0.0) + raise_by
            )
            if self._contribution[key] >= candidate.cost - 1e-9:
                self.store.buy(candidate)

    def covers(self, day: int) -> bool:
        """Whether the current solution already covers ``day``."""
        return self.store.covers(0, day)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def cost(self) -> float:
        """Total cost of purchases so far."""
        return self.store.total_cost

    @property
    def leases(self) -> tuple[Lease, ...]:
        """Purchased leases in purchase order."""
        return self.store.leases

    @property
    def duals(self) -> dict[int, float]:
        """The dual value assigned to each served day (Figure 2.2 duals)."""
        return dict(self._dual)
