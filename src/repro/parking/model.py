"""The parking permit problem model (thesis Section 2.2.1, Figure 2.2).

On each rainy day we must hold a valid permit (lease); permits come in
``K`` types of different durations and costs.  The instance is therefore a
lease schedule plus the sorted list of rainy days.  The ILP of Figure 2.2
is materialised by :meth:`ParkingPermitInstance.to_covering_program`, which
the exact baselines and duality checks consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import (
    freeze_ints,
    require,
    require_nonnegative_int,
    require_sorted_unique,
)
from ..core.lease import Lease, LeaseSchedule
from ..lp.model import CoveringProgram


@dataclass(frozen=True)
class ParkingPermitInstance:
    """A parking permit instance: lease types plus rainy days.

    Attributes:
        schedule: the ``K`` available permit types.
        rainy_days: strictly increasing days on which a permit is needed.
    """

    schedule: LeaseSchedule
    rainy_days: tuple[int, ...]

    def __post_init__(self) -> None:
        days = freeze_ints(self.rainy_days, "rainy_days")
        object.__setattr__(self, "rainy_days", days)
        for day in days:
            require_nonnegative_int(day, "rainy day")
        require_sorted_unique(days, "rainy_days")

    @property
    def num_days(self) -> int:
        """Number of rainy days (demands)."""
        return len(self.rainy_days)

    @property
    def horizon(self) -> int:
        """One past the last rainy day (0 for the empty instance)."""
        return self.rainy_days[-1] + 1 if self.rainy_days else 0

    def candidates(self, day: int) -> list[Lease]:
        """The ``K`` interval-model windows covering ``day`` (its candidates)."""
        return self.schedule.windows_covering(day)

    def is_feasible_solution(self, leases: list[Lease]) -> bool:
        """Whether every rainy day is covered by some lease."""
        return all(
            any(lease.covers(day) for lease in leases)
            for day in self.rainy_days
        )

    def to_covering_program(self) -> CoveringProgram:
        """The Figure 2.2 ILP restricted to interval-model windows.

        One 0/1 variable per aligned window containing at least one rainy
        day; one covering row per rainy day.  Restricting to windows that
        contain a demand loses nothing (an empty window can be dropped from
        any solution).
        """
        program = CoveringProgram()
        variable_of: dict[tuple[int, int], int] = {}
        rows: list[dict[int, float]] = [dict() for _ in self.rainy_days]
        for day_index, day in enumerate(self.rainy_days):
            for lease in self.candidates(day):
                key = (lease.type_index, lease.start)
                if key not in variable_of:
                    variable_of[key] = program.add_variable(
                        cost=lease.cost,
                        name=f"x[k={lease.type_index},t={lease.start}]",
                        payload=lease,
                    )
                rows[day_index][variable_of[key]] = 1.0
        for day, terms in zip(self.rainy_days, rows):
            program.add_constraint(terms, rhs=1.0, name=f"day[{day}]")
        return program

    def with_days(self, rainy_days: list[int]) -> "ParkingPermitInstance":
        """Same schedule, different demand sequence."""
        return ParkingPermitInstance(
            schedule=self.schedule, rainy_days=tuple(sorted(set(rainy_days)))
        )


def make_instance(
    schedule: LeaseSchedule, rainy_days: list[int]
) -> ParkingPermitInstance:
    """Convenience constructor that sorts and dedupes ``rainy_days``."""
    require(
        all(isinstance(day, int) and not isinstance(day, bool)
            for day in rainy_days),
        "rainy_days must be ints",
    )
    return ParkingPermitInstance(
        schedule=schedule, rainy_days=tuple(sorted(set(rainy_days)))
    )
