"""Command-line interface: run leasing demos without writing code.

``python -m repro <problem> [options]`` generates a seeded workload, runs
the problem's online algorithm against its offline baseline, verifies
feasibility, and prints the comparison table — the same pipeline the
examples script, condensed to one command.

Subcommands::

    python -m repro parking  --num-types 4 --horizon 200 --seed 7
    python -m repro setcover --elements 20 --sets 10 --demands 30
    python -m repro facility --facilities 4 --steps 8 --per-step 2
    python -m repro old      --horizon 120 --max-slack 6
    python -m repro engine list
    python -m repro engine run --scenario all --workers 4 --seed 7
    python -m repro engine run --scenario broker-markov --shards 4 --workers 4
    python -m repro engine replay --workload markov --horizon 400
    python -m repro engine serve --socket /tmp/lease.sock --resources 8
    python -m repro engine cluster --socket /tmp/lease.sock --workers 2
    python -m repro engine loadgen --socket /tmp/lease.sock --check
    python -m repro engine loadgen --cluster 2 --check
    python -m repro engine loadgen --cluster 2 --direct --check
    python -m repro engine chaos --workers 2 --kills 2 --direct --check
    python -m repro engine metrics --socket /tmp/lease.sock --validate
    python -m repro engine trace-tree spans/*.jsonl --json
    python -m repro engine flamegraph capture.json

The ``engine`` subcommands front :mod:`repro.engine`, :mod:`repro.serve`
and :mod:`repro.cluster`: ``list`` prints the scenario registry (with
its ``shardable`` and ``cluster`` columns), ``run`` replays scenarios
through the parallel runner and prints one aggregate ratio table,
``replay`` drives the lease broker from a generated or saved JSONL event
trace, ``serve`` puts a broker behind the asyncio wire protocol,
``cluster`` spawns N ``engine serve`` worker processes behind a shard
router on one socket, ``loadgen`` drives closed-loop tenants against
a server or cluster (in-process by default) and checks the served
aggregate against an inline replay of the same trace, ``chaos``
SIGKILLs workers in a WAL'd supervised cluster mid-loadgen and demands
the post-crash aggregate still equal the inline replay byte for byte,
``metrics`` scrapes a running server or router's Prometheus
exposition over the ``metrics`` protocol verb, ``trace-tree``
merges a fleet's span JSONL files and reconstructs one causal tree per
traced op, and ``flamegraph`` renders a ``/profile`` capture as
collapsed-stack text (the format flamegraph tooling consumes).
``serve`` and ``cluster`` additionally mount the
:mod:`repro.admin` HTTP ops plane beside the lease listener when
``--admin-port`` is given.
"""

from __future__ import annotations

import argparse

from .analysis import print_table, verify_facility, verify_multicover
from .analysis import verify_old, verify_parking
from .core import LeaseSchedule, run_online
from .deadlines import make_old_instance, optimal_dp, run_old
from .facility import make_instance as make_facility_instance
from .facility import optimum as facility_optimum
from .facility import run_facility_leasing
from .parking import (
    DeterministicParkingPermit,
    RandomizedParkingPermit,
    make_instance,
    optimal_interval,
)
from .setcover import (
    OnlineSetMulticoverLeasing,
    optimum as setcover_optimum,
    random_instance,
)
from .workloads import (
    constant_batches,
    deadline_arrivals,
    make_rng,
    markov_days,
)


def _schedule(args) -> LeaseSchedule:
    return LeaseSchedule.power_of_two(
        args.num_types, cost_growth=args.cost_growth
    )


def cmd_parking(args) -> int:
    schedule = _schedule(args)
    days = markov_days(args.horizon, 0.1, 0.8, make_rng(args.seed))
    instance = make_instance(schedule, days)
    deterministic = DeterministicParkingPermit(schedule)
    run_online(deterministic, instance.rainy_days)
    verify_parking(instance, list(deterministic.leases)).raise_if_failed()
    randomized = RandomizedParkingPermit(schedule, seed=args.seed)
    run_online(randomized, instance.rainy_days)
    verify_parking(instance, list(randomized.leases)).raise_if_failed()
    opt = optimal_interval(instance).cost
    print_table(
        ["algorithm", "cost", "ratio", "bound"],
        [
            ["deterministic (Alg 1)", deterministic.cost,
             deterministic.cost / opt, schedule.num_types],
            ["randomized (Alg 2)", randomized.cost,
             randomized.cost / opt, ""],
            ["offline optimum", opt, 1.0, ""],
        ],
        title=f"parking permit: {instance.num_days} rainy days, "
        f"K={schedule.num_types}",
    )
    return 0


def cmd_setcover(args) -> int:
    schedule = _schedule(args)
    instance = random_instance(
        num_elements=args.elements,
        num_sets=args.sets,
        memberships=min(3, args.sets),
        schedule=schedule,
        horizon=args.horizon,
        num_demands=args.demands,
        rng=make_rng(args.seed),
        max_coverage=2,
    )
    algorithm = OnlineSetMulticoverLeasing(instance, seed=args.seed)
    run_online(algorithm, instance.demands)
    verify_multicover(instance, list(algorithm.leases)).raise_if_failed()
    opt = setcover_optimum(instance)
    print_table(
        ["algorithm", "cost", "ratio"],
        [
            ["randomized online (Alg 3+4)", algorithm.cost,
             algorithm.cost / opt.lower],
            [f"offline optimum ({opt.method})", opt.lower, 1.0],
        ],
        title=f"set multicover leasing: n={args.elements}, m={args.sets}, "
        f"{args.demands} demands",
    )
    return 0


def cmd_facility(args) -> int:
    schedule = _schedule(args)
    instance = make_facility_instance(
        schedule,
        num_facilities=args.facilities,
        batch_sizes=constant_batches(args.steps, args.per_step),
        rng=make_rng(args.seed),
    )
    algorithm = run_facility_leasing(instance)
    verify_facility(
        instance, list(algorithm.leases), algorithm.connections
    ).raise_if_failed()
    opt = facility_optimum(instance)
    print_table(
        ["algorithm", "leasing", "connection", "total", "ratio"],
        [
            ["two-phase online (Ch. 4)", algorithm.leasing_cost,
             algorithm.connection_cost, algorithm.cost,
             algorithm.cost / opt.lower],
            [f"offline optimum ({opt.method})", "", "", opt.lower, 1.0],
        ],
        title=f"facility leasing: {instance.num_clients} clients, "
        f"{args.facilities} facilities",
    )
    return 0


def cmd_old(args) -> int:
    schedule = _schedule(args)
    clients = deadline_arrivals(
        args.horizon, 0.4, max_slack=args.max_slack, rng=make_rng(args.seed)
    )
    instance = make_old_instance(schedule, clients).normalized()
    algorithm = run_old(instance)
    verify_old(instance, list(algorithm.leases)).raise_if_failed()
    opt = optimal_dp(instance)
    print_table(
        ["algorithm", "cost", "ratio", "bound"],
        [
            ["primal-dual online (Ch. 5)", algorithm.cost,
             algorithm.cost / opt if opt else 1.0,
             2 * schedule.num_types
             + instance.dmax / schedule.lmin + 2],
            ["offline optimum (DP)", opt, 1.0, ""],
        ],
        title=f"leasing with deadlines: {len(instance.clients)} clients, "
        f"dmax={instance.dmax}",
    )
    return 0


def _resolve_families(requested, *, where) -> list[str] | None:
    """Validate ``--family`` values against the registry; None on error.

    Repeated families are deduplicated (first occurrence wins) so a
    doubled ``--family`` flag never runs a scenario twice.
    """
    import sys

    from .engine import families

    selected: list[str] = []
    for family in requested:
        if family not in selected:
            selected.append(family)
    known = families()
    unknown = [family for family in selected if family not in known]
    if unknown:
        print(
            f"error: unknown famil{'y' if len(unknown) == 1 else 'ies'} "
            f"{', '.join(sorted(unknown))} for {where}; "
            f"known: {', '.join(known)}",
            file=sys.stderr,
        )
        return None
    return selected


def cmd_engine_list(args) -> int:
    from .engine import all_scenarios

    scenarios = all_scenarios()
    title = f"{len(scenarios)} registered scenarios"
    if args.family:
        selected = _resolve_families(args.family, where="engine list")
        if selected is None:
            return 2
        scenarios = tuple(s for s in scenarios if s.family in selected)
        title = (
            f"{len(scenarios)} registered scenarios "
            f"(family {', '.join(selected)})"
        )
    print_table(
        [
            "scenario", "family", "workload", "paper result",
            "shardable", "cluster", "direct", "description",
        ],
        [
            [
                s.name, s.family, s.workload, s.paper_result,
                "yes" if s.shardable else "",
                "yes" if s.cluster_servable else "",
                "yes" if s.direct_servable else "",
                s.description,
            ]
            for s in scenarios
        ],
        title=title,
    )
    return 0


def cmd_engine_run(args) -> int:
    import sys

    from .engine import (
        by_family,
        get_scenario,
        render_report,
        replay,
        replay_sharded,
        scenario_names,
    )

    requested = tuple(args.scenario or ())
    if not requested and not args.family:
        print(
            "error: engine run needs --scenario and/or --family",
            file=sys.stderr,
        )
        return 2
    # --family is validated whatever else is selected, so a typo is
    # refused (exit 2) even next to --scenario all.
    family_names: tuple[str, ...] = ()
    if args.family:
        selected = _resolve_families(args.family, where="engine run")
        if selected is None:
            return 2
        family_names = tuple(
            s.name for family in selected for s in by_family(family)
        )
    explicit = tuple(name for name in requested if name != "all")
    if "all" in requested:
        # 'all' expands to the registry (covering every family);
        # explicitly named extras (e.g. ad-hoc registered scenarios)
        # still run alongside it.
        names = scenario_names() + tuple(
            name for name in explicit if name not in scenario_names()
        )
    else:
        # Family selections expand first (in registry name order), then
        # explicitly named scenarios not already covered.
        names = family_names + tuple(
            name for name in explicit if name not in family_names
        )
    if args.shards > 1:
        # Fail fast and plainly on non-shardable scenarios instead of
        # letting replay_sharded raise per-name deep in the run.
        non_shardable = [
            name for name in names if not get_scenario(name).shardable
        ]
        if non_shardable:
            print(
                "error: --shards requires shardable scenarios, but "
                f"{', '.join(sorted(non_shardable))} "
                f"{'is' if len(non_shardable) == 1 else 'are'} not "
                "(see the 'shardable' column of `engine list`); "
                "drop --shards or pick a shardable family such as broker-*",
                file=sys.stderr,
            )
            return 2
        # Intra-scenario sharding: each scenario splits by resource into
        # shard jobs; merged outcomes are byte-identical to unsharded.
        outcomes = [
            replay_sharded(
                name,
                seed=args.seed,
                shards=args.shards,
                workers=args.workers,
                transport=args.transport,
            )
            for name in names
        ]
        title = (
            f"engine run: {len(names)} scenarios, seed {args.seed}, "
            f"{args.shards} shards x {args.workers} workers"
        )
    else:
        outcomes = replay(
            names,
            seeds=[args.seed],
            workers=args.workers,
            transport=args.transport,
        )
        title = (
            f"engine run: {len(names)} scenarios, seed {args.seed}, "
            f"{args.workers} workers"
        )
    print(render_report(outcomes, title=title))
    return 0 if all(outcome.verified for outcome in outcomes) else 1


def cmd_engine_replay(args) -> int:
    from . import io as repro_io
    from .engine import LeaseBroker, generate_trace, replay_trace

    if args.trace:
        events = repro_io.load_trace(args.trace)
        source = args.trace
    else:
        events = generate_trace(
            args.workload,
            args.horizon,
            seed=args.seed,
            num_tenants=args.tenants,
            num_resources=args.resources,
        )
        source = f"{args.workload} workload, seed {args.seed}"
    if args.save:
        repro_io.save_trace(events, args.save)
    broker = LeaseBroker(_schedule(args))
    stats = replay_trace(broker, events)
    print_table(
        ["metric", "value"],
        [
            ["events", stats.events],
            ["acquires", stats.acquires],
            ["renewals", stats.renewals],
            ["releases", stats.releases],
            ["no-op releases", stats.noop_releases],
            ["expirations", stats.expirations],
            ["ticks", stats.ticks],
            ["active grants", broker.num_active],
            ["leases bought", len(broker.leases)],
            ["total cost", broker.cost],
        ],
        title=f"broker replay: {source}, K={args.num_types}",
    )
    return 0


def cmd_engine_serve(args) -> int:
    import asyncio

    from .obs import MetricsRegistry, TraceSink
    from .serve import LeaseServer

    schedule = LeaseSchedule.power_of_two(
        args.num_types, cost_growth=args.cost_growth
    )
    # The operator-facing default is instrumented; the library default
    # stays off so embedded servers pay nothing unless asked.
    metrics = MetricsRegistry(enabled=args.metrics)
    trace = TraceSink(args.trace_jsonl)
    wal_kwargs = {}
    if args.wal_dir:
        wal_kwargs["wal_dir"] = args.wal_dir
        wal_kwargs["fsync"] = args.fsync
        if args.snapshot_every is not None:
            wal_kwargs["snapshot_every"] = args.snapshot_every
    server = LeaseServer(
        schedule,
        num_resources=args.resources,
        num_shards=args.shards,
        record=args.record,
        session_window=args.window,
        idle_timeout=args.idle_timeout,
        metrics=metrics,
        trace=trace,
        **wal_kwargs,
    )

    async def _main() -> None:
        where = []
        if args.socket:
            await server.start_unix(args.socket)
            where.append(f"unix:{args.socket}")
        if args.port is not None:
            port = await server.start_tcp(args.host, args.port)
            where.append(f"tcp:{args.host}:{port}")
        admin = None
        if args.admin_port is not None:
            from .admin import AdminPlane

            admin = AdminPlane(server)
            admin_port = await admin.start_tcp(args.admin_host, args.admin_port)
            where.append(f"admin http://{args.admin_host}:{admin_port}")
        extras = [f"metrics {'on' if args.metrics else 'off'}"]
        if args.wal_dir:
            extras.append(f"wal {args.wal_dir} (fsync={args.fsync})")
            if server.recovered_events:
                extras.append(f"recovered {server.recovered_events} events")
        if args.trace_jsonl:
            extras.append(f"trace {args.trace_jsonl}")
        print(
            f"repro.serve listening on {', '.join(where)} — "
            f"{args.resources} resources over {args.shards} shard broker(s), "
            f"K={args.num_types}, {', '.join(extras)}",
            flush=True,
        )
        try:
            await server.run_until_stopped()
        finally:
            if admin is not None:
                await admin.close()

    if not args.socket and args.port is None:
        print("error: engine serve needs --socket and/or --port")
        return 2
    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        trace.close()
    return 0


def cmd_engine_cluster(args) -> int:
    import asyncio
    from pathlib import Path

    from .cluster import (
        ClusterRouter,
        ClusterSpec,
        WorkerProcess,
        make_respawner,
        reap,
    )

    if not args.socket:
        print("error: engine cluster needs --socket")
        return 2
    spec = ClusterSpec(
        num_resources=args.resources,
        num_workers=args.workers,
        shards_per_worker=args.shards_per_worker,
        num_types=args.num_types,
        cost_growth=args.cost_growth,
        record=args.record,
        session_window=args.window,
        wal_root=args.wal_root,
        fsync=args.fsync,
        snapshot_every=args.snapshot_every,
        worker_metrics=args.worker_metrics,
        trace_root=args.trace_root,
        transport=args.worker_transport,
    )
    base = Path(args.socket)
    if spec.transport == "tcp":
        from .cluster import format_endpoint, free_tcp_port

        endpoints = [
            format_endpoint("tcp", "127.0.0.1", free_tcp_port())
            for _ in range(spec.num_workers)
        ]
    else:
        endpoints = [
            str(base.with_name(f"{base.name}.w{index}"))
            for index in range(spec.num_workers)
        ]
    workers = [
        WorkerProcess(index, spec, endpoints[index])
        for index in range(spec.num_workers)
    ]

    async def _main() -> None:
        from .obs import MetricsRegistry, TraceSink

        router = ClusterRouter(
            spec,
            worker_window=args.worker_window,
            metrics=MetricsRegistry(enabled=args.metrics),
            trace=TraceSink(args.trace_jsonl),
            collect_worker_metrics=args.worker_metrics,
            # Durable fleets run supervised: a dead worker respawns with
            # its WAL directory and recovers instead of failing traffic.
            respawn=make_respawner(workers) if args.wal_root else None,
        )
        await router.connect_workers(
            [worker.endpoint for worker in workers],
            retry_for=args.connect_timeout,
            codec=args.codec,
        )
        await router.start_unix(args.socket)
        tcp_at = ""
        if args.port is not None:
            bound = await router.start_tcp(
                port=args.port, reuse_port=args.reuse_port
            )
            tcp_at = f" + tcp:127.0.0.1:{bound}"
            if args.reuse_port:
                tcp_at += " (SO_REUSEPORT)"
        admin = None
        admin_at = ""
        if args.admin_port is not None:
            from .admin import AdminPlane

            admin = AdminPlane(router)
            admin_port = await admin.start_tcp(args.admin_host, args.admin_port)
            admin_at = f", admin http://{args.admin_host}:{admin_port}"
        durability = (
            f"wal {args.wal_root} (fsync={args.fsync}, supervised)"
            if args.wal_root else "wal off"
        )
        metrics_stance = "on" if args.metrics else "off"
        if args.worker_metrics:
            metrics_stance += "+workers"
        print(
            f"repro.cluster listening on unix:{args.socket}{tcp_at} — "
            f"{spec.num_resources} resources over {spec.num_workers} "
            f"worker process(es) x {spec.shards_per_worker} shard(s), "
            f"K={spec.num_types}, worker codec={args.codec}, "
            f"{durability}, metrics {metrics_stance}{admin_at}",
            flush=True,
        )
        if args.direct:
            table = router.route_table()
            endpoints_line = ", ".join(
                f"w{row['index']}={row['endpoint']}"
                for row in table["workers"]
            )
            print(
                f"direct data plane: route handshake at epoch "
                f"{table['epoch']} over {spec.transport} — "
                f"{endpoints_line}",
                flush=True,
            )
        try:
            await router.run_until_stopped()
        finally:
            if admin is not None:
                await admin.close()
            router.trace.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        reap(workers)
    return 0


def cmd_engine_chaos(args) -> int:
    import tempfile

    from .durable.chaos import (
        build_chaos_instance,
        default_kill_schedule,
        run_chaos,
    )

    explicit = []
    for item in args.kill or ():
        day, sep, worker = item.partition(":")
        if not sep or not day.isdigit() or not worker.isdigit():
            print(f"error: --kill wants DAY:WORKER, got {item!r}")
            return 2
        explicit.append((int(day), int(worker)))

    # Chaos state is throwaway by design — the WAL tree only needs to
    # outlive the kills inside this one run — so default to a temp dir.
    tmp = None
    wal_root = args.wal_root
    if wal_root is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        wal_root = tmp.name
    try:
        instance = build_chaos_instance(
            args.workload,
            args.horizon,
            args.seed,
            wal_root,
            num_resources=args.resources,
            tenants_per_resource=args.tenants_per_resource,
            num_workers=args.workers,
            shards_per_worker=args.shards_per_worker,
            fsync=args.fsync,
            snapshot_every=args.snapshot_every,
            topology="direct" if args.direct else "routed",
        )
        schedule = (
            tuple(explicit)
            if explicit
            else default_kill_schedule(instance, kills=args.kills)
        )
        outcome = run_chaos(
            instance, kill_schedule=schedule, retry_for=args.connect_timeout
        )
    finally:
        if tmp is not None:
            tmp.cleanup()

    def _fmt(kills) -> str:
        return (
            ", ".join(f"day {day} -> worker {w}" for day, w in kills)
            or "none"
        )

    print_table(
        ["metric", "value"],
        [
            ["workers", args.workers],
            ["topology", "direct" if args.direct else "routed"],
            ["fsync", outcome.fsync],
            ["scheduled kills", _fmt(outcome.scheduled)],
            ["executed kills", _fmt(outcome.executed)],
            ["respawns", outcome.respawns],
            ["requests sent", outcome.requests],
            ["leases bought", len(outcome.result.leases)],
            ["total cost", outcome.cost],
            [
                "report equals inline replay",
                "yes" if outcome.report_equal else "NO",
            ],
        ],
        title=(
            f"chaos: {args.workload} x{args.horizon}, seed {args.seed} — "
            f"SIGKILL {len(outcome.scheduled)} worker(s) mid-load"
        ),
    )
    if args.check and not outcome.ok:
        if not outcome.report_equal:
            print(
                "error: post-crash aggregate diverged from the inline replay"
            )
        else:
            print(
                "error: scheduled kill(s) never executed "
                "(victim already dead?)"
            )
        return 1
    return 0


def cmd_engine_metrics(args) -> int:
    import asyncio
    import json
    import sys

    from .obs import parse_exposition, validate_exposition
    from .serve import AsyncLeaseClient

    if not args.socket:
        print("error: engine metrics needs --socket", file=sys.stderr)
        return 2

    async def _scrape() -> str:
        client = await AsyncLeaseClient.open_unix(
            args.socket, retry_for=args.connect_timeout
        )
        try:
            return (await client.call("metrics"))["text"]
        finally:
            await client.close()

    text = asyncio.run(_scrape())
    if args.json:
        families = parse_exposition(text)
        print(
            json.dumps(
                {
                    name: {
                        "type": family.type,
                        "samples": [
                            [sample_name, labels, value]
                            for sample_name, labels, value in family.samples
                        ],
                    }
                    for name, family in sorted(families.items())
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(text, end="")
    if args.validate:
        failures = validate_exposition(text)
        if failures:
            for failure in failures:
                print(f"invalid exposition: {failure}", file=sys.stderr)
            return 1
        print(
            f"exposition valid: {len(parse_exposition(text))} families",
            file=sys.stderr,
        )
    return 0


def cmd_engine_trace_tree(args) -> int:
    import json
    import sys

    from .obs import (
        build_trace_trees,
        load_spans,
        render_trace_tree,
        trace_tree_payload,
    )

    try:
        spans = load_spans(args.files)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    trees = build_trace_trees(spans)
    if args.trace:
        missing = [trace for trace in args.trace if trace not in trees]
        if missing:
            print(
                f"error: no spans for trace(s) {', '.join(missing)}",
                file=sys.stderr,
            )
            return 1
        trees = {trace: trees[trace] for trace in args.trace}
    if args.json:
        print(
            json.dumps(
                {
                    trace: trace_tree_payload(roots)
                    for trace, roots in trees.items()
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    if not trees:
        print(
            f"no trace-context spans in {len(spans)} span(s) from "
            f"{len(args.files)} file(s)"
        )
        return 0
    for trace in sorted(trees):
        print(render_trace_tree(trace, trees[trace]))
    return 0


def cmd_engine_flamegraph(args) -> int:
    import json
    import sys

    from .obs import render_collapsed

    try:
        if args.capture == "-":
            capture = json.load(sys.stdin)
        else:
            with open(args.capture, "r", encoding="utf-8") as handle:
                capture = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not isinstance(capture, dict) or "stacks" not in capture:
        print(
            "error: not a /profile capture (expected a JSON object with "
            "a 'stacks' field)",
            file=sys.stderr,
        )
        return 2
    text = render_collapsed(capture)
    print(text, end="")
    if not text:
        print(
            "no samples in capture (profiler idle or window too short)",
            file=sys.stderr,
        )
    return 0


def _tenant_latency_payload(registry) -> dict:
    """Machine-readable per-tenant latency percentiles (``--json``).

    Times are seconds, mirroring the histogram's own unit; ``count`` is
    the sampled op count.  Shape:
    ``{tenant: {count, p50, p95, p99}}`` sorted by tenant.
    """
    from .obs import latency_summary
    from .serve.loadgen import LOADGEN_LATENCY_METRIC

    summary = latency_summary(registry, LOADGEN_LATENCY_METRIC)
    return {
        tenant: {
            "count": int(row["count"]),
            "p50": row["p50"],
            "p95": row["p95"],
            "p99": row["p99"],
        }
        for tenant, row in sorted(summary.items())
    }


def _print_tenant_latencies(registry) -> None:
    """Per-tenant op-latency percentiles from the loadgen histograms.

    Printed only under ``--check``: the percentiles ride the same
    closed-loop drive as the equality judgement, but never enter the
    verified report fields — observation, not behaviour.
    """
    from .obs import latency_summary
    from .serve.loadgen import LOADGEN_LATENCY_METRIC

    summary = latency_summary(registry, LOADGEN_LATENCY_METRIC)
    if not summary:
        return
    print_table(
        ["tenant", "ops", "p50 ms", "p95 ms", "p99 ms"],
        [
            [
                tenant,
                int(row["count"]),
                f"{row['p50'] * 1e3:.3f}",
                f"{row['p95'] * 1e3:.3f}",
                f"{row['p99'] * 1e3:.3f}",
            ]
            for tenant, row in sorted(summary.items())
        ],
        title="per-tenant op latency (client side)",
    )


def cmd_engine_loadgen(args) -> int:
    import asyncio
    import json
    import sys

    from .obs import MetricsRegistry, TraceSink
    from .serve import ServeError
    from .serve.loadgen import (
        build_serve_instance,
        compare_with_inline,
        drive_tenants,
        drive_tenants_direct,
        merge_shard_payloads,
        run_serve_instance,
        serve_once,
    )

    # Fail fast and plainly when --direct has no data plane to use,
    # mirroring the --shards convention: the in-process single server
    # has no router to handshake with.
    if args.direct and not args.cluster and not args.socket:
        print(
            "error: --direct needs a cluster data plane, but the "
            "in-process single server has no router to handshake with "
            "(see the 'direct' column of `engine list`); "
            "add --cluster N or point --socket at an `engine cluster` "
            "router",
            file=sys.stderr,
        )
        return 2

    # --check turns on client-side latency sampling so the verdict
    # table can carry per-tenant percentiles alongside the equality
    # judgement.
    latency = MetricsRegistry(enabled=args.check)
    client_trace = TraceSink(args.trace_jsonl)

    if args.cluster:
        # In-process cluster: spawn the worker fleet + router, drive the
        # tenants through it, and judge against the inline replay — the
        # cluster-* scenario loop as one command.
        from .cluster import (
            build_cluster_instance,
            cluster_once,
            run_cluster_instance,
        )

        cluster_instance = build_cluster_instance(
            args.workload,
            args.horizon,
            args.seed,
            num_resources=args.resources,
            tenants_per_resource=args.tenants_per_resource,
            num_types=args.num_types,
            cost_growth=args.cost_growth,
            num_workers=args.cluster,
            shards_per_worker=args.shards_per_worker,
            codec=args.codec,
            topology="direct" if args.direct else "routed",
        )
        report = cluster_once(
            cluster_instance,
            latency_registry=latency,
            client_trace=client_trace,
        )
        client_trace.close()
        served = run_cluster_instance(
            cluster_instance, args.seed, report=report
        )
        detail = served.detail["cluster"]
        equal = detail["report_equal"]
        stats = served.detail["broker_stats"]
        if args.json:
            print(
                json.dumps(
                    {
                        "workload": args.workload,
                        "horizon": args.horizon,
                        "seed": args.seed,
                        "source": (
                            f"in-process cluster ({args.cluster} workers, "
                            f"{detail['topology']})"
                        ),
                        "requests": detail["requests"],
                        "events": stats["events"],
                        "leases": len(served.leases),
                        "cost": served.cost,
                        "report_equal": equal,
                        "tenant_latency": _tenant_latency_payload(latency),
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            print_table(
                ["metric", "value"],
                [
                    ["tenants", detail["tenants"]],
                    ["workers", detail["workers"]],
                    ["total shards", detail["total_shards"]],
                    ["codec", detail["codec"]],
                    ["topology", detail["topology"]],
                    ["requests sent", detail["requests"]],
                    ["events applied", stats["events"]],
                    ["leases bought", len(served.leases)],
                    ["total cost", served.cost],
                    ["report equals inline replay", "yes" if equal else "NO"],
                ],
                title=(
                    f"loadgen: {args.workload} x{args.horizon} against an "
                    f"in-process cluster ({args.cluster} workers), "
                    f"seed {args.seed}"
                ),
            )
            if args.check:
                _print_tenant_latencies(latency)
        if args.check and not equal:
            if not args.json:
                print(
                    "error: clustered aggregate diverged from the "
                    "inline replay"
                )
            return 1
        return 0

    instance = build_serve_instance(
        args.workload,
        args.horizon,
        args.seed,
        num_resources=args.resources,
        tenants_per_resource=args.tenants_per_resource,
        num_types=args.num_types,
        cost_growth=args.cost_growth,
        num_shards=args.shards,
    )
    if args.socket:
        # Drive an already-running server; its config must match the
        # instance or the equality check would be comparing apples to a
        # different fruit's brokers.
        from .serve import AsyncLeaseClient

        async def _external() -> dict:
            client = await AsyncLeaseClient.open_unix(
                args.socket, retry_for=args.connect_timeout
            )
            try:
                hello = await client.hello()
                schedule = instance.trace.schedule
                mismatches = [
                    f"{field}: server has {got}, loadgen wants {want}"
                    for field, got, want in (
                        ("num_resources", hello["num_resources"], args.resources),
                        ("num_shards", hello["num_shards"], args.shards),
                        (
                            "num_types",
                            hello["schedule"]["num_types"],
                            args.num_types,
                        ),
                        (
                            "schedule lengths",
                            hello["schedule"]["lengths"],
                            [t.length for t in schedule],
                        ),
                        (
                            "schedule costs",
                            hello["schedule"]["costs"],
                            [t.cost for t in schedule],
                        ),
                    )
                    if got != want
                ]
                if mismatches:
                    raise ServeError("protocol", "; ".join(mismatches))
                if args.direct and not (
                    (hello.get("cluster") or {}).get("direct")
                ):
                    raise ServeError(
                        "protocol",
                        f"server at unix:{args.socket} does not offer a "
                        "direct data plane (no routing handshake in its "
                        "hello); drop --direct or start `engine cluster`",
                    )
                drive = drive_tenants_direct if args.direct else drive_tenants
                report = await drive(
                    instance, args.socket, retry_for=args.connect_timeout,
                    codec=args.codec, latency_registry=latency,
                    client_trace=client_trace,
                )
                if args.shutdown:
                    await client.shutdown()
                return report
            finally:
                await client.close()

        try:
            report = asyncio.run(_external())
        except ServeError as exc:
            print(f"error: {exc.message}", file=sys.stderr)
            return 2
        client_trace.close()
        served = merge_shard_payloads(report["shards"])
        _, equal = compare_with_inline(instance, served, args.seed)
        requests = report["requests"]
        source = f"unix:{args.socket}" + (" (direct)" if args.direct else "")
    else:
        report = serve_once(
            instance, latency_registry=latency, client_trace=client_trace
        )
        client_trace.close()
        served = run_serve_instance(instance, args.seed, report=report)
        equal = served.detail["serve"]["report_equal"]
        requests = served.detail["serve"]["requests"]
        source = "in-process server"
    stats = served.detail["broker_stats"]
    if args.json:
        print(
            json.dumps(
                {
                    "workload": args.workload,
                    "horizon": args.horizon,
                    "seed": args.seed,
                    "source": source,
                    "requests": requests,
                    "events": stats["events"],
                    "leases": len(served.leases),
                    "cost": served.cost,
                    "report_equal": equal,
                    "tenant_latency": _tenant_latency_payload(latency),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print_table(
            ["metric", "value"],
            [
                ["tenants", len(instance.tenants)],
                ["shards", instance.num_shards],
                ["requests sent", requests],
                ["events applied", stats["events"]],
                ["acquires", stats["acquires"]],
                ["renewals", stats["renewals"]],
                ["releases", stats["releases"]],
                ["leases bought", len(served.leases)],
                ["total cost", served.cost],
                ["report equals inline replay", "yes" if equal else "NO"],
            ],
            title=(
                f"loadgen: {args.workload} x{args.horizon} against {source}, "
                f"seed {args.seed}"
            ),
        )
        if args.check:
            _print_tenant_latencies(latency)
    if args.check and not equal:
        if not args.json:
            print("error: served aggregate diverged from the inline replay")
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=0)
    common.add_argument("--num-types", type=int, default=4,
                        help="number of lease types K")
    common.add_argument("--cost-growth", type=float, default=1.7,
                        help="cost multiplier per length doubling")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Online Resource Leasing reproduction — demo runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    parking = sub.add_parser(
        "parking", help="parking permit (Ch. 2)", parents=[common]
    )
    parking.add_argument("--horizon", type=int, default=200)
    parking.set_defaults(func=cmd_parking)

    setcover = sub.add_parser(
        "setcover", help="set multicover leasing (Ch. 3)", parents=[common]
    )
    setcover.add_argument("--elements", type=int, default=20)
    setcover.add_argument("--sets", type=int, default=10)
    setcover.add_argument("--demands", type=int, default=30)
    setcover.add_argument("--horizon", type=int, default=40)
    setcover.set_defaults(func=cmd_setcover)

    facility = sub.add_parser(
        "facility", help="facility leasing (Ch. 4)", parents=[common]
    )
    facility.add_argument("--facilities", type=int, default=4)
    facility.add_argument("--steps", type=int, default=8)
    facility.add_argument("--per-step", type=int, default=2)
    facility.set_defaults(func=cmd_facility)

    old = sub.add_parser(
        "old", help="leasing with deadlines (Ch. 5)", parents=[common]
    )
    old.add_argument("--horizon", type=int, default=120)
    old.add_argument("--max-slack", type=int, default=6)
    old.set_defaults(func=cmd_old)

    engine = sub.add_parser(
        "engine", help="lease-broker service and scenario-replay engine"
    )
    engine_sub = engine.add_subparsers(dest="engine_command", required=True)

    engine_list = engine_sub.add_parser(
        "list", help="print the scenario registry"
    )
    engine_list.add_argument(
        "--family", action="append", default=None,
        help="only list scenarios of this family (repeatable), "
        "e.g. --family setcover --family forecast",
    )
    engine_list.set_defaults(func=cmd_engine_list)

    engine_run = engine_sub.add_parser(
        "run", help="replay scenarios and print the aggregate ratio table"
    )
    engine_run.add_argument(
        "--scenario", action="append", default=None,
        help="scenario name, repeatable; 'all' replays the whole registry",
    )
    engine_run.add_argument(
        "--family", action="append", default=None,
        help="replay every scenario of a family (repeatable), "
        "e.g. --family deadlines",
    )
    engine_run.add_argument("--seed", type=int, default=0)
    engine_run.add_argument("--workers", type=int, default=1,
                            help="process-pool size (1 = inline)")
    engine_run.add_argument(
        "--shards", type=int, default=1,
        help="split each scenario into N intra-scenario shards "
        "(scenario must be shardable, e.g. the broker-* family)",
    )
    engine_run.add_argument(
        "--transport", default="auto",
        choices=("auto", "packed", "shm", "object"),
        help="how lease bulk returns from pool workers (default: auto — "
        "packed columns, shared memory for large results)",
    )
    engine_run.set_defaults(func=cmd_engine_run)

    engine_serve = engine_sub.add_parser(
        "serve",
        help="serve the lease broker over TCP / unix sockets (repro.serve)",
    )
    engine_serve.add_argument(
        "--socket", default=None, help="unix-socket path to listen on"
    )
    engine_serve.add_argument("--host", default="127.0.0.1")
    engine_serve.add_argument(
        "--port", type=int, default=None,
        help="TCP port to listen on (0 = ephemeral)",
    )
    engine_serve.add_argument("--resources", type=int, default=8,
                              help="resource id space [0, N)")
    engine_serve.add_argument("--shards", type=int, default=4,
                              help="shard brokers (each its own dispatch queue)")
    engine_serve.add_argument("--num-types", type=int, default=4)
    engine_serve.add_argument(
        "--cost-growth", type=float, default=2.0,
        help="cost multiplier per length doubling (2.0 = exact float sums)",
    )
    engine_serve.add_argument(
        "--record", action=argparse.BooleanOptionalAction, default=True,
        help="keep per-shard applied-event logs for the trace op",
    )
    engine_serve.add_argument("--window", type=int, default=64,
                              help="per-tenant in-flight request bound")
    engine_serve.add_argument("--idle-timeout", type=float, default=60.0,
                              help="seconds before idle sessions are reaped")
    engine_serve.add_argument(
        "--metrics", action=argparse.BooleanOptionalAction, default=True,
        help="sample per-op latency histograms and wire counters, served "
        "back by the 'metrics' protocol verb (engine metrics scrapes it)",
    )
    engine_serve.add_argument(
        "--trace-jsonl", default=None, metavar="PATH",
        help="append one JSONL span per dispatched request "
        "(id, tenant, resource, op, enqueue/dispatch/reply timestamps)",
    )
    engine_serve.add_argument(
        "--wal-dir", default=None, metavar="PATH",
        help="per-shard write-ahead-log directory; a restart against the "
        "same directory recovers the broker byte-identically before "
        "accepting traffic",
    )
    engine_serve.add_argument(
        "--fsync", default="batch", choices=("off", "batch", "always"),
        help="WAL fsync policy; only 'always' makes acked ops survive "
        "kill -9",
    )
    engine_serve.add_argument(
        "--snapshot-every", type=int, default=None, metavar="N",
        help="appended events between periodic broker snapshots "
        "(snapshots truncate the WAL tail)",
    )
    engine_serve.add_argument(
        "--admin-host", default="127.0.0.1",
        help="bind host for the HTTP admin plane",
    )
    engine_serve.add_argument(
        "--admin-port", type=int, default=None, metavar="PORT",
        help="mount the repro.admin HTTP ops plane beside the lease "
        "listener (0 = ephemeral): GET /metrics /metrics/history "
        "/healthz /readyz /leases /trace/{id} /profile, "
        "POST /leases/{id}/force-release, "
        "POST /workers/{n}/drain|undrain",
    )
    engine_serve.set_defaults(func=cmd_engine_serve)

    engine_cluster = engine_sub.add_parser(
        "cluster",
        help="serve the broker from N worker processes behind a shard "
        "router (repro.cluster)",
    )
    engine_cluster.add_argument(
        "--socket", default=None,
        help="router unix-socket path; worker sockets get .wN suffixes",
    )
    engine_cluster.add_argument("--workers", type=int, default=2,
                                help="lease-server worker processes")
    engine_cluster.add_argument("--shards-per-worker", type=int, default=2,
                                help="broker sub-shards inside each worker")
    engine_cluster.add_argument(
        "--worker-transport", default="unix", choices=("unix", "tcp"),
        help="what the workers listen on: unix socket files next to the "
        "router's (.wN suffixes) or pre-allocated loopback TCP ports — "
        "the endpoints the route handshake hands to direct clients",
    )
    engine_cluster.add_argument(
        "--direct", action="store_true",
        help="print the direct data plane (route handshake + worker "
        "endpoints) in the banner; clients opt in per connection with "
        "`loadgen --direct`",
    )
    engine_cluster.add_argument(
        "--port", type=int, default=None, metavar="PORT",
        help="also accept tenants on TCP at this port (0 = ephemeral) "
        "beside the unix socket",
    )
    engine_cluster.add_argument(
        "--reuse-port", action="store_true",
        help="bind the TCP listener with SO_REUSEPORT so several router "
        "replicas can share one control-plane port",
    )
    engine_cluster.add_argument("--resources", type=int, default=8,
                                help="resource id space [0, N)")
    engine_cluster.add_argument("--num-types", type=int, default=4)
    engine_cluster.add_argument(
        "--cost-growth", type=float, default=2.0,
        help="cost multiplier per length doubling (2.0 = exact float sums)",
    )
    engine_cluster.add_argument(
        "--record", action=argparse.BooleanOptionalAction, default=True,
        help="workers keep applied-event logs for the trace op",
    )
    engine_cluster.add_argument("--window", type=int, default=64,
                                help="per-tenant in-flight bound (per worker)")
    engine_cluster.add_argument(
        "--worker-window", type=int, default=1024,
        help="router-side per-worker in-flight op bound (backpressure)",
    )
    engine_cluster.add_argument(
        "--codec", default="bin", choices=("json", "bin"),
        help="wire codec on the router->worker links (negotiated at hello)",
    )
    engine_cluster.add_argument("--connect-timeout", type=float, default=15.0)
    engine_cluster.add_argument(
        "--metrics", action=argparse.BooleanOptionalAction, default=True,
        help="sample per-link relay latency and in-flight gauges on the "
        "router, served back by the 'metrics' protocol verb",
    )
    engine_cluster.add_argument(
        "--wal-root", default=None, metavar="PATH",
        help="directory for per-worker WAL trees "
        "(PATH/worker-N/shard-M); also turns on supervision: a dead "
        "worker is respawned against its WAL and recovers in place",
    )
    engine_cluster.add_argument(
        "--fsync", default="batch", choices=("off", "batch", "always"),
        help="worker WAL fsync policy; only 'always' makes acked ops "
        "survive kill -9",
    )
    engine_cluster.add_argument(
        "--snapshot-every", type=int, default=None, metavar="N",
        help="appended events between periodic broker snapshots inside "
        "each worker",
    )
    engine_cluster.add_argument(
        "--worker-metrics", action=argparse.BooleanOptionalAction,
        default=False,
        help="run every worker with its own live metrics registry and "
        "fold each worker's scrape into the router's 'metrics' verb, "
        "relabeled worker=\"N\"",
    )
    engine_cluster.add_argument(
        "--trace-jsonl", default=None, metavar="PATH",
        help="router relay-span JSONL file: one span per trace-context "
        "frame relayed to a worker",
    )
    engine_cluster.add_argument(
        "--trace-root", default=None, metavar="DIR",
        help="directory for per-worker dispatch-span JSONL files "
        "(DIR/worker-N.jsonl); merge them with the router and client "
        "files via engine trace-tree",
    )
    engine_cluster.add_argument(
        "--admin-host", default="127.0.0.1",
        help="bind host for the HTTP admin plane",
    )
    engine_cluster.add_argument(
        "--admin-port", type=int, default=None, metavar="PORT",
        help="mount the repro.admin HTTP ops plane on the router "
        "(0 = ephemeral); /leases and force-release span the whole "
        "fleet, /trace/{id} federates live spans from every worker, "
        "/workers/{n}/drain|undrain round-trip to worker n",
    )
    engine_cluster.set_defaults(func=cmd_engine_cluster)

    engine_chaos = engine_sub.add_parser(
        "chaos",
        help="SIGKILL workers in a WAL'd cluster mid-loadgen and check "
        "the post-crash aggregate against the inline replay",
    )
    engine_chaos.add_argument("--workload", default="markov")
    engine_chaos.add_argument("--horizon", type=int, default=192)
    engine_chaos.add_argument("--seed", type=int, default=0)
    engine_chaos.add_argument("--resources", type=int, default=8)
    engine_chaos.add_argument("--tenants-per-resource", type=int, default=2)
    engine_chaos.add_argument("--workers", type=int, default=2,
                              help="lease-server worker processes")
    engine_chaos.add_argument("--shards-per-worker", type=int, default=2,
                              help="broker sub-shards inside each worker")
    engine_chaos.add_argument(
        "--fsync", default="always", choices=("off", "batch", "always"),
        help="worker WAL fsync policy; anything weaker than 'always' is "
        "expected to fail the check when a kill lands in an unsynced batch",
    )
    engine_chaos.add_argument(
        "--snapshot-every", type=int, default=None, metavar="N",
        help="appended events between periodic broker snapshots",
    )
    engine_chaos.add_argument(
        "--wal-root", default=None, metavar="PATH",
        help="WAL tree for the fleet (default: a temp dir, removed after)",
    )
    engine_chaos.add_argument(
        "--kills", type=int, default=2,
        help="deterministic kill count, spread evenly through the horizon "
        "round-robin over workers",
    )
    engine_chaos.add_argument(
        "--kill", action="append", metavar="DAY:WORKER",
        help="explicit kill point (repeatable); overrides --kills",
    )
    engine_chaos.add_argument("--connect-timeout", type=float, default=60.0)
    engine_chaos.add_argument(
        "--direct", action="store_true",
        help="drive the kills over the two-plane direct topology: "
        "tenants handshake with the router and dial workers directly, "
        "so a kill severs their data links too and recovery exercises "
        "the client-side re-handshake + marked resend",
    )
    engine_chaos.add_argument(
        "--check", action="store_true",
        help="exit 1 unless every kill executed and the post-crash "
        "aggregate equals the inline replay byte for byte",
    )
    engine_chaos.set_defaults(func=cmd_engine_chaos)

    engine_metrics = engine_sub.add_parser(
        "metrics",
        help="scrape a running server or router's Prometheus exposition "
        "over the 'metrics' protocol verb",
    )
    engine_metrics.add_argument(
        "--socket", default=None,
        help="unix socket of a running engine serve / engine cluster",
    )
    engine_metrics.add_argument("--connect-timeout", type=float, default=10.0)
    engine_metrics.add_argument(
        "--validate", action="store_true",
        help="run the exposition through the structural validator; "
        "exit 1 on any failure",
    )
    engine_metrics.add_argument(
        "--json", action="store_true",
        help="print the parsed exposition as JSON instead of text format",
    )
    engine_metrics.set_defaults(func=cmd_engine_metrics)

    engine_trace_tree = engine_sub.add_parser(
        "trace-tree",
        help="merge span JSONL files (client + router + workers) and "
        "print one causal tree per traced op",
    )
    engine_trace_tree.add_argument(
        "files", nargs="+", metavar="SPANS.jsonl",
        help="span files to merge, in any order",
    )
    engine_trace_tree.add_argument(
        "--trace", action="append", default=None, metavar="ID",
        help="only this trace id (repeatable); exit 1 if absent",
    )
    engine_trace_tree.add_argument(
        "--json", action="store_true",
        help="print the nested span trees as JSON instead of text",
    )
    engine_trace_tree.set_defaults(func=cmd_engine_trace_tree)

    engine_flamegraph = engine_sub.add_parser(
        "flamegraph",
        help="render a GET /profile JSON capture as collapsed-stack "
        "text (one 'stack count' line per distinct stack)",
    )
    engine_flamegraph.add_argument(
        "capture", metavar="CAPTURE.json",
        help="profile capture file from GET /profile ('-' = stdin)",
    )
    engine_flamegraph.set_defaults(func=cmd_engine_flamegraph)

    engine_loadgen = engine_sub.add_parser(
        "loadgen",
        help="drive closed-loop tenants against a lease server and "
        "check the served aggregate against an inline replay",
    )
    engine_loadgen.add_argument(
        "--socket", default=None,
        help="unix socket of a running server (default: in-process server)",
    )
    engine_loadgen.add_argument("--workload", default="markov")
    engine_loadgen.add_argument("--horizon", type=int, default=192)
    engine_loadgen.add_argument("--seed", type=int, default=0)
    engine_loadgen.add_argument("--resources", type=int, default=8)
    engine_loadgen.add_argument("--tenants-per-resource", type=int, default=2)
    engine_loadgen.add_argument("--shards", type=int, default=4,
                                help="must match the server's shard count")
    engine_loadgen.add_argument("--num-types", type=int, default=4)
    engine_loadgen.add_argument(
        "--cost-growth", type=float, default=2.0,
        help="must match the server's schedule (2.0 = exact float sums)",
    )
    engine_loadgen.add_argument("--connect-timeout", type=float, default=10.0)
    engine_loadgen.add_argument(
        "--cluster", type=int, default=0, metavar="WORKERS",
        help="drive an in-process cluster of N worker processes instead "
        "of a single in-process server (0 = off)",
    )
    engine_loadgen.add_argument(
        "--shards-per-worker", type=int, default=2,
        help="broker sub-shards per worker when --cluster is used",
    )
    engine_loadgen.add_argument(
        "--codec", default="bin", choices=("json", "bin"),
        help="wire codec to negotiate on tenant connections",
    )
    engine_loadgen.add_argument(
        "--direct", action="store_true",
        help="two-plane topology: tenants perform the routing handshake "
        "and send mutations straight to the owning worker, keeping the "
        "router for ticks and barriers only; needs a cluster "
        "(--cluster N, or --socket at an `engine cluster` router) — "
        "exits 2 up front otherwise",
    )
    engine_loadgen.add_argument(
        "--check", action="store_true",
        help="exit 1 unless the served aggregate equals the inline replay",
    )
    engine_loadgen.add_argument(
        "--json", action="store_true",
        help="print the verdict and per-tenant p50/p95/p99 latency "
        "summary as one JSON object instead of tables (latency needs "
        "--check, which turns sampling on)",
    )
    engine_loadgen.add_argument(
        "--shutdown", action="store_true",
        help="send a shutdown op to the external server when done",
    )
    engine_loadgen.add_argument(
        "--trace-jsonl", default=None, metavar="PATH",
        help="write client-originated trace-context spans (one JSON "
        "object per op) to PATH; pair with the server/router span "
        "files and `engine trace-tree`",
    )
    engine_loadgen.set_defaults(func=cmd_engine_loadgen)

    engine_replay = engine_sub.add_parser(
        "replay", help="drive the lease broker from an event trace",
        parents=[common],
    )
    engine_replay.add_argument(
        "--trace", default=None, help="JSONL trace file to replay"
    )
    engine_replay.add_argument(
        "--workload", default="markov",
        help="workload shape to generate when no --trace is given",
    )
    engine_replay.add_argument("--horizon", type=int, default=400)
    engine_replay.add_argument("--tenants", type=int, default=3)
    engine_replay.add_argument("--resources", type=int, default=4)
    engine_replay.add_argument(
        "--save", default=None, help="write the replayed trace as JSONL"
    )
    engine_replay.set_defaults(func=cmd_engine_replay)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
