"""Command-line interface: run leasing demos without writing code.

``python -m repro <problem> [options]`` generates a seeded workload, runs
the problem's online algorithm against its offline baseline, verifies
feasibility, and prints the comparison table — the same pipeline the
examples script, condensed to one command.

Subcommands::

    python -m repro parking  --num-types 4 --horizon 200 --seed 7
    python -m repro setcover --elements 20 --sets 10 --demands 30
    python -m repro facility --facilities 4 --steps 8 --per-step 2
    python -m repro old      --horizon 120 --max-slack 6
    python -m repro engine list
    python -m repro engine run --scenario all --workers 4 --seed 7
    python -m repro engine run --scenario broker-markov --shards 4 --workers 4
    python -m repro engine replay --workload markov --horizon 400

The ``engine`` subcommands front :mod:`repro.engine`: ``list`` prints the
scenario registry, ``run`` replays scenarios through the parallel runner
and prints one aggregate ratio table, ``replay`` drives the lease broker
from a generated or saved JSONL event trace.
"""

from __future__ import annotations

import argparse

from .analysis import print_table, verify_facility, verify_multicover
from .analysis import verify_old, verify_parking
from .core import LeaseSchedule, run_online
from .deadlines import make_old_instance, optimal_dp, run_old
from .facility import make_instance as make_facility_instance
from .facility import optimum as facility_optimum
from .facility import run_facility_leasing
from .parking import (
    DeterministicParkingPermit,
    RandomizedParkingPermit,
    make_instance,
    optimal_interval,
)
from .setcover import (
    OnlineSetMulticoverLeasing,
    optimum as setcover_optimum,
    random_instance,
)
from .workloads import (
    constant_batches,
    deadline_arrivals,
    make_rng,
    markov_days,
)


def _schedule(args) -> LeaseSchedule:
    return LeaseSchedule.power_of_two(
        args.num_types, cost_growth=args.cost_growth
    )


def cmd_parking(args) -> int:
    schedule = _schedule(args)
    days = markov_days(args.horizon, 0.1, 0.8, make_rng(args.seed))
    instance = make_instance(schedule, days)
    deterministic = DeterministicParkingPermit(schedule)
    run_online(deterministic, instance.rainy_days)
    verify_parking(instance, list(deterministic.leases)).raise_if_failed()
    randomized = RandomizedParkingPermit(schedule, seed=args.seed)
    run_online(randomized, instance.rainy_days)
    verify_parking(instance, list(randomized.leases)).raise_if_failed()
    opt = optimal_interval(instance).cost
    print_table(
        ["algorithm", "cost", "ratio", "bound"],
        [
            ["deterministic (Alg 1)", deterministic.cost,
             deterministic.cost / opt, schedule.num_types],
            ["randomized (Alg 2)", randomized.cost,
             randomized.cost / opt, ""],
            ["offline optimum", opt, 1.0, ""],
        ],
        title=f"parking permit: {instance.num_days} rainy days, "
        f"K={schedule.num_types}",
    )
    return 0


def cmd_setcover(args) -> int:
    schedule = _schedule(args)
    instance = random_instance(
        num_elements=args.elements,
        num_sets=args.sets,
        memberships=min(3, args.sets),
        schedule=schedule,
        horizon=args.horizon,
        num_demands=args.demands,
        rng=make_rng(args.seed),
        max_coverage=2,
    )
    algorithm = OnlineSetMulticoverLeasing(instance, seed=args.seed)
    run_online(algorithm, instance.demands)
    verify_multicover(instance, list(algorithm.leases)).raise_if_failed()
    opt = setcover_optimum(instance)
    print_table(
        ["algorithm", "cost", "ratio"],
        [
            ["randomized online (Alg 3+4)", algorithm.cost,
             algorithm.cost / opt.lower],
            [f"offline optimum ({opt.method})", opt.lower, 1.0],
        ],
        title=f"set multicover leasing: n={args.elements}, m={args.sets}, "
        f"{args.demands} demands",
    )
    return 0


def cmd_facility(args) -> int:
    schedule = _schedule(args)
    instance = make_facility_instance(
        schedule,
        num_facilities=args.facilities,
        batch_sizes=constant_batches(args.steps, args.per_step),
        rng=make_rng(args.seed),
    )
    algorithm = run_facility_leasing(instance)
    verify_facility(
        instance, list(algorithm.leases), algorithm.connections
    ).raise_if_failed()
    opt = facility_optimum(instance)
    print_table(
        ["algorithm", "leasing", "connection", "total", "ratio"],
        [
            ["two-phase online (Ch. 4)", algorithm.leasing_cost,
             algorithm.connection_cost, algorithm.cost,
             algorithm.cost / opt.lower],
            [f"offline optimum ({opt.method})", "", "", opt.lower, 1.0],
        ],
        title=f"facility leasing: {instance.num_clients} clients, "
        f"{args.facilities} facilities",
    )
    return 0


def cmd_old(args) -> int:
    schedule = _schedule(args)
    clients = deadline_arrivals(
        args.horizon, 0.4, max_slack=args.max_slack, rng=make_rng(args.seed)
    )
    instance = make_old_instance(schedule, clients).normalized()
    algorithm = run_old(instance)
    verify_old(instance, list(algorithm.leases)).raise_if_failed()
    opt = optimal_dp(instance)
    print_table(
        ["algorithm", "cost", "ratio", "bound"],
        [
            ["primal-dual online (Ch. 5)", algorithm.cost,
             algorithm.cost / opt if opt else 1.0,
             2 * schedule.num_types
             + instance.dmax / schedule.lmin + 2],
            ["offline optimum (DP)", opt, 1.0, ""],
        ],
        title=f"leasing with deadlines: {len(instance.clients)} clients, "
        f"dmax={instance.dmax}",
    )
    return 0


def cmd_engine_list(args) -> int:
    from .engine import all_scenarios

    scenarios = all_scenarios()
    print_table(
        ["scenario", "family", "workload", "description"],
        [
            [s.name, s.family, s.workload, s.description]
            for s in scenarios
        ],
        title=f"{len(scenarios)} registered scenarios",
    )
    return 0


def cmd_engine_run(args) -> int:
    from .engine import render_report, replay, replay_sharded, scenario_names

    explicit = tuple(name for name in args.scenario if name != "all")
    if "all" in args.scenario:
        # 'all' expands to the registry; explicitly named extras (e.g.
        # ad-hoc registered scenarios) still run alongside it.
        names = scenario_names() + tuple(
            name for name in explicit if name not in scenario_names()
        )
    else:
        names = explicit
    if args.shards > 1:
        # Intra-scenario sharding: each scenario splits by resource into
        # shard jobs; merged outcomes are byte-identical to unsharded.
        outcomes = [
            replay_sharded(
                name,
                seed=args.seed,
                shards=args.shards,
                workers=args.workers,
                transport=args.transport,
            )
            for name in names
        ]
        title = (
            f"engine run: {len(names)} scenarios, seed {args.seed}, "
            f"{args.shards} shards x {args.workers} workers"
        )
    else:
        outcomes = replay(
            names,
            seeds=[args.seed],
            workers=args.workers,
            transport=args.transport,
        )
        title = (
            f"engine run: {len(names)} scenarios, seed {args.seed}, "
            f"{args.workers} workers"
        )
    print(render_report(outcomes, title=title))
    return 0 if all(outcome.verified for outcome in outcomes) else 1


def cmd_engine_replay(args) -> int:
    from . import io as repro_io
    from .engine import LeaseBroker, generate_trace, replay_trace

    if args.trace:
        events = repro_io.load_trace(args.trace)
        source = args.trace
    else:
        events = generate_trace(
            args.workload,
            args.horizon,
            seed=args.seed,
            num_tenants=args.tenants,
            num_resources=args.resources,
        )
        source = f"{args.workload} workload, seed {args.seed}"
    if args.save:
        repro_io.save_trace(events, args.save)
    broker = LeaseBroker(_schedule(args))
    stats = replay_trace(broker, events)
    print_table(
        ["metric", "value"],
        [
            ["events", stats.events],
            ["acquires", stats.acquires],
            ["renewals", stats.renewals],
            ["releases", stats.releases],
            ["no-op releases", stats.noop_releases],
            ["expirations", stats.expirations],
            ["ticks", stats.ticks],
            ["active grants", broker.num_active],
            ["leases bought", len(broker.leases)],
            ["total cost", broker.cost],
        ],
        title=f"broker replay: {source}, K={args.num_types}",
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=0)
    common.add_argument("--num-types", type=int, default=4,
                        help="number of lease types K")
    common.add_argument("--cost-growth", type=float, default=1.7,
                        help="cost multiplier per length doubling")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Online Resource Leasing reproduction — demo runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    parking = sub.add_parser(
        "parking", help="parking permit (Ch. 2)", parents=[common]
    )
    parking.add_argument("--horizon", type=int, default=200)
    parking.set_defaults(func=cmd_parking)

    setcover = sub.add_parser(
        "setcover", help="set multicover leasing (Ch. 3)", parents=[common]
    )
    setcover.add_argument("--elements", type=int, default=20)
    setcover.add_argument("--sets", type=int, default=10)
    setcover.add_argument("--demands", type=int, default=30)
    setcover.add_argument("--horizon", type=int, default=40)
    setcover.set_defaults(func=cmd_setcover)

    facility = sub.add_parser(
        "facility", help="facility leasing (Ch. 4)", parents=[common]
    )
    facility.add_argument("--facilities", type=int, default=4)
    facility.add_argument("--steps", type=int, default=8)
    facility.add_argument("--per-step", type=int, default=2)
    facility.set_defaults(func=cmd_facility)

    old = sub.add_parser(
        "old", help="leasing with deadlines (Ch. 5)", parents=[common]
    )
    old.add_argument("--horizon", type=int, default=120)
    old.add_argument("--max-slack", type=int, default=6)
    old.set_defaults(func=cmd_old)

    engine = sub.add_parser(
        "engine", help="lease-broker service and scenario-replay engine"
    )
    engine_sub = engine.add_subparsers(dest="engine_command", required=True)

    engine_list = engine_sub.add_parser(
        "list", help="print the scenario registry"
    )
    engine_list.set_defaults(func=cmd_engine_list)

    engine_run = engine_sub.add_parser(
        "run", help="replay scenarios and print the aggregate ratio table"
    )
    engine_run.add_argument(
        "--scenario", action="append", default=None, required=True,
        help="scenario name, repeatable; 'all' replays the whole registry",
    )
    engine_run.add_argument("--seed", type=int, default=0)
    engine_run.add_argument("--workers", type=int, default=1,
                            help="process-pool size (1 = inline)")
    engine_run.add_argument(
        "--shards", type=int, default=1,
        help="split each scenario into N intra-scenario shards "
        "(scenario must be shardable, e.g. the broker-* family)",
    )
    engine_run.add_argument(
        "--transport", default="auto",
        choices=("auto", "packed", "shm", "object"),
        help="how lease bulk returns from pool workers (default: auto — "
        "packed columns, shared memory for large results)",
    )
    engine_run.set_defaults(func=cmd_engine_run)

    engine_replay = engine_sub.add_parser(
        "replay", help="drive the lease broker from an event trace",
        parents=[common],
    )
    engine_replay.add_argument(
        "--trace", default=None, help="JSONL trace file to replay"
    )
    engine_replay.add_argument(
        "--workload", default="markov",
        help="workload shape to generate when no --trace is given",
    )
    engine_replay.add_argument("--horizon", type=int, default=400)
    engine_replay.add_argument("--tenants", type=int, default=3)
    engine_replay.add_argument("--resources", type=int, default=4)
    engine_replay.add_argument(
        "--save", default=None, help="write the replayed trace as JSONL"
    )
    engine_replay.set_defaults(func=cmd_engine_replay)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
