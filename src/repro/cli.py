"""Command-line interface: run leasing demos without writing code.

``python -m repro <problem> [options]`` generates a seeded workload, runs
the problem's online algorithm against its offline baseline, verifies
feasibility, and prints the comparison table — the same pipeline the
examples script, condensed to one command.

Subcommands::

    python -m repro parking  --num-types 4 --horizon 200 --seed 7
    python -m repro setcover --elements 20 --sets 10 --demands 30
    python -m repro facility --facilities 4 --steps 8 --per-step 2
    python -m repro old      --horizon 120 --max-slack 6
"""

from __future__ import annotations

import argparse

from .analysis import print_table, verify_facility, verify_multicover
from .analysis import verify_old, verify_parking
from .core import LeaseSchedule, run_online
from .deadlines import make_old_instance, optimal_dp, run_old
from .facility import make_instance as make_facility_instance
from .facility import optimum as facility_optimum
from .facility import run_facility_leasing
from .parking import (
    DeterministicParkingPermit,
    RandomizedParkingPermit,
    make_instance,
    optimal_interval,
)
from .setcover import (
    OnlineSetMulticoverLeasing,
    optimum as setcover_optimum,
    random_instance,
)
from .workloads import (
    constant_batches,
    deadline_arrivals,
    make_rng,
    markov_days,
)


def _schedule(args) -> LeaseSchedule:
    return LeaseSchedule.power_of_two(
        args.num_types, cost_growth=args.cost_growth
    )


def cmd_parking(args) -> int:
    schedule = _schedule(args)
    days = markov_days(args.horizon, 0.1, 0.8, make_rng(args.seed))
    instance = make_instance(schedule, days)
    deterministic = DeterministicParkingPermit(schedule)
    run_online(deterministic, instance.rainy_days)
    verify_parking(instance, list(deterministic.leases)).raise_if_failed()
    randomized = RandomizedParkingPermit(schedule, seed=args.seed)
    run_online(randomized, instance.rainy_days)
    verify_parking(instance, list(randomized.leases)).raise_if_failed()
    opt = optimal_interval(instance).cost
    print_table(
        ["algorithm", "cost", "ratio", "bound"],
        [
            ["deterministic (Alg 1)", deterministic.cost,
             deterministic.cost / opt, schedule.num_types],
            ["randomized (Alg 2)", randomized.cost,
             randomized.cost / opt, ""],
            ["offline optimum", opt, 1.0, ""],
        ],
        title=f"parking permit: {instance.num_days} rainy days, "
        f"K={schedule.num_types}",
    )
    return 0


def cmd_setcover(args) -> int:
    schedule = _schedule(args)
    instance = random_instance(
        num_elements=args.elements,
        num_sets=args.sets,
        memberships=min(3, args.sets),
        schedule=schedule,
        horizon=args.horizon,
        num_demands=args.demands,
        rng=make_rng(args.seed),
        max_coverage=2,
    )
    algorithm = OnlineSetMulticoverLeasing(instance, seed=args.seed)
    run_online(algorithm, instance.demands)
    verify_multicover(instance, list(algorithm.leases)).raise_if_failed()
    opt = setcover_optimum(instance)
    print_table(
        ["algorithm", "cost", "ratio"],
        [
            ["randomized online (Alg 3+4)", algorithm.cost,
             algorithm.cost / opt.lower],
            [f"offline optimum ({opt.method})", opt.lower, 1.0],
        ],
        title=f"set multicover leasing: n={args.elements}, m={args.sets}, "
        f"{args.demands} demands",
    )
    return 0


def cmd_facility(args) -> int:
    schedule = _schedule(args)
    instance = make_facility_instance(
        schedule,
        num_facilities=args.facilities,
        batch_sizes=constant_batches(args.steps, args.per_step),
        rng=make_rng(args.seed),
    )
    algorithm = run_facility_leasing(instance)
    verify_facility(
        instance, list(algorithm.leases), algorithm.connections
    ).raise_if_failed()
    opt = facility_optimum(instance)
    print_table(
        ["algorithm", "leasing", "connection", "total", "ratio"],
        [
            ["two-phase online (Ch. 4)", algorithm.leasing_cost,
             algorithm.connection_cost, algorithm.cost,
             algorithm.cost / opt.lower],
            [f"offline optimum ({opt.method})", "", "", opt.lower, 1.0],
        ],
        title=f"facility leasing: {instance.num_clients} clients, "
        f"{args.facilities} facilities",
    )
    return 0


def cmd_old(args) -> int:
    schedule = _schedule(args)
    clients = deadline_arrivals(
        args.horizon, 0.4, max_slack=args.max_slack, rng=make_rng(args.seed)
    )
    instance = make_old_instance(schedule, clients).normalized()
    algorithm = run_old(instance)
    verify_old(instance, list(algorithm.leases)).raise_if_failed()
    opt = optimal_dp(instance)
    print_table(
        ["algorithm", "cost", "ratio", "bound"],
        [
            ["primal-dual online (Ch. 5)", algorithm.cost,
             algorithm.cost / opt if opt else 1.0,
             2 * schedule.num_types
             + instance.dmax / schedule.lmin + 2],
            ["offline optimum (DP)", opt, 1.0, ""],
        ],
        title=f"leasing with deadlines: {len(instance.clients)} clients, "
        f"dmax={instance.dmax}",
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=0)
    common.add_argument("--num-types", type=int, default=4,
                        help="number of lease types K")
    common.add_argument("--cost-growth", type=float, default=1.7,
                        help="cost multiplier per length doubling")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Online Resource Leasing reproduction — demo runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    parking = sub.add_parser(
        "parking", help="parking permit (Ch. 2)", parents=[common]
    )
    parking.add_argument("--horizon", type=int, default=200)
    parking.set_defaults(func=cmd_parking)

    setcover = sub.add_parser(
        "setcover", help="set multicover leasing (Ch. 3)", parents=[common]
    )
    setcover.add_argument("--elements", type=int, default=20)
    setcover.add_argument("--sets", type=int, default=10)
    setcover.add_argument("--demands", type=int, default=30)
    setcover.add_argument("--horizon", type=int, default=40)
    setcover.set_defaults(func=cmd_setcover)

    facility = sub.add_parser(
        "facility", help="facility leasing (Ch. 4)", parents=[common]
    )
    facility.add_argument("--facilities", type=int, default=4)
    facility.add_argument("--steps", type=int, default=8)
    facility.add_argument("--per-step", type=int, default=2)
    facility.set_defaults(func=cmd_facility)

    old = sub.add_parser(
        "old", help="leasing with deadlines (Ch. 5)", parents=[common]
    )
    old.add_argument("--horizon", type=int, default=120)
    old.add_argument("--max-slack", type=int, default=6)
    old.set_defaults(func=cmd_old)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
