"""JSON serialization for problem instances.

Experiments worth publishing are experiments someone else can re-run on
the *same* instances.  This module round-trips every instance type in the
library through plain JSON: lease schedules, parking permit, set
multicover leasing, facility leasing, OLD and SCLD instances.

The format is versioned and deliberately boring — dicts of primitives,
one ``kind`` tag per payload — so files stay diffable and future-proof.
"""

from __future__ import annotations

import json
from typing import Any

from ._validation import require
from .core.lease import LeaseSchedule
from .deadlines.model import DeadlineClient, OLDInstance
from .deadlines.scld import DeadlineElement, SCLDInstance
from .errors import ModelError
from .facility.model import Client, FacilityLeasingInstance
from .parking.model import ParkingPermitInstance
from .setcover.model import (
    MulticoverDemand,
    SetMulticoverLeasingInstance,
    SetSystem,
)

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Encoders
# ----------------------------------------------------------------------
def _schedule_payload(schedule: LeaseSchedule) -> list[list[float]]:
    return [[t.length, t.cost] for t in schedule]


def _system_payload(system: SetSystem) -> dict[str, Any]:
    return {
        "num_elements": system.num_elements,
        "sets": [sorted(members) for members in system.sets],
        "lease_costs": [list(row) for row in system.lease_costs],
    }


def to_payload(instance) -> dict[str, Any]:
    """Encode any supported instance into a JSON-ready dict."""
    if isinstance(instance, ParkingPermitInstance):
        return {
            "version": FORMAT_VERSION,
            "kind": "parking",
            "schedule": _schedule_payload(instance.schedule),
            "rainy_days": list(instance.rainy_days),
        }
    if isinstance(instance, SetMulticoverLeasingInstance):
        return {
            "version": FORMAT_VERSION,
            "kind": "multicover",
            "schedule": _schedule_payload(instance.schedule),
            "system": _system_payload(instance.system),
            "demands": [
                [d.element, d.arrival, d.coverage] for d in instance.demands
            ],
        }
    if isinstance(instance, FacilityLeasingInstance):
        return {
            "version": FORMAT_VERSION,
            "kind": "facility",
            "schedule": _schedule_payload(instance.schedule),
            "facility_points": [list(p) for p in instance.facility_points],
            "lease_costs": [list(row) for row in instance.lease_costs],
            "clients": [
                [c.ident, list(c.point), c.arrival] for c in instance.clients
            ],
        }
    if isinstance(instance, OLDInstance):
        return {
            "version": FORMAT_VERSION,
            "kind": "old",
            "schedule": _schedule_payload(instance.schedule),
            "clients": [[c.arrival, c.slack] for c in instance.clients],
        }
    if isinstance(instance, SCLDInstance):
        return {
            "version": FORMAT_VERSION,
            "kind": "scld",
            "schedule": _schedule_payload(instance.schedule),
            "system": _system_payload(instance.system),
            "demands": [
                [d.element, d.arrival, d.slack] for d in instance.demands
            ],
        }
    raise ModelError(
        f"cannot serialize instances of type {type(instance).__name__}"
    )


# ----------------------------------------------------------------------
# Decoders
# ----------------------------------------------------------------------
def _decode_schedule(payload: list[list[float]]) -> LeaseSchedule:
    return LeaseSchedule.from_pairs(
        [(int(length), float(cost)) for length, cost in payload]
    )


def _decode_system(payload: dict[str, Any]) -> SetSystem:
    return SetSystem(
        num_elements=int(payload["num_elements"]),
        sets=[set(members) for members in payload["sets"]],
        lease_costs=[list(map(float, row)) for row in payload["lease_costs"]],
    )


def from_payload(payload: dict[str, Any]):
    """Decode a payload produced by :func:`to_payload`."""
    require(
        payload.get("version") == FORMAT_VERSION,
        f"unsupported format version {payload.get('version')!r}",
    )
    kind = payload.get("kind")
    schedule = _decode_schedule(payload["schedule"])
    if kind == "parking":
        return ParkingPermitInstance(
            schedule=schedule,
            rainy_days=tuple(int(day) for day in payload["rainy_days"]),
        )
    if kind == "multicover":
        return SetMulticoverLeasingInstance(
            system=_decode_system(payload["system"]),
            schedule=schedule,
            demands=tuple(
                MulticoverDemand(int(e), int(t), int(p))
                for e, t, p in payload["demands"]
            ),
        )
    if kind == "facility":
        return FacilityLeasingInstance(
            facility_points=tuple(
                (float(x), float(y)) for x, y in payload["facility_points"]
            ),
            lease_costs=tuple(
                tuple(map(float, row)) for row in payload["lease_costs"]
            ),
            schedule=schedule,
            clients=tuple(
                Client(
                    ident=int(ident),
                    point=(float(point[0]), float(point[1])),
                    arrival=int(arrival),
                )
                for ident, point, arrival in payload["clients"]
            ),
        )
    if kind == "old":
        return OLDInstance(
            schedule=schedule,
            clients=tuple(
                DeadlineClient(int(t), int(d)) for t, d in payload["clients"]
            ),
        )
    if kind == "scld":
        return SCLDInstance(
            system=_decode_system(payload["system"]),
            schedule=schedule,
            demands=tuple(
                DeadlineElement(int(e), int(t), int(d))
                for e, t, d in payload["demands"]
            ),
        )
    raise ModelError(f"unknown instance kind {kind!r}")


# ----------------------------------------------------------------------
# File round-trips
# ----------------------------------------------------------------------
def dumps(instance) -> str:
    """Serialize an instance to a JSON string."""
    return json.dumps(to_payload(instance), sort_keys=True)


def loads(text: str):
    """Deserialize an instance from a JSON string."""
    return from_payload(json.loads(text))


def save(instance, path) -> None:
    """Write an instance to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(instance))


def load(path):
    """Read an instance previously written by :func:`save`."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


# ----------------------------------------------------------------------
# Event traces (JSONL)
# ----------------------------------------------------------------------
def save_trace(events, path) -> None:
    """Write a broker event trace to ``path`` as JSONL (one event per line).

    The line format is owned by :mod:`repro.engine.events`; this is the
    file-level front door, symmetric with :func:`save`/:func:`load` for
    instances.  Imported lazily so loading an instance never pulls in the
    engine package.
    """
    from .engine.events import trace_to_jsonl

    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_to_jsonl(events))


def load_trace(path):
    """Read an event trace previously written by :func:`save_trace`."""
    from .engine.events import trace_from_jsonl

    with open(path, "r", encoding="utf-8") as handle:
        return trace_from_jsonl(handle.read())
