"""Cluster topology: how resources map onto worker processes.

A cluster is ``num_workers`` :class:`~repro.serve.server.LeaseServer`
processes behind one :class:`~repro.cluster.router.ClusterRouter`.  The
resource space is tiled by the engine's :func:`shard_ranges` into
``num_workers * shards_per_worker`` contiguous *global shards* — the
same partition an intra-scenario sharded replay uses — and worker ``w``
owns the contiguous *shard group* ``[w * shards_per_worker, (w + 1) *
shards_per_worker)``.  Every worker process is configured with the full
global tiling (``num_resources`` resources over ``total_shards``
sub-shards), so the shard a resource lands in is the same number on
every box; the router simply never sends a worker traffic outside its
group.  That choice is what makes the clustered aggregate mergeable by
:func:`~repro.engine.scenarios.merge_broker_runs` with zero id
translation: concatenating each worker's *own* shard-group payloads in
worker order reproduces the global shard list of a single server — and
hence, merged, the inline replay — byte for byte.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from functools import cached_property

from pathlib import Path

from ..core.lease import LeaseSchedule
from ..engine.scenarios import shard_ranges
from ..errors import ModelError

#: Worker transports a cluster can run its data plane over.
TRANSPORTS: tuple[str, ...] = ("unix", "tcp")


def format_endpoint(kind: str, *address) -> str:
    """Render a worker endpoint string: ``unix:<path>`` / ``tcp:<host>:<port>``."""
    if kind == "unix":
        (path,) = address
        return f"unix:{path}"
    if kind == "tcp":
        host, port = address
        return f"tcp:{host}:{int(port)}"
    raise ModelError(f"unknown endpoint kind {kind!r}; known: {TRANSPORTS}")


def parse_endpoint(endpoint: str) -> tuple[str, tuple]:
    """Split an endpoint string into ``(kind, address)``.

    ``unix:<path>`` parses to ``("unix", (path,))`` and
    ``tcp:<host>:<port>`` to ``("tcp", (host, port))``.  A bare path
    (no recognised scheme) is taken as a unix socket so every
    pre-endpoint caller that passed socket paths keeps working.
    """
    if endpoint.startswith("unix:"):
        return "unix", (endpoint[len("unix:"):],)
    if endpoint.startswith("tcp:"):
        host, sep, port = endpoint[len("tcp:"):].rpartition(":")
        if not sep or not port.isdigit():
            raise ModelError(f"malformed tcp endpoint {endpoint!r}")
        return "tcp", (host, int(port))
    return "unix", (endpoint,)


@dataclass(frozen=True)
class ClusterSpec:
    """One cluster's full shape: resources, workers, shards, schedule.

    Attributes:
        num_resources: size of the resource id space ``[0, N)``.
        num_workers: lease-server worker processes.
        shards_per_worker: broker sub-shards inside each worker.
        num_types: lease types K of every broker's schedule.
        cost_growth: schedule cost multiplier (2.0 = exact float sums,
            which the byte-identity gates rely on).
        record: workers keep applied-event logs for the ``trace`` op.
        session_window: per-tenant in-flight bound inside each worker.
        wal_root: directory under which each worker keeps its per-shard
            write-ahead logs (``wal_root/worker-<i>/shard-<j>/``);
            ``None`` runs the fleet without durability.  A WAL'd fleet
            should also set ``record=True`` — the applied-event log is
            what lets a recovered worker deduplicate the router's
            retried in-flight ops, the exactly-once half of recovery.
        fsync: WAL fsync policy for every worker (``off`` / ``batch`` /
            ``always``); only ``always`` makes acked ops survive
            ``kill -9``.
        snapshot_every: appended events between periodic broker
            snapshots inside each worker; ``None`` keeps the server
            default.
        worker_metrics: run every worker with its live metrics registry
            enabled (per-op latency histograms, byte counters, WAL
            instrumentation).  The router's ``metrics`` verb can then
            fold each worker's own scrape into the fleet exposition,
            relabeled ``worker="N"``.  Off by default: per-request
            sampling inside workers costs hot-path time for metrics
            nothing scrapes unless asked for.
        trace_root: directory under which each worker writes its JSONL
            span file (``trace_root/worker-<i>.jsonl``); ``None`` runs
            the fleet untraced.  With tracing on, a worker emits one
            dispatch span per op — trace-context-linked when the frame
            carried one — and ``engine trace-tree`` can merge the
            fleet's files into causal trees.
        transport: what the workers listen on — ``unix`` (socket files
            next to the router's) or ``tcp`` (loopback ports, the
            remote-host shape).  Routing is transport-blind; the choice
            only decides the endpoint strings the ``route`` handshake
            hands to direct clients.
    """

    num_resources: int
    num_workers: int
    shards_per_worker: int = 1
    num_types: int = 4
    cost_growth: float = 2.0
    record: bool = False
    session_window: int = 64
    wal_root: str | None = None
    fsync: str = "batch"
    snapshot_every: int | None = None
    worker_metrics: bool = False
    trace_root: str | None = None
    transport: str = "unix"

    def __post_init__(self) -> None:
        if self.transport not in TRANSPORTS:
            raise ModelError(
                f"unknown transport {self.transport!r}; known: {TRANSPORTS}"
            )
        if self.num_resources < 1:
            raise ModelError("num_resources must be >= 1")
        if self.num_workers < 1:
            raise ModelError("num_workers must be >= 1")
        if self.shards_per_worker < 1:
            raise ModelError("shards_per_worker must be >= 1")
        if self.total_shards > self.num_resources:
            raise ModelError(
                f"total shards ({self.total_shards}) cannot exceed "
                f"num_resources ({self.num_resources})"
            )
        # Imported lazily: repro.durable.wal reaches back into
        # repro.serve at import time, and loading it from this module's
        # top level would close an import cycle through serve.server.
        from ..durable.wal import require_fsync_mode

        require_fsync_mode(self.fsync)
        if self.snapshot_every is not None and self.snapshot_every < 1:
            raise ModelError("snapshot_every must be >= 1")

    def worker_wal_dir(self, worker: int) -> str | None:
        """Worker ``worker``'s WAL directory, or ``None`` when WAL is off."""
        if self.wal_root is None:
            return None
        return str(Path(self.wal_root) / f"worker-{worker}")

    def worker_trace_path(self, worker: int) -> str | None:
        """Worker ``worker``'s span file, or ``None`` when tracing is off."""
        if self.trace_root is None:
            return None
        return str(Path(self.trace_root) / f"worker-{worker}.jsonl")

    @property
    def total_shards(self) -> int:
        """Global shard count: ``num_workers * shards_per_worker``."""
        return self.num_workers * self.shards_per_worker

    @cached_property
    def ranges(self) -> tuple[tuple[int, int], ...]:
        """The global shard tiling — the engine's partition, verbatim."""
        return shard_ranges(self.num_resources, self.total_shards)

    @cached_property
    def worker_ranges(self) -> tuple[tuple[int, int], ...]:
        """Per-worker resource ranges: each group's first lo to last hi."""
        spw = self.shards_per_worker
        return tuple(
            (self.ranges[w * spw][0], self.ranges[(w + 1) * spw - 1][1])
            for w in range(self.num_workers)
        )

    @cached_property
    def _worker_los(self) -> list[int]:
        return [lo for lo, _ in self.worker_ranges]

    def worker_of(self, resource: int) -> int:
        """The worker whose shard group owns ``resource``."""
        if not 0 <= resource < self.num_resources:
            raise ModelError(
                f"resource {resource} outside [0, {self.num_resources})"
            )
        return bisect.bisect_right(self._worker_los, resource) - 1

    def group(self, worker: int) -> tuple[int, int]:
        """The half-open global-shard index range worker ``worker`` owns."""
        if not 0 <= worker < self.num_workers:
            raise ModelError(
                f"worker {worker} outside [0, {self.num_workers})"
            )
        return (
            worker * self.shards_per_worker,
            (worker + 1) * self.shards_per_worker,
        )

    def route_workers(self, endpoints) -> list[dict]:
        """The data-plane half of a ``route`` reply: one row per worker.

        Each row pairs a worker's contiguous resource range (derived
        from the global shard tiling, so it is exactly what
        :meth:`worker_of` would answer) with the endpoint a direct
        client should dial.  The router decorates these rows with
        per-worker epochs and liveness before answering.
        """
        if len(endpoints) != self.num_workers:
            raise ModelError(
                f"spec wants {self.num_workers} endpoints, "
                f"got {len(endpoints)}"
            )
        return [
            {
                "index": w,
                "range": list(self.worker_ranges[w]),
                "endpoint": endpoints[w],
            }
            for w in range(self.num_workers)
        ]

    def schedule(self) -> LeaseSchedule:
        """The lease schedule every worker broker is built from."""
        return LeaseSchedule.power_of_two(
            self.num_types, cost_growth=self.cost_growth
        )
