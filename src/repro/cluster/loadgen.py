"""Clustered loadgen: closed-loop tenants against a real worker fleet.

The cluster analogue of :mod:`repro.serve.loadgen`, riding the same
machinery end to end: the canonical trace becomes live traffic through
:func:`~repro.serve.loadgen.drive_tenants` — unchanged, because the
router speaks the single-server protocol — and the router's merged
``report`` payloads fold through
:func:`~repro.serve.loadgen.merge_shard_payloads` /
:func:`~repro.engine.scenarios.merge_broker_runs` into one aggregate
that must equal the inline replay of the merged trace byte for byte.
The only new moving parts are real: N ``engine serve`` worker
*processes* on their own unix sockets, a :class:`ClusterRouter` in
front, and (by default) the binary codec on every router→worker link.

:func:`cluster_once` performs one full cycle — spawn workers, connect
the router, drive every tenant, fetch the merged report, shut the fleet
down — and reports the drive-phase wall clock separately
(``drive_seconds``), since process spawn time is operations, not
serving.  :func:`run_cluster_instance` wraps that cycle with the same
served-vs-inline judgement the serve family uses, recorded under
``detail["cluster"]`` and enforced by :func:`verify_cluster`.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
import time
from dataclasses import dataclass, replace
from pathlib import Path

from ..analysis.verify import VerificationReport
from ..core.lease import LeaseSchedule
from ..core.results import RunResult
from ..engine.events import Tick, generate_resource_trace
from ..engine.scenarios import BrokerTraceInstance, verify_broker_trace
from ..errors import ModelError
from ..obs.metrics import MetricsRegistry
from ..obs.trace import TraceSink
from ..serve.loadgen import (
    compare_with_inline,
    drive_tenants,
    drive_tenants_direct,
    merge_shard_payloads,
)
from ..serve.protocol import CODEC_BIN, CODECS
from .procs import make_respawner, reap, spawn_workers
from .router import ClusterRouter
from .spec import TRANSPORTS, ClusterSpec

#: How tenants reach the fleet's data plane.  ``routed`` relays every
#: mutation through the router (the pre-PR-10 shape, and the baseline
#: arm of the ``p09_direct`` benchmark); ``direct`` performs the routing
#: handshake and sends mutations straight to the owning worker.
TOPOLOGIES: tuple[str, ...] = ("routed", "direct")


@dataclass(frozen=True)
class ClusterInstance:
    """A cluster-scenario instance: canonical trace plus fleet shape.

    ``trace`` is the full (unsharded) broker-trace instance whose inline
    replay is the ground truth — exactly as in
    :class:`~repro.serve.loadgen.ServeInstance`, which this type is
    duck-compatible with (``.trace``, ``.tenants``) so the serve-side
    drivers and comparators apply verbatim.
    """

    trace: BrokerTraceInstance
    num_workers: int
    shards_per_worker: int
    session_window: int = 64
    codec: str = CODEC_BIN
    worker_window: int = 1024
    record: bool = False
    wal_root: str | None = None
    fsync: str = "batch"
    snapshot_every: int | None = None
    worker_metrics: bool = False
    trace_root: str | None = None
    topology: str = "routed"
    transport: str = "unix"

    def __post_init__(self) -> None:
        if self.codec not in CODECS:
            raise ModelError(
                f"unknown codec {self.codec!r}; known: {', '.join(CODECS)}"
            )
        if self.topology not in TOPOLOGIES:
            raise ModelError(
                f"unknown topology {self.topology!r}; "
                f"known: {', '.join(TOPOLOGIES)}"
            )
        if self.transport not in TRANSPORTS:
            raise ModelError(
                f"unknown transport {self.transport!r}; "
                f"known: {', '.join(TRANSPORTS)}"
            )

    @property
    def tenants(self) -> tuple[str, ...]:
        """Every tenant named in the trace, sorted."""
        return tuple(
            sorted(
                {
                    event.tenant
                    for event in self.trace.events
                    if type(event) is not Tick
                }
            )
        )

    @property
    def spec(self) -> ClusterSpec:
        """The worker-fleet topology this instance is served by."""
        return ClusterSpec(
            num_resources=self.trace.num_resources,
            num_workers=self.num_workers,
            shards_per_worker=self.shards_per_worker,
            num_types=self.trace.schedule.num_types,
            cost_growth=_cost_growth(self.trace.schedule),
            record=self.record,
            session_window=self.session_window,
            wal_root=self.wal_root,
            fsync=self.fsync,
            snapshot_every=self.snapshot_every,
            worker_metrics=self.worker_metrics,
            trace_root=self.trace_root,
            transport=self.transport,
        )


def _cost_growth(schedule: LeaseSchedule) -> float:
    """Recover the power-of-two schedule's growth factor from its costs."""
    types = list(schedule)
    if len(types) < 2:
        return 2.0
    return types[1].cost / types[0].cost


def build_cluster_instance(
    workload: str,
    horizon: int,
    seed: int,
    num_resources: int = 8,
    tenants_per_resource: int = 2,
    hold: int = 3,
    tick_every: int = 32,
    num_types: int = 4,
    cost_growth: float = 2.0,
    num_workers: int = 2,
    shards_per_worker: int = 2,
    session_window: int = 64,
    codec: str = CODEC_BIN,
    record: bool = False,
    wal_root: str | None = None,
    fsync: str = "batch",
    snapshot_every: int | None = None,
    worker_metrics: bool = False,
    trace_root: str | None = None,
    topology: str = "routed",
    transport: str = "unix",
) -> ClusterInstance:
    """A cluster instance over :func:`generate_resource_trace` streams.

    Defaults mirror :func:`~repro.serve.loadgen.build_serve_instance`
    (``cost_growth=2.0`` keeps every cost sum exactly representable),
    with the serving shape replaced by a fleet shape: ``num_workers``
    processes of ``shards_per_worker`` broker sub-shards each.
    """
    schedule = LeaseSchedule.power_of_two(num_types, cost_growth=cost_growth)
    events = generate_resource_trace(
        workload,
        horizon,
        seed,
        num_resources=num_resources,
        tenants_per_resource=tenants_per_resource,
        hold=hold,
        tick_every=tick_every,
    )
    trace = BrokerTraceInstance(
        schedule=schedule,
        workload=workload,
        horizon=horizon,
        seed=seed,
        num_resources=num_resources,
        resources=(0, num_resources),
        events=events,
    )
    return ClusterInstance(
        trace=trace,
        num_workers=num_workers,
        shards_per_worker=shards_per_worker,
        session_window=session_window,
        codec=codec,
        record=record,
        wal_root=wal_root,
        fsync=fsync,
        snapshot_every=snapshot_every,
        worker_metrics=worker_metrics,
        trace_root=trace_root,
        topology=topology,
        transport=transport,
    )


def cluster_once(
    instance: ClusterInstance,
    # Generous: on a loaded single-core box a worker interpreter can
    # take tens of seconds just to boot; a short deadline here turns
    # CPU contention into spurious connect failures.
    retry_for: float = 60.0,
    metrics: MetricsRegistry | None = None,
    latency_registry: MetricsRegistry | None = None,
    fault_hook=None,
    router_trace: TraceSink | None = None,
    client_trace: TraceSink | None = None,
) -> dict:
    """One full clustered serving cycle; returns the merged report.

    Spawns the worker fleet, fronts it with a router on a throwaway unix
    socket, drives every tenant closed-loop, fetches the merged
    per-shard report, and shuts everything down — workers over the wire
    first, then reaped.  The result carries ``drive_seconds``: the wall
    clock of the drive phase alone (connect tenants, replay days, fetch
    report), which is what the ``p04_cluster`` benchmark rates.
    ``metrics`` instruments the router's worker links;
    ``latency_registry`` samples client-side per-tenant op latency, as
    in :func:`~repro.serve.loadgen.drive_tenants`.

    A WAL'd instance (``wal_root`` set) runs *supervised*: the router
    gets a respawn callback over the spawned fleet, so a worker that
    dies mid-drive is restarted with its WAL directory, recovers, and
    the drive rides through the crash.  ``fault_hook(day, workers)``,
    when given, is called before each simulated day's traffic — the
    chaos harness's kill injection point.

    ``router_trace`` gives the router a span sink (relay spans);
    ``client_trace`` makes the tenants trace originators.  Pair them
    with ``instance.trace_root`` (per-worker dispatch-span files) for a
    fully traced fleet whose merged files reconstruct one causal tree
    per op through ``engine trace-tree``.
    """
    spec = instance.spec
    workdir = tempfile.mkdtemp(prefix="rcl-")
    workers = []
    try:
        workers = spawn_workers(spec, workdir)
        router_socket = str(Path(workdir) / "router.sock")
        respawn = make_respawner(workers) if spec.wal_root else None
        on_day = (
            None if fault_hook is None
            else (lambda day: fault_hook(day, workers))
        )

        drive = (
            drive_tenants_direct if instance.topology == "direct"
            else drive_tenants
        )

        async def _route_and_drive() -> dict:
            router = ClusterRouter(
                spec, worker_window=instance.worker_window, metrics=metrics,
                respawn=respawn, trace=router_trace,
                collect_worker_metrics=spec.worker_metrics,
            )
            await router.connect_workers(
                [w.endpoint for w in workers],
                retry_for=retry_for,
                codec=instance.codec,
            )
            await router.start_unix(router_socket)
            try:
                start = time.perf_counter()
                report = await drive(
                    instance, router_socket,
                    retry_for=retry_for, codec=instance.codec,
                    latency_registry=latency_registry,
                    on_day=on_day,
                    client_trace=client_trace,
                )
                report["drive_seconds"] = time.perf_counter() - start
                report["respawns"] = sum(w.respawns for w in workers)
                return report
            finally:
                await router.shutdown()

        report = asyncio.run(_route_and_drive())
    finally:
        reap(workers)
        shutil.rmtree(workdir, ignore_errors=True)
    return report


def run_cluster_instance(
    instance: ClusterInstance, seed: int = 0, report: dict | None = None
) -> RunResult:
    """Serve the instance on a cluster and return the *clustered* aggregate.

    Runs :func:`cluster_once` (unless a pre-fetched ``report`` is passed
    in), merges the router's per-shard reports, replays the merged trace
    inline, and attaches the comparison verdict under
    ``detail["cluster"]``.  The returned result is the cluster's — the
    inline replay only judges it.
    """
    if report is None:
        report = cluster_once(instance)
    served = merge_shard_payloads(report["shards"])
    _, equal = compare_with_inline(instance, served, seed)
    detail = dict(served.detail)
    detail["cluster"] = {
        "tenants": len(instance.tenants),
        "workers": instance.num_workers,
        "shards_per_worker": instance.shards_per_worker,
        "total_shards": instance.spec.total_shards,
        "codec": instance.codec,
        "transport": instance.transport,
        "topology": instance.topology,
        "requests": report["requests"],
        "respawns": report.get("respawns", 0),
        "handshakes": report.get("handshakes", 0),
        "retried_ops": report.get("retried_ops", 0),
        "report_equal": equal,
    }
    return replace(served, detail=detail)


def verify_cluster(
    instance: ClusterInstance, result: RunResult
) -> VerificationReport:
    """Cluster-scenario verification: coverage plus the equality verdict.

    Re-checks every canonical acquire day against the purchased leases
    (the broker-family verifier) and additionally fails unless the
    clustered aggregate matched the inline replay of the merged trace.
    """
    coverage = verify_broker_trace(instance.trace, result)
    failures = list(coverage.failures)
    cluster_detail = result.detail.get("cluster", {})
    if not cluster_detail.get("report_equal"):
        failures.append(
            "clustered aggregate report diverged from the inline replay "
            "of the merged trace"
        )
    return VerificationReport(
        ok=not failures,
        failures=tuple(failures),
        checked=coverage.checked + 1,
    )
