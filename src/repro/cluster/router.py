"""The cluster front end: one router socket over N worker processes.

:class:`ClusterRouter` is what tenants dial.  It speaks the exact
protocol of a single :class:`~repro.serve.server.LeaseServer` — same
ops, same frames, same ``hello`` shape (plus a ``cluster`` block) — so
every existing client, the loadgen, and the CLI work against a cluster
unchanged.  Behind it, mutations route by resource to the worker whose
shard group owns them; control ops fan out as *barriers* and the results
merge back into single-server shapes.

**Routing and ordering.**  Each worker is reached through one
:class:`_WorkerLink`: a pipelined connection with its own id space, a
coalescing writer (every flush drains the whole outgoing queue through
one ``writelines``) and a reader that relays responses back to the
owning client connection, ids rewritten.  A client connection's frames
are routed *synchronously in read order*, so two ops from the same
tenant to the same worker stay ordered end to end — the same
serialization the single server's shard queues provide.  ``tick``
broadcasts to every worker (the shared clock skeleton); the barrier
reads (``stats`` / ``report`` / ``trace``) ride the same links after any
already-routed mutations, so they observe everything enqueued before
them, worker by worker.

**Backpressure propagation.**  Per-worker in-flight is bounded: a
mutation that would push a link past ``worker_window`` unanswered ops is
refused immediately with a ``backpressure`` error frame — the cluster
analogue of the server's per-tenant windows, which the workers still
enforce behind the router and whose refusals relay through verbatim.

**Merge discipline.**  Every worker runs the *global* shard tiling (see
:class:`~repro.cluster.spec.ClusterSpec`), so its ``report``/``trace``
payloads carry global shard indices.  The router keeps exactly each
worker's own group — by index, in global order — and concatenates, which
reproduces the shard list a single ``LeaseServer`` with ``total_shards``
shards would have reported.  Merging those payloads with
:func:`~repro.engine.scenarios.merge_broker_runs` therefore equals the
inline replay of the merged trace byte for byte, the identity the
``cluster-*`` scenarios and CI gate continuously.

**Supervision and recovery.**  With a ``respawn`` callback configured,
every link lives inside a :class:`_WorkerSlot` supervisor.  A worker
death is detected two ways — the link reader hits EOF the moment the
process dies (the kernel closes its sockets), and a periodic heartbeat
``hello`` catches a process that is alive but hung.  The slot then takes
ownership of the link's unanswered ops, *holds* every new frame for that
worker in a bounded queue, and restarts the worker through the callback
(off the event loop) with jittered exponential backoff between
attempts.  Once the successor is up — having replayed its WAL, when the
fleet is durable — the slot resends the in-flight ops oldest-first with
a ``retry`` marker (the worker's applied-log dedup makes the resend
exactly-once) and then releases the held frames in arrival order, so
per-connection FIFO order survives the crash end to end.  Tenants
observe a stall, not an error; only a worker that stays dead past the
respawn budget fails its traffic with typed ``unavailable`` frames.

**Drain and shutdown.**  ``drain`` broadcasts to every worker, then
flips the router, so new acquires are refused at both layers while
renews/releases complete.  ``shutdown`` acks the caller, stops the
listeners, shuts every worker over its link, fails anything still
pending as ``unavailable``, and wakes :meth:`run_until_stopped`.
"""

from __future__ import annotations

import asyncio
import itertools
import random
from collections import deque

from ..errors import ModelError
from ..obs.export import export_sessions, export_shards
from ..obs.history import MetricsHistory
from ..obs.metrics import MetricsRegistry
from ..obs.profile import SamplingProfiler
from ..obs.promparse import merge_expositions, relabel_exposition
from ..obs.trace import NULL_TRACE, TraceSink
from ..obs.tracetree import (
    build_trace_trees,
    new_id,
    trace_tree_payload,
)
from ..serve.protocol import (
    CODEC_BIN,
    CODEC_JSON,
    MUTATION_OPS,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    ServeError,
    encode_frame,
    error,
    negotiate_codec,
    ok,
    parse_response,
    read_frame,
    request,
    write_frame,
)
from ..serve.server import (
    field_resource,
    field_tenant,
    field_time,
    trace_context,
)
from .liveness import LIVE_SUSPECT, LIVE_UP, WorkerLiveness
from .spec import ClusterSpec, format_endpoint, parse_endpoint


async def _dial(endpoint: str):
    """Open a stream to a worker endpoint, unix or tcp."""
    kind, address = parse_endpoint(endpoint)
    if kind == "unix":
        return await asyncio.open_unix_connection(address[0])
    return await asyncio.open_connection(address[0], address[1])


async def _drain_queue_into(queue: asyncio.Queue, batch: list) -> None:
    batch.append(await queue.get())
    while not queue.empty():
        batch.append(queue.get_nowait())


class _ClientConn:
    """One tenant connection: codec state plus a coalescing out-pump."""

    __slots__ = ("reader", "writer", "codec_ref", "outq", "closed", "pump")

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.codec_ref = [CODEC_JSON]
        self.outq: asyncio.Queue = asyncio.Queue()
        self.closed = False
        self.pump = asyncio.create_task(self._pump())

    def send(self, payload: dict) -> None:
        """Queue one response payload; encoded at flush with the conn codec."""
        if not self.closed:
            self.outq.put_nowait(payload)

    async def _pump(self) -> None:
        while True:
            batch: list[dict] = []
            await _drain_queue_into(self.outq, batch)
            codec = self.codec_ref[0]
            try:
                self.writer.writelines(
                    [encode_frame(payload, codec) for payload in batch]
                )
                await self.writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                pass  # client went away; its responses have nowhere to go
            finally:
                for _ in batch:
                    self.outq.task_done()

    async def close(self) -> None:
        self.closed = True
        try:
            await asyncio.wait_for(self.outq.join(), timeout=5.0)
        except (asyncio.TimeoutError, Exception):
            pass
        self.pump.cancel()
        try:
            await self.pump
        except (asyncio.CancelledError, Exception):
            pass
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except Exception:
            pass


class _WorkerLink:
    """The router's pipelined connection to one worker process."""

    __slots__ = (
        "index", "reader", "writer", "codec", "_ids", "_pending", "outq",
        "_pump_task", "_read_task", "_metrics_on", "_clock", "_registry",
        "_latency", "_frames", "_failures", "_on_death", "_on_beat",
        "_closing", "_trace",
    )

    def __init__(
        self,
        index: int,
        reader,
        writer,
        codec: str,
        metrics: MetricsRegistry | None = None,
        on_death=None,
        on_beat=None,
        trace: TraceSink | None = None,
    ):
        self.index = index
        self.reader = reader
        self.writer = writer
        self.codec = codec
        self._on_beat = on_beat
        self._ids = itertools.count(1)
        #: link id -> (conn, client id, None, op, payload, t0, span) for
        #: relays, (None, None, future, op, payload, t0, None) for
        #: router calls.  The payload rides along so a supervisor can
        #: resend the op verbatim on a successor link; ``span`` is the
        #: relay span context (trace id, relay span id, parent span id,
        #: tenant, resource) when the frame carried one and the router
        #: traces, else None.
        self._pending: dict[int, tuple] = {}
        self._trace = trace if trace is not None else NULL_TRACE
        self._on_death = on_death
        self._closing = False
        self.outq: asyncio.Queue = asyncio.Queue()
        registry = metrics if metrics is not None else MetricsRegistry(
            enabled=False
        )
        self._registry = registry
        self._metrics_on = registry.enabled
        self._clock = registry.clock
        self._latency: dict = {}
        self._frames = registry.counter(
            "cluster_worker_frames_total",
            help="Frames the router sent to this worker, by wire codec.",
            worker=str(index),
            codec=codec,
        )
        self._failures = registry.counter(
            "cluster_link_failures_total",
            help="In-flight ops failed because the worker link died.",
            worker=str(index),
        )
        self._pump_task = asyncio.create_task(self._pump())
        self._read_task = asyncio.create_task(self._read_loop())

    def _latency_hist(self, op: str):
        hist = self._latency.get(op)
        if hist is None:
            hist = self._latency[op] = self._registry.histogram(
                "cluster_relay_latency_seconds",
                help="Router-observed latency from send to worker reply.",
                op=op,
                worker=str(self.index),
            )
        return hist

    # ------------------------------------------------------------------
    # Construction: dial, negotiate the codec, validate the worker
    # ------------------------------------------------------------------
    @classmethod
    async def open(
        cls,
        index: int,
        endpoint: str,
        spec: ClusterSpec,
        retry_for: float = 10.0,
        codec: str = CODEC_BIN,
        metrics: MetricsRegistry | None = None,
        on_death=None,
        on_beat=None,
        trace: TraceSink | None = None,
    ) -> "_WorkerLink":
        deadline = asyncio.get_running_loop().time() + retry_for
        while True:
            try:
                reader, writer = await _dial(endpoint)
                break
            except (ConnectionRefusedError, FileNotFoundError, OSError):
                if asyncio.get_running_loop().time() >= deadline:
                    raise
                await asyncio.sleep(0.05)
        # Negotiate and validate before the pumps start, on the raw
        # stream: worker id 0 is reserved for this one handshake.  Any
        # handshake failure closes the fresh connection — a raised
        # ModelError must not leak the socket.
        try:
            await write_frame(writer, request("hello", 0, codec=codec))
            payload = await read_frame(reader)
            if payload is None:
                raise ModelError(f"worker {index} hung up during hello")
            hello = parse_response(payload)
            cls._validate_hello(index, hello, spec)
        except BaseException:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
            raise
        chosen = negotiate_codec(hello.get("codec")) if codec == CODEC_BIN else CODEC_JSON
        return cls(
            index, reader, writer, chosen, metrics=metrics,
            on_death=on_death, on_beat=on_beat, trace=trace,
        )

    @staticmethod
    def _validate_hello(index: int, hello: dict, spec: ClusterSpec) -> None:
        schedule = spec.schedule()
        mismatches = [
            f"{field}: worker has {got!r}, cluster wants {want!r}"
            for field, got, want in (
                ("num_resources", hello.get("num_resources"), spec.num_resources),
                ("num_shards", hello.get("num_shards"), spec.total_shards),
                (
                    "schedule lengths",
                    hello.get("schedule", {}).get("lengths"),
                    [t.length for t in schedule],
                ),
                (
                    "schedule costs",
                    hello.get("schedule", {}).get("costs"),
                    [t.cost for t in schedule],
                ),
                ("record", hello.get("record"), spec.record),
            )
            if got != want
        ]
        if mismatches:
            raise ModelError(
                f"worker {index} config mismatch: " + "; ".join(mismatches)
            )

    # ------------------------------------------------------------------
    # The two send paths: relays and router-originated calls
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Unanswered ops on this link — the backpressure signal."""
        return len(self._pending)

    def forward(self, payload: dict, conn: _ClientConn, client_id) -> None:
        """Relay a client mutation: rewrite the id, queue the frame.

        When the frame carries a trace context and the router has a
        sink, the relay re-parents it: a relay span id is minted, the
        forwarded frame's context names it (so the worker's dispatch
        span becomes the relay span's child), and the relay span itself
        — parented to the client's span — is emitted when the worker
        answers.  The rewrite is stored in pending, so a resend after a
        worker respawn reuses the same relay span identity.
        """
        span = None
        if self._trace.enabled:
            context = trace_context(payload)
            if context is not None:
                relay_span = new_id()
                payload = {**payload, "trace": f"{context[0]}-{relay_span}"}
                span = (
                    context[0], relay_span, context[1],
                    payload.get("tenant"), payload.get("resource"),
                )
        link_id = next(self._ids)
        t0 = (
            self._clock() if self._metrics_on
            else self._trace.clock() if span is not None
            else 0.0
        )
        self._pending[link_id] = (
            conn, client_id, None, payload.get("op"), payload, t0, span
        )
        self._frames.inc()
        self.outq.put_nowait(
            encode_frame({**payload, "id": link_id}, self.codec)
        )

    def call(self, op: str, _future: asyncio.Future | None = None, **fields):
        """A router-originated request; the future resolves to the raw frame.

        ``_future`` lets a supervisor re-attach a caller already awaiting
        an answer (a call held across a worker respawn) instead of
        minting a fresh future nobody awaits.
        """
        link_id = next(self._ids)
        future = (
            _future if _future is not None
            else asyncio.get_running_loop().create_future()
        )
        t0 = self._clock() if self._metrics_on else 0.0
        payload = request(op, link_id, **fields)
        self._pending[link_id] = (None, None, future, op, payload, t0, None)
        self._frames.inc()
        self.outq.put_nowait(encode_frame(payload, self.codec))
        return future

    async def call_checked(self, op: str, **fields) -> dict:
        """Call and parse, raising :class:`ServeError` on error frames."""
        return parse_response(await self.call(op, **fields))

    def resend(self, entry: tuple) -> None:
        """Re-issue one taken pending entry on this (successor) link.

        Mutations travel with ``retry: true`` so a worker that already
        applied the op before dying answers from its applied-log dedup
        instead of applying twice; idempotent control reads go verbatim.
        """
        conn, client_id, future, op, payload, _t0, span = entry
        if future is not None and future.done():
            return
        link_id = next(self._ids)
        t0 = self._clock() if self._metrics_on else 0.0
        self._pending[link_id] = (
            conn, client_id, future, op, payload, t0, span
        )
        self._frames.inc()
        body = {**payload, "id": link_id}
        if op in MUTATION_OPS:
            body["retry"] = True
        self.outq.put_nowait(encode_frame(body, self.codec))

    def take_pending(self) -> list[tuple]:
        """Strip and return the unanswered ops, oldest (lowest id) first."""
        pending, self._pending = self._pending, {}
        return [entry for _link_id, entry in sorted(pending.items())]

    # ------------------------------------------------------------------
    # Pumps
    # ------------------------------------------------------------------
    async def _pump(self) -> None:
        # Op coalescing: one writelines/drain per wakeup moves every
        # frame queued since the last flush — under pipelined load the
        # router amortises its worker-side syscalls across tenants.
        while True:
            batch: list[bytes] = []
            await _drain_queue_into(self.outq, batch)
            try:
                self.writer.writelines(batch)
                await self.writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                pass  # reader loop will observe the dead link and fail pending
            finally:
                for _ in batch:
                    self.outq.task_done()

    async def _read_loop(self) -> None:
        try:
            while True:
                payload = await read_frame(self.reader)
                if payload is None:
                    break
                if self._on_beat is not None:
                    # Any frame off the link is proof of life — heartbeat
                    # replies and relayed responses alike feed liveness.
                    self._on_beat()
                entry = self._pending.pop(payload.get("id"), None)
                if entry is None:
                    continue
                conn, client_id, future, op, _payload, t0, span = entry
                if self._metrics_on:
                    self._latency_hist(op).observe(self._clock() - t0)
                if span is not None:
                    trace_id, span_id, parent, tenant, resource = span
                    self._trace.span(
                        op=op,
                        tenant=tenant,
                        resource=resource,
                        request_id=client_id,
                        t_enq=t0,
                        t_disp=t0,
                        t_reply=self._trace.clock(),
                        trace=trace_id,
                        span_id=span_id,
                        parent=parent,
                        kind="relay",
                    )
                if future is not None:
                    if not future.done():
                        future.set_result(payload)
                else:
                    response = dict(payload)
                    response["id"] = client_id
                    conn.send(response)
        finally:
            # A supervised link hands its unanswered ops to the slot for
            # resend after respawn; an unsupervised (or closing) one
            # fails them, the pre-supervision behaviour.
            if self._on_death is not None and not self._closing:
                self._on_death()
            else:
                self.fail_pending(f"worker {self.index} connection lost")

    def fail_pending(self, why: str) -> None:
        pending, self._pending = self._pending, {}
        if pending:
            self._failures.inc(len(pending))
        for conn, client_id, future, _op, _payload, _t0, _span in \
                pending.values():
            if future is not None:
                if not future.done():
                    future.set_exception(ServeError("unavailable", why))
            else:
                conn.send(error(client_id, "unavailable", why))

    async def close(self) -> None:
        self._closing = True
        for task in (self._pump_task, self._read_task):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self.fail_pending(f"worker {self.index} link closed")
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except Exception:
            pass


class _WorkerSlot:
    """One worker's seat at the router: a link, supervised or not.

    Unsupervised (no ``respawn`` callback) the slot is a pass-through to
    its link and a dead worker fails its in-flight ops, exactly the
    pre-supervision contract.  Supervised, the slot owns recovery: on
    link death it takes the unanswered ops, holds new frames in a
    bounded queue, restarts the worker through ``respawn`` (in an
    executor — it forks processes) with jittered exponential backoff,
    reconnects, resends the taken ops oldest-first with the ``retry``
    marker, then drains the held frames in arrival order.  Exhausting
    ``max_respawns`` fails everything with typed ``unavailable``.
    """

    __slots__ = (
        "index", "path", "spec", "codec_pref", "retry_for", "link",
        "state", "respawn", "hold_limit", "max_respawns", "backoff_base",
        "backoff_cap", "heartbeat_every", "heartbeat_timeout", "_held",
        "_registry", "_recover_task", "_heartbeat_task", "_closing",
        "_deaths", "_respawns", "_held_counter", "trace",
        "respawns_done", "redriven_frames", "liveness",
    )

    def __init__(
        self,
        index: int,
        endpoint: str,
        spec: ClusterSpec,
        codec_pref: str,
        retry_for: float,
        registry: MetricsRegistry,
        respawn=None,
        hold_limit: int = 4096,
        max_respawns: int = 5,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
        heartbeat_every: float = 2.0,
        heartbeat_timeout: float = 10.0,
        trace: TraceSink | None = None,
        liveness: WorkerLiveness | None = None,
    ):
        self.index = index
        # Normalised endpoint string ("unix:<path>" / "tcp:<host>:<port>"):
        # what the link dials and the route handshake hands to clients.
        kind, address = parse_endpoint(str(endpoint))
        self.path = format_endpoint(kind, *address)
        self.spec = spec
        self.liveness = liveness
        self.codec_pref = codec_pref
        self.retry_for = retry_for
        self.link: _WorkerLink | None = None
        self.state = "up"
        self.respawn = respawn
        self.hold_limit = hold_limit
        self.max_respawns = max_respawns
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.heartbeat_every = heartbeat_every
        self.heartbeat_timeout = heartbeat_timeout
        self._held: deque = deque()
        self._registry = registry
        self.trace = trace if trace is not None else NULL_TRACE
        self._recover_task: asyncio.Task | None = None
        self._heartbeat_task: asyncio.Task | None = None
        self._closing = False
        # Plain-int supervision tallies, kept regardless of whether the
        # live registry is enabled: the scrape-time export renders them
        # as cluster_worker_respawns_total / cluster_redriven_frames_total.
        self.respawns_done = 0
        self.redriven_frames = 0
        self._deaths = registry.counter(
            "cluster_worker_deaths_total",
            help="Times the router found this worker's link dead.",
            worker=str(index),
        )
        self._respawns = registry.counter(
            "cluster_respawns_total",
            help="Worker restarts the router's supervision performed.",
            worker=str(index),
        )
        self._held_counter = registry.counter(
            "cluster_held_frames_total",
            help="Frames held while this worker was being respawned.",
            worker=str(index),
        )

    @property
    def supervised(self) -> bool:
        return self.respawn is not None

    def _beat(self) -> None:
        if self.liveness is not None:
            self.liveness.beat(self.index)

    async def open(self) -> None:
        """Dial the worker and, when supervised, start the heartbeat."""
        self.link = await _WorkerLink.open(
            self.index, self.path, self.spec, retry_for=self.retry_for,
            codec=self.codec_pref, metrics=self._registry,
            on_death=self._link_died if self.supervised else None,
            on_beat=self._beat if self.liveness is not None else None,
            trace=self.trace,
        )
        self._beat()
        if self.supervised and self._heartbeat_task is None:
            self._heartbeat_task = asyncio.create_task(self._heartbeat())

    # ------------------------------------------------------------------
    # The link surface the router routes through
    # ------------------------------------------------------------------
    @property
    def codec(self) -> str:
        link = self.link
        return link.codec if link is not None else self.codec_pref

    @property
    def inflight(self) -> int:
        link = self.link
        return (link.inflight if link is not None else 0) + len(self._held)

    def forward(self, payload: dict, conn: _ClientConn, client_id) -> None:
        if self.state == "up":
            self.link.forward(payload, conn, client_id)
        elif self.state == "recovering":
            self._hold(("forward", payload, conn, client_id))
        else:
            raise ServeError(
                "unavailable",
                f"worker {self.index} is gone (respawn budget exhausted)",
            )

    def call(self, op: str, **fields) -> asyncio.Future:
        if self.state == "up":
            return self.link.call(op, **fields)
        future = asyncio.get_running_loop().create_future()
        if self.state == "recovering":
            try:
                self._hold(("call", op, fields, future))
            except ServeError as exc:
                future.set_exception(exc)
        else:
            future.set_exception(
                ServeError(
                    "unavailable",
                    f"worker {self.index} is gone "
                    f"(respawn budget exhausted)",
                )
            )
        return future

    async def call_checked(self, op: str, **fields) -> dict:
        return parse_response(await self.call(op, **fields))

    def begin_shutdown(self) -> None:
        """Stop treating link EOF as worker death: shutdown is expected.

        Called before the router broadcasts ``shutdown`` to the fleet.
        A worker that acks the broadcast closes its end of the link
        while it writes its final snapshots; without this flag the
        read-EOF supervision path would mistake that for a crash and
        ``respawn`` — whose first act is SIGKILLing the old process —
        cutting the graceful stop short mid-snapshot.
        """
        self._closing = True

    def _hold(self, item: tuple) -> None:
        if len(self._held) >= self.hold_limit:
            raise ServeError(
                "backpressure",
                f"worker {self.index} is recovering with "
                f"{len(self._held)} frames already held "
                f"(hold limit {self.hold_limit})",
            )
        self._held_counter.inc()
        self._held.append(item)

    # ------------------------------------------------------------------
    # Death, recovery, heartbeat
    # ------------------------------------------------------------------
    def _link_died(self) -> None:
        link = self.link
        if link is None or self._closing:
            return
        self.link = None
        self.state = "recovering"
        if self.liveness is not None:
            self.liveness.declare_dead(self.index)
        self._deaths.inc()
        pending = link.take_pending()
        self._recover_task = asyncio.create_task(self._recover(link, pending))

    async def _recover(self, dead_link: _WorkerLink, pending: list) -> None:
        try:
            await dead_link.close()
            loop = asyncio.get_running_loop()
            delay = self.backoff_base
            for attempt in range(1, self.max_respawns + 1):
                try:
                    path = await loop.run_in_executor(
                        None, self.respawn, self.index
                    )
                    link = await _WorkerLink.open(
                        self.index, path, self.spec,
                        retry_for=self.retry_for, codec=self.codec_pref,
                        metrics=self._registry, on_death=self._link_died,
                        on_beat=(
                            self._beat if self.liveness is not None else None
                        ),
                        trace=self.trace,
                    )
                except asyncio.CancelledError:
                    raise
                except Exception:
                    if attempt == self.max_respawns:
                        break
                    await asyncio.sleep(delay * (0.5 + random.random()))
                    delay = min(delay * 2, self.backoff_cap)
                    continue
                self._respawns.inc()
                self.respawns_done += 1
                kind, address = parse_endpoint(str(path))
                self.path = format_endpoint(kind, *address)
                self._beat()
                # No awaits from here to the state flip: resends and the
                # held drain land in the link queue atomically, keeping
                # per-connection FIFO order across the crash.
                for entry in pending:
                    link.resend(entry)
                held, self._held = self._held, deque()
                self.redriven_frames += len(pending) + len(held)
                for item in held:
                    if item[0] == "forward":
                        _, payload, conn, client_id = item
                        link.forward(payload, conn, client_id)
                    else:
                        _, op, fields, future = item
                        if not future.done():
                            link.call(op, _future=future, **fields)
                self.link = link
                self.state = "up"
                return
            self.state = "down"
            self._fail_all(
                pending,
                f"worker {self.index} did not come back after "
                f"{self.max_respawns} respawn attempts",
            )
        except asyncio.CancelledError:
            self._fail_all(pending, "router is shutting down")
            raise

    def _fail_all(self, pending: list, why: str) -> None:
        for conn, client_id, future, _op, _payload, _t0, _span in pending:
            if future is not None:
                if not future.done():
                    future.set_exception(ServeError("unavailable", why))
            else:
                conn.send(error(client_id, "unavailable", why))
        held, self._held = self._held, deque()
        for item in held:
            if item[0] == "forward":
                _, payload, conn, client_id = item
                conn.send(error(payload.get("id"), "unavailable", why))
            else:
                _, _op, _fields, future = item
                if not future.done():
                    future.set_exception(ServeError("unavailable", why))

    async def _heartbeat(self) -> None:
        # Read-EOF catches a dead process instantly; the heartbeat is
        # for the hung-but-alive worker, whose socket never closes.  A
        # timed-out hello severs the link so the EOF path takes over.
        while True:
            await asyncio.sleep(self.heartbeat_every)
            link = self.link
            if link is None or self._closing:
                continue
            future = link.call("hello")
            try:
                await asyncio.wait_for(
                    asyncio.shield(future), timeout=self.heartbeat_timeout
                )
            except asyncio.TimeoutError:
                link.writer.close()
            except Exception:
                pass

    async def close(self) -> None:
        self._closing = True
        for task in (self._heartbeat_task, self._recover_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        self._fail_all([], "router is shutting down")
        if self.link is not None:
            await self.link.close()


class ClusterRouter:
    """Route tenant traffic over a fleet of lease-server workers.

    Args:
        spec: the cluster topology (resources, workers, shard groups).
        worker_window: per-worker in-flight op bound; a mutation beyond
            it is refused with a ``backpressure`` error frame instead of
            growing the link queue without bound.
        metrics: live instrumentation registry shared by every worker
            link (relay latency histograms, codec-mix frame counters,
            link-failure counters); ``None`` disables continuous
            sampling — the ``metrics`` verb still answers with the
            scrape-time export either way.
        respawn: ``respawn(index) -> socket_path`` callback that
            restarts a dead worker and returns the socket to redial
            (see :func:`~repro.cluster.procs.make_respawner`).  Enables
            supervision: worker death is detected (read-EOF plus
            heartbeat), the worker restarted with backoff, in-flight
            ops resent with the ``retry`` marker, and new frames held
            meanwhile.  ``None`` keeps the fail-fast contract: a dead
            worker fails its in-flight ops as ``unavailable``.
        hold_limit: bound on frames held per recovering worker; beyond
            it new mutations draw ``backpressure`` refusals.
        max_respawns: respawn attempts per death before the worker is
            declared gone and its traffic failed.
        respawn_backoff: base of the jittered exponential backoff
            (seconds) between failed respawn attempts.
        heartbeat_every: seconds between supervision heartbeats.
        heartbeat_timeout: unanswered-heartbeat window after which a
            hung worker's link is severed to force recovery.
        trace: router-side JSONL span sink.  With a sink configured,
            every relayed mutation carrying a trace context leaves a
            ``relay`` span here — parented to the client's span, parent
            of the worker's dispatch span — so a merged fleet trace
            reconstructs the full client → router → worker tree.
            ``None`` disables router spans (contexts still relay
            through to the workers untouched).
        collect_worker_metrics: fold each worker's *own* scrape (its
            ``metrics`` verb, live histograms included) into the
            router's exposition, every sample relabeled with
            ``worker="N"``; the router then skips its own shard/session
            fold so no family is reported twice.  Enable when the
            workers run with live metrics (``--worker-metrics``).
    """

    def __init__(
        self,
        spec: ClusterSpec,
        worker_window: int = 1024,
        metrics: MetricsRegistry | None = None,
        respawn=None,
        hold_limit: int = 4096,
        max_respawns: int = 5,
        respawn_backoff: float = 0.1,
        heartbeat_every: float = 2.0,
        heartbeat_timeout: float = 10.0,
        trace: TraceSink | None = None,
        collect_worker_metrics: bool = False,
        history: MetricsHistory | None = None,
        profiler: SamplingProfiler | None = None,
        liveness: WorkerLiveness | None = None,
    ):
        if worker_window < 1:
            raise ModelError("worker_window must be >= 1")
        if hold_limit < 1:
            raise ModelError("hold_limit must be >= 1")
        if max_respawns < 1:
            raise ModelError("max_respawns must be >= 1")
        self.spec = spec
        # Control-plane health state: beats ride every frame the links
        # read, states derive from the tracker's (injectable) clock.
        self.liveness = (
            liveness if liveness is not None
            else WorkerLiveness(spec.num_workers)
        )
        self.worker_window = worker_window
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            enabled=False
        )
        self.respawn = respawn
        self.hold_limit = hold_limit
        self.max_respawns = max_respawns
        self.respawn_backoff = respawn_backoff
        self.heartbeat_every = heartbeat_every
        self.heartbeat_timeout = heartbeat_timeout
        self.trace = trace if trace is not None else NULL_TRACE
        self.collect_worker_metrics = collect_worker_metrics
        # Same live-debugging surface as a single server: a snapshot
        # ring over the router's registry and an off-until-asked
        # profiler, both mounted by the admin plane.
        self.history = (
            history if history is not None else MetricsHistory(self.metrics)
        )
        self.profiler = (
            profiler if profiler is not None else SamplingProfiler()
        )
        self._profile_lock = asyncio.Lock()
        self._history_task: asyncio.Task | None = None
        self._slots: list[_WorkerSlot] = []
        self._state = "serving"
        self._servers: list[asyncio.base_events.Server] = []
        self._conns: set[_ClientConn] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._stopped = asyncio.Event()
        self._shutdown_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current lifecycle state: serving, draining, or stopped."""
        return self._state

    @property
    def num_workers(self) -> int:
        return len(self._slots)

    async def connect_workers(
        self,
        endpoints,
        retry_for: float = 10.0,
        codec: str = CODEC_BIN,
    ) -> None:
        """Dial every worker endpoint, negotiate codecs, validate configs.

        ``endpoints`` accepts ``unix:<path>`` / ``tcp:<host>:<port>``
        strings; bare socket paths keep working (normalised to unix).
        """
        paths = list(endpoints)
        if len(paths) != self.spec.num_workers:
            raise ModelError(
                f"spec names {self.spec.num_workers} workers but "
                f"{len(paths)} socket paths / endpoints were given"
            )
        try:
            for index, path in enumerate(paths):
                slot = _WorkerSlot(
                    index, path, self.spec, codec, retry_for, self.metrics,
                    respawn=self.respawn,
                    hold_limit=self.hold_limit,
                    max_respawns=self.max_respawns,
                    backoff_base=self.respawn_backoff,
                    heartbeat_every=self.heartbeat_every,
                    heartbeat_timeout=self.heartbeat_timeout,
                    trace=self.trace,
                    liveness=self.liveness,
                )
                await slot.open()
                self._slots.append(slot)
        except BaseException:
            # One bad worker must not strand the slots (and their pump
            # tasks) already opened to the good ones.
            for slot in self._slots:
                await slot.close()
            self._slots.clear()
            raise

    async def start_unix(self, path: str) -> None:
        """Start accepting tenants on a unix socket at ``path``."""
        self._require_links()
        server = await asyncio.start_unix_server(
            self._handle_connection, path=path
        )
        self._servers.append(server)

    async def start_tcp(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        reuse_port: bool = False,
    ) -> int:
        """Start accepting tenants on TCP; returns the bound port.

        ``reuse_port=True`` binds with ``SO_REUSEPORT`` so several
        router replicas can share one port — with the data plane gone
        direct, the router is a stateless-enough control plane that the
        kernel can spread handshake/barrier connections across replicas.
        """
        self._require_links()
        server = await asyncio.start_server(
            self._handle_connection, host=host, port=port,
            reuse_port=reuse_port or None,
        )
        self._servers.append(server)
        return server.sockets[0].getsockname()[1]

    def _require_links(self) -> None:
        if not self._slots:
            raise ModelError(
                "connect_workers must succeed before the router listens"
            )
        if self.history.enabled and self._history_task is None:
            self._history_task = asyncio.create_task(
                self._sample_history(), name="router-history-sampler"
            )

    async def _sample_history(self) -> None:
        # asyncio.sleep paces the loop; each sample timestamps itself on
        # the ring's injectable clock.
        while True:
            await asyncio.sleep(self.history.interval)
            self.history.sample()

    async def shutdown(self) -> None:
        """Stop listeners, shut every worker over its link, unwind."""
        if self._state == "stopped":
            await self._stopped.wait()
            return
        self._state = "stopped"
        for server in self._servers:
            server.close()
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:
                pass
        if self._slots:
            # Expected EOFs ahead: a worker that acks the broadcast
            # closes its link while writing final snapshots, which must
            # not trip the death-detection respawn path.
            for slot in self._slots:
                slot.begin_shutdown()
            # One concurrent broadcast bounds the whole phase at the
            # timeout even when several workers hang.  Slots without a
            # live link have nothing to shut down over the wire — the
            # caller reaps their processes.
            async def _stop_worker(slot: _WorkerSlot) -> None:
                if slot.link is None:
                    return
                try:
                    await asyncio.wait_for(
                        slot.call_checked("shutdown"), timeout=10.0
                    )
                except Exception:
                    pass

            await asyncio.gather(
                *(_stop_worker(slot) for slot in self._slots)
            )
        for slot in self._slots:
            await slot.close()
        if self._history_task is not None:
            self._history_task.cancel()
            try:
                await self._history_task
            except asyncio.CancelledError:
                pass
        self.profiler.stop()
        current = asyncio.current_task()
        lingering = [
            task for task in tuple(self._conn_tasks) if task is not current
        ]
        for conn in tuple(self._conns):
            conn.writer.close()
        if lingering:
            await asyncio.gather(*lingering, return_exceptions=True)
        self.trace.flush()
        self._stopped.set()

    async def run_until_stopped(self) -> None:
        """Block until :meth:`shutdown` completes."""
        await self._stopped.wait()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def _hello(self) -> dict:
        spec = self.spec
        schedule = spec.schedule()
        return {
            "server": "repro.cluster",
            "protocol": PROTOCOL_VERSION,
            "trace": True,
            "state": self._state,
            "record": spec.record,
            "num_resources": spec.num_resources,
            "num_shards": spec.total_shards,
            "ranges": [list(r) for r in spec.ranges],
            "schedule": {
                "num_types": schedule.num_types,
                "lengths": [t.length for t in schedule],
                "costs": [t.cost for t in schedule],
            },
            "cluster": {
                "workers": spec.num_workers,
                "shards_per_worker": spec.shards_per_worker,
                "worker_ranges": [list(r) for r in spec.worker_ranges],
                "direct": True,
                "transport": spec.transport,
            },
        }

    @property
    def route_epoch(self) -> int:
        """The fleet's routing epoch: total successful respawns.

        Endpoints are stable across respawns (same socket file / same
        port), so what a direct client must notice after a ``kill -9``
        is not a moved address but a *new process* behind the old one —
        the epoch moves exactly when that happens, and a ``route`` call
        carrying a stale epoch gets a typed ``stale-route`` error
        telling the client to re-handshake.
        """
        return sum(slot.respawns_done for slot in self._slots)

    def route_table(self) -> dict:
        """The ``route`` reply: resource->worker map plus data endpoints."""
        liveness = self.liveness.states()
        workers = self.spec.route_workers(
            [slot.path for slot in self._slots]
        )
        for slot, row in zip(self._slots, workers):
            row["epoch"] = slot.respawns_done
            row["state"] = slot.state
            row["liveness"] = liveness[slot.index]
        return {
            "epoch": self.route_epoch,
            "num_resources": self.spec.num_resources,
            "transport": self.spec.transport,
            "workers": workers,
        }

    def _route_mutation(
        self, op: str, payload: dict, request_id, conn: _ClientConn
    ) -> asyncio.Task | None:
        when = field_time(payload)
        if self._state == "stopped":
            raise ServeError("unavailable", "cluster is stopped")
        if op == "tick":
            # Enqueue on every link *now*, synchronously — a mutation
            # read after this tick lands behind it in each link's FIFO,
            # preserving the single server's read-order serialization.
            # (A recovering slot holds its tick in the same FIFO.)
            # Only the response aggregation is deferred to a task.
            # A traced tick propagates its context verbatim to every
            # worker — the broadcast is fan-out, not relay, so the
            # workers' dispatch spans parent to the client span
            # directly and no relay span is minted.
            extra = (
                {"trace": payload["trace"]} if "trace" in payload else {}
            )
            futures = [
                slot.call("tick", time=when, **extra)
                for slot in self._slots
            ]
            return asyncio.create_task(
                self._finish_tick(futures, request_id, conn)
            )
        if op == "acquire" and self._state != "serving":
            raise ServeError(
                "draining", "cluster is draining; new acquires are refused"
            )
        field_tenant(payload)
        resource = field_resource(payload, self.spec.num_resources)
        slot = self._slots[self.spec.worker_of(resource)]
        if slot.inflight >= self.worker_window:
            raise ServeError(
                "backpressure",
                f"worker {slot.index} has {slot.inflight} ops in flight "
                f"(window {self.worker_window})",
            )
        slot.forward(payload, conn, request_id)
        return None

    async def _finish_tick(
        self, futures: list[asyncio.Future], request_id, conn: _ClientConn
    ) -> None:
        try:
            results = [
                parse_response(payload)
                for payload in await asyncio.gather(*futures)
            ]
            conn.send(
                ok(
                    request_id,
                    {"applied_time": max(r["applied_time"] for r in results)},
                )
            )
        except ServeError as exc:
            conn.send(error(request_id, exc.kind, exc.message))
        except Exception as exc:
            # A malformed worker response must still answer the client —
            # a swallowed exception here would strand the tick forever.
            conn.send(
                error(
                    request_id, "unavailable",
                    f"tick barrier failed: {type(exc).__name__}: {exc}",
                )
            )

    async def _broadcast(self, op: str) -> list[dict]:
        return list(
            await asyncio.gather(
                *(slot.call_checked(op) for slot in self._slots)
            )
        )

    def _kept_shards(self, results: list[dict]) -> list[dict]:
        """Each worker's own shard group, by global index, in order."""
        kept: list[dict] = []
        for link, result in zip(self._slots, results):
            lo, hi = self.spec.group(link.index)
            by_index = {
                shard.get("index"): shard
                for shard in result.get("shards") or []
            }
            for shard_index in range(lo, hi):
                shard = by_index.get(shard_index)
                if shard is None:
                    raise ServeError(
                        "unavailable",
                        f"worker {link.index} reported no shard {shard_index}",
                    )
                kept.append(shard)
        return kept

    async def _control(self, op: str, payload: dict | None = None) -> dict:
        if op == "route":
            # The routing handshake and the heartbeat are one verb: a
            # bare call returns the table, a call carrying the client's
            # cached epoch doubles as a staleness check — if supervision
            # replaced a worker since, the typed error tells the client
            # to drop its cached table and re-handshake.
            known = (payload or {}).get("epoch")
            current = self.route_epoch
            if known is not None and int(known) != current:
                raise ServeError(
                    "stale-route",
                    f"routing epoch moved {int(known)} -> {current}; "
                    "re-handshake",
                )
            return self.route_table()
        if op == "stats":
            results = await self._broadcast("stats")
            return {
                "state": self._state,
                "cluster": {
                    "workers": self.spec.num_workers,
                    "shards_per_worker": self.spec.shards_per_worker,
                },
                "workers": [
                    {
                        "index": slot.index,
                        "state": result["state"],
                        "codec": slot.codec,
                        "inflight": slot.inflight,
                        "slot": slot.state,
                        "sessions": result["sessions"],
                    }
                    for slot, result in zip(self._slots, results)
                ],
                "shards": self._kept_shards(results),
            }
        if op == "report":
            return {"shards": self._kept_shards(await self._broadcast("report"))}
        if op == "trace":
            return {"shards": self._kept_shards(await self._broadcast("trace"))}
        if op == "metrics":
            parts = [
                self.render_metrics(
                    await self._broadcast("stats"),
                    include_shards=not self.collect_worker_metrics,
                )
            ]
            if self.collect_worker_metrics:
                worker_texts = await self._broadcast("metrics")
                parts.extend(
                    relabel_exposition(result["text"], worker=str(slot.index))
                    for slot, result in zip(self._slots, worker_texts)
                )
            # Workers share family names with each other (and the
            # router may share session families with them): merge, do
            # not concatenate, so each family is declared exactly once.
            return {"text": merge_expositions(*parts)}
        if op == "leases":
            return {"shards": await self._cluster_leases()}
        if op == "spans":
            trace_id = (payload or {}).get("trace")
            return {"spans": await self.federated_spans(trace_id)}
        if op == "drain":
            await self._broadcast("drain")
            if self._state == "serving":
                self._state = "draining"
            return {"state": self._state}
        if op == "undrain":
            await self._broadcast("undrain")
            if self._state == "draining":
                self._state = "serving"
            return {"state": self._state}
        raise ServeError("protocol", f"unknown op {op!r}")

    async def _cluster_leases(self) -> list[dict]:
        """The fleet's lease book: each worker's own shards, ids prefixed.

        A worker names its leases ``<shard>:<grant_id>``; the cluster
        form is ``<worker>:<shard>:<grant_id>``, so an id identifies the
        owning process too and force-release can route without a scan.
        """
        results = await self._broadcast("leases")
        shards: list[dict] = []
        for slot, result in zip(self._slots, results):
            lo, hi = self.spec.group(slot.index)
            by_index = {
                shard.get("index"): shard
                for shard in result.get("shards") or []
            }
            for shard_index in range(lo, hi):
                shard = by_index.get(shard_index)
                if shard is None:
                    raise ServeError(
                        "unavailable",
                        f"worker {slot.index} reported no shard "
                        f"{shard_index}",
                    )
                shard = dict(shard)
                shard["leases"] = [
                    dict(
                        lease,
                        lease_id=f"{slot.index}:{lease['lease_id']}",
                    )
                    for lease in shard.get("leases") or []
                ]
                shards.append(shard)
        return shards

    def render_metrics(
        self, results: list[dict], include_shards: bool = True
    ) -> str:
        """The cluster's Prometheus text exposition, from a stats barrier.

        ``results`` are the workers' ``stats`` payloads, one per link.
        Each worker's own shard group exports through the same folder a
        single server uses — so broker counters carry identical names
        cluster-wide, just with a ``worker`` label ahead of ``shard`` —
        plus per-worker link gauges (in-flight ops, window, liveness)
        and the supervision tallies (respawns performed, frames redriven
        after a respawn).  The router's live registry (relay latency,
        codec mix, link failures) is appended when metrics are enabled;
        family names are disjoint, so the concatenation stays valid.

        ``include_shards=False`` skips the shard/session fold — the
        ``metrics`` verb uses it when it appends the workers' own
        relabeled scrapes, which already carry those families.
        """
        registry = MetricsRegistry(clock=self.metrics.clock)
        for link, result in zip(self._slots, results):
            worker = str(link.index)
            registry.gauge(
                "cluster_worker_inflight",
                help="Unanswered ops on the worker link at scrape time.",
                worker=worker,
            ).set(link.inflight)
            registry.gauge(
                "cluster_worker_window",
                help="Per-worker in-flight op bound.",
                worker=worker,
            ).set(self.worker_window)
            registry.gauge(
                "cluster_worker_up",
                help="1 when the worker's link is up, 0 while it is "
                "recovering or gone.",
                worker=worker,
            ).set(1.0 if link.state == "up" else 0.0)
            registry.gauge(
                "cluster_worker_liveness",
                help="Beat-derived liveness: 2 up, 1 suspect, 0 dead.",
                worker=worker,
            ).set(
                {LIVE_UP: 2.0, LIVE_SUSPECT: 1.0}.get(
                    self.liveness.state(link.index), 0.0
                )
            )
            registry.counter(
                "cluster_worker_respawns_total",
                help="Worker restarts supervision completed successfully.",
                worker=worker,
            ).inc(link.respawns_done)
            registry.counter(
                "cluster_redriven_frames_total",
                help="In-flight and held frames redriven onto a "
                "respawned worker.",
                worker=worker,
            ).inc(link.redriven_frames)
            if not include_shards:
                continue
            lo, hi = self.spec.group(link.index)
            by_index = {
                shard.get("index"): shard
                for shard in result.get("shards") or []
            }
            own = [
                by_index[index]
                for index in range(lo, hi)
                if by_index.get(index) is not None
            ]
            export_shards(registry, own, worker=worker)
            export_sessions(registry, result["sessions"], worker=worker)
        text = registry.render_prometheus()
        if self.metrics.enabled:
            text += self.metrics.render_prometheus()
        return text

    # ------------------------------------------------------------------
    # Admin backend — the surface repro.admin.AdminPlane mounts over HTTP
    # ------------------------------------------------------------------
    async def admin_metrics(self) -> str:
        """The ``GET /metrics`` exposition (same text as the wire verb)."""
        return (await self._control("metrics"))["text"]

    def admin_health(self) -> dict:
        """Liveness: router state plus each worker slot's condition."""
        return {
            "state": self._state,
            "workers": [
                {
                    "index": slot.index,
                    "slot": slot.state,
                    "inflight": slot.inflight,
                    "respawns": slot.respawns_done,
                    "liveness": self.liveness.state(slot.index),
                }
                for slot in self._slots
            ],
        }

    def admin_ready(self) -> tuple[bool, dict]:
        """Readiness: every worker link up and the router admitting work."""
        slots_up = all(slot.state == "up" for slot in self._slots)
        ready = bool(self._slots) and slots_up and self._state == "serving"
        return ready, {
            "ready": ready,
            "state": self._state,
            "workers_up": slots_up,
            "workers": {
                str(slot.index): slot.state for slot in self._slots
            },
        }

    async def admin_leases(
        self, tenant: str | None = None, resource: int | None = None
    ) -> list[dict]:
        """The fleet's live lease book, filtered and stably sorted."""
        shards = await self._cluster_leases()
        book = [
            lease
            for shard in shards
            for lease in shard["leases"]
            if (tenant is None or lease["tenant"] == tenant)
            and (resource is None or lease["resource"] == resource)
        ]
        book.sort(key=lambda l: (l["resource"], l["tenant"], l["lease_id"]))
        return book

    async def admin_force_release(self, lease_id: str) -> dict | None:
        """Durably force-release one lease anywhere in the fleet.

        The release is injected through the owning worker's slot — the
        same path client mutations ride — so it is WAL'd by the worker,
        recorded as a replayable event, and, should the worker die
        mid-op, resent by supervision with the ``retry`` marker, which
        the worker's applied-log dedup collapses to exactly-once.
        """
        book = await self.admin_leases()
        lease = next(
            (l for l in book if l["lease_id"] == lease_id), None
        )
        if lease is None:
            return None
        slot = self._slots[self.spec.worker_of(lease["resource"])]
        result = await slot.call_checked(
            "release",
            tenant=lease["tenant"],
            resource=lease["resource"],
            time=0,
        )
        return {"lease_id": lease_id, "released": dict(lease), **result}

    async def admin_drain(self, worker: int) -> str | None:
        """Drain one worker (refuse its new acquires); router state kept."""
        if not 0 <= worker < len(self._slots):
            return None
        result = await self._slots[worker].call_checked("drain")
        return result["state"]

    async def admin_undrain(self, worker: int) -> str | None:
        if not 0 <= worker < len(self._slots):
            return None
        result = await self._slots[worker].call_checked("undrain")
        return result["state"]

    async def federated_spans(
        self, trace_id: str | None = None
    ) -> list[dict]:
        """The fleet's live spans: router relays + every worker's sink.

        The trace analogue of the ``--worker-metrics`` fold: the router
        contributes its own :meth:`TraceSink.live_spans` (relay hops),
        then broadcasts the ``spans`` verb so each worker answers from
        its live sink — including spans a pre-crash incarnation wrote,
        since sinks append across respawns — and each worker's spans are
        tagged ``worker="N"``.  With ``trace_id``, workers filter at the
        source, so only the matching spans cross the wire.
        """
        fields = {} if trace_id is None else {"trace": trace_id}
        spans = self.trace.live_spans()
        if trace_id is not None:
            spans = [s for s in spans if s.get("trace") == trace_id]
        worker_answers = await asyncio.gather(
            *(slot.call_checked("spans", **fields) for slot in self._slots)
        )
        for slot, answer in zip(self._slots, worker_answers):
            spans.extend(
                dict(span, worker=str(slot.index))
                for span in answer.get("spans") or []
            )
        return spans

    async def admin_trace(self, trace_id: str) -> list[dict] | None:
        """The *federated* span tree for one trace id, mid-run.

        Pulls the matching spans live from the router's sink and every
        worker's (the ``spans`` broadcast), links them into one causal
        tree, and returns the nested payload — structurally identical to
        ``engine trace-tree`` over the offline-merged fleet JSONL,
        because both feed :func:`build_trace_trees`, which dedupes by
        ``(trace, span_id)`` and orders children by ``(t_enq,
        span_id)``.  ``None`` when no process holds spans for the id.
        """
        spans = await self.federated_spans(trace_id)
        trees = build_trace_trees(spans)
        roots = trees.get(trace_id)
        if not roots:
            return None
        return trace_tree_payload(roots)

    def admin_history(
        self, family: str | None = None, window: float | None = None
    ) -> dict:
        """``GET /metrics/history``: windowed deltas/rates from the ring."""
        return self.history.query(family=family, window=window)

    async def admin_profile(self, seconds: float) -> dict:
        """``GET /profile?seconds=``: capture the router's own stacks."""
        async with self._profile_lock:
            started_here = not self.profiler.running
            if started_here:
                self.profiler.clear()
                self.profiler.start()
            try:
                await asyncio.sleep(seconds)
            finally:
                if started_here:
                    self.profiler.stop()
            return self.profiler.snapshot()

    async def _handle_connection(self, reader, writer) -> None:
        conn = _ClientConn(reader, writer)
        self._conns.add(conn)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        inflight: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    payload = await read_frame(reader)
                except ProtocolError as exc:
                    conn.send(error(None, "protocol", str(exc)))
                    break
                if payload is None:
                    break
                request_id = payload.get("id")
                op = payload.get("op")
                if op in MUTATION_OPS:
                    # Routed synchronously in read order — ordering to
                    # each worker is the read order, and refusals
                    # (validation, draining, backpressure) answer
                    # immediately.  Only tick spawns a gather task.
                    try:
                        tick_task = self._route_mutation(
                            op, payload, request_id, conn
                        )
                    except ServeError as exc:
                        conn.send(error(request_id, exc.kind, exc.message))
                        continue
                    if tick_task is not None:
                        inflight.add(tick_task)
                        tick_task.add_done_callback(inflight.discard)
                    continue
                if op == "hello":
                    # An explicit `codec` field renegotiates; a bare
                    # hello is introspection and keeps the current codec.
                    if "codec" in payload:
                        conn.codec_ref[0] = negotiate_codec(
                            payload.get("codec")
                        )
                    result = self._hello()
                    result["codec"] = conn.codec_ref[0]
                    conn.send(ok(request_id, result))
                    continue
                if op == "shutdown":
                    conn.send(ok(request_id, {"state": "stopped"}))
                    self._shutdown_task = asyncio.create_task(self.shutdown())
                    break
                if op not in OPS:
                    conn.send(
                        error(
                            request_id,
                            "protocol",
                            f"unknown op {op!r}; known: {', '.join(OPS)}",
                        )
                    )
                    continue
                try:
                    result = await self._control(op, payload)
                    conn.send(ok(request_id, result))
                except ServeError as exc:
                    conn.send(error(request_id, exc.kind, exc.message))
        finally:
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
            self._conns.discard(conn)
            if task is not None:
                self._conn_tasks.discard(task)
            await conn.close()
