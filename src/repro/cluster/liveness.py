"""Router-side worker liveness: a clock-driven up/suspect/dead machine.

The router already *reacts* to worker death (read-EOF severs the link
and supervision respawns the victim); this module makes liveness an
*observable state* so the control plane can answer "how healthy is the
fleet" without waiting for a failure to surface as an error frame.

Every worker starts ``up``.  Each heartbeat (or any frame read off the
worker's link — response traffic is proof of life) records a beat; the
state of a worker is then purely a function of the injected clock:

``up``      last beat within ``suspect_after`` seconds
``suspect`` beat missed for ``suspect_after``..``dead_after`` seconds
``dead``    beat missed for ``dead_after``+ seconds, or death observed
            directly (read-EOF, kill -9)

The clock is carried, never called at import: tests drive the whole
machine with a fake clock and zero wall-clock sleeps, which is also why
states are computed on read instead of by a background timer.
"""

from __future__ import annotations

import time

from ..errors import ModelError

#: Liveness states in increasing order of concern.
LIVE_UP = "up"
LIVE_SUSPECT = "suspect"
LIVE_DEAD = "dead"

#: Seconds without a beat before a worker turns suspect / dead.  The
#: defaults sit above the router's heartbeat interval (2s) and at its
#: heartbeat timeout (10s) so a single delayed beat never flaps a
#: healthy worker through suspect.
SUSPECT_AFTER = 4.0
DEAD_AFTER = 10.0


class WorkerLiveness:
    """Beat bookkeeping for one fleet, states derived on demand."""

    def __init__(
        self,
        num_workers: int,
        suspect_after: float = SUSPECT_AFTER,
        dead_after: float = DEAD_AFTER,
        clock=time.monotonic,
    ):
        if num_workers < 1:
            raise ModelError("num_workers must be >= 1")
        if not 0 < suspect_after < dead_after:
            raise ModelError(
                "need 0 < suspect_after < dead_after, got "
                f"{suspect_after} / {dead_after}"
            )
        self.num_workers = num_workers
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self._clock = clock
        now = clock()
        self._last_beat = [now] * num_workers
        self._declared_dead = [False] * num_workers

    def _check(self, worker: int) -> None:
        if not 0 <= worker < self.num_workers:
            raise ModelError(
                f"worker {worker} outside [0, {self.num_workers})"
            )

    def beat(self, worker: int) -> None:
        """Record proof of life; clears a direct death declaration."""
        self._check(worker)
        self._last_beat[worker] = self._clock()
        self._declared_dead[worker] = False

    def declare_dead(self, worker: int) -> None:
        """Skip the timers: death was observed directly (read-EOF)."""
        self._check(worker)
        self._declared_dead[worker] = True

    def state(self, worker: int) -> str:
        """The worker's liveness state at the clock's current reading."""
        self._check(worker)
        if self._declared_dead[worker]:
            return LIVE_DEAD
        silence = self._clock() - self._last_beat[worker]
        if silence >= self.dead_after:
            return LIVE_DEAD
        if silence >= self.suspect_after:
            return LIVE_SUSPECT
        return LIVE_UP

    def states(self) -> list[str]:
        """Every worker's state, indexed by worker."""
        return [self.state(worker) for worker in range(self.num_workers)]

    def silence(self, worker: int) -> float:
        """Seconds since the worker's last recorded beat."""
        self._check(worker)
        return max(0.0, self._clock() - self._last_beat[worker])
