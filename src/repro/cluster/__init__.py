"""repro.cluster — multi-process lease serving behind one router.

The scale-out layer the ROADMAP's serving milestone points at: PR 3's
single-process :class:`~repro.serve.server.LeaseServer` multiplied
across worker *processes*, fronted by a router that speaks the exact
single-server wire protocol — so clients, loadgen, and CLI work against
a cluster unchanged — while the clustered aggregate stays provably
byte-identical to an inline replay of the merged trace.

* :mod:`repro.cluster.spec` — :class:`ClusterSpec`: how the resource
  space tiles into global shards and contiguous per-worker shard
  groups (the engine's :func:`~repro.engine.scenarios.shard_ranges`,
  reused verbatim).
* :mod:`repro.cluster.router` — :class:`ClusterRouter`: consistent
  resource→shard-group routing, coalesced (``writelines``-batched)
  worker links speaking the negotiated binary codec, per-worker
  backpressure windows, and cluster-wide drain/shutdown/stats/report/
  trace barriers whose merged payloads reproduce a single server's.
* :mod:`repro.cluster.procs` — workers as real ``python -m repro engine
  serve`` subprocesses, on unix sockets or pre-allocated loopback TCP
  ports.
* :mod:`repro.cluster.liveness` — :class:`WorkerLiveness`: the
  clock-driven up/suspect/dead machine behind the router's fleet-health
  view, fed by beats off every worker-link frame.
* :mod:`repro.cluster.loadgen` — the ``cluster-*`` scenario half:
  closed-loop tenants against a live fleet, aggregate checked
  byte-identical against the inline replay; powers ``engine cluster``,
  ``engine loadgen --cluster``, and the ``p04_cluster`` benchmark.
"""

from .liveness import (
    LIVE_DEAD,
    LIVE_SUSPECT,
    LIVE_UP,
    WorkerLiveness,
)
from .loadgen import (
    TOPOLOGIES,
    ClusterInstance,
    build_cluster_instance,
    cluster_once,
    run_cluster_instance,
    verify_cluster,
)
from .procs import (
    WorkerProcess,
    free_tcp_port,
    make_respawner,
    reap,
    spawn_workers,
    worker_command,
)
from .router import ClusterRouter
from .spec import (
    TRANSPORTS,
    ClusterSpec,
    format_endpoint,
    parse_endpoint,
)

__all__ = [
    "LIVE_DEAD",
    "LIVE_SUSPECT",
    "LIVE_UP",
    "TOPOLOGIES",
    "TRANSPORTS",
    "ClusterInstance",
    "ClusterRouter",
    "ClusterSpec",
    "WorkerLiveness",
    "WorkerProcess",
    "build_cluster_instance",
    "cluster_once",
    "format_endpoint",
    "free_tcp_port",
    "make_respawner",
    "parse_endpoint",
    "reap",
    "run_cluster_instance",
    "spawn_workers",
    "verify_cluster",
    "worker_command",
]
