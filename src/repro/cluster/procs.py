"""Worker process management: every worker is a real ``engine serve``.

Workers are spawned as plain subprocesses running the CLI the README
documents — ``python -m repro engine serve --socket ... --shards
<total>`` — rather than :mod:`multiprocessing` children.  That buys
three things: the cluster exercises the exact process an operator would
run by hand, workers survive being spawned from daemonic pool workers
(``subprocess`` has no such restriction, so ``cluster-*`` scenarios can
ride the replay runner), and worker death is an observable fact
(``poll``) instead of a shared-state mystery.

The parent's ``repro`` package directory is prepended to the child's
``PYTHONPATH``, so workers import the same code under test regardless of
how the parent was launched.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from ..errors import ModelError
from .spec import ClusterSpec


def worker_command(spec: ClusterSpec, socket_path: str) -> list[str]:
    """The exact ``engine serve`` argv one worker runs."""
    return [
        sys.executable, "-m", "repro", "engine", "serve",
        "--socket", str(socket_path),
        "--resources", str(spec.num_resources),
        "--shards", str(spec.total_shards),
        "--num-types", str(spec.num_types),
        "--cost-growth", repr(spec.cost_growth),
        "--record" if spec.record else "--no-record",
        "--window", str(spec.session_window),
        # Workers stay uninstrumented: the fleet's observability lives
        # at the router (relay latency, in-flight gauges) plus the
        # worker stats folded in at scrape time, so per-request
        # sampling inside workers would cost hot-path time for metrics
        # nothing scrapes.
        "--no-metrics",
    ]


def _worker_env() -> dict:
    src_root = str(Path(__file__).resolve().parents[2])
    env = os.environ.copy()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    return env


class WorkerProcess:
    """One lease-server worker subprocess and its socket path."""

    def __init__(
        self,
        index: int,
        spec: ClusterSpec,
        socket_path: str,
        quiet: bool = True,
    ):
        self.index = index
        self.socket_path = str(socket_path)
        sink = subprocess.DEVNULL if quiet else None
        self.process = subprocess.Popen(
            worker_command(spec, socket_path),
            env=_worker_env(),
            stdout=sink,
            stderr=sink,
        )

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def stop(self, timeout: float = 10.0) -> int | None:
        """Reap the worker: wait briefly, then terminate, then kill."""
        try:
            return self.process.wait(timeout=0.5)
        except subprocess.TimeoutExpired:
            pass
        self.process.terminate()
        try:
            return self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            return self.process.wait(timeout=timeout)


def spawn_workers(
    spec: ClusterSpec, workdir: str | Path, quiet: bool = True
) -> list[WorkerProcess]:
    """Start one worker per shard group, sockets under ``workdir``.

    Caller owns the lifecycle: either shut the workers down over the
    wire (the router's ``shutdown`` barrier) and then :func:`reap`, or
    :func:`reap` directly to terminate them.
    """
    workdir = Path(workdir)
    if not workdir.is_dir():
        raise ModelError(f"workdir {workdir} is not a directory")
    return [
        WorkerProcess(
            index, spec, str(workdir / f"worker-{index}.sock"), quiet=quiet
        )
        for index in range(spec.num_workers)
    ]


def reap(workers: list[WorkerProcess], timeout: float = 10.0) -> None:
    """Stop every worker, tolerating ones that already exited."""
    for worker in workers:
        try:
            worker.stop(timeout=timeout)
        except Exception:
            pass
